//! # redspot
//!
//! A production-quality reproduction of *"Exploiting Redundancy for
//! Cost-Effective, Time-Constrained Execution of HPC Applications on
//! Amazon EC2"* (Marathe et al., HPDC 2014): deadline-guaranteed
//! checkpoint scheduling for spot-market execution, with redundancy
//! across availability zones as a first-class fault-tolerance mechanism
//! and an adaptive controller that picks the bid, the redundancy degree,
//! and the checkpoint policy.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`trace`] — spot-price traces, fixed-point money, simulation time,
//!   and the calibrated synthetic price generator;
//! * [`stats`] — descriptive statistics, boxplots, OLS and VAR;
//! * [`ckpt`] — Daly's optimum checkpoint interval and the application
//!   progress model;
//! * [`markov`] — the Appendix-B Markov price model;
//! * [`market`] — EC2 spot billing rules, queuing delays, instance
//!   lifecycle;
//! * [`core`] — the Algorithm-1 engine, the four checkpoint policies, the
//!   Large-bid and on-demand baselines, and the Adaptive meta-policy;
//! * [`exp`] — the evaluation harness regenerating every figure and
//!   table of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use redspot::prelude::*;
//!
//! // A month of synthetic 3-zone spot prices (calm regime).
//! let traces = GenConfig::low_volatility(42).generate();
//!
//! // The paper's standard experiment: 20 h of compute, 15% slack,
//! // t_c = t_r = 300 s, bid $0.81, three redundant zones.
//! let cfg = ExperimentConfig::paper_default();
//!
//! // Run it under hour-boundary (Periodic) checkpointing.
//! let start = SimTime::from_hours(72);
//! let result = Engine::new(&traces, start, cfg, PolicyKind::Periodic.build()).run();
//!
//! assert!(result.met_deadline);
//! assert!(result.cost_dollars() < 48.0); // cheaper than on-demand
//! ```

#![warn(missing_docs)]

pub use redspot_ckpt as ckpt;
pub use redspot_core as core;
pub use redspot_exp as exp;
pub use redspot_market as market;
pub use redspot_markov as markov;
pub use redspot_stats as stats;
pub use redspot_trace as trace;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use redspot_ckpt::workloads;
    pub use redspot_ckpt::{AppSpec, CkptCosts, DalyOrder, Workload};
    pub use redspot_core::{
        on_demand_run, AdaptiveConfig, AdaptiveRunner, Engine, ExperimentConfig, ForecastMode,
        PolicyKind, RunResult,
    };
    pub use redspot_market::{DelayModel, SpotMarket};
    pub use redspot_trace::bootstrap::{resample, BootstrapConfig};
    pub use redspot_trace::gen::GenConfig;
    pub use redspot_trace::{
        highlight_bids, paper_bid_grid, Price, SimDuration, SimTime, TraceSet, Window, ZoneId,
    };
}
