//! Seed-determinism of the stochastic policies.
//!
//! `RandomizedBid` is the only policy that draws randomness at decision
//! time, and `SpotOnCadence` adapts its interval to observed
//! interruptions; both must still be pure functions of (trace, config,
//! seed). Same seed → byte-identical [`RunResult`]s under both eras;
//! different `RandomizedBid` seeds must actually change behaviour, or
//! the randomization is decorative.

use redspot::core::{Engine, Era};
use redspot::prelude::*;
use redspot::trace::gen::GenConfig;

fn run(traces: &TraceSet, era: Era, kind: PolicyKind) -> redspot::core::RunResult {
    let cfg = ExperimentConfig::paper_default()
        .with_slack_percent(15)
        .with_era(era);
    Engine::new(traces, SimTime::from_hours(48), cfg, kind.build()).run()
}

#[test]
fn stochastic_policies_replay_byte_identically_under_both_eras() {
    let traces = GenConfig::high_volatility(7).generate();
    for era in [Era::Classic, Era::Modern] {
        for kind in [
            PolicyKind::RandomizedBid(0xB1D),
            PolicyKind::RandomizedBid(99),
            PolicyKind::SpotOnCadence,
        ] {
            let a = run(&traces, era, kind);
            let b = run(&traces, era, kind);
            assert_eq!(a, b, "{kind:?} diverged on replay under {era:?}");
        }
    }
}

#[test]
fn randomized_bid_seed_actually_changes_the_run() {
    // Across a handful of seeds on a volatile market, at least two runs
    // must differ — otherwise the per-epoch bid draw is dead code.
    let traces = GenConfig::high_volatility(7).generate();
    let runs: Vec<_> = (0u64..8)
        .map(|seed| run(&traces, Era::Classic, PolicyKind::RandomizedBid(seed)))
        .collect();
    assert!(
        runs.iter().any(|r| *r != runs[0]),
        "eight RandomizedBid seeds produced identical runs"
    );
}

#[test]
fn randomized_bid_stays_deterministic_through_the_experiment_layer() {
    // The scheme/experiment plumbing (redundant multi-zone runs, seed
    // mixing per spec, the shared decision cache) must not smuggle
    // ambient state into the draw: identical specs give identical runs.
    use redspot::core::{MarketCtx, NullRecorder};
    use redspot::exp::{run_spec, RunSpec, Scheme};

    let traces = GenConfig::high_volatility(3).generate();
    let zones: Vec<ZoneId> = traces.zone_ids().collect();
    let mkt = MarketCtx::new(traces);
    let base = ExperimentConfig::paper_default()
        .with_slack_percent(15)
        .with_seed(11);
    let spec = RunSpec {
        start: SimTime::from_hours(48),
        bid: Price::from_millis(810),
        scheme: Scheme::Redundant {
            kind: PolicyKind::RandomizedBid(0xB1D),
            zones,
        },
    };
    let (a, _) = run_spec(&mkt, &spec, &base, NullRecorder);
    let (b, _) = run_spec(&mkt, &spec, &base, NullRecorder);
    assert_eq!(a, b);
}
