//! Property tests for the Adaptive meta-policy across randomized markets:
//! the two promises the paper makes — deadline always met, cost bounded
//! relative to on-demand — must hold for *any* market the generator can
//! produce.

use proptest::prelude::*;
use redspot::prelude::*;
use redspot::trace::gen::{GenConfig, ZoneRegime};

fn arb_market() -> impl Strategy<Value = TraceSet> {
    (
        0u64..5_000,
        150u64..800,     // calm base
        1_000u64..3_000, // elevated base
        0.0f64..0.05,    // p_calm_to_elevated
        0.02f64..0.2,    // p_elevated_to_calm
        0.0f64..0.02,    // p_spike
    )
        .prop_map(|(seed, calm, elev, p_up, p_down, p_spike)| {
            let mk = |i: usize| ZoneRegime {
                calm_base: calm + 15 * i as u64,
                calm_jitter: calm / 10,
                p_move: 0.15,
                elevated_base: elev + 50 * i as u64,
                elevated_jitter: elev / 10,
                p_calm_to_elevated: p_up,
                p_elevated_to_calm: p_down,
                p_spike,
                spike_range: (2_000, 3_070),
                spike_steps: (2, 20),
            };
            GenConfig {
                zones: (0..3).map(mk).collect(),
                duration: SimDuration::from_hours(24 * 5),
                start: SimTime::ZERO,
                seed,
                common_amplitude: 6,
            }
            .generate()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adaptive_meets_deadline_and_bounds_cost(
        traces in arb_market(),
        slack_pct in 10u64..60,
        tc in prop_oneof![Just(300u64), Just(900u64)],
        seed in 0u64..100,
    ) {
        let mut cfg = ExperimentConfig::paper_default()
            .with_slack_percent(slack_pct)
            .with_costs(redspot::ckpt::CkptCosts::symmetric_secs(tc))
            .with_seed(seed);
        cfg.app = AppSpec::new(SimDuration::from_hours(10));
        cfg.deadline = SimDuration::from_secs(cfg.app.work.secs() * (100 + slack_pct) / 100);

        let start = SimTime::from_hours(48);
        let r = AdaptiveRunner::new(&traces, start, cfg).run();

        prop_assert!(r.met_deadline, "adaptive missed the deadline");
        // 10 h of work: on-demand reference is $24; the paper's empirical
        // bound is 120% of on-demand.
        let od = 24.0;
        prop_assert!(
            r.cost_dollars() <= od * 1.2 + 1e-9,
            "adaptive cost ${} above 1.2x the ${od} on-demand reference",
            r.cost_dollars()
        );
        prop_assert_eq!(r.cost, r.spot_cost + r.od_cost);
    }
}
