//! Properties of the shard planner and the verified merge.
//!
//! The crash-safe sweep plane's byte-identity guarantee rests on the
//! planner being a *partition*: for any grid size and any shard count,
//! every cell must land in exactly one shard, the plan must be a pure
//! function of `(n_cells, N)` (identical across repeated calls and
//! across processes), and the merged artifact must not depend on how
//! many shards the grid was split into.

use proptest::prelude::*;
use redspot::core::telemetry::journal::{frame, unframe};
use redspot::core::{RunMetrics, RunResult};
use redspot::exp::shard::journal::{scan_journal, ShardJournal};
use redspot::exp::shard::merge::merge_scans;
use redspot::exp::{shard_range, CellRecord, ShardManifest};
use redspot::trace::{Price, SimTime};
use std::collections::BTreeSet;
use std::path::PathBuf;

proptest! {
    /// Every cell of any grid lands in exactly one shard, shard ranges
    /// are contiguous and balanced (sizes differ by at most one), and
    /// planning is deterministic across repeated calls.
    #[test]
    fn planner_is_a_balanced_partition(n_cells in 0usize..5_000, n_shards in 1usize..64) {
        let mut covered = vec![0u32; n_cells];
        let mut sizes = Vec::with_capacity(n_shards);
        for k in 1..=n_shards {
            let range = shard_range(n_cells, k, n_shards);
            prop_assert_eq!(range.clone(), shard_range(n_cells, k, n_shards),
                "plan must be deterministic");
            sizes.push(range.len());
            for cell in range {
                covered[cell] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1),
            "every cell in exactly one shard");
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "balanced: sizes {min}..{max}");
        // Contiguity: shard k's range starts where k-1's ended.
        let mut expected_lo = 0;
        for k in 1..=n_shards {
            let range = shard_range(n_cells, k, n_shards);
            prop_assert_eq!(range.start, expected_lo);
            expected_lo = range.end;
        }
        prop_assert_eq!(expected_lo, n_cells);
    }

    /// Manifests planned for every shard of a grid agree on the
    /// geometry and jointly cover the grid exactly.
    #[test]
    fn manifests_cover_the_grid(n_cells in 0usize..2_000, n_shards in 1usize..32) {
        let mut seen = BTreeSet::new();
        for k in 1..=n_shards {
            let m = ShardManifest::plan(n_cells, k, n_shards, "f".into()).unwrap();
            prop_assert_eq!(m.n_cells, n_cells);
            prop_assert_eq!(m.n_shards, n_shards);
            prop_assert_eq!(m.cells(), shard_range(n_cells, k, n_shards));
            for cell in m.cells() {
                prop_assert!(seen.insert(cell), "cell {} in two shards", cell);
            }
        }
        prop_assert_eq!(seen.len(), n_cells);
    }

    /// The merged artifact is invariant to the shard count: journaling
    /// the same cell records split 1 way, k ways, or n ways and merging
    /// yields identical `MergedSweep`s (results in cell order, metrics
    /// equal).
    #[test]
    fn merge_is_shard_count_invariant(
        n_cells in 1usize..40,
        splits in proptest::collection::vec(1usize..12, 2..4),
        seed in 0u64..1_000,
    ) {
        let records: Vec<CellRecord> = (0..n_cells).map(|cell| synthetic_record(cell, seed)).collect();
        let mut merges = Vec::new();
        for (i, &n_shards) in splits.iter().enumerate() {
            let dir = tmp_dir(&format!("invariance-{seed}-{n_cells}-{i}-{n_shards}"));
            for k in 1..=n_shards {
                let m = ShardManifest::plan(n_cells, k, n_shards, "aaaaaaaaaaaaaaaa".into()).unwrap();
                let (mut j, _) = ShardJournal::open(&dir, &m, 4).unwrap();
                for cell in m.cells() {
                    j.append_cell(&records[cell]).unwrap();
                }
                j.finish().unwrap();
            }
            let scans = (1..=n_shards)
                .map(|k| {
                    let path = dir.join(format!("shard-{k}-of-{n_shards}.journal"));
                    (path.clone(), scan_journal(&path).unwrap())
                })
                .collect();
            let (merged, report) = merge_scans(scans).unwrap();
            prop_assert_eq!(report.n_shards, n_shards);
            merges.push(merged);
            std::fs::remove_dir_all(&dir).ok();
        }
        for pair in merges.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "merge must not depend on shard count");
        }
    }

    /// The checksummed line codec round-trips arbitrary payloads and
    /// rejects every strict prefix (the torn-write detection the resume
    /// path relies on).
    #[test]
    fn line_codec_round_trips_and_rejects_prefixes(
        bytes in proptest::collection::vec(0x20u8..0x7f, 0..120),
    ) {
        let payload = String::from_utf8(bytes).unwrap();
        let line = frame(&payload);
        let trimmed = line.trim_end_matches('\n');
        prop_assert_eq!(unframe(trimmed).unwrap(), payload.as_str());
        for cut in 0..trimmed.len() {
            prop_assert!(unframe(&trimmed[..cut]).is_err(), "prefix {} decoded", cut);
        }
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("redspot-shard-props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic synthetic cell record — merge invariance is about
/// journal plumbing, not simulation, so the payload just needs to be
/// distinguishable per cell.
fn synthetic_record(cell: usize, seed: u64) -> CellRecord {
    CellRecord {
        cell,
        result: RunResult {
            cost: Price::from_millis(1_000 + seed + cell as u64),
            spot_cost: Price::from_millis(1_000 + seed + cell as u64),
            od_cost: Price::ZERO,
            io_cost: Price::ZERO,
            finished_at: SimTime::from_hours(20 + cell as u64 % 5),
            met_deadline: true,
            checkpoints: cell as u32 % 7,
            restarts: cell as u32 % 3,
            out_of_bid_terminations: 0,
            used_on_demand: false,
            api: Default::default(),
            events: vec![],
        },
        metrics: RunMetrics {
            runs: 1,
            checkpoints_committed: cell as u64 % 7,
            ..RunMetrics::default()
        },
    }
}
