//! Bit-identity properties of the batch execution plane.
//!
//! The plane's whole contract is that its machinery is invisible in the
//! results: for any market and any mixed batch of schemes, the chunked
//! work-stealing executor must return byte-equal `RunResult`s at every
//! thread count and chunk size, and a context with memoization enabled
//! (decision cache + Markov uptime memo + scan seed) must be byte-equal
//! to one with every cache disabled.

use proptest::prelude::*;
use redspot::core::MarketCtx;
use redspot::exp::{RunRequest, RunSpec, Scheme};
use redspot::prelude::*;
use redspot::trace::gen::{GenConfig, ZoneRegime};

/// Realistic three-zone markets (mirrors the scan property suite's
/// generator): calm/elevated regimes with occasional unaffordable spikes.
fn arb_market() -> impl Strategy<Value = TraceSet> {
    (
        0u64..5_000,
        150u64..800,     // calm base
        1_000u64..3_000, // elevated base
        0.0f64..0.05,    // p_calm_to_elevated
        0.02f64..0.2,    // p_elevated_to_calm
        0.0f64..0.02,    // p_spike
    )
        .prop_map(|(seed, calm, elev, p_up, p_down, p_spike)| {
            let mk = |i: usize| ZoneRegime {
                calm_base: calm + 15 * i as u64,
                calm_jitter: calm / 10,
                p_move: 0.15,
                elevated_base: elev + 50 * i as u64,
                elevated_jitter: elev / 10,
                p_calm_to_elevated: p_up,
                p_elevated_to_calm: p_down,
                p_spike,
                spike_range: (2_000, 3_070),
                spike_steps: (2, 20),
            };
            GenConfig {
                zones: (0..3).map(mk).collect(),
                duration: SimDuration::from_hours(24 * 3),
                start: SimTime::ZERO,
                seed,
                common_amplitude: 6,
            }
            .generate()
        })
}

/// A batch mixing every scheme `run_spec` dispatches on, at two starts.
fn mixed_specs(traces: &TraceSet) -> Vec<RunSpec> {
    let bid = Price::from_millis(810);
    let mut specs = Vec::new();
    for start in [SimTime::from_hours(48), SimTime::from_hours(52)] {
        specs.push(RunSpec {
            start,
            bid,
            scheme: Scheme::Adaptive,
        });
        specs.push(RunSpec {
            start,
            bid,
            scheme: Scheme::Single {
                kind: PolicyKind::MarkovDaly,
                zone: ZoneId(0),
            },
        });
        specs.push(RunSpec {
            start,
            bid,
            scheme: Scheme::Redundant {
                kind: PolicyKind::Threshold,
                zones: traces.zone_ids().collect(),
            },
        });
        specs.push(RunSpec {
            start,
            bid,
            scheme: Scheme::LargeBid {
                threshold: Some(Price::from_millis(2_400)),
                zone: ZoneId(1),
            },
        });
        specs.push(RunSpec {
            start,
            bid,
            scheme: Scheme::OnDemand,
        });
    }
    specs
}

fn small_cfg(slack_pct: u64, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default()
        .with_slack_percent(slack_pct)
        .with_seed(seed);
    cfg.app = AppSpec::new(SimDuration::from_hours(10));
    cfg.deadline = SimDuration::from_secs(cfg.app.work.secs() * (100 + slack_pct) / 100);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The executor returns byte-equal results for every thread count and
    /// chunk size, against one shared (warming) context.
    #[test]
    fn executor_is_bit_identical_across_threads_and_chunks(
        traces in arb_market(),
        slack_pct in 10u64..60,
        seed in 0u64..100,
    ) {
        let cfg = small_cfg(slack_pct, seed);
        let specs = mixed_specs(&traces);
        let mkt = MarketCtx::for_sweep(traces.clone());
        let run = |threads: usize, chunk: Option<usize>| {
            let mut req = RunRequest::new(&mkt, &cfg, &specs).threads(threads);
            if let Some(c) = chunk {
                req = req.chunk_size(c);
            }
            req.execute().expect("valid batch config").results
        };
        let serial = run(1, None);
        prop_assert_eq!(&serial, &run(2, None), "2 threads changed results");
        prop_assert_eq!(&serial, &run(3, Some(1)), "chunk=1 changed results");
        prop_assert_eq!(&serial, &run(2, Some(7)), "chunk=7 changed results");
        prop_assert!(serial.iter().all(|r| r.met_deadline));
    }

    /// Memoization is invisible: an uncached context and both cached
    /// constructors produce byte-equal batches — and re-running against
    /// the already-warm cache stays byte-equal too.
    #[test]
    fn cached_and_uncached_batches_are_bit_identical(
        traces in arb_market(),
        slack_pct in 10u64..60,
        seed in 0u64..100,
    ) {
        let cfg = small_cfg(slack_pct, seed);
        let specs = mixed_specs(&traces);
        let run = |mkt: &MarketCtx| {
            RunRequest::new(mkt, &cfg, &specs)
                .threads(1)
                .execute()
                .expect("valid batch config")
        };
        let uncached = run(&MarketCtx::uncached(traces.clone()));
        let one_off = run(&MarketCtx::new(traces.clone()));
        let sweep_ctx = MarketCtx::for_sweep(traces.clone());
        let cold = run(&sweep_ctx);
        let warm = run(&sweep_ctx);
        prop_assert_eq!(&uncached.results, &one_off.results, "decision/uptime caches changed results");
        prop_assert_eq!(&uncached.results, &cold.results, "sweep context changed results");
        prop_assert_eq!(&uncached.results, &warm.results, "warm cache changed results");
        // The uncached context really ran cold, and the warm pass really
        // exercised the caches.
        prop_assert_eq!(uncached.cache.hits + uncached.cache.misses, 0);
        prop_assert_eq!(uncached.uptime.hits + uncached.uptime.misses, 0);
        prop_assert!(warm.cache.hits > 0, "warm pass never hit the decision cache");
    }
}
