//! Chaos property tests: the paper's deadline guarantee and the billing
//! invariants must survive *arbitrary* fault schedules — checkpoint write
//! failures, corrupted restores with generation fallback, boot failures
//! with bounded backoff, zone blackouts — on arbitrary markets.
//!
//! Also the determinism regression: [`FaultPlan::none`] must reproduce
//! the fault-free engine bit for bit, across reruns and across sweep
//! thread counts.

use proptest::prelude::*;
use redspot::core::{ApiFaultPlan, Engine, Event, FaultPlan};
use redspot::exp::{RunRequest, RunSpec, Scheme};
use redspot::prelude::*;
use redspot::trace::gen::{GenConfig, ZoneRegime};

/// An arbitrary (but bounded) market: arbitrary regime parameters per
/// zone, arbitrary seed.
fn arb_market() -> impl Strategy<Value = TraceSet> {
    (
        0u64..10_000,  // seed
        100u64..900,   // calm base
        900u64..4_000, // elevated base
        0.0f64..0.2,   // p_calm_to_elevated
        0.01f64..0.3,  // p_elevated_to_calm
        0.0f64..0.05,  // p_spike
    )
        .prop_map(|(seed, calm, elev, p_up, p_down, p_spike)| {
            let mk = |i: usize| ZoneRegime {
                calm_base: calm + 10 * i as u64,
                calm_jitter: calm / 8,
                p_move: 0.2,
                elevated_base: elev,
                elevated_jitter: elev / 8,
                p_calm_to_elevated: p_up,
                p_elevated_to_calm: p_down,
                p_spike,
                spike_range: (elev, elev * 3),
                spike_steps: (1, 12),
            };
            GenConfig {
                zones: (0..3).map(mk).collect(),
                duration: SimDuration::from_hours(24 * 5),
                start: SimTime::ZERO,
                seed,
                common_amplitude: 5,
            }
            .generate()
        })
}

/// An arbitrary fault schedule, spanning everything from "almost benign"
/// to "most checkpoints lost, boots flaky, zones regularly dark".
fn arb_faults() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..0.9,   // p_ckpt_write_fail
        0.0f64..0.8,   // p_restore_corrupt (< 1: a restore must terminate)
        0.0f64..0.8,   // p_boot_fail (< 1: a boot must eventually succeed)
        30u64..600,    // boot_backoff (secs)
        0.0f64..0.25,  // p_blackout_per_hour
        600u64..7_200, // blackout_duration (secs)
    )
        .prop_map(|(w, r, b, backoff, bl, bl_dur)| FaultPlan {
            p_ckpt_write_fail: w,
            p_restore_corrupt: r,
            p_boot_fail: b,
            boot_backoff: SimDuration::from_secs(backoff),
            boot_backoff_cap: SimDuration::from_secs(backoff * 16),
            p_blackout_per_hour: bl,
            blackout_duration: SimDuration::from_secs(bl_dur),
        })
}

/// Walk the event log holding the engine to the generation-store
/// semantics: committed progress only moves backwards through an explicit
/// corrupted-restore fallback, and every commit lands at or above the
/// current newest valid generation.
fn check_commit_monotonicity(events: &[Event]) {
    let mut newest_valid = SimDuration::ZERO;
    for e in events {
        match e {
            Event::CheckpointCommitted { position, .. } => {
                assert!(
                    *position >= newest_valid,
                    "commit at {position} behind newest valid generation {newest_valid}"
                );
                newest_valid = *position;
            }
            Event::RestoreFailed { fell_back_to, .. } => {
                assert!(
                    *fell_back_to <= newest_valid,
                    "fallback to {fell_back_to} above newest valid {newest_valid}"
                );
                newest_valid = *fell_back_to;
            }
            Event::SwitchedToOnDemand { committed, .. } => {
                // Migration restores from the reliable I/O server, which
                // never trails the spot-side generation store.
                assert!(
                    *committed >= newest_valid,
                    "migration from {committed} behind newest valid {newest_valid}"
                );
            }
            Event::BootFailed { at, retry_at, .. } => {
                assert!(retry_at > at, "boot retry not in the future");
            }
            Event::ZoneBlackout { at, until, .. } => {
                assert!(until > at, "empty blackout window");
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE chaos property: any market, any fault schedule, any policy —
    /// the deadline holds whenever it was feasible at submission, the
    /// accounting adds up, and committed progress respects the
    /// generation store.
    #[test]
    fn guarantee_survives_arbitrary_fault_schedules(
        traces in arb_market(),
        faults in arb_faults(),
        kind in prop_oneof![
            Just(PolicyKind::Periodic),
            Just(PolicyKind::MarkovDaly),
            Just(PolicyKind::SpotOnCadence),
            Just(PolicyKind::RandomizedBid(0xB1D)),
        ],
        slack_pct in 10u64..60,
        seed in 0u64..1_000,
    ) {
        let mut cfg = ExperimentConfig::paper_default()
            .with_slack_percent(slack_pct)
            .with_seed(seed)
            .with_faults(faults);
        cfg.app = AppSpec::new(SimDuration::from_hours(8));
        cfg.deadline = SimDuration::from_secs(cfg.app.work.secs() * (100 + slack_pct) / 100);

        let feasible = cfg.deadline >= cfg.app.work + cfg.costs.migration();
        let start = SimTime::from_hours(48);
        let r = Engine::new(&traces, start, cfg.clone(), kind.build()).run();

        prop_assert!(
            r.met_deadline || !feasible,
            "{kind:?} missed a feasible deadline under {faults:?}: finished {} vs {}",
            r.finished_at,
            start + cfg.deadline
        );
        prop_assert_eq!(r.cost, r.spot_cost + r.od_cost + r.io_cost);
        prop_assert!(!r.used_on_demand || r.od_cost > Price::ZERO);
        check_commit_monotonicity(&r.events);
    }

    /// The same seed and fault schedule replay to the identical run —
    /// fault injection is deterministic, not merely statistical.
    #[test]
    fn fault_injection_replays_bit_for_bit(
        traces in arb_market(),
        faults in arb_faults(),
        seed in 0u64..1_000,
    ) {
        let cfg = {
            let mut c = ExperimentConfig::paper_default()
                .with_slack_percent(15)
                .with_seed(seed)
                .with_faults(faults);
            c.app = AppSpec::new(SimDuration::from_hours(8));
            c.deadline = SimDuration::from_secs(c.app.work.secs() * 115 / 100);
            c
        };
        let start = SimTime::from_hours(48);
        let a = Engine::new(&traces, start, cfg.clone(), PolicyKind::Periodic.build()).run();
        let b = Engine::new(&traces, start, cfg, PolicyKind::Periodic.build()).run();
        prop_assert_eq!(a, b);
    }
}

// ----------------------------------------------------------------------
// Determinism regression: the none-plan engine IS the fault-free engine.

/// The paper-default experiment used by the pinned regression below.
fn pinned_setup() -> (TraceSet, SimTime, ExperimentConfig) {
    let traces = GenConfig::low_volatility(42).generate();
    let cfg = ExperimentConfig::paper_default();
    (traces, SimTime::from_hours(72), cfg)
}

#[test]
fn none_plan_is_identical_to_the_default_config() {
    let (traces, start, cfg) = pinned_setup();
    let explicit = cfg.clone().with_faults(FaultPlan::none());
    let a = Engine::new(&traces, start, cfg, PolicyKind::Periodic.build()).run();
    let b = Engine::new(&traces, start, explicit, PolicyKind::Periodic.build()).run();
    assert_eq!(a, b);

    // And reruns are bit-identical.
    let (traces2, start2, cfg2) = pinned_setup();
    let c = Engine::new(&traces2, start2, cfg2, PolicyKind::Periodic.build()).run();
    assert_eq!(a, c);
}

/// Pin of the fault-free engine's output on the paper-default scenario.
/// `FaultPlan::none()` must keep reproducing the pre-fault-layer results
/// exactly; if this changes, the fault layer has leaked into the
/// fault-free path (an RNG draw, an extra event-horizon stop, ...).
#[test]
fn none_plan_reproduces_the_pinned_fault_free_result() {
    let (traces, start, cfg) = pinned_setup();
    let r = Engine::new(&traces, start, cfg, PolicyKind::Periodic.build()).run();
    assert!(r.met_deadline);
    assert_eq!(r.cost, r.spot_cost + r.od_cost + r.io_cost);
    assert_eq!(
        (r.cost, r.finished_at, r.checkpoints, r.restarts),
        pinned_expectation(),
        "fault-free engine output drifted: {r:?}"
    );
}

/// The expected (cost, finish, checkpoints, restarts) for
/// [`pinned_setup`], captured from the engine before the fault layer
/// existed.
fn pinned_expectation() -> (Price, SimTime, u32, u32) {
    (
        Price::from_millis(PINNED_COST_MILLIS),
        SimTime::from_secs(PINNED_FINISH_SECS),
        PINNED_CHECKPOINTS,
        PINNED_RESTARTS,
    )
}

const PINNED_COST_MILLIS: u64 = 18_563;
const PINNED_FINISH_SECS: u64 = 333_290;
const PINNED_CHECKPOINTS: u32 = 20;
const PINNED_RESTARTS: u32 = 3;

// ----------------------------------------------------------------------
// Control-plane chaos: the guarantee under arbitrary API fault schedules.

/// An arbitrary control-plane fault schedule: timeouts, throttling,
/// capacity rejections, failing price reads, flaky on-demand requests —
/// from "barely noticeable" to "most calls fail".
fn arb_api_faults() -> impl Strategy<Value = ApiFaultPlan> {
    (
        (
            0.0f64..0.6,  // p_timeout
            5u64..120,    // timeout (secs)
            0.0f64..0.6,  // p_throttle
            10u64..300,   // retry_after (secs)
            0.0f64..0.9,  // p_capacity
            0.0f64..0.95, // p_price_error
        ),
        (
            0.0f64..0.9,   // p_od_fail (bounded retries force through anyway)
            0u64..30,      // latency (secs)
            5u64..60,      // retry_base (secs)
            1u32..6,       // breaker_threshold
            300u64..1_200, // breaker_cooldown (secs)
        ),
    )
        .prop_map(
            |((p_t, t, p_th, ra, p_c, p_p), (p_od, lat, base, thresh, cool))| ApiFaultPlan {
                p_timeout: p_t,
                timeout: SimDuration::from_secs(t),
                p_throttle: p_th,
                retry_after: SimDuration::from_secs(ra),
                p_capacity: p_c,
                p_price_error: p_p,
                p_od_fail: p_od,
                latency: SimDuration::from_secs(lat),
                retry_base: SimDuration::from_secs(base),
                retry_cap: SimDuration::from_secs(base * 32),
                breaker_threshold: thresh,
                breaker_cooldown: SimDuration::from_secs(cool),
                ..ApiFaultPlan::none()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE control-plane chaos property: any market, any API fault
    /// schedule — the deadline holds, the accounting adds up, and denied
    /// spot requests are never billed.
    #[test]
    fn guarantee_survives_arbitrary_api_fault_schedules(
        traces in arb_market(),
        api in arb_api_faults(),
        kind in prop_oneof![
            Just(PolicyKind::Periodic),
            Just(PolicyKind::MarkovDaly),
            Just(PolicyKind::SpotOnCadence),
            Just(PolicyKind::RandomizedBid(0xB1D)),
        ],
        slack_pct in 10u64..60,
        seed in 0u64..1_000,
    ) {
        let mut cfg = ExperimentConfig::paper_default()
            .with_slack_percent(slack_pct)
            .with_seed(seed)
            .with_api_faults(api);
        cfg.app = AppSpec::new(SimDuration::from_hours(8));
        cfg.deadline = SimDuration::from_secs(cfg.app.work.secs() * (100 + slack_pct) / 100);
        prop_assert!(cfg.validate().is_ok());

        // Feasible at submission: deadline covers the work, the migration
        // reserve, and the bounded on-demand retry budget.
        let feasible =
            cfg.deadline >= cfg.app.work + cfg.costs.migration() + cfg.api.od_reserve();
        let start = SimTime::from_hours(48);
        let r = Engine::new(&traces, start, cfg.clone(), kind.build()).run();

        prop_assert!(
            r.met_deadline || !feasible,
            "{kind:?} missed a feasible deadline under {:?}: finished {} vs {}",
            cfg.api,
            r.finished_at,
            start + cfg.deadline
        );
        prop_assert_eq!(r.cost, r.spot_cost + r.od_cost + r.io_cost);
        prop_assert!(!r.used_on_demand || r.od_cost > Price::ZERO);
        check_commit_monotonicity(&r.events);

        // Denied spot requests carry no billing: every SpotRequestFailed
        // schedules a retry strictly in the future, and quarantine
        // windows are non-empty.
        for e in &r.events {
            match e {
                Event::SpotRequestFailed { at, retry_at, .. } => {
                    prop_assert!(retry_at > at, "API retry not in the future");
                }
                Event::ZoneQuarantined { at, until, .. } => {
                    prop_assert!(until > at, "empty quarantine window");
                }
                _ => {}
            }
        }
    }

    /// The same seed and API fault schedule replay to the identical run —
    /// control-plane fault injection is deterministic, not statistical.
    #[test]
    fn api_fault_injection_replays_bit_for_bit(
        traces in arb_market(),
        api in arb_api_faults(),
        seed in 0u64..1_000,
    ) {
        let cfg = {
            let mut c = ExperimentConfig::paper_default()
                .with_slack_percent(15)
                .with_seed(seed)
                .with_api_faults(api);
            c.app = AppSpec::new(SimDuration::from_hours(8));
            c.deadline = SimDuration::from_secs(c.app.work.secs() * 115 / 100);
            c
        };
        let start = SimTime::from_hours(48);
        let a = Engine::new(&traces, start, cfg.clone(), PolicyKind::Periodic.build()).run();
        let b = Engine::new(&traces, start, cfg, PolicyKind::Periodic.build()).run();
        prop_assert_eq!(a, b);
    }
}

// ----------------------------------------------------------------------
// Composed chaos: both fault planes live in the same run.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Infrastructure faults AND control-plane faults in the same run —
    /// arbitrary schedules on both planes, arbitrary markets. The planes
    /// interact (a blackout ends, the re-request times out, the boot
    /// fails, ...), yet the deadline holds whenever it was feasible at
    /// submission and the billing invariants are untouched.
    #[test]
    fn guarantee_survives_composed_fault_planes(
        traces in arb_market(),
        faults in arb_faults(),
        api in arb_api_faults(),
        kind in prop_oneof![
            Just(PolicyKind::Periodic),
            Just(PolicyKind::MarkovDaly),
            Just(PolicyKind::SpotOnCadence),
            Just(PolicyKind::RandomizedBid(0xB1D)),
        ],
        slack_pct in 10u64..60,
        seed in 0u64..1_000,
    ) {
        let mut cfg = ExperimentConfig::paper_default()
            .with_slack_percent(slack_pct)
            .with_seed(seed)
            .with_faults(faults)
            .with_api_faults(api);
        cfg.app = AppSpec::new(SimDuration::from_hours(8));
        cfg.deadline = SimDuration::from_secs(cfg.app.work.secs() * (100 + slack_pct) / 100);
        prop_assert!(cfg.validate().is_ok());

        // Feasible at submission under the stricter of both planes'
        // reserves: work + migration + the bounded on-demand retry loop.
        let feasible =
            cfg.deadline >= cfg.app.work + cfg.costs.migration() + cfg.api.od_reserve();
        let start = SimTime::from_hours(48);
        let r = Engine::new(&traces, start, cfg.clone(), kind.build()).run();

        prop_assert!(
            r.met_deadline || !feasible,
            "{kind:?} missed a feasible deadline with both planes live: finished {} vs {}",
            r.finished_at,
            start + cfg.deadline
        );
        prop_assert_eq!(r.cost, r.spot_cost + r.od_cost + r.io_cost);
        prop_assert!(!r.used_on_demand || r.od_cost > Price::ZERO);
        check_commit_monotonicity(&r.events);

        // Control-plane bookkeeping stays sound under composition.
        for e in &r.events {
            match e {
                Event::SpotRequestFailed { at, retry_at, .. } => {
                    prop_assert!(retry_at > at, "API retry not in the future");
                }
                Event::ZoneQuarantined { at, until, .. } => {
                    prop_assert!(until > at, "empty quarantine window");
                }
                _ => {}
            }
        }
    }

    /// Composed chaos replays bit for bit: the two planes draw from
    /// independent deterministic streams, so running them together is
    /// just as reproducible as running either alone.
    #[test]
    fn composed_fault_planes_replay_bit_for_bit(
        traces in arb_market(),
        faults in arb_faults(),
        api in arb_api_faults(),
        seed in 0u64..1_000,
    ) {
        let cfg = {
            let mut c = ExperimentConfig::paper_default()
                .with_slack_percent(15)
                .with_seed(seed)
                .with_faults(faults)
                .with_api_faults(api);
            c.app = AppSpec::new(SimDuration::from_hours(8));
            c.deadline = SimDuration::from_secs(c.app.work.secs() * 115 / 100);
            c
        };
        let start = SimTime::from_hours(48);
        let a = Engine::new(&traces, start, cfg.clone(), PolicyKind::Periodic.build()).run();
        let b = Engine::new(&traces, start, cfg, PolicyKind::Periodic.build()).run();
        prop_assert_eq!(a, b);
    }
}

/// Total capacity drought: every spot request is rejected with
/// `InsufficientInstanceCapacity`. No spot instance ever starts, so no
/// spot dollar is ever billed ("no billing for unfulfilled requests"),
/// and the run still meets its deadline by migrating to on-demand.
#[test]
fn total_capacity_drought_bills_no_spot_and_meets_the_deadline() {
    let (traces, start, mut cfg) = pinned_setup();
    cfg.api = ApiFaultPlan {
        p_capacity: 1.0,
        ..ApiFaultPlan::none()
    };
    let r = Engine::new(&traces, start, cfg.clone(), PolicyKind::Periodic.build()).run();
    assert!(r.met_deadline, "capacity drought broke the deadline: {r:?}");
    assert_eq!(
        r.spot_cost,
        Price::ZERO,
        "billed for spot requests that were never fulfilled"
    );
    assert!(r.used_on_demand);
    assert!(r.od_cost > Price::ZERO);
    assert!(r.api.spot_retries > 0, "no denials recorded: {:?}", r.api);
    assert_eq!(r.cost, r.spot_cost + r.od_cost + r.io_cost);
}

/// Timeouts and throttles hit `request_on_demand` even with
/// `p_od_fail = 0`, and the supervisor retries any error up to
/// `od_max_attempts` — so the guard must reserve the full bounded loop,
/// not a single worst-case call. Regression: with huge timeouts, a
/// guaranteed capacity drought, and an *exactly* feasible deadline,
/// every seed must still finish by the deadline.
#[test]
fn on_demand_timeouts_with_zero_od_fail_stay_inside_the_reserve() {
    let traces = GenConfig::low_volatility(42).generate();
    let start = SimTime::from_hours(72);
    for seed in 0..50 {
        let mut cfg = ExperimentConfig::paper_default().with_seed(seed);
        cfg.api = ApiFaultPlan {
            p_timeout: 0.95,
            timeout: SimDuration::from_secs(7200),
            p_capacity: 1.0, // no spot request ever fulfilled
            ..ApiFaultPlan::none()
        };
        assert_eq!(cfg.api.p_od_fail, 0.0);
        // Exactly feasible at submission: zero slack beyond the reserve.
        cfg.deadline = cfg.app.work + cfg.costs.migration() + cfg.api.od_reserve();
        let r = Engine::new(&traces, start, cfg.clone(), PolicyKind::Periodic.build()).run();
        assert!(
            r.met_deadline,
            "seed {seed}: finished {} past deadline {} (od_retries={})",
            r.finished_at,
            start + cfg.deadline,
            r.api.od_retries
        );
        assert_eq!(
            r.spot_cost,
            Price::ZERO,
            "seed {seed}: billed unfulfilled spot"
        );
    }
}

/// `ApiFaultPlan::none()` must reproduce the pre-supervisor engine bit
/// for bit — the control-plane layer leaks nothing into the perfect-API
/// path. The pinned constants below double-check against drift.
#[test]
fn api_none_plan_is_identical_to_the_default_config() {
    let (traces, start, cfg) = pinned_setup();
    let explicit = cfg.clone().with_api_faults(ApiFaultPlan::none());
    let a = Engine::new(&traces, start, cfg, PolicyKind::Periodic.build()).run();
    let b = Engine::new(&traces, start, explicit, PolicyKind::Periodic.build()).run();
    assert_eq!(a, b);
    assert_eq!(a.api, redspot::core::ApiStats::default());
    assert_eq!(
        (a.cost, a.finished_at, a.checkpoints, a.restarts),
        pinned_expectation(),
        "perfect-API engine output drifted: {a:?}"
    );
}

#[test]
fn none_plan_sweeps_are_thread_count_invariant() {
    let (traces, _, cfg) = pinned_setup();
    let specs: Vec<RunSpec> = (0..6)
        .map(|i| RunSpec {
            start: SimTime::from_hours(48 + 12 * i),
            bid: Price::from_millis(810),
            scheme: Scheme::Redundant {
                kind: PolicyKind::Periodic,
                zones: traces.zone_ids().collect(),
            },
        })
        .collect();
    let mkt = redspot::core::MarketCtx::new(traces.clone());
    let batch = |cfg: &redspot::core::ExperimentConfig, threads: usize| {
        RunRequest::new(&mkt, cfg, &specs)
            .threads(threads)
            .execute()
            .expect("valid config")
            .results
    };
    let serial = batch(&cfg, 1);
    let threaded = batch(&cfg, 4);
    assert_eq!(serial, threaded);

    // The same holds with faults switched on: the fault RNG is seeded
    // per run, not shared across workers.
    let chaotic = cfg.with_faults(FaultPlan::with_intensity(0.7));
    let serial = batch(&chaotic, 1);
    let threaded = batch(&chaotic, 4);
    assert_eq!(serial, threaded);
}
