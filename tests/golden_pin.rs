//! Golden pin: the serialized `RunResult` — cost breakdown, event log,
//! and `ApiStats` — of a set of fixed deterministic scenarios must stay
//! bit-identical across refactors of the engine internals.
//!
//! The golden files under `tests/golden/` were generated from the
//! pre-observability-plane engine (the monolithic `engine.rs` with
//! `record_events: bool`); the suite therefore proves that routing event
//! emission through `VecRecorder` changed nothing observable.
//!
//! Regenerate (only when an *intentional* behavior change lands) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_pin
//! ```

use redspot::core::{AdaptiveRunner, Engine, ExperimentConfig, FaultPlan, PolicyKind, RunResult};
use redspot::market::ApiFaultPlan;
use redspot::trace::gen::GenConfig;
use redspot::trace::SimTime;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compare `result` against `tests/golden/<name>.json`, or rewrite the
/// golden file when `GOLDEN_REGEN=1` is set.
fn check(name: &str, result: &RunResult) {
    let json = serde_json::to_string_pretty(result).expect("RunResult serializes");
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); see module docs",
            path.display()
        )
    });
    if json != golden {
        // Decode both sides for a readable first-divergence report before
        // failing on the raw strings.
        let got: RunResult = serde_json::from_str(&json).unwrap();
        let want: RunResult = serde_json::from_str(&golden).unwrap();
        assert_eq!(got, want, "golden divergence in {name}");
        panic!("golden {name}: equal values but different serialization");
    }
}

/// The quickstart scenario: calm market, paper defaults, Periodic.
#[test]
fn golden_baseline_periodic() {
    let traces = GenConfig::low_volatility(42).generate();
    let cfg = ExperimentConfig::paper_default();
    let r = Engine::new(
        &traces,
        SimTime::from_hours(72),
        cfg,
        PolicyKind::Periodic.build(),
    )
    .run();
    check("baseline_periodic", &r);
}

/// Volatile market under a brutal spot-fault plan: exercises checkpoint
/// write failures, restore corruption, boot failures, and blackouts.
#[test]
fn golden_chaos_faults_periodic() {
    let traces = GenConfig::high_volatility(7).generate();
    let cfg = ExperimentConfig::paper_default()
        .with_slack_percent(20)
        .with_seed(9)
        .with_faults(FaultPlan::with_intensity(0.6));
    let r = Engine::new(
        &traces,
        SimTime::from_hours(48),
        cfg,
        PolicyKind::Periodic.build(),
    )
    .run();
    check("chaos_faults_periodic", &r);
}

/// Control-plane faults: retries, throttles, and breaker trips must keep
/// producing the identical `ApiStats` and event stream.
#[test]
fn golden_api_faults_markov_daly() {
    let traces = GenConfig::high_volatility(11).generate();
    let cfg = ExperimentConfig::paper_default()
        .with_seed(3)
        .with_api_faults(ApiFaultPlan::with_intensity(0.5));
    let r = Engine::new(
        &traces,
        SimTime::from_hours(48),
        cfg,
        PolicyKind::MarkovDaly.build(),
    )
    .run();
    check("api_faults_markov_daly", &r);
}

/// Combined spot + API faults on a single zone, the tightest RNG
/// interleaving the engine supports.
#[test]
fn golden_combined_faults_single_zone() {
    use redspot::trace::ZoneId;
    let traces = GenConfig::high_volatility(23).generate();
    let mut cfg = ExperimentConfig::paper_default()
        .with_slack_percent(35)
        .with_seed(17)
        .with_faults(FaultPlan::with_intensity(0.4))
        .with_api_faults(ApiFaultPlan::with_intensity(0.4));
    cfg.zones = vec![ZoneId(0)];
    let r = Engine::new(
        &traces,
        SimTime::from_hours(48),
        cfg,
        PolicyKind::Periodic.build(),
    )
    .run();
    check("combined_faults_single_zone", &r);
}

/// The Adaptive meta-policy, whose decision points depend on the exact
/// event cadence of the underlying engine.
#[test]
fn golden_adaptive_high_volatility() {
    let traces = GenConfig::high_volatility(5).generate();
    let cfg = ExperimentConfig::paper_default();
    let r = AdaptiveRunner::new(&traces, SimTime::from_hours(60), cfg).run();
    check("adaptive_high_volatility", &r);
}
