//! PR-9 pins: the ownership inversion (Arc-backed [`TraceHandle`]
//! instead of borrowed `&TraceSet`) makes every hosted state machine
//! `Send`, and the serve daemon built on top of it answers advise
//! queries bit-identically to a direct in-process decision session —
//! even under concurrent clients sharing one market's warm scan.

use redspot::core::serve::{Advice, Daemon, MarketSpec, Server};
use redspot::core::{AdaptiveRunner, DecisionSession, Engine, Era, MarketCtx, PermutationScan};
use redspot::trace::{Price, PriceSeries, SimDuration, SimTime, TraceHandle, TraceSet};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn assert_send<T: Send>() {}

/// The whole hosted surface must be `Send`: the daemon moves these
/// across threads (market mutexes, sentinel sweeps, reader threads).
/// Before the ownership inversion, the `&'t TraceSet` lifetime made
/// every one of these unmovable; this test is the compile-time pin
/// against regressing to borrowed trace state.
#[test]
fn hosted_state_machines_are_send() {
    assert_send::<Engine>();
    assert_send::<AdaptiveRunner>();
    assert_send::<DecisionSession>();
    assert_send::<PermutationScan>();
    assert_send::<MarketCtx>();
    assert_send::<Server>();
    assert_send::<TraceHandle>();
}

/// One line-JSON client over TCP.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Send one request line, return the reply line.
    fn roundtrip(&mut self, request: &str) -> String {
        writeln!(self.reader.get_mut(), "{request}").expect("send request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply.trim_end().to_string()
    }
}

/// The deterministic 2-zone price stream both the daemon and the offline
/// comparator see. Kept under the $0.81 bid so the sentinel stays quiet.
fn price_row(i: u64) -> (u64, u64) {
    (270 + (i * 37) % 300, 300 + (i * 53) % 400)
}

fn field<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
    serde::__find(map, key).unwrap_or_else(|| panic!("reply missing `{key}`"))
}

/// End-to-end bit-identity: a daemon fed a price stream over TCP answers
/// four *concurrent* advise clients with byte-identical lines, the first
/// query running the cold scan rebuild and the rest sharing the warm
/// incremental scan — and the answer equals, field for exact-f64 field,
/// what a direct [`AdaptiveRunner`] session derives from the same trace.
#[test]
fn served_advice_is_bit_identical_to_a_direct_session_under_concurrency() {
    const ROWS: u64 = 12 * 26; // 26 hours of 300 s samples
    const NOW: u64 = 90_000;
    const REMAINING_COMPUTE: u64 = 72_000;
    const REMAINING_TIME: u64 = 82_800;

    let daemon = Daemon::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = daemon.local_addr().expect("bound address");
    let daemon_thread = std::thread::spawn(move || daemon.run());

    // Feed the market over the wire.
    let mut feeder = Client::connect(addr);
    let opened = feeder.roundtrip(
        r#"{"req":"open","market":"m1","zones":2,"step":300,"start":0,"era":"classic","bid":810,"seed":0}"#,
    );
    assert!(opened.contains("\"ok\":true"), "{opened}");
    for i in 0..ROWS {
        let (a, b) = price_row(i);
        let acked = feeder.roundtrip(&format!(
            r#"{{"req":"ingest","market":"m1","at":{},"prices":[{a},{b}]}}"#,
            i * 300
        ));
        assert!(acked.contains("\"ok\":true"), "{acked}");
    }

    // Four clients race the identical advise query.
    let advise = format!(
        r#"{{"req":"advise","market":"m1","now":{NOW},"remaining_compute":{REMAINING_COMPUTE},"remaining_time":{REMAINING_TIME}}}"#
    );
    let replies: Vec<String> = (0..4)
        .map(|_| {
            let advise = advise.clone();
            std::thread::spawn(move || Client::connect(addr).roundtrip(&advise))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("advise client"))
        .collect();
    for reply in &replies[1..] {
        assert_eq!(reply, &replies[0], "served answers must be byte-identical");
    }
    assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);

    // One cold scan rebuild, three warm reuses — the queries shared the
    // same sealed state and still answered identically.
    let stats = feeder.roundtrip(r#"{"req":"stats","market":"m1"}"#);
    assert!(stats.contains("\"cold_builds\":1"), "{stats}");
    assert!(stats.contains("\"warm_advises\":3"), "{stats}");

    // Offline comparator: the same trace, decided directly.
    let spec = MarketSpec {
        market: "m1".into(),
        zones: 2,
        start: SimTime::ZERO,
        step: 300,
        era: Era::Classic,
        bid: Price::from_millis(810),
        seed: 0,
    };
    let cfg = spec.config();
    let (zone_a, zone_b): (Vec<Price>, Vec<Price>) = (0..ROWS)
        .map(price_row)
        .map(|(a, b)| (Price::from_millis(a), Price::from_millis(b)))
        .unzip();
    let handle = TraceHandle::new(TraceSet::new(vec![
        PriceSeries::with_step(SimTime::ZERO, 300, zone_a),
        PriceSeries::with_step(SimTime::ZERO, 300, zone_b),
    ]));
    let runner = AdaptiveRunner::new(handle, SimTime::ZERO, cfg.clone());
    let mut session = runner.session();
    let perm = session
        .decide(
            SimTime::from_secs(NOW),
            SimDuration::from_secs(REMAINING_COMPUTE),
            SimDuration::from_secs(REMAINING_TIME),
        )
        .expect("direct session finds a permutation");
    let want = Advice::derive(
        &perm,
        SimDuration::from_secs(REMAINING_COMPUTE),
        SimDuration::from_secs(REMAINING_TIME),
        &cfg,
    );

    // Field-for-field, exact. Floats compare bit-for-bit: the wire
    // rendering is shortest-round-trip, so nothing is lost in transit.
    let parsed: Value = serde_json::from_str(&replies[0]).expect("reply parses");
    let reply = parsed.as_map().expect("reply is an object");
    let advice = field(reply, "advice").as_map().expect("advice object");
    assert_eq!(field(advice, "bid"), &Value::UInt(want.bid_millis));
    assert_eq!(
        field(advice, "zones"),
        &Value::Seq(want.zones.iter().map(|&z| Value::UInt(z as u64)).collect())
    );
    assert_eq!(field(advice, "policy"), &Value::Str(want.policy.clone()));
    assert_eq!(
        field(advice, "predicted_cost_millis"),
        &Value::Float(want.predicted_cost_millis)
    );
    assert_eq!(
        field(advice, "od_fallback_millis"),
        &Value::Float(want.od_fallback_millis)
    );
    assert_eq!(
        field(advice, "forecast_on_demand"),
        &Value::Bool(want.forecast_on_demand)
    );

    let bye = feeder.roundtrip(r#"{"req":"shutdown"}"#);
    assert!(bye.contains("\"req\":\"shutdown\""), "{bye}");
    assert!(
        daemon_thread.join().expect("daemon thread"),
        "no request line failed, so the daemon exits clean"
    );
}
