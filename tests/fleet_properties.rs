//! Fleet property tests: the two invariants the fleet execution plane
//! stakes its design on.
//!
//! 1. **Unbounded-pool identity** — a fleet against an unbounded
//!    [`CapacityPool`] is bit-identical to running every job
//!    independently through [`run_spec`], at any thread count: the
//!    contention wrapper never rejects, adds no latency, draws no
//!    randomness.
//! 2. **Bounded-pool safety** — under arbitrary fleet mixes and
//!    arbitrary per-zone capacities, every job still meets its deadline
//!    (Algorithm 1's guarantee is per job, anchored on on-demand) and
//!    capacity is conserved: the pool never goes negative and every
//!    debited unit is credited back by the time the fleet finishes.

use proptest::prelude::*;
use redspot::core::{DegradePolicy, FaultPlan};
use redspot::exp::{run_spec, FleetJob, FleetRequest, RunSpec, Scheme};
use redspot::market::{ApiFaultPlan, CapacityPool};
use redspot::prelude::*;
use redspot::trace::gen::{GenConfig, ZoneRegime};
use std::sync::Arc;

/// An arbitrary (but bounded) market: arbitrary regime parameters per
/// zone, arbitrary seed.
fn arb_market() -> impl Strategy<Value = TraceSet> {
    (
        0u64..10_000,  // seed
        100u64..900,   // calm base
        900u64..4_000, // elevated base
        0.0f64..0.2,   // p_calm_to_elevated
        0.01f64..0.3,  // p_elevated_to_calm
        0.0f64..0.05,  // p_spike
    )
        .prop_map(|(seed, calm, elev, p_up, p_down, p_spike)| {
            let mk = |i: usize| ZoneRegime {
                calm_base: calm + 10 * i as u64,
                calm_jitter: calm / 8,
                p_move: 0.2,
                elevated_base: elev,
                elevated_jitter: elev / 8,
                p_calm_to_elevated: p_up,
                p_elevated_to_calm: p_down,
                p_spike,
                spike_range: (elev, elev * 3),
                spike_steps: (1, 12),
            };
            GenConfig {
                zones: (0..3).map(mk).collect(),
                duration: SimDuration::from_hours(24 * 5),
                start: SimTime::ZERO,
                seed,
                common_amplitude: 5,
            }
            .generate()
        })
}

/// One arbitrary fleet member: mixed schemes, slacks, workloads,
/// checkpoint-cost profiles, fault intensities, ladder settings and
/// staggered starts. Adaptive is excluded so the same mix is legal under
/// bounded pools.
fn arb_job() -> impl Strategy<Value = FleetJob> {
    (
        0usize..4,   // scheme selector
        0usize..3,   // zone for single-zone schemes
        15u64..50,   // slack percent
        4u64..9,     // work hours
        0u64..1_000, // seed
        0u64..12,    // start offset (hours past 40)
        0u32..4,     // flag bits: 1 = heavy checkpoints, 2 = ladder on
        0usize..3,   // fault intensity selector: 0.0 / 0.2 / 0.4
    )
        .prop_map(|(s, z, slack, work_h, seed, off, flags, fi)| {
            let all = vec![ZoneId(0), ZoneId(1), ZoneId(2)];
            let scheme = match s {
                0 => Scheme::Single {
                    kind: PolicyKind::Periodic,
                    zone: ZoneId(z),
                },
                1 => Scheme::Redundant {
                    kind: PolicyKind::Periodic,
                    zones: all,
                },
                2 => Scheme::Redundant {
                    kind: PolicyKind::MarkovDaly,
                    zones: all,
                },
                _ => Scheme::OnDemand,
            };
            let intensity = [0.0, 0.2, 0.4][fi];
            let mut cfg = ExperimentConfig::paper_default()
                .with_slack_percent(slack)
                .with_seed(seed)
                .with_faults(FaultPlan::with_intensity(intensity))
                .with_api_faults(ApiFaultPlan::with_intensity(intensity));
            if flags & 2 != 0 {
                cfg = cfg.with_degrade(DegradePolicy::standard());
            }
            cfg.app = AppSpec::new(SimDuration::from_hours(work_h));
            cfg.deadline = SimDuration::from_secs(cfg.app.work.secs() * (100 + slack) / 100);
            cfg.costs = if flags & 1 != 0 {
                CkptCosts::HIGH
            } else {
                CkptCosts::LOW
            };
            FleetJob {
                name: format!("job-s{seed}"),
                spec: RunSpec {
                    start: SimTime::from_hours(40 + off),
                    bid: Price::from_millis(810),
                    scheme,
                },
                cfg,
            }
        })
}

/// A fleet of 2–5 arbitrary jobs.
fn arb_fleet() -> impl Strategy<Value = Vec<FleetJob>> {
    prop::collection::vec(arb_job(), 2..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invariant 1: with an unbounded pool, the fleet plane IS the
    /// independent-runs plane — bit-identical results per job, at every
    /// thread count, and the pool's gating counters never move.
    #[test]
    fn unbounded_fleet_is_bit_identical_to_independent_runs(
        traces in arb_market(),
        jobs in arb_fleet(),
    ) {
        let mkt = redspot::core::MarketCtx::new(traces);
        let independent: Vec<RunResult> = jobs
            .iter()
            .map(|j| run_spec(&mkt, &j.spec, &j.cfg, redspot::core::NullRecorder).0)
            .collect();
        for threads in [1usize, 2, 3] {
            let fleet = FleetRequest::new(&mkt, &jobs, Arc::new(CapacityPool::unbounded()))
                .threads(threads)
                .execute()
                .expect("valid fleet");
            prop_assert_eq!(
                &fleet.results,
                &independent,
                "fleet diverged from independent runs at {} threads",
                threads
            );
            prop_assert_eq!(fleet.pool.debits, 0);
            prop_assert_eq!(fleet.pool.denials, 0);
            prop_assert!(fleet.pool_balanced);
        }
    }

    /// Invariant 2: under arbitrary per-zone capacities, every job meets
    /// its deadline, the pool conserves capacity (debits == credits,
    /// everything released), and the lock-step execution is
    /// deterministic and thread-count independent.
    #[test]
    fn bounded_fleet_meets_deadlines_and_conserves_capacity(
        traces in arb_market(),
        jobs in arb_fleet(),
        units in prop::collection::vec(0u64..3, 3),
    ) {
        let mkt = redspot::core::MarketCtx::new(traces);
        let run = |threads: usize| {
            let pool = Arc::new(CapacityPool::with_capacities(units.clone()));
            let outcome = FleetRequest::new(&mkt, &jobs, Arc::clone(&pool))
                .threads(threads)
                .execute()
                .expect("valid fleet");
            (outcome, pool)
        };
        let (outcome, pool) = run(1);
        for (job, r) in jobs.iter().zip(&outcome.results) {
            prop_assert!(
                r.met_deadline,
                "{} missed its deadline under contention (finished {})",
                job.name,
                r.finished_at
            );
            prop_assert_eq!(r.cost, r.spot_cost + r.od_cost + r.io_cost);
            prop_assert!(!r.used_on_demand || r.od_cost > Price::ZERO);
        }
        prop_assert!(pool.fully_released(), "capacity leaked: {:?}", pool.stats());
        let s = pool.stats();
        prop_assert_eq!(s.debits, s.credits, "unbalanced pool counters");

        // The bounded path ignores the thread knob (it must: lock-step
        // is the only order-deterministic schedule) — same results.
        let (again, _) = run(4);
        prop_assert_eq!(outcome.results, again.results);
    }
}

/// Starvation pin: zero capacity everywhere forces every engine job
/// through the full degradation ladder — shed to `min_zones`, defer
/// within guard slack, spill to on-demand — and the deadline still
/// holds, with no spot dollar billed (no request was ever fulfilled).
#[test]
fn zero_capacity_starvation_spills_every_engine_job_to_on_demand() {
    let traces = GenConfig::low_volatility(42).generate();
    let mkt = redspot::core::MarketCtx::new(traces);
    let jobs: Vec<FleetJob> = (0..3)
        .map(|i| {
            let mut cfg = ExperimentConfig::paper_default()
                .with_seed(i as u64)
                .with_degrade(DegradePolicy::standard());
            cfg.app = AppSpec::new(SimDuration::from_hours(6));
            cfg.deadline = SimDuration::from_hours(8);
            FleetJob {
                name: format!("starved-{i}"),
                spec: RunSpec {
                    start: SimTime::from_hours(48 + 2 * i as u64),
                    bid: Price::from_millis(810),
                    scheme: Scheme::Redundant {
                        kind: PolicyKind::Periodic,
                        zones: vec![ZoneId(0), ZoneId(1), ZoneId(2)],
                    },
                },
                cfg,
            }
        })
        .collect();
    let pool = Arc::new(CapacityPool::uniform(3, 0));
    let outcome = FleetRequest::new(&mkt, &jobs, Arc::clone(&pool))
        .metered(true)
        .execute()
        .expect("valid fleet");
    for r in &outcome.results {
        assert!(r.met_deadline, "starved job missed its deadline");
        assert!(r.used_on_demand, "nowhere to go but on-demand");
        assert_eq!(
            r.spot_cost,
            Price::ZERO,
            "billed for spot that was never granted"
        );
    }
    let m = outcome.metrics.expect("metered");
    assert!(m.zones_shed > 0, "rung 1 (shed) never fired");
    assert!(m.capacity_spills > 0, "rung 3 (spill) never fired");
    assert_eq!(pool.stats().debits, 0);
    assert!(pool.fully_released());
}
