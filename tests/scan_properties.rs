//! Bit-identity properties of the permutation scan.
//!
//! The scan ([`PermutationScan`]) is a pure optimisation: for any trace,
//! window (aligned or not, overrunning the trace or disjoint from it),
//! bid grid, and zone mask, it must produce *exactly* the integers and
//! floats of the naive per-permutation history walk — and a full adaptive
//! run driven by it must be byte-equal to one driven by the naive walk,
//! for any scan thread count, with or without the incremental window
//! cache.

use proptest::prelude::*;
use redspot::core::adaptive::forecast::{estimate, window_stats, Forecast};
use redspot::core::PermutationScan;
use redspot::prelude::*;
use redspot::trace::gen::{GenConfig, ZoneRegime};

/// Arbitrary aligned multi-zone traces: 1–3 zones, 8–300 samples, prices
/// drawn (via a per-case LCG, so lengths stay aligned across zones) from
/// a palette straddling the whole bid grid plus unaffordable spikes.
fn arb_traces() -> impl Strategy<Value = TraceSet> {
    (
        1usize..=3,
        8u64..300,
        0u64..1_000_000,
        prop_oneof![Just(0u64), Just(3_600), Just(450)],
    )
        .prop_map(|(n_zones, len, seed, start)| {
            const PALETTE: [u64; 8] = [150, 270, 470, 810, 1_070, 2_000, 3_070, 5_000];
            let mut state = seed.wrapping_mul(2).wrapping_add(1);
            let mut next = move || {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                state >> 33
            };
            TraceSet::new(
                (0..n_zones)
                    .map(|_| {
                        let prices = (0..len)
                            .map(|_| Price::from_millis(PALETTE[(next() % 8) as usize]))
                            .collect();
                        redspot::trace::PriceSeries::new(SimTime::from_secs(start), prices)
                    })
                    .collect(),
            )
        })
}

/// Arbitrary windows, deliberately including unaligned phases, windows
/// overrunning the trace end, and windows disjoint from the trace.
fn arb_window() -> impl Strategy<Value = Window> {
    (0u64..120_000, 1u64..100_000).prop_map(|(start, dur)| {
        Window::new(SimTime::from_secs(start), SimTime::from_secs(start + dur))
    })
}

/// A non-empty subset of the paper bid grid (plus the $0.81 sweet spot).
fn arb_grid() -> impl Strategy<Value = Vec<Price>> {
    (1u32..0xFFFF).prop_map(|mask| {
        let mut full = paper_bid_grid();
        full.push(Price::from_millis(810));
        let picked: Vec<Price> = full
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 16)) != 0)
            .map(|(_, &b)| b)
            .collect();
        if picked.is_empty() {
            vec![Price::from_millis(810)]
        } else {
            picked
        }
    })
}

fn forecast_bits(f: &Forecast) -> (u64, u64, u64) {
    (
        f.progress_rate.to_bits(),
        f.spend_rate.to_bits(),
        f.availability.to_bits(),
    )
}

/// All non-empty zone masks over `n` zones.
fn zone_masks(n: usize) -> Vec<Vec<bool>> {
    (1u32..(1 << n))
        .map(|bits| (0..n).map(|z| bits & (1 << z) != 0).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every (bid, zone mask, policy) permutation, the scan's integer
    /// window statistics and the resulting float forecast are bit-equal to
    /// the naive walk's — at 1 and 4 scan threads.
    #[test]
    fn scan_forecasts_are_bit_identical_to_naive(
        traces in arb_traces(),
        window in arb_window(),
        grid in arb_grid(),
    ) {
        let zones: Vec<ZoneId> = traces.zone_ids().collect();
        let scan1 = PermutationScan::build(&traces, &zones, &grid, window, 1);
        let scan4 = PermutationScan::build(&traces, &zones, &grid, window, 4);
        for &bid in &grid {
            let j = scan1.bid_index(bid);
            for mask in zone_masks(zones.len()) {
                let selected: Vec<ZoneId> = zones
                    .iter()
                    .zip(&mask)
                    .filter_map(|(&z, &on)| on.then_some(z))
                    .collect();
                let naive = window_stats(&traces, &selected, window, bid);
                prop_assert_eq!(scan1.stats(j, &mask), naive, "stats bid {} mask {:?}", bid, &mask);
                prop_assert_eq!(scan4.stats(j, &mask), naive, "threaded stats diverged");
                for kind in [
                    PolicyKind::Periodic,
                    PolicyKind::MarkovDaly,
                    PolicyKind::SpotOnCadence,
                    PolicyKind::RandomizedBid(0xB1D),
                ] {
                    let reference = estimate(&traces, &selected, window, bid, CkptCosts::LOW, kind);
                    let scanned = scan1.forecast(j, &mask, CkptCosts::LOW, kind);
                    prop_assert_eq!(
                        forecast_bits(&scanned),
                        forecast_bits(&reference),
                        "forecast bid {} mask {:?} kind {}", bid, &mask, kind
                    );
                }
            }
        }
    }

    /// Advancing one scan through a random walk of decision points gives
    /// the same structures as a cold build at every point — including
    /// misaligned hops that force the rebuild path and windows sliding off
    /// the trace end.
    #[test]
    fn incremental_advance_matches_cold_build(
        traces in arb_traces(),
        grid in arb_grid(),
        start in 0u64..50_000,
        deltas in prop::collection::vec(1u64..30_000, 2..10),
        history in prop_oneof![Just(21_600u64), Just(86_400), Just(12_345)],
    ) {
        let zones: Vec<ZoneId> = traces.zone_ids().collect();
        let mut now = SimTime::from_secs(start.max(1));
        let back = SimDuration::from_secs(history);
        // `now >= 1` and `history >= 1`, so `now - history` (saturating)
        // is always strictly before `now`.
        let mut scan = PermutationScan::build(
            &traces,
            &zones,
            &grid,
            Window::new(now.saturating_sub(back), now),
            1,
        );
        for &d in &deltas {
            now += SimDuration::from_secs(d);
            let window = Window::new(now.saturating_sub(back), now);
            scan.advance(&traces, window);
            let cold = PermutationScan::build(&traces, &zones, &grid, window, 1);
            prop_assert_eq!(scan.n_steps(), cold.n_steps());
            for &bid in &grid {
                let j = scan.bid_index(bid);
                for mask in zone_masks(zones.len()) {
                    prop_assert_eq!(scan.stats(j, &mask), cold.stats(j, &mask));
                }
                for n in 1..=zones.len() {
                    prop_assert_eq!(scan.top_zones(j, n), cold.top_zones(j, n));
                }
            }
        }
    }
}

/// Realistic markets for whole-run equality (mirrors the adaptive
/// property suite's generator, shortened).
fn arb_market() -> impl Strategy<Value = TraceSet> {
    (
        0u64..5_000,
        150u64..800,     // calm base
        1_000u64..3_000, // elevated base
        0.0f64..0.05,    // p_calm_to_elevated
        0.02f64..0.2,    // p_elevated_to_calm
        0.0f64..0.02,    // p_spike
    )
        .prop_map(|(seed, calm, elev, p_up, p_down, p_spike)| {
            let mk = |i: usize| ZoneRegime {
                calm_base: calm + 15 * i as u64,
                calm_jitter: calm / 10,
                p_move: 0.15,
                elevated_base: elev + 50 * i as u64,
                elevated_jitter: elev / 10,
                p_calm_to_elevated: p_up,
                p_elevated_to_calm: p_down,
                p_spike,
                spike_range: (2_000, 3_070),
                spike_steps: (2, 20),
            };
            GenConfig {
                zones: (0..3).map(mk).collect(),
                duration: SimDuration::from_hours(24 * 3),
                start: SimTime::ZERO,
                seed,
                common_amplitude: 6,
            }
            .generate()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A full adaptive experiment is byte-equal across the naive decision
    /// loop, the cached scan, and the scan at 4 threads.
    #[test]
    fn adaptive_runs_are_byte_equal_across_modes(
        traces in arb_market(),
        slack_pct in 10u64..60,
        seed in 0u64..100,
    ) {
        let mut cfg = ExperimentConfig::paper_default()
            .with_slack_percent(slack_pct)
            .with_seed(seed);
        cfg.app = AppSpec::new(SimDuration::from_hours(10));
        cfg.deadline = SimDuration::from_secs(cfg.app.work.secs() * (100 + slack_pct) / 100);
        let start = SimTime::from_hours(48);

        // Put all four scanable policies in the permutation grid — the
        // stochastic pair must not break scan/naive bit-equality either.
        let mode = |forecast, scan_threads| AdaptiveConfig {
            forecast,
            scan_threads,
            policy_kinds: vec![
                PolicyKind::Periodic,
                PolicyKind::MarkovDaly,
                PolicyKind::SpotOnCadence,
                PolicyKind::RandomizedBid(0xB1D),
            ],
            ..AdaptiveConfig::default()
        };
        let naive = AdaptiveRunner::new(&traces, start, cfg.clone())
            .with_config(mode(ForecastMode::Naive, 1))
            .run();
        let scanned = AdaptiveRunner::new(&traces, start, cfg.clone())
            .with_config(mode(ForecastMode::Scan, 1))
            .run();
        let threaded = AdaptiveRunner::new(&traces, start, cfg)
            .with_config(mode(ForecastMode::Scan, 4))
            .run();

        prop_assert_eq!(&naive, &scanned, "scan changed the run");
        prop_assert_eq!(&scanned, &threaded, "thread count changed the run");
        prop_assert!(naive.met_deadline);
    }
}
