//! Era property tests: the deadline guarantee is *era-independent*.
//!
//! The paper proves Algorithm 1's guarantee against the 2014 hourly spot
//! market. The [`Era::Modern`] rules replace every market assumption the
//! proof leaned on — hourly settlement becomes per-second accrual,
//! instant out-of-bid kills become capacity reclaims with a binding
//! two-minute notice, user bids disappear. These properties pin that the
//! guarantee survives the regime change under arbitrary markets,
//! arbitrary policies, and both fault planes, and that the notice
//! machinery obeys its own invariants (exactly two minutes of warning,
//! the reclaim always lands, classic never warns).

use proptest::prelude::*;
use redspot::core::{ApiFaultPlan, Engine, Era, Event, FaultPlan};
use redspot::prelude::*;
use redspot::trace::gen::{GenConfig, ZoneRegime};

/// An arbitrary (but bounded) market: arbitrary regime parameters per
/// zone, arbitrary seed.
fn arb_market() -> impl Strategy<Value = TraceSet> {
    (
        0u64..10_000,  // seed
        100u64..900,   // calm base
        900u64..4_000, // elevated base
        0.0f64..0.2,   // p_calm_to_elevated
        0.01f64..0.3,  // p_elevated_to_calm
        0.0f64..0.05,  // p_spike
    )
        .prop_map(|(seed, calm, elev, p_up, p_down, p_spike)| {
            let mk = |i: usize| ZoneRegime {
                calm_base: calm + 10 * i as u64,
                calm_jitter: calm / 8,
                p_move: 0.2,
                elevated_base: elev,
                elevated_jitter: elev / 8,
                p_calm_to_elevated: p_up,
                p_elevated_to_calm: p_down,
                p_spike,
                spike_range: (elev, elev * 3),
                spike_steps: (1, 12),
            };
            GenConfig {
                zones: (0..3).map(mk).collect(),
                duration: SimDuration::from_hours(24 * 5),
                start: SimTime::ZERO,
                seed,
                common_amplitude: 5,
            }
            .generate()
        })
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Periodic),
        Just(PolicyKind::MarkovDaly),
        Just(PolicyKind::RisingEdge),
        Just(PolicyKind::Threshold),
        Just(PolicyKind::SpotOnCadence),
        Just(PolicyKind::RandomizedBid(0xB1D)),
    ]
}

/// Walk the event log holding the modern market to its own contract:
/// every notice gives exactly the two-minute window, the noticed zone is
/// actually gone by `terminate_at`, and no second notice lands on a zone
/// already draining.
fn check_notice_invariants(events: &[Event]) {
    for (i, e) in events.iter().enumerate() {
        let Event::InterruptionNotice {
            at,
            zone,
            terminate_at,
        } = *e
        else {
            continue;
        };
        assert_eq!(
            terminate_at.since(at),
            SimDuration::from_secs(120),
            "notice window is not two minutes"
        );
        // Binding: the zone must stop (reclaim, user drain, blackout, or
        // a failed boot — any stop satisfies the notice) no later than
        // terminate_at.
        let stopped = events[i..].iter().any(|f| match f {
            Event::Terminated { at: t, zone: z, .. }
            | Event::ZoneBlackout { at: t, zone: z, .. }
            | Event::BootFailed { at: t, zone: z, .. } => {
                *z == zone && *t >= at && *t <= terminate_at
            }
            _ => false,
        });
        assert!(
            stopped,
            "zone {zone:?} noticed at {at} outlived its terminate_at {terminate_at}"
        );
        // No overlapping notice on the same zone inside the window.
        let overlapping = events[i + 1..].iter().any(|f| match f {
            Event::InterruptionNotice { at: t, zone: z, .. } => *z == zone && *t < terminate_at,
            _ => false,
        });
        assert!(!overlapping, "overlapping notices on {zone:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// THE guarantee, modern edition: any policy, any market, any slack —
    /// per-second billing and notice-driven reclaims never make a run
    /// late, and the notice machinery honours its contract.
    #[test]
    fn modern_era_always_meets_the_deadline(
        traces in arb_market(),
        kind in arb_policy(),
        bid_millis in 100u64..3_200,
        slack_pct in 10u64..60,
        work_h in 4u64..12,
        seed in 0u64..1_000,
    ) {
        let mut cfg = ExperimentConfig::paper_default()
            .with_bid(Price::from_millis(bid_millis))
            .with_seed(seed)
            .with_era(Era::Modern);
        cfg.app = AppSpec::new(SimDuration::from_hours(work_h));
        cfg.deadline = cfg.app.work + SimDuration::from_secs(cfg.app.work.secs() * slack_pct / 100);
        // The paper's t_c = 300 s exceeds the two-minute notice window;
        // keep it — the drain checkpoint must simply be skipped then, and
        // the deadline still has to hold from the last committed state.
        let start = SimTime::from_hours(48);
        let r = Engine::new(&traces, start, cfg.clone(), kind.build()).run();

        prop_assert!(r.met_deadline, "{kind:?} missed the deadline under modern rules");
        prop_assert_eq!(r.cost, r.spot_cost + r.od_cost);
        check_notice_invariants(&r.events);
    }

    /// The guarantee survives the modern market *and* both fault planes
    /// at once — infrastructure faults, a flaky control plane, and
    /// notice-window draining in the same runs.
    #[test]
    fn modern_era_survives_composed_chaos(
        traces in arb_market(),
        kind in arb_policy(),
        intensity in 0.0f64..0.8,
        seed in 0u64..500,
    ) {
        let mut cfg = ExperimentConfig::paper_default()
            .with_slack_percent(25)
            .with_seed(seed)
            .with_faults(FaultPlan::with_intensity(intensity))
            .with_api_faults(ApiFaultPlan::with_intensity(intensity))
            .with_era(Era::Modern);
        cfg.app = AppSpec::new(SimDuration::from_hours(8));
        cfg.deadline = SimDuration::from_hours(10);
        let r = Engine::new(&traces, SimTime::from_hours(48), cfg, kind.build()).run();
        prop_assert!(r.met_deadline, "{kind:?} missed the deadline under modern chaos");
        check_notice_invariants(&r.events);
    }

    /// A drainable notice window commits progress: with t_c inside the
    /// two-minute window, every noticed leader that had the checkpoint
    /// slot free gets a commit before the reclaim.
    #[test]
    fn modern_era_meets_deadline_with_drainable_checkpoints(
        traces in arb_market(),
        tc in 30u64..120,
        seed in 0u64..300,
    ) {
        let mut cfg = ExperimentConfig::paper_default()
            .with_slack_percent(20)
            .with_seed(seed)
            .with_era(Era::Modern);
        cfg.costs = CkptCosts::symmetric_secs(tc);
        cfg.app = AppSpec::new(SimDuration::from_hours(8));
        cfg.deadline = SimDuration::from_hours(10);
        let r = Engine::new(&traces, SimTime::from_hours(48), cfg, PolicyKind::Periodic.build()).run();
        prop_assert!(r.met_deadline);
        check_notice_invariants(&r.events);
    }

    /// The classic era never warns: the 2014 market kills out-of-bid
    /// instances instantly, so no run may ever record a notice.
    #[test]
    fn classic_era_never_issues_notices(
        traces in arb_market(),
        kind in arb_policy(),
        seed in 0u64..300,
    ) {
        let mut cfg = ExperimentConfig::paper_default().with_seed(seed);
        prop_assert_eq!(cfg.era, Era::Classic); // the default IS the paper
        cfg.app = AppSpec::new(SimDuration::from_hours(6));
        cfg.deadline = SimDuration::from_hours(8);
        let r = Engine::new(&traces, SimTime::from_hours(48), cfg, kind.build()).run();
        let notices = r.events.iter().filter(|e| matches!(e, Event::InterruptionNotice { .. })).count();
        prop_assert_eq!(notices, 0, "classic era issued an interruption notice");
    }

    /// The modern engine is a pure function of (traces, config, policy):
    /// reruns are bit-identical, notices included.
    #[test]
    fn modern_era_is_deterministic(traces in arb_market(), seed in 0u64..300) {
        let mut cfg = ExperimentConfig::paper_default().with_era(Era::Modern);
        cfg.seed = seed;
        cfg.app = AppSpec::new(SimDuration::from_hours(6));
        cfg.deadline = SimDuration::from_hours(8);
        let start = SimTime::from_hours(48);
        let a = Engine::new(&traces, start, cfg.clone(), PolicyKind::MarkovDaly.build()).run();
        let b = Engine::new(&traces, start, cfg, PolicyKind::MarkovDaly.build()).run();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn era_labels_round_trip() {
    for era in [Era::Classic, Era::Modern] {
        assert_eq!(Era::parse(era.label()).unwrap(), era);
    }
    assert_eq!(Era::parse("2014").unwrap(), Era::Classic);
    assert_eq!(Era::parse("2017").unwrap(), Era::Modern);
    assert!(Era::parse("hourly").is_err());
    assert_eq!(Era::default(), Era::Classic);
}

/// A config serialized before the era existed deserializes as Classic:
/// old artifacts and journals replay under the paper's rules.
#[test]
fn pre_era_configs_deserialize_as_classic() {
    let cfg = ExperimentConfig::paper_default();
    let mut json = serde_json::to_string(&cfg).unwrap();
    let era_field = format!("\"era\":{}", serde_json::to_string(&Era::Classic).unwrap());
    assert!(json.contains(&era_field), "no era field in {json}");
    json = json
        .replace(&format!("{era_field},"), "")
        .replace(&format!(",{era_field}"), "");
    assert!(!json.contains("\"era\""), "era field not stripped: {json}");
    let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.era, Era::Classic);
    assert_eq!(back, cfg);
}
