//! Cross-crate integration: the full pipeline from trace generation
//! through policy execution to figure-level aggregation.

use redspot::exp::experiments::{fig4, tables};
use redspot::exp::PaperSetup;
use redspot::prelude::*;
use redspot::trace::vol::Volatility;

#[test]
fn quickstart_pipeline_matches_docs() {
    // The exact flow from the README/quickstart must keep working.
    let traces = GenConfig::low_volatility(42).generate();
    let cfg = ExperimentConfig::paper_default();
    let start = SimTime::from_hours(72);
    let result = Engine::new(&traces, start, cfg, PolicyKind::Periodic.build()).run();
    assert!(result.met_deadline);
    assert!(result.cost_dollars() < 48.0);
}

#[test]
fn figure4_cell_preserves_paper_shape_low_volatility() {
    let setup = PaperSetup::quick(31);
    let cell = fig4::sweep_cell(&setup, Volatility::Low, 15, 300);
    let (label_s, best_s) = cell.best_single().expect("single-zone data");
    let (_, best_r) = cell.best_redundant().expect("redundancy data");
    let med = |xs: &[f64]| redspot::exp::report::median(xs);

    // Low volatility: the best single-zone policy is far below on-demand…
    assert!(med(&best_s) < 15.0, "{label_s} median {}", med(&best_s));
    // …and redundancy pays ~3x for nothing.
    assert!(med(&best_r) > med(&best_s) * 1.8);
}

#[test]
fn figure4_cell_preserves_paper_shape_high_volatility() {
    let setup = PaperSetup::quick(31);
    let cell = fig4::sweep_cell(&setup, Volatility::High, 15, 300);
    let (_, best_s) = cell.best_single().expect("single-zone data");
    let (_, best_r) = cell.best_redundant().expect("redundancy data");
    let med = |xs: &[f64]| redspot::exp::report::median(xs);

    // High volatility at low slack: redundancy wins (paper: by 23.9%).
    assert!(
        med(&best_r) < med(&best_s),
        "redundancy {} should beat single-zone {}",
        med(&best_r),
        med(&best_s)
    );
}

#[test]
fn table2_winners_match_paper_direction() {
    let setup = PaperSetup::quick(31);
    let t = tables::optimal_policies(&setup, 300);
    assert_eq!(t.cells.len(), 4);
    let cell = |vol, slack| {
        t.cells
            .iter()
            .find(|(v, s, _)| *v == vol && *s == slack)
            .map(|(_, _, w)| w)
            .expect("cell computed")
    };
    // Paper Table 2: low volatility → single-zone wins at both slacks;
    // high volatility, low slack → redundancy wins.
    assert!(!cell(Volatility::Low, 15).redundant);
    assert!(!cell(Volatility::Low, 50).redundant);
    assert!(cell(Volatility::High, 15).redundant);
}

#[test]
fn adaptive_never_exceeds_120pct_of_on_demand_across_year() {
    // The paper: "total cost never exceeds 20% above the on-demand cost
    // for our experiments involving 12-month data."
    let traces = redspot::trace::gen::year_history(5);
    for start_h in [60u64, 800, 2_000, 2_160 + 13 * 24 - 6, 4_000, 6_000] {
        let start = SimTime::from_hours(start_h);
        let cfg = ExperimentConfig::paper_default();
        let r = AdaptiveRunner::new(&traces, start, cfg).run();
        assert!(r.met_deadline, "missed deadline at {start_h}h");
        assert!(
            r.cost_dollars() <= 48.0 * 1.2 + 1e-9,
            "adaptive cost ${} above the bound at start {start_h}h",
            r.cost_dollars()
        );
    }
}

#[test]
fn redundancy_beats_single_zone_on_anticorrelated_outages() {
    // Two zones with disjoint outages: a single zone must roll back and
    // wait; the redundant pair never stops computing.
    use redspot::trace::gen::inject_spike;
    use redspot::trace::PriceSeries;

    let flat: Vec<Price> = vec![Price::from_millis(300); 60 * 12];
    let base = TraceSet::new(vec![
        PriceSeries::new(SimTime::ZERO, flat.clone()),
        PriceSeries::new(SimTime::ZERO, flat),
    ]);
    let spiked = inject_spike(
        &base,
        ZoneId(0),
        Window::new(SimTime::from_hours(5), SimTime::from_hours(9)),
        Price::from_dollars(5.0),
    );
    let traces = inject_spike(
        &spiked,
        ZoneId(1),
        Window::new(SimTime::from_hours(12), SimTime::from_hours(16)),
        Price::from_dollars(5.0),
    );

    let mut single = ExperimentConfig::paper_default().with_slack_percent(15);
    single.zones = vec![ZoneId(0)];
    let r_single = Engine::new(&traces, SimTime::ZERO, single, PolicyKind::Periodic.build()).run();

    let mut redundant = ExperimentConfig::paper_default().with_slack_percent(15);
    redundant.zones = vec![ZoneId(0), ZoneId(1)];
    let r_red = Engine::new(
        &traces,
        SimTime::ZERO,
        redundant,
        PolicyKind::Periodic.build(),
    )
    .run();

    assert!(r_single.met_deadline && r_red.met_deadline);
    // The single zone loses 8h to outages on a 3h-slack budget: it must
    // finish on-demand. The pair stays on spot throughout.
    assert!(r_single.used_on_demand);
    assert!(!r_red.used_on_demand);
}

#[test]
fn serde_round_trips_cross_crate() {
    // Traces and run results survive JSON round trips (the exp harness
    // and CLI rely on this).
    let traces = GenConfig::high_volatility(3).generate();
    let json = serde_json::to_string(&traces).unwrap();
    let back: TraceSet = serde_json::from_str(&json).unwrap();
    assert_eq!(traces, back);

    let mut cfg = ExperimentConfig::paper_default();
    cfg.zones = vec![ZoneId(0)];
    let r = Engine::new(
        &traces,
        SimTime::from_hours(48),
        cfg,
        PolicyKind::Periodic.build(),
    )
    .run();
    let json = serde_json::to_string(&r).unwrap();
    let back: redspot::core::RunResult = serde_json::from_str(&json).unwrap();
    assert_eq!(r, back);
}
