//! Observability-plane properties: swapping the engine's [`Recorder`]
//! sink must never change the simulation, only what gets observed.
//!
//! * Any market, any policy: `NullRecorder`, `MetricsRecorder`, and
//!   `JsonlRecorder` all produce a [`RunResult`] identical to the
//!   default `VecRecorder` run, modulo the retained event log.
//! * A `NullRecorder` run's event log is not merely empty — it never
//!   allocated.
//! * The JSONL stream round-trips: every line parses back into the
//!   exact [`Event`] the `VecRecorder` retained, in order.
//! * On fault-free runs the `MetricsRecorder`'s settled spot spend
//!   equals the engine's own `spot_cost` accounting.
//! * The golden stream `tests/golden/baseline_periodic.jsonl` pins the
//!   on-disk JSONL schema (regenerate with `GOLDEN_REGEN=1`, only when
//!   an intentional schema change lands).

use proptest::prelude::*;
use redspot::core::{
    Event, JsonlRecorder, MetricsRecorder, NullRecorder, Recorder, RunMetrics, VecRecorder,
};
use redspot::prelude::*;
use redspot::trace::gen::ZoneRegime;

/// An arbitrary bounded market (same shape as the chaos suite's).
fn arb_market() -> impl Strategy<Value = TraceSet> {
    (
        0u64..10_000,  // seed
        100u64..900,   // calm base
        900u64..4_000, // elevated base
        0.0f64..0.2,   // p_calm_to_elevated
        0.01f64..0.3,  // p_elevated_to_calm
        0.0f64..0.05,  // p_spike
    )
        .prop_map(|(seed, calm, elev, p_up, p_down, p_spike)| {
            let mk = |i: usize| ZoneRegime {
                calm_base: calm + 10 * i as u64,
                calm_jitter: calm / 8,
                p_move: 0.2,
                elevated_base: elev,
                elevated_jitter: elev / 8,
                p_calm_to_elevated: p_up,
                p_elevated_to_calm: p_down,
                p_spike,
                spike_range: (elev, elev * 3),
                spike_steps: (1, 12),
            };
            GenConfig {
                zones: (0..3).map(mk).collect(),
                duration: SimDuration::from_hours(24 * 5),
                start: SimTime::ZERO,
                seed,
                common_amplitude: 5,
            }
            .generate()
        })
}

/// Run one engine over `traces` with the given sink.
fn run_with<R: Recorder>(
    traces: &TraceSet,
    cfg: &ExperimentConfig,
    kind: PolicyKind,
    recorder: R,
) -> (RunResult, RunMetrics) {
    Engine::with_recorder(
        traces,
        SimTime::from_hours(48),
        cfg.clone(),
        kind.build(),
        recorder,
    )
    .run_full()
}

/// A `RunResult` with the event log removed, for modulo-events equality.
fn strip_events(mut r: RunResult) -> RunResult {
    r.events = Vec::new();
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// THE sink-invariance property: every shipped recorder yields the
    /// identical simulation, and what each one observes is consistent
    /// with the `VecRecorder` ground truth.
    #[test]
    fn run_result_is_sink_invariant(
        traces in arb_market(),
        kind in prop_oneof![Just(PolicyKind::Periodic), Just(PolicyKind::MarkovDaly)],
        slack_pct in 10u64..60,
        seed in 0u64..1_000,
    ) {
        let cfg = ExperimentConfig::paper_default()
            .with_slack_percent(slack_pct)
            .with_seed(seed);

        let (vec_run, vec_metrics) = run_with(&traces, &cfg, kind, VecRecorder::new());
        let bare = strip_events(vec_run.clone());

        // NullRecorder: identical, and the event log never allocated.
        let (null_run, null_metrics) = run_with(&traces, &cfg, kind, NullRecorder);
        prop_assert_eq!(null_run.events.capacity(), 0, "NullRecorder allocated an event log");
        prop_assert_eq!(&null_run, &bare);
        prop_assert_eq!(null_metrics, RunMetrics::default());

        // MetricsRecorder: identical modulo events; counters agree with
        // the retained log and with the engine's own accounting.
        let (metrics_run, m) = run_with(&traces, &cfg, kind, MetricsRecorder::new());
        prop_assert_eq!(&metrics_run, &bare);
        prop_assert_eq!(m.runs, 1);
        prop_assert_eq!(m.events_seen as usize, vec_run.events.len());
        prop_assert_eq!(m.restarts, vec_run.restarts as u64);
        prop_assert_eq!(m.completed, u64::from(vec_run.met_deadline));
        // Fault-free runs settle every instance through a Terminated
        // event, so the sink's view of spot spend matches the engine's.
        prop_assert_eq!(m.spot_charged, vec_run.spot_cost);

        // The VecRecorder's own metrics see the same stream.
        prop_assert_eq!(vec_metrics.events_recorded as usize, vec_run.events.len());

        // JsonlRecorder: identical modulo events, no write errors, and
        // the stream parses back into the exact retained log.
        let mut buf = Vec::new();
        let (jsonl_run, jm) = run_with(&traces, &cfg, kind, JsonlRecorder::new(&mut buf));
        prop_assert_eq!(&jsonl_run, &bare);
        prop_assert_eq!(jm.trace_write_errors, 0);
        let parsed: Vec<Event> = String::from_utf8(buf)
            .expect("JSONL stream is UTF-8")
            .lines()
            .map(|l| serde_json::from_str(l).expect("every line is one Event"))
            .collect();
        prop_assert_eq!(parsed, vec_run.events);
    }

    /// The `(A, B)` tee feeds both sides the full stream and merges
    /// their metrics, so tracing and counting compose in one run.
    #[test]
    fn tee_feeds_both_sinks(
        traces in arb_market(),
        seed in 0u64..1_000,
    ) {
        let cfg = ExperimentConfig::paper_default().with_seed(seed);
        let (vec_run, _) = run_with(&traces, &cfg, PolicyKind::Periodic, VecRecorder::new());

        let mut buf = Vec::new();
        let tee = (JsonlRecorder::new(&mut buf), MetricsRecorder::new());
        let (tee_run, m) = run_with(&traces, &cfg, PolicyKind::Periodic, tee);

        prop_assert_eq!(&tee_run, &strip_events(vec_run.clone()));
        prop_assert_eq!(m.events_seen as usize, vec_run.events.len());
        let lines = buf.split(|b| *b == b'\n').filter(|l| !l.is_empty()).count();
        prop_assert_eq!(lines, vec_run.events.len());
    }
}

/// The Adaptive meta-policy's quiet path: `run_quiet` (forecast
/// sub-simulations and the outer run all on `NullRecorder`) matches
/// `run` modulo the event log, without allocating one.
#[test]
fn adaptive_run_quiet_matches_run() {
    let traces = GenConfig::high_volatility(5).generate();
    let cfg = ExperimentConfig::paper_default();
    let start = SimTime::from_hours(60);
    let loud = AdaptiveRunner::new(&traces, start, cfg.clone()).run();
    let quiet = AdaptiveRunner::new(&traces, start, cfg).run_quiet();
    assert_eq!(
        quiet.events.capacity(),
        0,
        "run_quiet allocated an event log"
    );
    assert_eq!(quiet, strip_events(loud));
}

/// Pin the on-disk JSONL schema: the streamed trace of the quickstart
/// scenario must stay byte-identical across refactors.
#[test]
fn golden_jsonl_stream_baseline_periodic() {
    let traces = GenConfig::low_volatility(42).generate();
    let cfg = ExperimentConfig::paper_default();
    let mut buf = Vec::new();
    let (_, m) = Engine::with_recorder(
        &traces,
        SimTime::from_hours(72),
        cfg,
        PolicyKind::Periodic.build(),
        JsonlRecorder::new(&mut buf),
    )
    .run_full();
    assert_eq!(m.trace_write_errors, 0);
    let stream = String::from_utf8(buf).expect("JSONL stream is UTF-8");

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/baseline_periodic.jsonl");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &stream).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); see module docs",
            path.display()
        )
    });
    if stream != golden {
        // Readable first-divergence report before failing on raw bytes.
        for (i, (got, want)) in stream.lines().zip(golden.lines()).enumerate() {
            assert_eq!(got, want, "golden JSONL divergence at line {}", i + 1);
        }
        assert_eq!(
            stream.lines().count(),
            golden.lines().count(),
            "golden JSONL line-count divergence"
        );
        panic!("golden JSONL: equal lines but different raw bytes");
    }
}
