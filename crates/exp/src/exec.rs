//! The unified batch execution plane.
//!
//! One entry point — [`RunRequest`] — replaces the old `run_one*` /
//! `run_batch*` families. A request borrows an immutable [`MarketCtx`]
//! (trace set + sweep-shared scan seed + decision cache), a base config,
//! and a spec list, and executes the batch over a chunked crossbeam
//! worker pool.
//!
//! # Determinism
//!
//! Every spec owns a seed derived from its identity
//! (`scheme::mix_seed`), never from its worker or execution order, and
//! the decision cache only ever substitutes bit-identical tables, so
//! results are bit-identical for any thread count and any chunk size
//! (pinned by `tests/batch_properties.rs`). Chunks are grabbed from a
//! shared atomic cursor purely as a load-balancing granularity knob:
//! adaptive cells run orders of magnitude longer than on-demand
//! baselines, so small chunks keep workers busy while still amortising
//! cursor traffic.

use crate::scheme::{run_spec, RunSpec};
use parking_lot::Mutex;
use redspot_core::{
    CacheStats, ConfigError, ExperimentConfig, MarketCtx, MemoStats, MetricsRecorder, NullRecorder,
    RunMetrics, RunResult,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared progress observer for long sweeps.
#[derive(Debug, Default)]
pub struct Progress {
    done: AtomicUsize,
    total: AtomicUsize,
}

impl Progress {
    /// Completed job count.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Total job count of the active sweep.
    pub fn total(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }
}

/// Everything a finished batch hands back.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One result per spec, in spec order.
    pub results: Vec<RunResult>,
    /// Sweep-level metrics (all runs merged, order-independently), when
    /// the request was [`metered`](RunRequest::metered).
    pub metrics: Option<RunMetrics>,
    /// Decision-cache activity attributable to this batch: hit/miss
    /// deltas across the execution, plus the cache's current entry count.
    pub cache: CacheStats,
    /// Markov uptime-memo activity attributable to this batch, in the
    /// same delta form.
    pub uptime: MemoStats,
}

/// Builder for one batch execution: the single entry point the sweep
/// layer, the experiment modules, and the CLI all feed through.
///
/// ```
/// use redspot_core::{ExperimentConfig, MarketCtx};
/// use redspot_exp::exec::RunRequest;
/// use redspot_exp::scheme::{RunSpec, Scheme};
/// use redspot_trace::{gen::GenConfig, Price, SimTime};
///
/// let mkt = MarketCtx::for_sweep(GenConfig::low_volatility(7).generate());
/// let specs: Vec<RunSpec> = (0..4)
///     .map(|i| RunSpec {
///         start: SimTime::from_hours(60 + 6 * i),
///         bid: Price::from_millis(810),
///         scheme: Scheme::Adaptive,
///     })
///     .collect();
/// let out = RunRequest::new(&mkt, &ExperimentConfig::paper_default(), &specs)
///     .threads(2)
///     .execute()
///     .expect("valid config");
/// assert_eq!(out.results.len(), 4);
/// assert!(out.results.iter().all(|r| r.met_deadline));
/// ```
#[derive(Debug)]
pub struct RunRequest<'a> {
    mkt: &'a MarketCtx,
    base: &'a ExperimentConfig,
    specs: &'a [RunSpec],
    threads: usize,
    chunk_size: Option<usize>,
    metered: bool,
    progress: Option<&'a Progress>,
}

impl<'a> RunRequest<'a> {
    /// A batch over `specs` against `mkt`'s market, each run derived from
    /// `base`. Defaults: one worker per CPU, automatic chunk size, no
    /// metrics, no progress observer.
    pub fn new(mkt: &'a MarketCtx, base: &'a ExperimentConfig, specs: &'a [RunSpec]) -> Self {
        RunRequest {
            mkt,
            base,
            specs,
            threads: 0,
            chunk_size: None,
            metered: false,
            progress: None,
        }
    }

    /// Worker threads; `0` (the default) means one per available CPU.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Specs grabbed per cursor fetch. Defaults to an automatic size
    /// (≈ 4 chunks per worker, capped at 32). Results are bit-identical
    /// for any value ≥ 1; this only tunes load-balancing granularity.
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = Some(chunk_size.max(1));
        self
    }

    /// Run every cell with a [`MetricsRecorder`] sink and merge the
    /// per-run metrics into [`BatchOutcome::metrics`].
    pub fn metered(mut self, metered: bool) -> Self {
        self.metered = metered;
        self
    }

    /// Attach an external progress observer.
    pub fn with_progress(mut self, progress: &'a Progress) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Execute the batch. The base config is validated once up front —
    /// an invalid config fails here instead of panicking mid-sweep.
    pub fn execute(self) -> Result<BatchOutcome, ConfigError> {
        self.base.clone().build()?;
        let before = self.mkt.cache_stats();
        let uptime_before = self.mkt.uptime_stats();
        let n = self.specs.len();
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |t| t.get()),
            t => t,
        };
        if let Some(p) = self.progress {
            p.total.store(n, Ordering::Relaxed);
            p.done.store(0, Ordering::Relaxed);
        }

        let job = |i: usize| -> (RunResult, RunMetrics) {
            let spec = &self.specs[i];
            if self.metered {
                run_spec(self.mkt, spec, self.base, MetricsRecorder::new())
            } else {
                run_spec(self.mkt, spec, self.base, NullRecorder)
            }
        };
        let tick = || {
            if let Some(p) = self.progress {
                p.done.fetch_add(1, Ordering::Relaxed);
            }
        };

        let pairs: Vec<(RunResult, RunMetrics)> = if threads == 1 || n <= 1 {
            (0..n)
                .map(|i| {
                    let out = job(i);
                    tick();
                    out
                })
                .collect()
        } else {
            let chunk = self
                .chunk_size
                .unwrap_or_else(|| n.div_ceil(threads * 4).clamp(1, 32));
            let n_chunks = n.div_ceil(chunk);
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<(RunResult, RunMetrics)>>> =
                self.specs.iter().map(|_| Mutex::new(None)).collect();
            crossbeam::thread::scope(|scope| {
                for _ in 0..threads.min(n_chunks) {
                    scope.spawn(|_| loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * chunk;
                        let hi = ((c + 1) * chunk).min(n);
                        for (i, slot) in slots[lo..hi].iter().enumerate() {
                            let out = job(lo + i);
                            *slot.lock() = Some(out);
                            tick();
                        }
                    });
                }
            })
            .expect("batch worker panicked");
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every slot filled"))
                .collect()
        };

        let mut metrics = self.metered.then(RunMetrics::default);
        let mut results = Vec::with_capacity(n);
        for (r, m) in pairs {
            if let Some(agg) = metrics.as_mut() {
                agg.merge(&m);
            }
            results.push(r);
        }
        let after = self.mkt.cache_stats();
        let uptime_after = self.mkt.uptime_stats();
        Ok(BatchOutcome {
            results,
            metrics,
            cache: CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
                entries: after.entries,
            },
            uptime: MemoStats {
                hits: uptime_after.hits - uptime_before.hits,
                misses: uptime_after.misses - uptime_before.misses,
                entries: uptime_after.entries,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use redspot_core::PolicyKind;
    use redspot_trace::{Price, PriceSeries, SimTime, TraceSet, ZoneId};

    fn flat3(price: u64, hours: u64) -> TraceSet {
        let samples = vec![Price::from_millis(price); (hours * 12) as usize];
        TraceSet::new(
            (0..3)
                .map(|_| PriceSeries::new(SimTime::ZERO, samples.clone()))
                .collect(),
        )
    }

    fn mixed_specs(n: usize) -> Vec<RunSpec> {
        (0..n)
            .map(|i| RunSpec {
                start: SimTime::from_hours(40 + i as u64),
                bid: Price::from_millis(810),
                scheme: match i % 3 {
                    0 => Scheme::Single {
                        kind: PolicyKind::Periodic,
                        zone: ZoneId(i % 3),
                    },
                    1 => Scheme::Adaptive,
                    _ => Scheme::OnDemand,
                },
            })
            .collect()
    }

    #[test]
    fn results_identical_across_threads_and_chunks() {
        let mkt = MarketCtx::for_sweep(flat3(270, 120));
        let base = ExperimentConfig::paper_default();
        let specs = mixed_specs(13);
        let serial = RunRequest::new(&mkt, &base, &specs)
            .threads(1)
            .execute()
            .unwrap();
        for (threads, chunk) in [(4, 1), (4, 5), (2, 32), (3, 2)] {
            let parallel = RunRequest::new(&mkt, &base, &specs)
                .threads(threads)
                .chunk_size(chunk)
                .execute()
                .unwrap();
            assert_eq!(serial.results, parallel.results, "{threads}t/{chunk}c");
        }
    }

    #[test]
    fn progress_and_metrics_flow() {
        let mkt = MarketCtx::for_sweep(flat3(270, 120));
        let base = ExperimentConfig::paper_default();
        let specs = mixed_specs(6);
        let progress = Progress::default();
        let out = RunRequest::new(&mkt, &base, &specs)
            .threads(2)
            .metered(true)
            .with_progress(&progress)
            .execute()
            .unwrap();
        assert_eq!(progress.done(), 6);
        assert_eq!(progress.total(), 6);
        let m = out.metrics.expect("metered");
        assert_eq!(m.runs, 6);
        // Two adaptive cells ran: their decision points show up both in
        // the merged metrics and the batch's cache delta.
        assert_eq!(
            m.decision_cache_hits + m.decision_cache_misses,
            out.cache.hits + out.cache.misses
        );
        assert!(out.cache.misses > 0);
    }

    #[test]
    fn invalid_base_fails_upfront() {
        let mkt = MarketCtx::new(flat3(270, 60));
        let mut base = ExperimentConfig::paper_default();
        base.zones.clear();
        let err = RunRequest::new(&mkt, &base, &mixed_specs(3))
            .execute()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoZones);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mkt = MarketCtx::new(flat3(270, 60));
        let base = ExperimentConfig::paper_default();
        let out = RunRequest::new(&mkt, &base, &[]).execute().unwrap();
        assert!(out.results.is_empty());
        assert!(out.metrics.is_none());
    }
}
