//! # redspot-exp
//!
//! Experiment harness: the paper's evaluation setup (synthetic low/high
//! volatility windows, 80 overlapping experiment starts), run-spec sweeps
//! over bids × zones × policies, the unified batch execution plane
//! ([`exec::RunRequest`] over a shared [`redspot_core::MarketCtx`]), the
//! fleet execution plane ([`fleet::FleetRequest`] — N jobs contending
//! for a shared capacity pool), terminal rendering of boxplot figures
//! and markdown tables, and one module per paper figure/table under
//! [`experiments`].

#![warn(missing_docs)]

pub mod exec;
pub mod experiments;
pub mod fleet;
pub mod report;
pub mod results;
pub mod scheme;
pub mod setup;
pub mod shard;
pub mod svg;
pub mod sweep;
pub mod windows;

pub use exec::{BatchOutcome, Progress, RunRequest};
pub use fleet::{FleetError, FleetJob, FleetOutcome, FleetRequest};
pub use scheme::{run_spec, RunSpec, Scheme};
pub use setup::PaperSetup;
pub use shard::{
    fingerprint, merge::merge_dir, run::run_shard, shard_range, CellRecord, MergedSweep,
    ShardManifest,
};
