//! Parallel sweep execution.
//!
//! Experiment sweeps are embarrassingly parallel: every [`RunSpec`] is
//! independent and owns a seed derived from its identity, so results are
//! bit-identical for any thread count. Work is distributed over a
//! crossbeam-scoped worker pool through a shared atomic cursor (cheap
//! dynamic load balancing — adaptive runs take far longer than on-demand
//! baselines), and a shared progress counter lets callers render progress.

use crate::scheme::{run_one, run_one_metered, RunSpec};
use parking_lot::Mutex;
use redspot_core::{ExperimentConfig, RunMetrics, RunResult};
use redspot_trace::TraceSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared progress observer for long sweeps.
#[derive(Debug, Default)]
pub struct Progress {
    done: AtomicUsize,
    total: AtomicUsize,
}

impl Progress {
    /// Completed job count.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Total job count of the active sweep.
    pub fn total(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }
}

/// Run every spec and return results in spec order.
///
/// `threads = 0` means one worker per available CPU.
pub fn run_batch(
    traces: &TraceSet,
    specs: &[RunSpec],
    base: &ExperimentConfig,
    threads: usize,
) -> Vec<RunResult> {
    run_batch_with_progress(traces, specs, base, threads, &Progress::default())
}

/// [`run_batch`] with an external progress observer.
pub fn run_batch_with_progress(
    traces: &TraceSet,
    specs: &[RunSpec],
    base: &ExperimentConfig,
    threads: usize,
    progress: &Progress,
) -> Vec<RunResult> {
    pooled(specs, threads, progress, |i| {
        run_one(traces, &specs[i], base)
    })
}

/// [`run_batch`] with per-run [`MetricsRecorder`] sinks: returns results
/// in spec order plus every run's metrics merged into one sweep-level
/// [`RunMetrics`]. Merging is order-independent (all fields are additive),
/// so the aggregate is bit-identical for any thread count.
pub fn run_batch_metered(
    traces: &TraceSet,
    specs: &[RunSpec],
    base: &ExperimentConfig,
    threads: usize,
) -> (Vec<RunResult>, RunMetrics) {
    let pairs = pooled(specs, threads, &Progress::default(), |i| {
        run_one_metered(traces, &specs[i], base)
    });
    let mut merged = RunMetrics::default();
    let results = pairs
        .into_iter()
        .map(|(r, m)| {
            merged.merge(&m);
            r
        })
        .collect();
    (results, merged)
}

/// The shared worker pool: run `job(i)` for every spec index, returning
/// outputs in spec order. `threads = 0` means one worker per CPU.
fn pooled<T: Send>(
    specs: &[RunSpec],
    threads: usize,
    progress: &Progress,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    progress.total.store(specs.len(), Ordering::Relaxed);
    progress.done.store(0, Ordering::Relaxed);

    if specs.is_empty() {
        return Vec::new();
    }
    if threads == 1 || specs.len() == 1 {
        return (0..specs.len())
            .map(|i| {
                let r = job(i);
                progress.done.fetch_add(1, Ordering::Relaxed);
                r
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = specs.iter().map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(specs.len()) {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let result = job(i);
                *slots[i].lock() = Some(result);
                progress.done.fetch_add(1, Ordering::Relaxed);
            });
        }
    })
    .expect("sweep worker panicked");

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use redspot_core::PolicyKind;
    use redspot_trace::{Price, PriceSeries, SimTime, ZoneId};

    fn flat3(price: u64, hours: u64) -> TraceSet {
        let samples = vec![Price::from_millis(price); (hours * 12) as usize];
        TraceSet::new(
            (0..3)
                .map(|_| PriceSeries::new(SimTime::ZERO, samples.clone()))
                .collect(),
        )
    }

    fn specs(n: usize) -> Vec<RunSpec> {
        (0..n)
            .map(|i| RunSpec {
                start: SimTime::from_hours(50 + i as u64),
                bid: Price::from_millis(810),
                scheme: Scheme::Single {
                    kind: PolicyKind::Periodic,
                    zone: ZoneId(i % 3),
                },
            })
            .collect()
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let traces = flat3(270, 120);
        let base = redspot_core::ExperimentConfig::paper_default();
        let jobs = specs(12);
        let serial = run_batch(&traces, &jobs, &base, 1);
        let parallel = run_batch(&traces, &jobs, &base, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 12);
    }

    #[test]
    fn progress_reaches_total() {
        let traces = flat3(270, 120);
        let base = redspot_core::ExperimentConfig::paper_default();
        let jobs = specs(5);
        let progress = Progress::default();
        let out = run_batch_with_progress(&traces, &jobs, &base, 2, &progress);
        assert_eq!(out.len(), 5);
        assert_eq!(progress.done(), 5);
        assert_eq!(progress.total(), 5);
    }

    #[test]
    fn empty_batch_is_fine() {
        let traces = flat3(270, 60);
        let base = redspot_core::ExperimentConfig::paper_default();
        assert!(run_batch(&traces, &[], &base, 4).is_empty());
    }
}
