//! Deprecated batch entry points, kept as thin shims over the unified
//! execution plane in [`crate::exec`].
//!
//! Each shim wraps the trace set in a fresh one-shot [`MarketCtx`] per
//! call (cheap — series samples are `Arc`-backed), so results stay
//! bit-identical with the historical implementations while all actual
//! execution flows through [`RunRequest`]. New code should build one
//! `MarketCtx` per market and hold onto it: that is what makes the
//! decision cache and the sweep-shared scan seed pay off.

pub use crate::exec::Progress;
use crate::exec::RunRequest;
use crate::scheme::RunSpec;
use redspot_core::{ExperimentConfig, MarketCtx, RunMetrics, RunResult};
use redspot_trace::TraceSet;

/// Run every spec and return results in spec order.
///
/// `threads = 0` means one worker per available CPU.
#[deprecated(note = "build a MarketCtx and use exec::RunRequest")]
pub fn run_batch(
    traces: &TraceSet,
    specs: &[RunSpec],
    base: &ExperimentConfig,
    threads: usize,
) -> Vec<RunResult> {
    RunRequest::new(&MarketCtx::new(traces.clone()), base, specs)
        .threads(threads)
        .execute()
        .expect("invalid experiment configuration")
        .results
}

/// [`run_batch`] with an external progress observer.
#[deprecated(note = "build a MarketCtx and use exec::RunRequest::with_progress")]
pub fn run_batch_with_progress(
    traces: &TraceSet,
    specs: &[RunSpec],
    base: &ExperimentConfig,
    threads: usize,
    progress: &Progress,
) -> Vec<RunResult> {
    RunRequest::new(&MarketCtx::new(traces.clone()), base, specs)
        .threads(threads)
        .with_progress(progress)
        .execute()
        .expect("invalid experiment configuration")
        .results
}

/// [`run_batch`] with per-run metrics sinks: returns results in spec
/// order plus every run's metrics merged into one sweep-level
/// [`RunMetrics`].
#[deprecated(note = "build a MarketCtx and use exec::RunRequest::metered")]
pub fn run_batch_metered(
    traces: &TraceSet,
    specs: &[RunSpec],
    base: &ExperimentConfig,
    threads: usize,
) -> (Vec<RunResult>, RunMetrics) {
    let out = RunRequest::new(&MarketCtx::new(traces.clone()), base, specs)
        .threads(threads)
        .metered(true)
        .execute()
        .expect("invalid experiment configuration");
    (out.results, out.metrics.expect("metered batch"))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::scheme::{run_spec, Scheme};
    use redspot_core::{NullRecorder, PolicyKind};
    use redspot_trace::{Price, PriceSeries, SimTime, ZoneId};

    fn flat3(price: u64, hours: u64) -> TraceSet {
        let samples = vec![Price::from_millis(price); (hours * 12) as usize];
        TraceSet::new(
            (0..3)
                .map(|_| PriceSeries::new(SimTime::ZERO, samples.clone()))
                .collect(),
        )
    }

    fn specs(n: usize) -> Vec<RunSpec> {
        (0..n)
            .map(|i| RunSpec {
                start: SimTime::from_hours(50 + i as u64),
                bid: Price::from_millis(810),
                scheme: Scheme::Single {
                    kind: PolicyKind::Periodic,
                    zone: ZoneId(i % 3),
                },
            })
            .collect()
    }

    #[test]
    fn shims_match_the_unified_plane() {
        let traces = flat3(270, 120);
        let base = redspot_core::ExperimentConfig::paper_default();
        let jobs = specs(12);
        let shimmed = run_batch(&traces, &jobs, &base, 4);
        let mkt = MarketCtx::new(traces.clone());
        let direct: Vec<_> = jobs
            .iter()
            .map(|s| run_spec(&mkt, s, &base, NullRecorder).0)
            .collect();
        assert_eq!(shimmed, direct);
        let (metered, m) = run_batch_metered(&traces, &jobs, &base, 2);
        assert_eq!(metered, shimmed);
        assert_eq!(m.runs, 12);
    }

    #[test]
    fn progress_reaches_total() {
        let traces = flat3(270, 120);
        let base = redspot_core::ExperimentConfig::paper_default();
        let jobs = specs(5);
        let progress = Progress::default();
        let out = run_batch_with_progress(&traces, &jobs, &base, 2, &progress);
        assert_eq!(out.len(), 5);
        assert_eq!(progress.done(), 5);
        assert_eq!(progress.total(), 5);
    }

    #[test]
    fn empty_batch_is_fine() {
        let traces = flat3(270, 60);
        let base = redspot_core::ExperimentConfig::paper_default();
        assert!(run_batch(&traces, &[], &base, 4).is_empty());
    }
}
