//! SVG rendering of boxplot panels — publication-style output for the
//! regenerated figures, written without any plotting dependency.

use crate::report::LabeledBox;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Geometry of the rendered panel.
const ROW_H: f64 = 26.0;
const PLOT_W: f64 = 560.0;
const LABEL_W: f64 = 120.0;
const MARGIN: f64 = 18.0;
const TITLE_H: f64 = 30.0;
const AXIS_H: f64 = 34.0;

/// Render a boxplot panel as a standalone SVG document.
pub fn render_panel(title: &str, rows: &[LabeledBox], refs: &[(f64, &str)]) -> String {
    let hi_data = rows.iter().map(|r| r.plot.max).fold(0.0f64, f64::max);
    let hi_ref = refs.iter().map(|&(v, _)| v).fold(0.0f64, f64::max);
    let hi = (hi_data.max(hi_ref) * 1.05).max(1.0);
    let x = |v: f64| MARGIN + LABEL_W + (v / hi).clamp(0.0, 1.0) * PLOT_W;

    let height = TITLE_H + rows.len() as f64 * ROW_H + AXIS_H + MARGIN;
    let width = MARGIN * 2.0 + LABEL_W + PLOT_W + 60.0;
    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
    );
    let _ = write!(
        s,
        r#"<style>text{{font-family:Helvetica,Arial,sans-serif;font-size:12px}}.t{{font-size:14px;font-weight:bold}}.r{{stroke-dasharray:4 3}}</style>"#
    );
    let _ = write!(s, r#"<rect width="100%" height="100%" fill="white"/>"#);
    let _ = write!(
        s,
        r#"<text class="t" x="{MARGIN}" y="20">{}</text>"#,
        escape(title)
    );

    // Reference lines.
    let top = TITLE_H;
    let bottom = TITLE_H + rows.len() as f64 * ROW_H;
    for &(v, name) in refs {
        let rx = x(v);
        let _ = write!(
            s,
            r##"<line class="r" x1="{rx:.1}" y1="{top:.1}" x2="{rx:.1}" y2="{bottom:.1}" stroke="#b00" stroke-width="1"/>"##
        );
        let _ = write!(
            s,
            r##"<text x="{:.1}" y="{:.1}" fill="#b00" transform="rotate(-90 {:.1} {:.1})">{}</text>"##,
            rx + 4.0,
            top + 60.0,
            rx + 4.0,
            top + 60.0,
            escape(name)
        );
    }

    // Rows.
    for (i, row) in rows.iter().enumerate() {
        let cy = TITLE_H + i as f64 * ROW_H + ROW_H / 2.0;
        let b = &row.plot;
        let _ = write!(
            s,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
            MARGIN + LABEL_W - 8.0,
            cy + 4.0,
            escape(&row.label)
        );
        // Whiskers.
        let _ = write!(
            s,
            r#"<line x1="{:.1}" y1="{cy:.1}" x2="{:.1}" y2="{cy:.1}" stroke="black"/>"#,
            x(b.whisker_lo),
            x(b.whisker_hi)
        );
        for w in [b.whisker_lo, b.whisker_hi] {
            let _ = write!(
                s,
                r#"<line x1="{0:.1}" y1="{1:.1}" x2="{0:.1}" y2="{2:.1}" stroke="black"/>"#,
                x(w),
                cy - 6.0,
                cy + 6.0
            );
        }
        // Box.
        let _ = write!(
            s,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#9ecbff" stroke="black"/>"##,
            x(b.q1),
            cy - 8.0,
            (x(b.q3) - x(b.q1)).max(1.0),
            16.0
        );
        // Median.
        let _ = write!(
            s,
            r#"<line x1="{0:.1}" y1="{1:.1}" x2="{0:.1}" y2="{2:.1}" stroke="black" stroke-width="2"/>"#,
            x(b.median),
            cy - 8.0,
            cy + 8.0
        );
        // Extremes as dots (outliers beyond the whiskers).
        for v in [b.min, b.max] {
            if v < b.whisker_lo || v > b.whisker_hi {
                let _ = write!(
                    s,
                    r#"<circle cx="{:.1}" cy="{cy:.1}" r="2.5" fill="black"/>"#,
                    x(v)
                );
            }
        }
    }

    // Axis.
    let ay = bottom + 14.0;
    let _ = write!(
        s,
        r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
        x(0.0),
        bottom + 4.0,
        x(hi),
        bottom + 4.0
    );
    let ticks = 6usize;
    for t in 0..=ticks {
        let v = hi * t as f64 / ticks as f64;
        let _ = write!(
            s,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">${v:.0}</text>"#,
            x(v),
            ay + 12.0
        );
    }
    let _ = write!(
        s,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">cost per instance ($)</text>"#,
        x(hi / 2.0),
        ay + 28.0
    );
    s.push_str("</svg>");
    s
}

/// Write a panel to a file.
pub fn save_panel(
    path: &Path,
    title: &str,
    rows: &[LabeledBox],
    refs: &[(f64, &str)],
) -> io::Result<()> {
    std::fs::write(path, render_panel(title, rows, refs))
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<LabeledBox> {
        vec![
            LabeledBox::from_costs("P@$0.81", &[5.0, 6.0, 7.0, 9.0]).unwrap(),
            LabeledBox::from_costs("Adaptive", &[4.0, 5.0, 30.0]).unwrap(),
        ]
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = render_panel("Figure 4(a)", &rows(), &crate::report::REF_LINES);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("Figure 4(a)"));
        assert!(svg.contains("P@$0.81"));
        assert!(svg.contains("Adaptive"));
        // Two rows → two boxes; reference lines dashed.
        assert_eq!(svg.matches("<rect x=").count(), 2);
        assert_eq!(svg.matches(r#"class="r""#).count(), 2);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let r = vec![LabeledBox::from_costs("a<b&c>", &[1.0, 2.0]).unwrap()];
        let svg = render_panel("t", &r, &[]);
        assert!(svg.contains("a&lt;b&amp;c&gt;"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("redspot-svg-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panel.svg");
        save_panel(&path, "test", &rows(), &[(48.0, "on-demand")]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
    }
}
