//! Verified merge of `N` shard journals into one sweep artifact.
//!
//! [`merge_dir`] is the read side of the shard plane: it discovers every
//! `shard-K-of-N.journal` in a directory, re-validates everything the
//! write side promised (checksums, schema version, one fingerprint,
//! exact shard set `1..=N`, per-shard ranges matching the planner, full
//! cell coverage with no gaps or overlaps), and only then assembles a
//! [`MergedSweep`]. Any violation is a precise, actionable
//! [`MergeError`] — merge never emits a partial artifact.

use super::journal::{journal_file_name, scan_journal, JournalError, JournalScan};
use super::{shard_range, CellRecord, MergedSweep, ShardManifest, SCHEMA_VERSION};
use redspot_core::{RunMetrics, RunResult};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a set of shard journals cannot be merged.
#[derive(Debug)]
pub enum MergeError {
    /// A journal failed to open, scan, or checksum-verify.
    Journal(JournalError),
    /// The directory could not be listed.
    Io {
        /// The directory involved.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// The directory contains no `shard-*.journal` files at all.
    NoJournals {
        /// The directory searched.
        dir: PathBuf,
    },
    /// A journal was written under a different schema version.
    SchemaVersion {
        /// The offending journal.
        path: PathBuf,
        /// Version found in its manifest.
        found: u32,
        /// Version this binary understands.
        expected: u32,
    },
    /// Two journals carry different sweep fingerprints — they were
    /// produced by different command lines and must not be combined.
    FingerprintMismatch {
        /// The offending journal.
        path: PathBuf,
        /// Its fingerprint.
        found: String,
        /// The fingerprint of the first journal scanned.
        expected: String,
    },
    /// A journal's geometry (shard count, grid size, or cell range)
    /// disagrees with the others or with the deterministic planner.
    GridMismatch {
        /// The offending journal.
        path: PathBuf,
        /// What exactly disagrees.
        why: String,
    },
    /// Two journals claim the same shard index.
    DuplicateShard {
        /// The duplicated 1-based shard index.
        shard: usize,
        /// The second journal claiming it.
        path: PathBuf,
    },
    /// Not every shard `1..=N` has a journal present.
    MissingShards {
        /// The absent 1-based shard indices.
        missing: Vec<usize>,
        /// Total shard count `N`.
        n_shards: usize,
    },
    /// A shard's journal is present but does not cover all its cells —
    /// the shard was killed and never resumed to completion.
    MissingCells {
        /// The incomplete shard (1-based).
        shard: usize,
        /// Its journal.
        path: PathBuf,
        /// The uncovered cell indices (capped for display).
        missing: Vec<usize>,
        /// Whether the journal ends in a torn record (mid-write kill).
        torn_tail: bool,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Journal(e) => e.fmt(f),
            MergeError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            MergeError::NoJournals { dir } => {
                write!(f, "{}: no shard-*.journal files found", dir.display())
            }
            MergeError::SchemaVersion {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: journal schema version {found}, this binary understands {expected}",
                path.display()
            ),
            MergeError::FingerprintMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: sweep fingerprint {found} disagrees with {expected} — \
                 shards were produced by different sweep arguments",
                path.display()
            ),
            MergeError::GridMismatch { path, why } => {
                write!(f, "{}: grid mismatch: {why}", path.display())
            }
            MergeError::DuplicateShard { shard, path } => {
                write!(
                    f,
                    "{}: shard {shard} already provided by another journal",
                    path.display()
                )
            }
            MergeError::MissingShards { missing, n_shards } => {
                write!(f, "missing journals for shard(s) {missing:?} of {n_shards}")
            }
            MergeError::MissingCells {
                shard,
                path,
                missing,
                torn_tail,
            } => {
                write!(
                    f,
                    "{}: shard {shard} incomplete: {} cell(s) missing (first: {:?}){}",
                    path.display(),
                    missing.len(),
                    &missing[..missing.len().min(8)],
                    if *torn_tail {
                        " — journal ends in a torn record; resume this shard to completion"
                    } else {
                        " — resume this shard to completion"
                    }
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl From<JournalError> for MergeError {
    fn from(e: JournalError) -> MergeError {
        MergeError::Journal(e)
    }
}

/// What a successful merge verified, for human-readable reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// Shard count `N`.
    pub n_shards: usize,
    /// Total cells merged.
    pub n_cells: usize,
    /// Total checksummed records read (cells + manifests).
    pub records_verified: usize,
    /// The journal files consumed, in shard order.
    pub files: Vec<PathBuf>,
}

/// Discover, verify, and merge every shard journal in `dir`.
pub fn merge_dir(dir: &Path) -> Result<(MergedSweep, MergeReport), MergeError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| MergeError::Io {
            path: dir.to_path_buf(),
            err: e,
        })?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".journal"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(MergeError::NoJournals {
            dir: dir.to_path_buf(),
        });
    }
    let scans: Vec<(PathBuf, JournalScan)> = paths
        .into_iter()
        .map(|p| scan_journal(&p).map(|s| (p, s)))
        .collect::<Result<_, _>>()?;
    merge_scans(scans)
}

/// Merge already-scanned journals (shared by `merge_dir` and tests).
pub fn merge_scans(
    scans: Vec<(PathBuf, JournalScan)>,
) -> Result<(MergedSweep, MergeReport), MergeError> {
    let mut reference: Option<ShardManifest> = None;
    let mut shards: BTreeMap<usize, (PathBuf, JournalScan)> = BTreeMap::new();
    for (path, scan) in scans {
        let manifest = scan
            .manifest
            .clone()
            .ok_or_else(|| JournalError::MissingManifest { path: path.clone() })?;
        if manifest.schema_version != SCHEMA_VERSION {
            return Err(MergeError::SchemaVersion {
                path,
                found: manifest.schema_version,
                expected: SCHEMA_VERSION,
            });
        }
        if let Some(reference) = &reference {
            if manifest.fingerprint != reference.fingerprint {
                return Err(MergeError::FingerprintMismatch {
                    path,
                    found: manifest.fingerprint,
                    expected: reference.fingerprint.clone(),
                });
            }
            if manifest.n_shards != reference.n_shards || manifest.n_cells != reference.n_cells {
                return Err(MergeError::GridMismatch {
                    path,
                    why: format!(
                        "split {} ways over {} cells vs {} ways over {} cells",
                        manifest.n_shards, manifest.n_cells, reference.n_shards, reference.n_cells
                    ),
                });
            }
        } else {
            reference = Some(manifest.clone());
        }
        let planned = shard_range(manifest.n_cells, manifest.shard, manifest.n_shards);
        if manifest.cells() != planned {
            return Err(MergeError::GridMismatch {
                path,
                why: format!(
                    "shard {} claims cells {}..{} but the planner assigns {}..{}",
                    manifest.shard, manifest.cell_lo, manifest.cell_hi, planned.start, planned.end
                ),
            });
        }
        let shard = manifest.shard;
        if shards.insert(shard, (path.clone(), scan)).is_some() {
            return Err(MergeError::DuplicateShard { shard, path });
        }
    }
    let reference = reference.expect("at least one scan");
    let missing: Vec<usize> = (1..=reference.n_shards)
        .filter(|k| !shards.contains_key(k))
        .collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingShards {
            missing,
            n_shards: reference.n_shards,
        });
    }
    // Every shard present with planner-exact ranges, and scan_journal
    // already rejected out-of-range and duplicate cells per file — so the
    // only remaining coverage failure is an incomplete (killed, not yet
    // resumed) shard, and cross-shard overlap is impossible.
    let mut records_verified = 0usize;
    let mut cells: BTreeMap<usize, CellRecord> = BTreeMap::new();
    let mut files = Vec::with_capacity(shards.len());
    for (shard, (path, scan)) in &shards {
        let manifest = scan.manifest.as_ref().expect("verified above");
        let completed = scan.completed();
        let missing: Vec<usize> = manifest
            .cells()
            .filter(|c| !completed.contains(c))
            .collect();
        if !missing.is_empty() {
            return Err(MergeError::MissingCells {
                shard: *shard,
                path: path.clone(),
                missing,
                torn_tail: scan.torn_tail,
            });
        }
        records_verified += scan.records.len() + 1; // + manifest line
        files.push(path.clone());
        for rec in &scan.records {
            cells.insert(rec.cell, rec.clone());
        }
    }
    // Fold in cell order — RunMetrics merge is order-independent, but a
    // canonical order keeps the artifact trivially reproducible.
    let mut metrics = RunMetrics::default();
    let results: Vec<RunResult> = cells
        .into_values()
        .map(|rec| {
            metrics.merge(&rec.metrics);
            rec.result
        })
        .collect();
    let merged = MergedSweep::from_run(reference.fingerprint.clone(), results, metrics);
    let report = MergeReport {
        n_shards: reference.n_shards,
        n_cells: merged.n_cells,
        records_verified,
        files,
    };
    Ok((merged, report))
}

/// Expected journal path for shard `K/N` under `dir` (for diagnostics).
pub fn journal_path(dir: &Path, shard: usize, n_shards: usize) -> PathBuf {
    dir.join(journal_file_name(shard, n_shards))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::journal::ShardJournal;
    use redspot_trace::{Price, SimTime};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("redspot-merge-test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(cell: usize) -> CellRecord {
        CellRecord {
            cell,
            result: RunResult {
                cost: Price::from_millis(500 + cell as u64),
                spot_cost: Price::from_millis(500 + cell as u64),
                od_cost: Price::ZERO,
                io_cost: Price::ZERO,
                finished_at: SimTime::from_hours(18),
                met_deadline: true,
                checkpoints: 2,
                restarts: 0,
                out_of_bid_terminations: 0,
                used_on_demand: false,
                api: Default::default(),
                events: vec![],
            },
            metrics: RunMetrics {
                runs: 1,
                ..RunMetrics::default()
            },
        }
    }

    fn write_shard(dir: &Path, shard: usize, n_shards: usize, n_cells: usize, fp: &str) {
        let m = ShardManifest::plan(n_cells, shard, n_shards, fp.into()).unwrap();
        let (mut j, _) = ShardJournal::open(dir, &m, 4).unwrap();
        for cell in m.cells() {
            j.append_cell(&record(cell)).unwrap();
        }
        j.finish().unwrap();
    }

    #[test]
    fn merges_complete_shards_in_cell_order() {
        let dir = tmp_dir("complete");
        write_shard(&dir, 2, 3, 7, "aaaaaaaaaaaaaaaa");
        write_shard(&dir, 1, 3, 7, "aaaaaaaaaaaaaaaa");
        write_shard(&dir, 3, 3, 7, "aaaaaaaaaaaaaaaa");
        let (merged, report) = merge_dir(&dir).unwrap();
        assert_eq!(merged.n_cells, 7);
        assert_eq!(merged.results.len(), 7);
        assert_eq!(merged.metrics.runs, 7);
        for (i, r) in merged.results.iter().enumerate() {
            assert_eq!(
                r.cost,
                Price::from_millis(500 + i as u64),
                "cell {i} out of order"
            );
        }
        assert_eq!(report.n_shards, 3);
        assert_eq!(report.records_verified, 7 + 3);
    }

    #[test]
    fn missing_shard_is_reported_by_index() {
        let dir = tmp_dir("missing-shard");
        write_shard(&dir, 1, 3, 6, "aaaaaaaaaaaaaaaa");
        write_shard(&dir, 3, 3, 6, "aaaaaaaaaaaaaaaa");
        let err = merge_dir(&dir).unwrap_err();
        match err {
            MergeError::MissingShards { missing, n_shards } => {
                assert_eq!(missing, vec![2]);
                assert_eq!(n_shards, 3);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn incomplete_shard_is_reported_with_missing_cells() {
        let dir = tmp_dir("incomplete");
        write_shard(&dir, 1, 2, 4, "aaaaaaaaaaaaaaaa");
        // Shard 2 journals only one of its two cells.
        let m = ShardManifest::plan(4, 2, 2, "aaaaaaaaaaaaaaaa".into()).unwrap();
        let (mut j, _) = ShardJournal::open(&dir, &m, 4).unwrap();
        j.append_cell(&record(2)).unwrap();
        j.finish().unwrap();
        let err = merge_dir(&dir).unwrap_err();
        match err {
            MergeError::MissingCells { shard, missing, .. } => {
                assert_eq!(shard, 2);
                assert_eq!(missing, vec![3]);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn fingerprint_disagreement_is_refused() {
        let dir = tmp_dir("fp-mismatch");
        write_shard(&dir, 1, 2, 4, "aaaaaaaaaaaaaaaa");
        write_shard(&dir, 2, 2, 4, "bbbbbbbbbbbbbbbb");
        let err = merge_dir(&dir).unwrap_err();
        assert!(
            matches!(err, MergeError::FingerprintMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn schema_version_is_checked() {
        let dir = tmp_dir("schema");
        let mut m = ShardManifest::plan(2, 1, 1, "aaaaaaaaaaaaaaaa".into()).unwrap();
        m.schema_version = SCHEMA_VERSION + 1;
        // Write the bad-version journal by hand (open() would also accept
        // it here since it only compares against the expected manifest).
        let payload = serde_json::to_string(&crate::shard::JournalLine::Manifest(m)).unwrap();
        let path = journal_path(&dir, 1, 1);
        std::fs::write(&path, redspot_core::telemetry::journal::frame(&payload)).unwrap();
        let err = merge_dir(&dir).unwrap_err();
        assert!(
            matches!(err, MergeError::SchemaVersion { found, .. } if found == SCHEMA_VERSION + 1),
            "{err}"
        );
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = tmp_dir("empty");
        assert!(matches!(
            merge_dir(&dir).unwrap_err(),
            MergeError::NoJournals { .. }
        ));
    }

    #[test]
    fn duplicate_shard_under_different_names_is_refused() {
        let dir = tmp_dir("dup");
        write_shard(&dir, 1, 2, 4, "aaaaaaaaaaaaaaaa");
        write_shard(&dir, 2, 2, 4, "aaaaaaaaaaaaaaaa");
        // A stray copy of shard 1 under another matching file name.
        std::fs::copy(
            journal_path(&dir, 1, 2),
            dir.join("shard-1-of-2-copy.journal"),
        )
        .unwrap();
        let err = merge_dir(&dir).unwrap_err();
        assert!(
            matches!(err, MergeError::DuplicateShard { shard: 1, .. }),
            "{err}"
        );
    }
}
