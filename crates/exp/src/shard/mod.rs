//! The crash-safe sharded sweep plane.
//!
//! A sweep grid is a flat, canonically-ordered list of [`RunSpec`] cells.
//! This module splits that grid into `N` deterministic shards
//! ([`shard_range`] — a pure function of `(n_cells, K, N)`), journals
//! every completed cell to a checksummed write-ahead journal
//! ([`journal::ShardJournal`]) so a killed shard resumes instead of
//! restarting, and merges `N` shard journals back into one verified
//! artifact ([`merge::merge_dir`]).
//!
//! Three facts make the merged artifact *byte-identical* to an
//! uninterrupted single-process sweep:
//!
//! 1. every cell's result is a pure function of `(market, spec, base)` —
//!    the batch plane's determinism contract (`tests/batch_properties.rs`);
//! 2. the shard planner is a partition: every cell lands in exactly one
//!    shard (`tests/shard_properties.rs`);
//! 3. [`RunMetrics`] merge is field-wise additive over integers, hence
//!    order-independent (DESIGN.md §12) — merging per-cell metrics in
//!    cell order, journal order, or shard order yields the same value.

pub mod journal;
pub mod merge;
pub mod run;

use crate::scheme::RunSpec;
use redspot_core::telemetry::journal::fnv1a;
use redspot_core::{ExperimentConfig, RunMetrics, RunResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Version of the journal record schema. Bump on any incompatible change
/// to [`ShardManifest`], [`CellRecord`], or the line framing; `merge`
/// refuses journals whose version disagrees with the binary's.
pub const SCHEMA_VERSION: u32 = 1;

/// Why a shard plan is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// `--shard K/N` with `K` outside `1..=N`.
    ShardOutOfRange {
        /// The requested shard (1-based).
        shard: usize,
        /// The shard count.
        n_shards: usize,
    },
    /// `N = 0` shards.
    NoShards,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ShardOutOfRange { shard, n_shards } => {
                write!(f, "shard {shard} outside 1..={n_shards}")
            }
            ShardError::NoShards => write!(f, "shard count must be at least 1"),
        }
    }
}

impl std::error::Error for ShardError {}

/// The cells shard `shard` (1-based) owns out of a `n_cells`-cell grid
/// split `n_shards` ways: a contiguous, balanced range. Pure and total
/// for `1 ≤ shard ≤ n_shards`: the `n_shards` ranges partition
/// `0..n_cells` (every cell in exactly one shard, sizes differing by at
/// most one), pinned by `tests/shard_properties.rs`.
pub fn shard_range(n_cells: usize, shard: usize, n_shards: usize) -> Range<usize> {
    assert!(shard >= 1 && shard <= n_shards, "shard outside 1..=N");
    let q = n_cells / n_shards;
    let r = n_cells % n_shards;
    let i = shard - 1;
    let lo = i * q + i.min(r);
    let hi = lo + q + usize::from(i < r);
    lo..hi
}

/// Fingerprint of a sweep's full identity: the base config plus every
/// cell spec, hashed over their canonical JSON. Two invocations agree on
/// the fingerprint iff they would run the same grid, so `merge` can
/// refuse to combine shards produced by diverging command lines.
pub fn fingerprint(base: &ExperimentConfig, specs: &[RunSpec]) -> String {
    let cfg = serde_json::to_string(base).expect("config serializes");
    let cells = serde_json::to_string(specs).expect("specs serialize");
    let mut h = fnv1a(cfg.as_bytes());
    // Chain rather than concatenate: no allocation of a combined buffer.
    h ^= fnv1a(cells.as_bytes());
    h = h.wrapping_mul(0x1000_0000_01b3);
    format!("{h:016x}")
}

/// First line of every shard journal: which slice of which sweep this
/// file is, under which schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Journal schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// This shard's 1-based index `K`.
    pub shard: usize,
    /// Total shard count `N`.
    pub n_shards: usize,
    /// Total cells in the full sweep grid.
    pub n_cells: usize,
    /// First cell this shard owns (inclusive).
    pub cell_lo: usize,
    /// One past the last cell this shard owns.
    pub cell_hi: usize,
    /// Sweep identity fingerprint ([`fingerprint`]).
    pub fingerprint: String,
}

impl ShardManifest {
    /// Build the manifest for shard `shard`/`n_shards` of an
    /// `n_cells`-cell grid with the given fingerprint.
    pub fn plan(
        n_cells: usize,
        shard: usize,
        n_shards: usize,
        fingerprint: String,
    ) -> Result<ShardManifest, ShardError> {
        if n_shards == 0 {
            return Err(ShardError::NoShards);
        }
        if shard < 1 || shard > n_shards {
            return Err(ShardError::ShardOutOfRange { shard, n_shards });
        }
        let range = shard_range(n_cells, shard, n_shards);
        Ok(ShardManifest {
            schema_version: SCHEMA_VERSION,
            shard,
            n_shards,
            n_cells,
            cell_lo: range.start,
            cell_hi: range.end,
            fingerprint,
        })
    }

    /// The cells this shard owns.
    pub fn cells(&self) -> Range<usize> {
        self.cell_lo..self.cell_hi
    }
}

/// One durably-completed cell: the journal's write-ahead unit. Appended
/// only after the cell's simulation finished, so its presence (with a
/// valid checksum) certifies the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Flat cell index in the sweep grid.
    pub cell: usize,
    /// The cell's outcome.
    pub result: RunResult,
    /// The cell's folded telemetry (merged order-independently at merge
    /// time).
    pub metrics: RunMetrics,
}

/// One journal line: a manifest (first line) or a completed cell.
// Variant sizes are lopsided (a `CellRecord` dwarfs the manifest), but
// the enum only exists transiently while one line is encoded or
// decoded — never in bulk — so boxing would cost more than it saves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalLine {
    /// The journal's identity header.
    Manifest(ShardManifest),
    /// A durably-completed cell.
    Cell(CellRecord),
}

/// The verified, merged output of a sweep: what `redspot merge` emits
/// and what an uninterrupted single-process `redspot sweep --out`
/// writes. Byte-identical between the two paths by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedSweep {
    /// Journal schema version the artifact was produced under.
    pub schema_version: u32,
    /// Sweep identity fingerprint.
    pub fingerprint: String,
    /// Total cells.
    pub n_cells: usize,
    /// One result per cell, in cell order.
    pub results: Vec<RunResult>,
    /// All cells' telemetry, merged.
    pub metrics: RunMetrics,
}

impl MergedSweep {
    /// Assemble the artifact from an in-order result list and per-cell
    /// metrics (the single-process path).
    pub fn from_run(
        fingerprint: String,
        results: Vec<RunResult>,
        metrics: RunMetrics,
    ) -> MergedSweep {
        MergedSweep {
            schema_version: SCHEMA_VERSION,
            fingerprint,
            n_cells: results.len(),
            results,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use redspot_trace::{Price, SimTime};

    #[test]
    fn ranges_partition_small_grids() {
        for (n_cells, n_shards) in [(0, 1), (1, 1), (5, 2), (7, 3), (9, 4), (3, 5)] {
            let mut seen = Vec::new();
            for k in 1..=n_shards {
                seen.extend(shard_range(n_cells, k, n_shards));
            }
            assert_eq!(
                seen,
                (0..n_cells).collect::<Vec<_>>(),
                "{n_cells}/{n_shards}"
            );
        }
    }

    #[test]
    fn ranges_are_balanced() {
        for k in 1..=4 {
            let len = shard_range(10, k, 4).len();
            assert!(len == 2 || len == 3, "shard {k} got {len} cells");
        }
    }

    #[test]
    fn plan_validates_k_of_n() {
        assert!(ShardManifest::plan(10, 0, 4, String::new()).is_err());
        assert!(ShardManifest::plan(10, 5, 4, String::new()).is_err());
        assert!(ShardManifest::plan(10, 1, 0, String::new()).is_err());
        let m = ShardManifest::plan(10, 2, 4, "f".into()).unwrap();
        assert_eq!(m.cells(), 3..6);
        assert_eq!(m.schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn fingerprint_distinguishes_grids() {
        let base = ExperimentConfig::paper_default();
        let spec = |h: u64| RunSpec {
            start: SimTime::from_hours(h),
            bid: Price::from_millis(810),
            scheme: Scheme::Adaptive,
        };
        let a = fingerprint(&base, &[spec(50), spec(60)]);
        let b = fingerprint(&base, &[spec(50), spec(61)]);
        let c = fingerprint(&base.clone().with_seed(7), &[spec(50), spec(60)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fingerprint(&base, &[spec(50), spec(60)]));
        assert_eq!(a.len(), 16);
    }
}
