//! The shard write-ahead journal: append-only, checksummed, resumable.
//!
//! File layout (one file per shard, `shard-K-of-N.journal` in the
//! journal directory): line 1 is the [`ShardManifest`], every further
//! line is one [`CellRecord`], each framed by the checksummed line codec
//! in `redspot_core::telemetry::journal`. Records are appended only
//! *after* a cell's simulation completed, and the file is fsync'd every
//! [`sync_every`](ShardJournal::sync_every) records (and on finish), so
//! at any kill instant the durable prefix is a set of truly-completed
//! cells plus at most one torn final line.
//!
//! Resume policy ([`ShardJournal::open`]): scan the file, verify the
//! manifest matches the sweep the caller is about to run (schema
//! version, fingerprint, shard geometry), truncate a torn final line,
//! and report the completed cells so the caller re-executes only the
//! rest. A torn *final* line is the expected crash artifact and is
//! silently dropped (the cell re-runs deterministically); an invalid
//! line anywhere else cannot be produced by this writer and is reported
//! as corruption, never repaired.

use super::{CellRecord, JournalLine, ShardManifest};
use redspot_core::telemetry::journal::{frame, unframe};
use std::collections::BTreeSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Records between fsyncs when the caller does not override it: small
/// enough that a crash re-runs at most a handful of cells, large enough
/// to amortize `fdatasync` on fast grids.
pub const DEFAULT_SYNC_EVERY: usize = 8;

/// Why a journal could not be opened, scanned, or written.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem trouble.
    Io {
        /// The journal (or directory) involved.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// A line that is neither a valid record nor a torn final line:
    /// checksum mismatch, unparseable payload, out-of-range or duplicate
    /// cell, or a record before the manifest.
    Corrupt {
        /// The offending journal.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What exactly is wrong.
        why: String,
    },
    /// The journal's manifest disagrees with the sweep being run or
    /// merged (schema version, fingerprint, or shard geometry).
    ManifestMismatch {
        /// The offending journal.
        path: PathBuf,
        /// What exactly disagrees.
        why: String,
    },
    /// The file has no (valid) manifest line but does contain records.
    MissingManifest {
        /// The offending journal.
        path: PathBuf,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            JournalError::Corrupt { path, line, why } => {
                write!(f, "{}:{line}: corrupt record: {why}", path.display())
            }
            JournalError::ManifestMismatch { path, why } => {
                write!(f, "{}: manifest mismatch: {why}", path.display())
            }
            JournalError::MissingManifest { path } => {
                write!(f, "{}: journal has records but no manifest", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl JournalError {
    fn io(path: &Path, err: std::io::Error) -> JournalError {
        JournalError::Io {
            path: path.to_path_buf(),
            err,
        }
    }
}

/// The journal file name for shard `K` of `N`.
pub fn journal_file_name(shard: usize, n_shards: usize) -> String {
    format!("shard-{shard}-of-{n_shards}.journal")
}

/// Everything a full scan of one journal file recovers.
#[derive(Debug)]
pub struct JournalScan {
    /// The manifest, when a valid first line exists.
    pub manifest: Option<ShardManifest>,
    /// Every durably-completed cell, in append order.
    pub records: Vec<CellRecord>,
    /// Byte offset one past the last valid line — the truncation point
    /// that discards a torn tail.
    pub valid_bytes: u64,
    /// Whether the file ends in a torn (invalid final) line.
    pub torn_tail: bool,
    /// Whether the final line is a *valid* record that lost only its
    /// trailing newline (a kill between the payload and the `\n`). The
    /// record counts, but an append without repair would concatenate
    /// onto it — [`ShardJournal::open`] writes the missing newline.
    pub newline_missing: bool,
}

impl JournalScan {
    /// The set of completed cell indices.
    pub fn completed(&self) -> BTreeSet<usize> {
        self.records.iter().map(|r| r.cell).collect()
    }
}

/// Scan one journal file: decode every line, stopping cleanly at a torn
/// final line, and validate record-level invariants (manifest first,
/// cells unique and inside the manifest's range).
pub fn scan_journal(path: &Path) -> Result<JournalScan, JournalError> {
    let data = std::fs::read_to_string(path).map_err(|e| JournalError::io(path, e))?;
    let mut scan = JournalScan {
        manifest: None,
        records: Vec::new(),
        valid_bytes: 0,
        torn_tail: false,
        newline_missing: false,
    };
    let mut seen = BTreeSet::new();
    let mut offset = 0usize;
    let mut line_no = 0usize;
    for segment in data.split_inclusive('\n') {
        line_no += 1;
        let line = segment.strip_suffix('\n');
        let is_final = offset + segment.len() == data.len();
        let corrupt = |why: String| JournalError::Corrupt {
            path: path.to_path_buf(),
            line: line_no,
            why,
        };
        // A line without a trailing newline can only be the file's last
        // bytes; treat it like any other candidate record and let the
        // checksum decide.
        let parsed = unframe(line.unwrap_or(segment))
            .map_err(|e| e.to_string())
            .and_then(|payload| {
                serde_json::from_str::<JournalLine>(payload).map_err(|e| e.to_string())
            });
        let entry = match parsed {
            Ok(entry) => entry,
            Err(why) if is_final => {
                // Torn final line: the crash artifact resume is designed
                // for. Everything before it stands.
                let _ = why;
                scan.torn_tail = true;
                return Ok(scan);
            }
            Err(why) => return Err(corrupt(why)),
        };
        if line.is_none() {
            scan.newline_missing = true;
        }
        match entry {
            JournalLine::Manifest(m) => {
                if line_no != 1 {
                    return Err(corrupt("manifest after line 1".into()));
                }
                scan.manifest = Some(m);
            }
            JournalLine::Cell(rec) => {
                let Some(m) = &scan.manifest else {
                    return Err(JournalError::MissingManifest {
                        path: path.to_path_buf(),
                    });
                };
                if !m.cells().contains(&rec.cell) {
                    return Err(corrupt(format!(
                        "cell {} outside this shard's range {}..{}",
                        rec.cell, m.cell_lo, m.cell_hi
                    )));
                }
                if !seen.insert(rec.cell) {
                    return Err(corrupt(format!("cell {} recorded twice", rec.cell)));
                }
                scan.records.push(rec);
            }
        }
        offset += segment.len();
        scan.valid_bytes = offset as u64;
    }
    Ok(scan)
}

/// What [`ShardJournal::open`] recovered from an existing journal.
#[derive(Debug, Default)]
pub struct Resume {
    /// Cells already durably completed — the caller must skip these.
    pub completed: BTreeSet<usize>,
    /// Whether an existing journal was picked up (false for a fresh file).
    pub resumed: bool,
    /// Whether a torn final line was truncated away.
    pub truncated_torn_tail: bool,
}

/// An open, append-mode shard journal.
#[derive(Debug)]
pub struct ShardJournal {
    file: File,
    path: PathBuf,
    sync_every: usize,
    unsynced: usize,
    appended: u64,
}

impl ShardJournal {
    /// Open (or create) the journal for `manifest` inside `dir`.
    ///
    /// A fresh file gets the manifest as its first line, fsync'd before
    /// any cell can be recorded. An existing file is never clobbered: it
    /// is scanned, its manifest checked against `manifest` (schema
    /// version, fingerprint, geometry — any disagreement is an error,
    /// because appending cells from a different grid would poison the
    /// merge), a torn final line is truncated, and the completed cells
    /// are returned so the caller skips them.
    pub fn open(
        dir: &Path,
        manifest: &ShardManifest,
        sync_every: usize,
    ) -> Result<(ShardJournal, Resume), JournalError> {
        std::fs::create_dir_all(dir).map_err(|e| JournalError::io(dir, e))?;
        let path = dir.join(journal_file_name(manifest.shard, manifest.n_shards));
        let mut resume = Resume::default();
        let mut repair_newline = false;
        let fresh_manifest = !path.exists() || {
            let scan = scan_journal(&path)?;
            match &scan.manifest {
                None => {
                    // The only way to get here is a crash that tore the
                    // manifest line itself (no records can precede it):
                    // start over.
                    truncate(&path, 0)?;
                    true
                }
                Some(found) => {
                    check_manifest(&path, found, manifest)?;
                    if scan.torn_tail {
                        truncate(&path, scan.valid_bytes)?;
                        resume.truncated_torn_tail = true;
                    }
                    // A kill between the final record's payload and its
                    // `\n` leaves a valid but unterminated line; the
                    // record counts, but the next append would
                    // concatenate onto it — restore the newline first.
                    repair_newline = scan.newline_missing;
                    resume.completed = scan.completed();
                    resume.resumed = true;
                    false
                }
            }
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| JournalError::io(&path, e))?;
        let mut journal = ShardJournal {
            file,
            path,
            sync_every: sync_every.max(1),
            unsynced: 0,
            appended: 0,
        };
        if fresh_manifest {
            journal.append(&JournalLine::Manifest(manifest.clone()))?;
            journal.sync()?;
        } else if repair_newline {
            journal
                .file
                .write_all(b"\n")
                .map_err(|e| JournalError::io(&journal.path, e))?;
            journal.sync()?;
        }
        Ok((journal, resume))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Cell records appended in this session.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Records between fsyncs.
    pub fn sync_every(&self) -> usize {
        self.sync_every
    }

    /// Durably append one completed cell. The line is written in a
    /// single `write_all`; the batched fsync policy means a crash can
    /// lose (and therefore re-run) at most the last `sync_every` cells,
    /// never corrupt earlier ones.
    pub fn append_cell(&mut self, record: &CellRecord) -> Result<(), JournalError> {
        self.append(&JournalLine::Cell(record.clone()))?;
        self.appended += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush and fsync everything appended so far.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file
            .sync_data()
            .map_err(|e| JournalError::io(&self.path, e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Final fsync; consumes the journal.
    pub fn finish(mut self) -> Result<PathBuf, JournalError> {
        self.sync()?;
        Ok(self.path)
    }

    fn append(&mut self, line: &JournalLine) -> Result<(), JournalError> {
        let payload = serde_json::to_string(line).expect("journal lines serialize");
        self.file
            .write_all(frame(&payload).as_bytes())
            .map_err(|e| JournalError::io(&self.path, e))
    }
}

fn truncate(path: &Path, len: u64) -> Result<(), JournalError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| JournalError::io(path, e))?;
    file.set_len(len).map_err(|e| JournalError::io(path, e))?;
    file.sync_data().map_err(|e| JournalError::io(path, e))
}

/// Compare a journal's recovered manifest against the one the current
/// invocation expects, most-diagnostic mismatch first.
pub(crate) fn check_manifest(
    path: &Path,
    found: &ShardManifest,
    expected: &ShardManifest,
) -> Result<(), JournalError> {
    let fail = |why: String| {
        Err(JournalError::ManifestMismatch {
            path: path.to_path_buf(),
            why,
        })
    };
    if found.schema_version != expected.schema_version {
        return fail(format!(
            "schema version {} (this binary writes {})",
            found.schema_version, expected.schema_version
        ));
    }
    if found.fingerprint != expected.fingerprint {
        return fail(format!(
            "config fingerprint {} but this sweep is {} — \
             the journal was produced by different sweep arguments",
            found.fingerprint, expected.fingerprint
        ));
    }
    if found != expected {
        return fail(format!(
            "shard geometry {}/{} over {} cells ({}..{}) vs expected {}/{} over {} cells ({}..{})",
            found.shard,
            found.n_shards,
            found.n_cells,
            found.cell_lo,
            found.cell_hi,
            expected.shard,
            expected.n_shards,
            expected.n_cells,
            expected.cell_lo,
            expected.cell_hi,
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use redspot_core::{RunMetrics, RunResult};
    use redspot_trace::{Price, SimTime};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("redspot-journal-test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn manifest(shard: usize, n_shards: usize, n_cells: usize) -> ShardManifest {
        ShardManifest::plan(n_cells, shard, n_shards, "deadbeefdeadbeef".into()).unwrap()
    }

    fn record(cell: usize) -> CellRecord {
        CellRecord {
            cell,
            result: RunResult {
                cost: Price::from_millis(100 + cell as u64),
                spot_cost: Price::from_millis(100 + cell as u64),
                od_cost: Price::ZERO,
                io_cost: Price::ZERO,
                finished_at: SimTime::from_hours(20),
                met_deadline: true,
                checkpoints: 3,
                restarts: 1,
                out_of_bid_terminations: 0,
                used_on_demand: false,
                api: Default::default(),
                events: vec![],
            },
            metrics: RunMetrics {
                runs: 1,
                checkpoints_committed: 3,
                ..RunMetrics::default()
            },
        }
    }

    #[test]
    fn create_append_scan_round_trip() {
        let dir = tmp_dir("round-trip");
        let m = manifest(1, 2, 4);
        let (mut j, resume) = ShardJournal::open(&dir, &m, 2).unwrap();
        assert!(!resume.resumed);
        j.append_cell(&record(0)).unwrap();
        j.append_cell(&record(1)).unwrap();
        let path = j.finish().unwrap();
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.manifest.as_ref(), Some(&m));
        assert_eq!(scan.records, vec![record(0), record(1)]);
        assert!(!scan.torn_tail);
    }

    #[test]
    fn reopen_resumes_and_skips_completed() {
        let dir = tmp_dir("resume");
        let m = manifest(1, 1, 3);
        let (mut j, _) = ShardJournal::open(&dir, &m, 1).unwrap();
        j.append_cell(&record(0)).unwrap();
        j.finish().unwrap();
        let (mut j, resume) = ShardJournal::open(&dir, &m, 1).unwrap();
        assert!(resume.resumed);
        assert_eq!(resume.completed, BTreeSet::from([0]));
        j.append_cell(&record(1)).unwrap();
        j.append_cell(&record(2)).unwrap();
        let scan = scan_journal(&j.finish().unwrap()).unwrap();
        assert_eq!(scan.completed(), BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let m = manifest(1, 1, 3);
        let (mut j, _) = ShardJournal::open(&dir, &m, 1).unwrap();
        j.append_cell(&record(0)).unwrap();
        j.append_cell(&record(1)).unwrap();
        let path = j.finish().unwrap();
        // Tear the final record in half.
        let full = std::fs::read(&path).unwrap();
        let cut = full.len() - 40;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (j, resume) = ShardJournal::open(&dir, &m, 1).unwrap();
        assert!(resume.resumed);
        assert!(resume.truncated_torn_tail);
        assert_eq!(resume.completed, BTreeSet::from([0]));
        drop(j);
        // The torn bytes are gone from disk.
        let scan = scan_journal(&path).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.completed(), BTreeSet::from([0]));
    }

    #[test]
    fn mismatched_manifest_is_refused() {
        let dir = tmp_dir("mismatch");
        let m = manifest(1, 1, 3);
        let (j, _) = ShardJournal::open(&dir, &m, 1).unwrap();
        j.finish().unwrap();
        let mut other = m.clone();
        other.fingerprint = "0000000000000000".into();
        let err = ShardJournal::open(&dir, &other, 1).unwrap_err();
        assert!(
            matches!(err, JournalError::ManifestMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn mid_file_corruption_is_fatal_not_repaired() {
        let dir = tmp_dir("corrupt");
        let m = manifest(1, 1, 3);
        let (mut j, _) = ShardJournal::open(&dir, &m, 1).unwrap();
        j.append_cell(&record(0)).unwrap();
        j.append_cell(&record(1)).unwrap();
        let path = j.finish().unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip a byte inside record 0's line (line 2), not the last line.
        let line2_start = text.find('\n').unwrap() + 1;
        let flip = line2_start + 30;
        unsafe { text.as_bytes_mut()[flip] ^= 0x01 };
        std::fs::write(&path, &text).unwrap();
        let err = ShardJournal::open(&dir, &m, 1).unwrap_err();
        assert!(
            matches!(err, JournalError::Corrupt { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn torn_manifest_restarts_cleanly() {
        let dir = tmp_dir("torn-manifest");
        let m = manifest(1, 1, 2);
        let path = dir.join(journal_file_name(1, 1));
        std::fs::write(&path, "0123456789ab").unwrap(); // torn mid-manifest
        let (mut j, resume) = ShardJournal::open(&dir, &m, 1).unwrap();
        assert!(!resume.resumed);
        assert!(resume.completed.is_empty());
        j.append_cell(&record(0)).unwrap();
        let scan = scan_journal(&j.finish().unwrap()).unwrap();
        assert_eq!(scan.manifest.as_ref(), Some(&m));
        assert_eq!(scan.completed(), BTreeSet::from([0]));
    }

    #[test]
    fn out_of_range_and_duplicate_cells_are_corruption() {
        let dir = tmp_dir("bad-cells");
        let m = manifest(1, 2, 4); // owns 0..2
        let (mut j, _) = ShardJournal::open(&dir, &m, 1).unwrap();
        j.append_cell(&record(0)).unwrap();
        let path = j.finish().unwrap();
        // Hand-append a record for a cell this shard does not own.
        let alien = serde_json::to_string(&JournalLine::Cell(record(3))).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(frame(&alien).as_bytes());
        // A second valid line after it so the alien is not a "torn tail".
        bytes.extend_from_slice(frame(&alien).as_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = scan_journal(&path).unwrap_err();
        assert!(
            err.to_string().contains("outside this shard's range"),
            "{err}"
        );
    }
}
