//! The journaled shard executor: run one shard's cells with write-ahead
//! durability, skipping cells a previous (killed) invocation already
//! completed.

use super::journal::{JournalError, ShardJournal, DEFAULT_SYNC_EVERY};
use super::{CellRecord, ShardManifest};
use crate::scheme::{run_spec, RunSpec};
use redspot_core::telemetry::MetricsRecorder;
use redspot_core::{ExperimentConfig, MarketCtx};
use std::path::{Path, PathBuf};

/// What one journaled shard invocation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRunReport {
    /// Cells simulated by *this* invocation.
    pub executed: usize,
    /// Cells skipped because a previous invocation journaled them.
    pub skipped: usize,
    /// Whether the journal pre-existed (this invocation was a resume).
    pub resumed: bool,
    /// Whether a torn final record was truncated before resuming.
    pub truncated_torn_tail: bool,
    /// The journal file written.
    pub journal: PathBuf,
}

/// Run (or resume) one shard of a sweep grid, journaling every completed
/// cell.
///
/// `specs` is the *full* grid in canonical cell order; the manifest says
/// which contiguous slice this shard owns. Cells run sequentially and
/// metered (a [`MetricsRecorder`] per cell) — each cell's
/// `(result, metrics)` is a pure function of `(mkt, spec, base)`, so a
/// killed-and-resumed shard journals exactly the records an
/// uninterrupted one would have.
pub fn run_shard(
    mkt: &MarketCtx,
    base: &ExperimentConfig,
    specs: &[RunSpec],
    manifest: &ShardManifest,
    dir: &Path,
    sync_every: Option<usize>,
) -> Result<ShardRunReport, JournalError> {
    assert_eq!(
        specs.len(),
        manifest.n_cells,
        "manifest planned over a different grid"
    );
    let sync_every = sync_every.unwrap_or(DEFAULT_SYNC_EVERY);
    let (mut journal, resume) = ShardJournal::open(dir, manifest, sync_every)?;
    let mut executed = 0usize;
    let mut skipped = 0usize;
    for cell in manifest.cells() {
        if resume.completed.contains(&cell) {
            skipped += 1;
            continue;
        }
        let (result, metrics) = run_spec(mkt, &specs[cell], base, MetricsRecorder::new());
        journal.append_cell(&CellRecord {
            cell,
            result,
            metrics,
        })?;
        executed += 1;
    }
    let journal = journal.finish()?;
    Ok(ShardRunReport {
        executed,
        skipped,
        resumed: resume.resumed,
        truncated_torn_tail: resume.truncated_torn_tail,
        journal,
    })
}
