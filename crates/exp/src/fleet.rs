//! The fleet execution plane: N jobs against one shared capacity pool.
//!
//! [`crate::exec::RunRequest`] runs a batch of *independent* jobs — each
//! sees an infinitely deep market. A [`FleetRequest`] runs N jobs (mixed
//! deadlines, runtimes, checkpoint costs, policies) against one shared
//! [`MarketCtx`] *and* one shared [`CapacityPool`]: every job's control
//! plane is wrapped in a [`redspot_market::ContendedApi`], so
//! insufficient-capacity errors emerge from the fleet's own draining
//! instead of fault-plan coin flips, and each job's engine escalates
//! through the [`redspot_core::DegradePolicy`] ladder when the denials
//! persist.
//!
//! # Determinism
//!
//! * **Unbounded pool** — jobs cannot interact (the wrapper never
//!   rejects, never adds latency, never draws randomness), so they run
//!   on a parallel worker pool exactly like a batch, and results are
//!   bit-identical to running each job independently through
//!   [`run_spec`] at any thread count (pinned by
//!   `tests/fleet_properties.rs`).
//! * **Bounded pool** — jobs *do* interact through the pool, so the
//!   fleet is executed as a deterministic lock-step simulation: all
//!   engines are constructed up front and the engine with the smallest
//!   clock (ties broken by job index) is stepped next, putting every
//!   pool debit/credit in a single global time order that is
//!   independent of the requested thread count.
//!
//! The [`Scheme::Adaptive`] meta-policy drives its engine internally
//! and cannot be lock-step interleaved, so bounded fleets reject it
//! ([`FleetError::UnsupportedScheme`]); unbounded fleets accept every
//! scheme. [`Scheme::OnDemand`] never touches spot capacity and runs
//! directly in either mode.

use crate::scheme::{mix_seed, run_spec, RunSpec, Scheme};
use parking_lot::Mutex;
use redspot_core::policy::large_bid::LARGE_BID;
use redspot_core::policy::LargeBidPolicy;
use redspot_core::{
    ConfigError, Engine, ExperimentConfig, MarketCtx, MetricsRecorder, Policy, RunMetrics,
    RunResult,
};
use redspot_market::{
    ApiFaultPlan, CapacityPool, CloudApi, ContendedApi, DelayModel, FaultyApi, PerfectApi,
    PoolStats,
};
use redspot_trace::Price;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One member of a fleet: a label, a scheme, and its own full config
/// (deadline, workload, checkpoint costs, fault plans, ladder).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetJob {
    /// Display label for tables and logs.
    pub name: String,
    /// The scheme to execute (start, bid, policy, zones).
    pub spec: RunSpec,
    /// The job's own experiment configuration.
    pub cfg: ExperimentConfig,
}

/// Why a fleet could not be executed.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A job's configuration failed validation.
    Config {
        /// Index of the offending job.
        job: usize,
        /// The underlying configuration problem.
        source: ConfigError,
    },
    /// A job's scheme cannot run under a bounded pool (Adaptive drives
    /// its engine internally and cannot be lock-step interleaved).
    UnsupportedScheme {
        /// Index of the offending job.
        job: usize,
    },
    /// A job bids in a zone the bounded pool has no capacity entry for.
    PoolTooSmall {
        /// Index of the offending job.
        job: usize,
        /// The uncovered zone.
        zone: redspot_trace::ZoneId,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config { job, source } => write!(f, "fleet job {job}: {source}"),
            FleetError::UnsupportedScheme { job } => write!(
                f,
                "fleet job {job}: Adaptive cannot run under a bounded capacity pool"
            ),
            FleetError::PoolTooSmall { job, zone } => write!(
                f,
                "fleet job {job}: zone {zone} has no capacity entry in the pool"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Everything a finished fleet hands back.
#[derive(Debug)]
pub struct FleetOutcome {
    /// One result per job, in job order.
    pub results: Vec<RunResult>,
    /// Fleet-level metrics (order-independent merge across jobs), when
    /// the request was [`metered`](FleetRequest::metered).
    pub metrics: Option<RunMetrics>,
    /// The pool's lifetime counters after the fleet finished.
    pub pool: PoolStats,
    /// Capacity conservation: every debited unit was credited back
    /// (always true once a fleet completes; surfaced for invariants).
    pub pool_balanced: bool,
}

impl FleetOutcome {
    /// Jobs that missed their deadline (must be zero — Algorithm 1's
    /// guarantee holds per job under arbitrary contention).
    pub fn violations(&self) -> usize {
        self.results.iter().filter(|r| !r.met_deadline).count()
    }

    /// Fleet-wide total charge.
    pub fn total_cost(&self) -> Price {
        self.results
            .iter()
            .map(|r| r.cost)
            .fold(Price::ZERO, |a, b| a + b)
    }
}

/// Builder for one fleet execution.
#[derive(Debug)]
pub struct FleetRequest<'a> {
    mkt: &'a MarketCtx,
    jobs: &'a [FleetJob],
    pool: Arc<CapacityPool>,
    threads: usize,
    metered: bool,
}

impl<'a> FleetRequest<'a> {
    /// A fleet of `jobs` against `mkt`'s market, contending for `pool`.
    /// Defaults: one worker per CPU (unbounded pools only), no metrics.
    pub fn new(mkt: &'a MarketCtx, jobs: &'a [FleetJob], pool: Arc<CapacityPool>) -> Self {
        FleetRequest {
            mkt,
            jobs,
            pool,
            threads: 0,
            metered: false,
        }
    }

    /// Worker threads for the unbounded-pool path; `0` (the default)
    /// means one per available CPU. A bounded pool always runs the
    /// deterministic lock-step path regardless of this setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Run every job with a [`MetricsRecorder`] sink and merge the
    /// per-job metrics into [`FleetOutcome::metrics`].
    pub fn metered(mut self, metered: bool) -> Self {
        self.metered = metered;
        self
    }

    /// Execute the fleet. Every job's config is validated up front, and
    /// bounded pools reject [`Scheme::Adaptive`] before anything runs.
    pub fn execute(self) -> Result<FleetOutcome, FleetError> {
        for (i, job) in self.jobs.iter().enumerate() {
            job.cfg
                .validate()
                .map_err(|source| FleetError::Config { job: i, source })?;
            if self.pool.is_unbounded() {
                continue;
            }
            if matches!(job.spec.scheme, Scheme::Adaptive) {
                return Err(FleetError::UnsupportedScheme { job: i });
            }
            // The pool panics on zones it has no entry for; reject the
            // fleet up front instead.
            let zones: &[redspot_trace::ZoneId] = match &job.spec.scheme {
                Scheme::Single { zone, .. } | Scheme::LargeBid { zone, .. } => {
                    std::slice::from_ref(zone)
                }
                Scheme::Redundant { zones, .. } => zones,
                Scheme::Adaptive | Scheme::OnDemand => &[],
            };
            if let Some(&zone) = zones.iter().find(|z| z.0 >= self.pool.n_zones()) {
                return Err(FleetError::PoolTooSmall { job: i, zone });
            }
        }
        let pairs = if self.pool.is_unbounded() {
            self.run_parallel()
        } else {
            self.run_lockstep()
        };
        let mut metrics = self.metered.then(RunMetrics::default);
        let mut results = Vec::with_capacity(pairs.len());
        for (r, m) in pairs {
            if let Some(agg) = metrics.as_mut() {
                agg.merge(&m);
            }
            results.push(r);
        }
        Ok(FleetOutcome {
            results,
            metrics,
            pool: self.pool.stats(),
            pool_balanced: self.pool.fully_released(),
        })
    }

    /// Unbounded pools: jobs cannot interact, so run them like a batch.
    /// The wrapper still sits in the call path — that inertness is
    /// exactly what the bit-identity property pins.
    fn run_parallel(&self) -> Vec<(RunResult, RunMetrics)> {
        let n = self.jobs.len();
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |t| t.get()),
            t => t,
        };
        let job = |i: usize| -> (RunResult, RunMetrics) {
            let j = &self.jobs[i];
            match j.spec.scheme {
                // Adaptive drives its own engine; OnDemand has no spot
                // requests to contend. Both bypass the wrapper.
                Scheme::Adaptive | Scheme::OnDemand => {
                    run_spec(self.mkt, &j.spec, &j.cfg, MetricsRecorder::new())
                }
                _ => run_contended(self.mkt, j, Arc::clone(&self.pool)),
            }
        };
        if threads == 1 || n <= 1 {
            return (0..n).map(job).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<(RunResult, RunMetrics)>>> =
            self.jobs.iter().map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(n) {
                scope.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *slots[i].lock() = Some(job(i));
                });
            }
        })
        .expect("fleet worker panicked");
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }

    /// Bounded pools: construct every engine up front and always step
    /// the one with the smallest clock (ties broken by job index), so
    /// all pool interactions happen in one global time order.
    fn run_lockstep(&self) -> Vec<(RunResult, RunMetrics)> {
        let n = self.jobs.len();
        let mut out: Vec<Option<(RunResult, RunMetrics)>> = (0..n).map(|_| None).collect();
        // OnDemand jobs never touch the pool; run them directly.
        let mut engines: Vec<(usize, Engine<MetricsRecorder>)> = Vec::new();
        for (i, j) in self.jobs.iter().enumerate() {
            if matches!(j.spec.scheme, Scheme::OnDemand) {
                out[i] = Some(run_spec(self.mkt, &j.spec, &j.cfg, MetricsRecorder::new()));
            } else {
                engines.push((i, contended_engine(self.mkt, j, Arc::clone(&self.pool))));
            }
        }
        // The same fuel bound `Engine::run` uses, pooled across jobs.
        let mut fuel = 50_000_000u64.saturating_mul(engines.len().max(1) as u64);
        while !engines.is_empty() {
            let next = engines
                .iter()
                .enumerate()
                .min_by_key(|(_, (job, e))| (e.now(), *job))
                .map(|(k, _)| k)
                .expect("non-empty engine list");
            let report = engines[next].1.step();
            if report.done {
                let (job, engine) = engines.remove(next);
                out[job] = Some(engine.run_full());
            }
            fuel -= 1;
            assert!(fuel > 0, "fleet exceeded its step budget");
        }
        out.into_iter()
            .map(|slot| slot.expect("every job finished"))
            .collect()
    }
}

/// Build the contended engine for one engine-backed job, mirroring
/// [`run_spec`]'s config derivation exactly (bid, mixed seed, zones,
/// policy, uptime memo) so an unbounded fleet is bit-identical to the
/// independent path.
fn contended_engine(
    mkt: &MarketCtx,
    job: &FleetJob,
    pool: Arc<CapacityPool>,
) -> Engine<MetricsRecorder> {
    let traces = mkt.handle();
    let spec = &job.spec;
    let mut cfg = job.cfg.clone();
    cfg.bid = spec.bid;
    cfg.seed = mix_seed(job.cfg.seed, spec);
    let build = |kind: &redspot_core::PolicyKind| -> Box<dyn Policy> {
        let mut policy = kind.build();
        if let Some(memo) = mkt.uptime_memo() {
            policy.attach_uptime_memo(memo);
        }
        policy
    };
    let policy: Box<dyn Policy> = match &spec.scheme {
        Scheme::Single { kind, zone } => {
            cfg.zones = vec![*zone];
            build(kind)
        }
        Scheme::Redundant { kind, zones } => {
            cfg.zones = zones.clone();
            build(kind)
        }
        Scheme::LargeBid { threshold, zone } => {
            cfg.zones = vec![*zone];
            cfg.bid = LARGE_BID;
            match threshold {
                Some(l) => Box::new(LargeBidPolicy::new(*l)),
                None => Box::new(LargeBidPolicy::naive()),
            }
        }
        Scheme::Adaptive | Scheme::OnDemand => {
            unreachable!("non-engine schemes never reach contended_engine")
        }
    };
    // The same stack `Engine::try_with_parts` builds, wrapped in the
    // capacity decorator: Contended → Faulty? → Perfect.
    let inner: Box<dyn CloudApi + Send> = if cfg.api.is_none() {
        Box::new(PerfectApi::new(traces.clone()))
    } else {
        Box::new(FaultyApi::new(
            PerfectApi::new(traces.clone()),
            cfg.api,
            ApiFaultPlan::rng_seed(cfg.seed),
        ))
    };
    let api: Box<dyn CloudApi + Send> = Box::new(ContendedApi::new(inner, pool));
    Engine::try_with_api(
        traces.clone(),
        spec.start,
        cfg,
        policy,
        DelayModel::paper(),
        MetricsRecorder::new(),
        api,
    )
    .expect("fleet job validated before execution")
}

/// Run one engine-backed job through the contended stack to completion.
fn run_contended(
    mkt: &MarketCtx,
    job: &FleetJob,
    pool: Arc<CapacityPool>,
) -> (RunResult, RunMetrics) {
    contended_engine(mkt, job, pool).run_full()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redspot_core::{DegradePolicy, NullRecorder, PolicyKind};
    use redspot_trace::{PriceSeries, SimTime, TraceSet, ZoneId};

    fn flat3(price: u64, hours: u64) -> TraceSet {
        let samples = vec![Price::from_millis(price); (hours * 12) as usize];
        TraceSet::new(
            (0..3)
                .map(|_| PriceSeries::new(SimTime::ZERO, samples.clone()))
                .collect(),
        )
    }

    fn job(i: usize, scheme: Scheme) -> FleetJob {
        let cfg = ExperimentConfig::paper_default()
            .with_seed(i as u64)
            .with_degrade(DegradePolicy::standard());
        FleetJob {
            name: format!("job-{i}"),
            spec: RunSpec {
                start: SimTime::from_hours(40 + 2 * i as u64),
                bid: Price::from_millis(810),
                scheme,
            },
            cfg,
        }
    }

    fn mixed_fleet(n: usize) -> Vec<FleetJob> {
        (0..n)
            .map(|i| {
                job(
                    i,
                    match i % 3 {
                        0 => Scheme::Single {
                            kind: PolicyKind::Periodic,
                            zone: ZoneId(i % 3),
                        },
                        1 => Scheme::Redundant {
                            kind: PolicyKind::MarkovDaly,
                            zones: vec![ZoneId(0), ZoneId(1), ZoneId(2)],
                        },
                        _ => Scheme::OnDemand,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn unbounded_fleet_matches_independent_runs() {
        let mkt = MarketCtx::for_sweep(flat3(270, 120));
        let jobs = mixed_fleet(6);
        let fleet = FleetRequest::new(&mkt, &jobs, Arc::new(CapacityPool::unbounded()))
            .threads(2)
            .execute()
            .unwrap();
        assert_eq!(fleet.violations(), 0);
        for (j, got) in jobs.iter().zip(&fleet.results) {
            let want = run_spec(&mkt, &j.spec, &j.cfg, NullRecorder).0;
            assert_eq!(got, &want, "{} diverged from independent run", j.name);
        }
        assert_eq!(fleet.pool, PoolStats::default());
        assert!(fleet.pool_balanced);
    }

    #[test]
    fn bounded_fleet_meets_deadlines_and_conserves_capacity() {
        let mkt = MarketCtx::for_sweep(flat3(270, 200));
        let jobs = mixed_fleet(5);
        let pool = Arc::new(CapacityPool::uniform(3, 1));
        let fleet = FleetRequest::new(&mkt, &jobs, Arc::clone(&pool))
            .metered(true)
            .execute()
            .unwrap();
        assert_eq!(fleet.violations(), 0, "deadline guarantee broke");
        assert!(fleet.pool_balanced, "capacity leaked");
        let s = fleet.pool;
        assert_eq!(s.debits, s.credits, "unbalanced pool counters");
        let m = fleet.metrics.expect("metered");
        assert_eq!(m.runs, 5);
    }

    #[test]
    fn zero_capacity_forces_the_full_ladder_to_on_demand() {
        let mkt = MarketCtx::new(flat3(270, 120));
        let jobs = vec![job(
            0,
            Scheme::Redundant {
                kind: PolicyKind::Periodic,
                zones: vec![ZoneId(0), ZoneId(1), ZoneId(2)],
            },
        )];
        let pool = Arc::new(CapacityPool::uniform(3, 0));
        let fleet = FleetRequest::new(&mkt, &jobs, Arc::clone(&pool))
            .metered(true)
            .execute()
            .unwrap();
        let r = &fleet.results[0];
        assert!(r.met_deadline, "ladder must preserve the guarantee");
        assert!(r.used_on_demand, "no capacity anywhere → must spill");
        let m = fleet.metrics.expect("metered");
        assert!(m.zones_shed > 0, "rung 1 never fired");
        assert!(m.capacity_spills > 0, "rung 3 never fired");
        assert!(fleet.pool_balanced);
        assert_eq!(pool.stats().debits, 0, "nothing could ever be acquired");
    }

    #[test]
    fn bounded_pool_rejects_adaptive() {
        let mkt = MarketCtx::new(flat3(270, 120));
        let jobs = vec![job(0, Scheme::Adaptive)];
        let err = FleetRequest::new(&mkt, &jobs, Arc::new(CapacityPool::uniform(3, 1)))
            .execute()
            .unwrap_err();
        assert_eq!(err, FleetError::UnsupportedScheme { job: 0 });
        assert!(err.to_string().contains("Adaptive"));
        // Unbounded pools accept it.
        assert!(
            FleetRequest::new(&mkt, &jobs, Arc::new(CapacityPool::unbounded()))
                .execute()
                .is_ok()
        );
    }

    #[test]
    fn invalid_job_config_fails_upfront() {
        let mkt = MarketCtx::new(flat3(270, 120));
        let mut bad = job(0, Scheme::OnDemand);
        bad.cfg.zones.clear();
        let err = FleetRequest::new(
            &mkt,
            std::slice::from_ref(&bad),
            Arc::new(CapacityPool::unbounded()),
        )
        .execute()
        .unwrap_err();
        assert!(matches!(
            err,
            FleetError::Config {
                job: 0,
                source: ConfigError::NoZones
            }
        ));
    }
}
