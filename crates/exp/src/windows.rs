//! Experiment-window layout over a trace (Section 5: "80 experiments over
//! partially overlapping chunks in each spot price window").

use redspot_trace::{overlapping_windows, SimDuration, SimTime, TraceSet, Window};

/// History required before each experiment start so Markov models and the
/// adaptive bootstrap have data (the paper uses a 2-day price history).
pub const BOOTSTRAP: SimDuration = SimDuration::from_hours(48);

/// Lay out `count` experiment start times across `traces`, leaving
/// [`BOOTSTRAP`] history before each start and `run_span` of trace after
/// it. Returns the start times.
pub fn experiment_starts(traces: &TraceSet, run_span: SimDuration, count: usize) -> Vec<SimTime> {
    let lo = traces.start() + BOOTSTRAP;
    let hi = traces.end();
    if lo + run_span > hi {
        return Vec::new();
    }
    let span = Window::new(lo, hi);
    overlapping_windows(span, run_span, count)
        .into_iter()
        .map(|w| w.start())
        .collect()
}

/// The run span to reserve for an experiment with deadline `d`: the
/// deadline plus an hour of padding for trailing billing events.
pub fn run_span_for(deadline: SimDuration) -> SimDuration {
    deadline + SimDuration::from_hours(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redspot_trace::gen::GenConfig;

    #[test]
    fn starts_leave_bootstrap_and_span() {
        let traces = GenConfig::low_volatility(1).generate(); // 30 days
        let span = run_span_for(SimDuration::from_hours(30));
        let starts = experiment_starts(&traces, span, 80);
        assert_eq!(starts.len(), 80);
        assert!(starts.iter().all(|&s| s >= traces.start() + BOOTSTRAP));
        assert!(starts.iter().all(|&s| s + span <= traces.end()));
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        // Distinct enough to be different experiments.
        assert!(starts.first() != starts.last());
    }

    #[test]
    fn impossible_layout_is_empty() {
        let traces = GenConfig::low_volatility(1).generate();
        let too_long = SimDuration::from_hours(24 * 40);
        assert!(experiment_starts(&traces, too_long, 10).is_empty());
    }
}
