//! Figure 2: per-zone availability bars and the combined availability of
//! three CC2 zones over a 15-hour window of volatile prices.

use crate::setup::PaperSetup;
use redspot_trace::vol::Volatility;
use redspot_trace::{Price, SimDuration, TraceSet, Window, ZoneId};

/// One zone's availability timeline.
pub type ZoneAvailability = (ZoneId, Vec<(Window, bool)>, f64);

/// The Figure-2 data: up/down runs per zone and combined, plus
/// availability fractions.
pub struct Fig2 {
    /// The window rendered.
    pub window: Window,
    /// Bid used to decide availability.
    pub bid: Price,
    /// Per-zone `(zone, runs, availability)`.
    pub zones: Vec<ZoneAvailability>,
    /// Combined runs and availability.
    pub combined: (Vec<(Window, bool)>, f64),
}

/// Compute Figure 2 over the high-volatility window. Searches for the
/// 15-hour stretch where redundancy helps most (maximum gap between
/// combined and best single-zone availability), which is exactly what the
/// paper's hand-picked December 19, 2012 window illustrates.
pub fn fig2(setup: &PaperSetup, bid: Price) -> Fig2 {
    let traces = setup.traces(Volatility::High);
    let span = SimDuration::from_hours(15);
    let step = SimDuration::from_hours(3);

    let mut best: Option<(f64, Window)> = None;
    let mut t = traces.start();
    while t + span <= traces.end() {
        let w = Window::starting_at(t, span);
        let slice = traces.slice(w);
        let combined = slice.combined_availability(bid);
        let best_single = slice
            .zone_availabilities(bid)
            .into_iter()
            .fold(0.0f64, f64::max);
        let gap = combined - best_single;
        if best.as_ref().is_none_or(|(g, _)| gap > *g) {
            best = Some((gap, w));
        }
        t += step;
    }
    let window = best.expect("trace long enough for a 15h window").1;
    build(traces, window, bid)
}

fn build(traces: &TraceSet, window: Window, bid: Price) -> Fig2 {
    let slice = traces.slice(window);
    let zones = slice
        .zone_ids()
        .map(|z| {
            (
                z,
                slice.availability_runs(z, bid),
                slice.zone(z).availability_at_bid(bid),
            )
        })
        .collect();
    let combined = (
        slice.combined_availability_runs(bid),
        slice.combined_availability(bid),
    );
    Fig2 {
        window,
        bid,
        zones,
        combined,
    }
}

/// Render the figure as ASCII availability bars (█ = up, ░ = down).
pub fn render(fig: &Fig2) -> String {
    let mut out = format!(
        "Figure 2: zone availability at bid {} over {:.0}h starting t={:.0}h\n",
        fig.bid,
        fig.window.duration().as_hours(),
        fig.window.start().as_hours()
    );
    let width = 60usize;
    let total = fig.window.duration().secs() as f64;
    let bar = |runs: &[(Window, bool)]| -> String {
        let mut s = String::new();
        for &(w, up) in runs {
            let cells = ((w.duration().secs() as f64 / total) * width as f64).round() as usize;
            for _ in 0..cells.max(1) {
                s.push(if up { '█' } else { '░' });
            }
        }
        s.chars().take(width + 4).collect()
    };
    out.push_str(&format!(
        "{:>10}  {}  {:5.1}%\n",
        "combined",
        bar(&fig.combined.0),
        fig.combined.1 * 100.0
    ));
    for (z, runs, avail) in &fig.zones {
        out.push_str(&format!(
            "{:>10}  {}  {:5.1}%\n",
            z.to_string(),
            bar(runs),
            avail * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_availability_dominates_every_zone() {
        let setup = PaperSetup::quick(7);
        let fig = fig2(&setup, Price::from_millis(810));
        for (_, _, avail) in &fig.zones {
            assert!(fig.combined.1 >= *avail - 1e-12);
        }
        // The selected window actually demonstrates redundancy value.
        let best_single = fig.zones.iter().map(|z| z.2).fold(0.0f64, f64::max);
        assert!(fig.combined.1 >= best_single);
        assert_eq!(fig.window.duration(), SimDuration::from_hours(15));
    }

    #[test]
    fn render_shows_all_bars() {
        let setup = PaperSetup::quick(7);
        let fig = fig2(&setup, Price::from_millis(810));
        let text = render(&fig);
        assert!(text.contains("combined"));
        assert!(text.contains("us-east-1a"));
        assert!(text.contains("us-east-1c"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn runs_tile_the_window() {
        let setup = PaperSetup::quick(7);
        let fig = fig2(&setup, Price::from_millis(810));
        for (_, runs, _) in &fig.zones {
            let total: u64 = runs.iter().map(|(w, _)| w.duration().secs()).sum();
            assert_eq!(total, fig.window.duration().secs());
        }
    }

    #[test]
    fn higher_bid_never_lowers_availability_on_same_window() {
        let setup = PaperSetup::quick(7);
        let fig = fig2(&setup, Price::from_millis(400));
        let slice = setup.traces(Volatility::High).slice(fig.window);
        let at_low = slice.combined_availability(Price::from_millis(400));
        let at_high = slice.combined_availability(Price::from_millis(2_400));
        assert!(at_high >= at_low);
    }
}
