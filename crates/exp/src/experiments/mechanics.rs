//! Figures 1 and 3: the mechanics of spot execution as timeline diagrams.
//!
//! The paper's first two figures are hand-drawn illustrations of (1) spot
//! price movements with state transitions and checkpoint/restart costs,
//! and (3) the Rising-Edge policy reacting to price movements. This
//! module renders the same diagrams from an actual engine run: a price
//! lane (relative to the bid), an instance-state lane, and a progress
//! lane, each one character per five simulated minutes.

use redspot_ckpt::AppSpec;
use redspot_core::{Engine, Event, ExperimentConfig, PolicyKind, RunResult};
use redspot_market::DelayModel;
use redspot_trace::{Price, PriceSeries, SimDuration, SimTime, TraceSet, ZoneId, PRICE_STEP};

/// A rendered mechanics diagram plus the run behind it.
pub struct Mechanics {
    /// The trace used.
    pub traces: TraceSet,
    /// The run.
    pub result: RunResult,
    /// Bid used.
    pub bid: Price,
}

/// The hand-crafted single-zone scenario used by both figures: calm
/// prices, one out-of-bid outage, then a rising-price episode.
pub fn scenario() -> TraceSet {
    let mut samples = Vec::new();
    for step in 0..96 {
        let t_h = step as f64 / 12.0;
        let dollars = if (1.5..2.5).contains(&t_h) {
            // Prices stepping upward every 15 minutes, still under the
            // bid: the Figure-3 episode — Edge checkpoints on each rise,
            // just in time for…
            0.35 + ((t_h - 1.5) / 0.25).floor() * 0.1
        } else if (2.5..3.5).contains(&t_h) {
            // …the out-of-bid outage of Figure 1.
            1.50
        } else {
            0.30
        };
        samples.push(Price::from_dollars(dollars));
    }
    TraceSet::new(vec![PriceSeries::new(SimTime::ZERO, samples)])
}

/// Run the scenario under a policy (Periodic ≙ Figure 1's generic
/// checkpoints; RisingEdge ≙ Figure 3).
pub fn run(kind: PolicyKind) -> Mechanics {
    let traces = scenario();
    let bid = Price::from_millis(810);
    let mut cfg = ExperimentConfig::paper_default();
    cfg.app = AppSpec::new(SimDuration::from_hours(5));
    cfg.deadline = SimDuration::from_hours(8);
    cfg.zones = vec![ZoneId(0)];
    cfg.bid = bid;
    let result = Engine::with_delay_model(
        &traces,
        SimTime::ZERO,
        cfg,
        kind.build(),
        DelayModel::constant(150),
    )
    .run();
    Mechanics {
        traces,
        result,
        bid,
    }
}

/// Render the three lanes.
pub fn render(m: &Mechanics) -> String {
    let hours = 8u64;
    let cols = (hours * 3_600 / PRICE_STEP) as usize;
    let zone = ZoneId(0);

    // Price lane: '.' below bid, '^' above.
    let mut price_lane = String::with_capacity(cols);
    for c in 0..cols {
        let t = SimTime::from_secs(c as u64 * PRICE_STEP);
        price_lane.push(if m.traces.price_at(zone, t) <= m.bid {
            '.'
        } else {
            '^'
        });
    }

    // State lane from the event log: U(p), b(ooting), c(heckpointing),
    // r(estarting — boot after a checkpoint exists), '-' down.
    let mut state = vec!['-'; cols];
    let mark = |from: SimTime, to: SimTime, ch: char, state: &mut Vec<char>| {
        let a = (from.secs() / PRICE_STEP) as usize;
        let b = (to.secs().div_ceil(PRICE_STEP) as usize).min(cols);
        for cell in state.iter_mut().take(b).skip(a) {
            *cell = ch;
        }
    };
    let mut boot_from: Option<(SimTime, bool)> = None; // (requested_at, has_ckpt)
    let mut up_from: Option<SimTime> = None;
    let mut ckpt_from: Option<SimTime> = None;
    let mut committed_any = false;
    for e in &m.result.events {
        match e {
            Event::Requested { at, .. } => boot_from = Some((*at, committed_any)),
            Event::Started { at, .. } => {
                if let Some((req, has_ckpt)) = boot_from.take() {
                    mark(req, *at, if has_ckpt { 'r' } else { 'b' }, &mut state);
                }
                up_from = Some(*at);
            }
            Event::CheckpointStarted { at, .. } => {
                if let Some(up) = up_from.take() {
                    mark(up, *at, 'U', &mut state);
                }
                ckpt_from = Some(*at);
            }
            Event::CheckpointCommitted { at, .. } | Event::CheckpointAborted { at, .. } => {
                if let Some(c) = ckpt_from.take() {
                    mark(c, *at, 'c', &mut state);
                }
                if matches!(e, Event::CheckpointCommitted { .. }) {
                    committed_any = true;
                }
                up_from = Some(*at);
            }
            Event::Terminated { at, .. } | Event::Completed { at } => {
                if let Some(up) = up_from.take() {
                    mark(up, *at, 'U', &mut state);
                }
                if let Some(c) = ckpt_from.take() {
                    mark(c, *at, 'c', &mut state);
                }
            }
            _ => {}
        }
    }

    // Progress lane: committed progress quantized to the timeline.
    let mut progress = vec![' '; cols];
    let mut level = 0usize;
    let mut commits: Vec<(usize, usize)> = m
        .result
        .events
        .iter()
        .filter_map(|e| match e {
            Event::CheckpointCommitted { at, position } => Some((
                (at.secs() / PRICE_STEP) as usize,
                (position.secs() / (3_600 / 4)) as usize, // quarter-hours of work
            )),
            _ => None,
        })
        .collect();
    commits.push((cols, level));
    let mut cursor = 0usize;
    for &(col, new_level) in &commits {
        for cell in progress.iter_mut().take(col.min(cols)).skip(cursor) {
            *cell = char::from_digit(level as u32 % 36, 36).unwrap_or('#');
        }
        cursor = col.min(cols);
        if new_level > 0 {
            level = new_level;
        }
    }

    let hour_ruler: String = (0..cols)
        .map(|c| if c % 12 == 0 { '|' } else { ' ' })
        .collect();
    format!(
        "one column = 5 min; hours marked below\n\
         price : {price_lane}\n\
         state : {}\n\
         commit: {}\n\
         hours : {hour_ruler}\n\
         legend: price '.'=S<=B '^'=S>B | state U=up b=boot r=restart c=checkpoint '-'=down\n\
         commit lane digit = committed quarter-hours of work (base 36)\n",
        state.iter().collect::<String>(),
        progress.iter().collect::<String>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_periodic_shows_outage_and_recovery() {
        let m = run(PolicyKind::Periodic);
        assert!(m.result.met_deadline);
        assert_eq!(m.result.out_of_bid_terminations, 1);
        let text = render(&m);
        assert!(text.contains('^'), "outage must appear in the price lane");
        assert!(text.contains('U'));
        assert!(text.contains('c'), "checkpoints must appear");
        assert!(text.contains('b'), "initial boot must appear");
    }

    #[test]
    fn figure3_edge_checkpoints_on_the_ramp() {
        let m = run(PolicyKind::RisingEdge);
        assert!(m.result.met_deadline);
        // Edge checkpoints during the rising episode, so the outage costs
        // only the progress since the last edge — the Figure-3 story.
        assert!(m.result.checkpoints >= 1, "ckpts {}", m.result.checkpoints);
        assert!(
            !m.result.used_on_demand,
            "Edge's checkpoint should save the run"
        );
        let text = render(&m);
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn lanes_have_equal_width() {
        let m = run(PolicyKind::Periodic);
        let text = render(&m);
        let widths: Vec<usize> = text
            .lines()
            .filter(|l| {
                l.starts_with("price :") || l.starts_with("state :") || l.starts_with("commit:")
            })
            .map(|l| l.len())
            .collect();
        assert_eq!(widths.len(), 3);
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }
}
