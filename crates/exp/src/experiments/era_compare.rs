//! Era comparison: the paper's 2014 hourly market against the post-2017
//! per-second regime, same traces, same schemes, same deadline.
//!
//! The paper's evaluation is anchored to the 2014 spot market: hourly
//! billing fixed at boundaries, user bids, instant out-of-bid kills. The
//! [`Era::Modern`] rules replace all three — per-second billing with a
//! 60-second minimum, capacity-driven interruptions, and a binding
//! two-minute notice the engine uses to checkpoint-and-drain. This study
//! runs the chaos-study schemes under both regimes on identical traces
//! and reports the cost and interruption profile side by side. The hard
//! requirement is era-independent: **zero deadline violations** in every
//! cell — the guarantee must survive the regime change, not just the
//! market.

use crate::exec::RunRequest;
use crate::scheme::{guarantee_suite, RunSpec};
use crate::windows::{experiment_starts, run_span_for};
use redspot_core::{Era, ExperimentConfig, MarketCtx};
use redspot_trace::{Price, TraceSet};

/// One cell: a scheme under one market era.
#[derive(Debug, Clone, PartialEq)]
pub struct EraCell {
    /// Scheme label (see [`Scheme::label`]).
    pub scheme: String,
    /// Which market rules the cell ran under.
    pub era: Era,
    /// Median cost in dollars across starts.
    pub median_cost: f64,
    /// Mean provider terminations per run (out-of-bid kills under
    /// Classic, notice-expiry reclaims under Modern).
    pub mean_interruptions: f64,
    /// Total two-minute interruption notices issued across the cell
    /// (always zero under Classic — the 2014 market never warned).
    pub notices: u64,
    /// Fraction of runs that fell back to on-demand.
    pub on_demand_rate: f64,
    /// Runs that missed the deadline. Must be zero in both eras.
    pub violations: usize,
    /// Number of runs in the cell.
    pub n_runs: usize,
}

/// The comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct EraCompare {
    /// All cells, grouped by scheme then era (Classic first).
    pub cells: Vec<EraCell>,
}

impl EraCompare {
    /// Total deadline violations across both eras (must be zero).
    pub fn total_violations(&self) -> usize {
        self.cells.iter().map(|c| c.violations).sum()
    }

    /// Modern-over-Classic cost ratio for a scheme (< 1.0 means the
    /// per-second regime was cheaper), if both cells exist.
    pub fn modern_ratio(&self, scheme: &str) -> Option<f64> {
        let classic = self
            .cells
            .iter()
            .find(|c| c.scheme == scheme && c.era == Era::Classic)?;
        let modern = self
            .cells
            .iter()
            .find(|c| c.scheme == scheme && c.era == Era::Modern)?;
        if classic.median_cost <= 0.0 {
            return None;
        }
        Some(modern.median_cost / classic.median_cost)
    }
}

/// Run the comparison: every scheme × era × `n_starts` start times on
/// the given market. `threads = 0` means one worker per CPU.
pub fn study(traces: &TraceSet, n_starts: usize, threads: usize) -> EraCompare {
    let base = ExperimentConfig::paper_default().with_slack_percent(15);
    let bid = Price::from_millis(810);
    let starts = experiment_starts(traces, run_span_for(base.deadline), n_starts);
    let mkt = MarketCtx::new(traces.clone());
    let schemes = guarantee_suite(traces.zone_ids().collect());

    let mut cells = Vec::new();
    for scheme in &schemes {
        for era in [Era::Classic, Era::Modern] {
            let cfg = base.clone().with_era(era);
            let specs: Vec<RunSpec> = starts
                .iter()
                .map(|&start| RunSpec {
                    start,
                    bid,
                    scheme: scheme.clone(),
                })
                .collect();
            let outcome = RunRequest::new(&mkt, &cfg, &specs)
                .threads(threads)
                .metered(true)
                .execute()
                .expect("era-compare config is valid");
            let results = &outcome.results;
            let metrics = outcome.metrics.as_ref().expect("metered batch");
            let costs: Vec<f64> = results.iter().map(|r| r.cost_dollars()).collect();
            let n_runs = results.len();
            cells.push(EraCell {
                scheme: scheme.label(),
                era,
                median_cost: crate::report::median(&costs),
                mean_interruptions: results
                    .iter()
                    .map(|r| r.out_of_bid_terminations as f64)
                    .sum::<f64>()
                    / n_runs.max(1) as f64,
                notices: metrics.interruption_notices,
                on_demand_rate: results.iter().filter(|r| r.used_on_demand).count() as f64
                    / n_runs.max(1) as f64,
                violations: results.iter().filter(|r| !r.met_deadline).count(),
                n_runs,
            });
        }
    }
    EraCompare { cells }
}

/// Render the comparison as a table.
pub fn render(c: &EraCompare) -> String {
    let mut out = String::from(
        "Era comparison: 2014 hourly market vs post-2017 per-second market\n\
         (high volatility, 15% slack, B = $0.81 — Modern reads the bid as a reclaim threshold)\n\n  \
         scheme      era       median cost   vs classic   interruptions   notices   on-demand   violations\n",
    );
    for cell in &c.cells {
        let ratio = if cell.era == Era::Modern {
            c.modern_ratio(&cell.scheme)
                .map_or("       -".to_string(), |r| format!("{:>7.2}x", r))
        } else {
            "       -".to_string()
        };
        out.push_str(&format!(
            "  {:<10} {:<8}  ${:>10.2}   {ratio}   {:>13.1}   {:>7}   {:>8.0}%   {:>10}\n",
            cell.scheme,
            cell.era.label(),
            cell.median_cost,
            cell.mean_interruptions,
            cell.notices,
            cell.on_demand_rate * 100.0,
            cell.violations,
        ));
    }
    out.push_str(&format!(
        "\n  total deadline violations: {} (guarantee requires 0 in both eras)\n",
        c.total_violations()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traces(seed: u64) -> TraceSet {
        redspot_trace::gen::GenConfig::high_volatility(seed).generate()
    }

    #[test]
    fn guarantee_holds_in_both_eras() {
        let c = study(&traces(17), 3, 0);
        assert_eq!(c.cells.len(), 10); // 5 schemes x 2 eras
        assert_eq!(
            c.total_violations(),
            0,
            "deadline violations in the era comparison:\n{}",
            render(&c)
        );
        for cell in &c.cells {
            assert!(cell.n_runs > 0);
            assert!(cell.median_cost > 0.0, "{}", render(&c));
        }
    }

    #[test]
    fn notices_are_a_modern_phenomenon() {
        let c = study(&traces(17), 3, 0);
        for cell in &c.cells {
            if cell.era == Era::Classic {
                assert_eq!(cell.notices, 0, "classic issued a notice:\n{}", render(&c));
            }
        }
        // The high-volatility window crosses the reclaim threshold, so at
        // least one modern cell must have seen the two-minute warning.
        assert!(
            c.cells
                .iter()
                .any(|cell| cell.era == Era::Modern && cell.notices > 0),
            "no interruption notices in any modern cell:\n{}",
            render(&c)
        );
    }

    #[test]
    fn render_reports_both_eras() {
        let c = study(&traces(11), 2, 0);
        let text = render(&c);
        assert!(text.contains("classic"));
        assert!(text.contains("modern"));
        assert!(text.contains("total deadline violations: 0"));
    }
}
