//! One module per paper experiment (figure/table). Each computes a
//! structured result and offers a `render` for terminal output; the
//! `redspot-bench` binaries and the CLI drive these.

pub mod chaos;
pub mod chaos_api;
pub mod chaos_fleet;
pub mod era_compare;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod headline;
pub mod markov_validation;
pub mod mechanics;
pub mod policy_compare;
pub mod queuing;
pub mod robustness;
pub mod tables;
pub mod var_analysis;
