//! Policy comparison: every checkpoint policy head-to-head, per era.
//!
//! Where the chaos suites ask "does the guarantee survive faults", this
//! study asks the paper's economic question across the *whole* policy
//! roster: what does each policy cost, and how often does it lean on the
//! on-demand fallback, under both the 2014 hourly market and the
//! post-2017 per-second regime? Every policy runs as triple-modular
//! redundancy over all zones (the paper's recommended deployment), same
//! traces, same starts, same bid. The result is the policy × era cost
//! table DESIGN.md §18 describes, and the artifact the `policy-compare`
//! CLI command (and the `policy-smoke` CI job) emits.
//!
//! The hard requirement carries over unchanged: **zero deadline
//! violations in every cell**, for every policy, in both eras.

use crate::exec::RunRequest;
use crate::scheme::{RunSpec, Scheme, RANDOMIZED_BID_SEED};
use crate::windows::{experiment_starts, run_span_for};
use redspot_core::{Era, ExperimentConfig, MarketCtx, PolicyKind};
use redspot_trace::{Price, TraceSet};
use serde::{Deserialize, Serialize};

/// The full policy roster the comparison sweeps: the paper's four
/// Section-4 policies plus the two policy-diversity additions.
pub fn policy_roster() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Periodic,
        PolicyKind::MarkovDaly,
        PolicyKind::RisingEdge,
        PolicyKind::Threshold,
        PolicyKind::SpotOnCadence,
        PolicyKind::RandomizedBid(RANDOMIZED_BID_SEED),
    ]
}

/// One cell: a policy under one market era.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyCell {
    /// Policy label (see [`PolicyKind::label`]).
    pub policy: String,
    /// Which market rules the cell ran under.
    pub era: Era,
    /// Median cost in dollars across starts.
    pub median_cost: f64,
    /// Mean checkpoints taken per run.
    pub mean_checkpoints: f64,
    /// Mean provider terminations per run.
    pub mean_interruptions: f64,
    /// Fraction of runs that fell back to on-demand.
    pub on_demand_rate: f64,
    /// Runs that missed the deadline. Must be zero.
    pub violations: usize,
    /// Number of runs in the cell.
    pub n_runs: usize,
}

/// The comparison result — serializable so the CLI can write it as the
/// CI artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyCompare {
    /// All cells, grouped by policy then era (Classic first).
    pub cells: Vec<PolicyCell>,
}

impl PolicyCompare {
    /// Total deadline violations across the table (must be zero).
    pub fn total_violations(&self) -> usize {
        self.cells.iter().map(|c| c.violations).sum()
    }

    /// The cheapest policy label in `era` by median cost, if any cell
    /// ran under it.
    pub fn cheapest(&self, era: Era) -> Option<&PolicyCell> {
        self.cells
            .iter()
            .filter(|c| c.era == era)
            .min_by(|a, b| a.median_cost.total_cmp(&b.median_cost))
    }
}

/// Run the comparison: every roster policy × era × `n_starts` start
/// times on the given market, as redundancy over all zones. `threads =
/// 0` means one worker per CPU.
pub fn study(traces: &TraceSet, n_starts: usize, threads: usize) -> PolicyCompare {
    let base = ExperimentConfig::paper_default().with_slack_percent(15);
    let bid = Price::from_millis(810);
    let starts = experiment_starts(traces, run_span_for(base.deadline), n_starts);
    let mkt = MarketCtx::new(traces.clone());
    let zones: Vec<_> = traces.zone_ids().collect();

    let mut cells = Vec::new();
    for kind in policy_roster() {
        let scheme = Scheme::Redundant {
            kind,
            zones: zones.clone(),
        };
        for era in [Era::Classic, Era::Modern] {
            let cfg = base.clone().with_era(era);
            let specs: Vec<RunSpec> = starts
                .iter()
                .map(|&start| RunSpec {
                    start,
                    bid,
                    scheme: scheme.clone(),
                })
                .collect();
            let results = RunRequest::new(&mkt, &cfg, &specs)
                .threads(threads)
                .execute()
                .expect("policy-compare config is valid")
                .results;
            let costs: Vec<f64> = results.iter().map(|r| r.cost_dollars()).collect();
            let n_runs = results.len();
            cells.push(PolicyCell {
                policy: kind.label().to_string(),
                era,
                median_cost: crate::report::median(&costs),
                mean_checkpoints: results.iter().map(|r| r.checkpoints as f64).sum::<f64>()
                    / n_runs.max(1) as f64,
                mean_interruptions: results
                    .iter()
                    .map(|r| r.out_of_bid_terminations as f64)
                    .sum::<f64>()
                    / n_runs.max(1) as f64,
                on_demand_rate: results.iter().filter(|r| r.used_on_demand).count() as f64
                    / n_runs.max(1) as f64,
                violations: results.iter().filter(|r| !r.met_deadline).count(),
                n_runs,
            });
        }
    }
    PolicyCompare { cells }
}

/// Render the comparison as a table.
pub fn render(c: &PolicyCompare) -> String {
    let mut out = String::from(
        "Policy comparison: full roster as R(all zones), both market eras\n\
         (15% slack, B = $0.81; P periodic, M markov-daly, E rising-edge, T threshold, S spot-on, B randomized-bid)\n\n  \
         policy   era       median cost   checkpoints   interruptions   on-demand   violations\n",
    );
    for cell in &c.cells {
        out.push_str(&format!(
            "  {:<7} {:<8}  ${:>10.2}   {:>11.1}   {:>13.1}   {:>8.0}%   {:>10}\n",
            cell.policy,
            cell.era.label(),
            cell.median_cost,
            cell.mean_checkpoints,
            cell.mean_interruptions,
            cell.on_demand_rate * 100.0,
            cell.violations,
        ));
    }
    for era in [Era::Classic, Era::Modern] {
        if let Some(best) = c.cheapest(era) {
            out.push_str(&format!(
                "\n  cheapest under {}: {} at ${:.2}",
                era.label(),
                best.policy,
                best.median_cost
            ));
        }
    }
    out.push_str(&format!(
        "\n\n  total deadline violations: {} (guarantee requires 0 for every policy, both eras)\n",
        c.total_violations()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traces(seed: u64) -> TraceSet {
        redspot_trace::gen::GenConfig::high_volatility(seed).generate()
    }

    #[test]
    fn every_policy_meets_the_deadline_in_both_eras() {
        let c = study(&traces(17), 3, 0);
        assert_eq!(c.cells.len(), 12); // 6 policies x 2 eras
        assert_eq!(
            c.total_violations(),
            0,
            "deadline violations in the policy comparison:\n{}",
            render(&c)
        );
        for cell in &c.cells {
            assert!(cell.n_runs > 0);
            assert!(cell.median_cost > 0.0, "{}", render(&c));
        }
    }

    #[test]
    fn roster_covers_the_policy_diversity_additions() {
        let labels: Vec<&str> = policy_roster().iter().map(|k| k.label()).collect();
        assert!(labels.contains(&"S"), "spot-on cadence missing: {labels:?}");
        assert!(labels.contains(&"B"), "randomized bid missing: {labels:?}");
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn result_round_trips_through_json() {
        let c = study(&traces(11), 2, 0);
        let json = serde_json::to_string(&c).unwrap();
        let back: PolicyCompare = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn render_names_a_cheapest_policy_per_era() {
        let c = study(&traces(11), 2, 0);
        let text = render(&c);
        assert!(text.contains("cheapest under classic"));
        assert!(text.contains("cheapest under modern"));
        assert!(text.contains("total deadline violations: 0"));
    }
}
