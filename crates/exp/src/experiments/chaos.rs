//! Chaos study: the deadline guarantee under injected infrastructure
//! faults.
//!
//! The paper argues Algorithm 1's guarantee holds under arbitrary market
//! behavior; this experiment extends the claim to infrastructure faults.
//! It sweeps the fault-intensity knob of
//! [`FaultPlan::with_intensity`](redspot_core::FaultPlan::with_intensity)
//! — checkpoint write failures, corrupted restores, boot failures, zone
//! blackouts — across execution schemes and experiment starts, and
//! reports how cost degrades as the infrastructure decays. The hard
//! requirement: **zero deadline violations in every cell**. Faults may
//! make runs more expensive (earlier migration, lost progress); they must
//! never make them late.

use crate::exec::RunRequest;
use crate::scheme::{guarantee_suite, RunSpec};
use crate::windows::{experiment_starts, run_span_for};
use redspot_core::{Era, ExperimentConfig, FaultPlan, MarketCtx};
use redspot_trace::{Price, TraceSet};

/// One cell of the sweep: a scheme at a fault intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Fault intensity in `[0, 1]` (0 = the fault-free baseline).
    pub intensity: f64,
    /// Scheme label (see [`Scheme::label`]).
    pub scheme: String,
    /// Median cost in dollars across starts.
    pub median_cost: f64,
    /// Mean replica restarts per run.
    pub mean_restarts: f64,
    /// Fraction of runs that fell back to on-demand.
    pub on_demand_rate: f64,
    /// Runs that missed the deadline. Must be zero: the guarantee is
    /// unconditional.
    pub violations: usize,
    /// Number of runs in the cell.
    pub n_runs: usize,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct Chaos {
    /// All cells, grouped by scheme then intensity.
    pub cells: Vec<ChaosCell>,
}

impl Chaos {
    /// Total deadline violations across the sweep (must be zero).
    pub fn total_violations(&self) -> usize {
        self.cells.iter().map(|c| c.violations).sum()
    }

    /// Cost of `cell` relative to the same scheme's fault-free baseline
    /// (1.0 = no degradation), if a baseline cell exists.
    pub fn degradation(&self, cell: &ChaosCell) -> Option<f64> {
        let base = self
            .cells
            .iter()
            .find(|c| c.scheme == cell.scheme && c.intensity == 0.0)?;
        if base.median_cost <= 0.0 {
            return None;
        }
        Some(cell.median_cost / base.median_cost)
    }
}

/// Run the sweep: every intensity × scheme × `n_starts` start times on
/// the given market (the CLI resolves a
/// [`TraceSource`](redspot_trace::TraceSource); the default is the
/// high-volatility profile). `threads = 0` means one worker per CPU.
/// Under [`Era::Modern`] every run executes against the post-2017 market
/// rules (per-second billing, interruption notices) — the zero-violation
/// requirement is era-independent.
pub fn study(
    traces: &TraceSet,
    intensities: &[f64],
    n_starts: usize,
    threads: usize,
    era: Era,
) -> Chaos {
    let base = ExperimentConfig::paper_default()
        .with_slack_percent(15)
        .with_era(era);
    let bid = Price::from_millis(810);
    let starts = experiment_starts(traces, run_span_for(base.deadline), n_starts);
    let mkt = MarketCtx::new(traces.clone());
    let schemes = guarantee_suite(traces.zone_ids().collect());

    let mut cells = Vec::new();
    for scheme in &schemes {
        for &intensity in intensities {
            let cfg = base
                .clone()
                .with_faults(FaultPlan::with_intensity(intensity));
            let specs: Vec<RunSpec> = starts
                .iter()
                .map(|&start| RunSpec {
                    start,
                    bid,
                    scheme: scheme.clone(),
                })
                .collect();
            let results = RunRequest::new(&mkt, &cfg, &specs)
                .threads(threads)
                .execute()
                .expect("chaos config is valid")
                .results;
            let costs: Vec<f64> = results.iter().map(|r| r.cost_dollars()).collect();
            let n_runs = results.len();
            cells.push(ChaosCell {
                intensity,
                scheme: scheme.label(),
                median_cost: crate::report::median(&costs),
                mean_restarts: results.iter().map(|r| r.restarts as f64).sum::<f64>()
                    / n_runs.max(1) as f64,
                on_demand_rate: results.iter().filter(|r| r.used_on_demand).count() as f64
                    / n_runs.max(1) as f64,
                violations: results.iter().filter(|r| !r.met_deadline).count(),
                n_runs,
            });
        }
    }
    Chaos { cells }
}

/// Render the sweep as a table.
pub fn render(c: &Chaos) -> String {
    let mut out = String::from(
        "Chaos: deadline guarantee under injected faults (high volatility, 15% slack, B = $0.81)\n\
         fault classes: checkpoint write failures, corrupted restores, boot failures, zone blackouts\n\n  \
         scheme      intensity   median cost   vs baseline   restarts   on-demand   violations\n",
    );
    for cell in &c.cells {
        let deg = c
            .degradation(cell)
            .map_or("      -".to_string(), |d| format!("{:>6.2}x", d));
        out.push_str(&format!(
            "  {:<10} {:>9.2}   ${:>10.2}   {deg}   {:>8.1}   {:>8.0}%   {:>10}\n",
            cell.scheme,
            cell.intensity,
            cell.median_cost,
            cell.mean_restarts,
            cell.on_demand_rate * 100.0,
            cell.violations,
        ));
    }
    out.push_str(&format!(
        "\n  total deadline violations: {} (guarantee requires 0)\n",
        c.total_violations()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traces() -> redspot_trace::TraceSet {
        redspot_trace::gen::GenConfig::high_volatility(17).generate()
    }

    #[test]
    fn guarantee_survives_the_sweep() {
        let c = study(&traces(), &[0.0, 0.6], 4, 0, Era::Classic);
        assert_eq!(c.cells.len(), 10); // 5 schemes x 2 intensities
        assert_eq!(
            c.total_violations(),
            0,
            "deadline violations under faults:\n{}",
            render(&c)
        );
        for cell in &c.cells {
            assert!(cell.n_runs > 0);
            assert!(cell.median_cost > 0.0);
        }
    }

    #[test]
    fn faults_degrade_cost_not_deadlines() {
        let c = study(&traces(), &[0.0, 0.8], 4, 0, Era::Classic);
        // At least one scheme should actually get more expensive under
        // heavy faults — otherwise the injection is not doing anything.
        let degraded = c
            .cells
            .iter()
            .filter(|cell| cell.intensity > 0.0)
            .filter_map(|cell| c.degradation(cell))
            .any(|d| d > 1.0);
        assert!(
            degraded,
            "fault injection had no effect on cost:\n{}",
            render(&c)
        );
    }

    #[test]
    fn render_reports_violation_total() {
        let c = Chaos {
            cells: vec![ChaosCell {
                intensity: 0.0,
                scheme: "P/z0".into(),
                median_cost: 10.0,
                mean_restarts: 1.0,
                on_demand_rate: 0.0,
                violations: 0,
                n_runs: 4,
            }],
        };
        let text = render(&c);
        assert!(text.contains("total deadline violations: 0"));
    }
}
