//! Fleet-contention chaos study: closed-loop capacity contention with
//! both fault planes live and the graceful-degradation ladder enabled.
//!
//! [`chaos`](crate::experiments::chaos) injects *engine* faults and
//! [`chaos_api`](crate::experiments::chaos_api) injects *control-plane*
//! faults, each into independent runs. This study composes both planes
//! and adds the failure mode neither can produce: **endogenous**
//! capacity exhaustion, where a fleet of jobs drains a shared per-zone
//! [`CapacityPool`] and insufficient-capacity errors emerge from the
//! fleet's own behaviour. The degradation ladder
//! ([`DegradePolicy::standard`]) then sheds redundant zones, defers
//! starts under admission control, and finally spills to on-demand —
//! and the hard requirement stays exactly the paper's: **zero deadline
//! violations in every cell**, plus the pool-conservation invariant
//! (every debited unit credited back).

use crate::fleet::{FleetJob, FleetRequest};
use crate::scheme::{RunSpec, Scheme};
use crate::windows::{experiment_starts, run_span_for};
use redspot_ckpt::{AppSpec, CkptCosts};
use redspot_core::{
    DegradePolicy, Era, ExperimentConfig, FaultPlan, MarketCtx, PolicyKind, RunMetrics,
};
use redspot_market::{ApiFaultPlan, CapacityPool, PoolStats};
use redspot_trace::{Price, SimDuration, TraceSet, ZoneId};
use std::sync::Arc;

/// One cell: a fleet at a capacity level and a fault intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCell {
    /// Units per zone; `None` is the unbounded (independent-runs) pool.
    pub capacity: Option<u64>,
    /// Shared intensity fed to both fault planes (0 = fault-free).
    pub intensity: f64,
    /// Fleet-wide total cost in dollars.
    pub total_cost: f64,
    /// Jobs that fell back to on-demand at some point.
    pub on_demand_rate: f64,
    /// Ladder rung 1 firings (redundant zones shed).
    pub zones_shed: u64,
    /// Ladder rung 2 firings (starts deferred under admission control).
    pub start_deferrals: u64,
    /// Ladder rung 3 firings (spills to on-demand).
    pub capacity_spills: u64,
    /// The pool's lifetime counters after the fleet finished.
    pub pool: PoolStats,
    /// Conservation held: every debit credited back.
    pub pool_balanced: bool,
    /// Jobs that missed their deadline. Must be zero.
    pub violations: usize,
    /// Fleet size.
    pub n_jobs: usize,
}

impl FleetCell {
    /// Display label for the capacity level.
    pub fn capacity_label(&self) -> String {
        match self.capacity {
            None => "unbounded".into(),
            Some(u) => format!("{u}/zone"),
        }
    }
}

/// The study result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosFleet {
    /// All cells, grouped by capacity level then intensity.
    pub cells: Vec<FleetCell>,
    /// Fleet metrics merged across every cell (order-independent).
    pub metrics: RunMetrics,
}

impl ChaosFleet {
    /// Total deadline violations across the study (must be zero).
    pub fn total_violations(&self) -> usize {
        self.cells.iter().map(|c| c.violations).sum()
    }

    /// Whether capacity conservation held in every cell.
    pub fn all_balanced(&self) -> bool {
        self.cells.iter().all(|c| c.pool_balanced)
    }

    /// The study-wide merged metrics (for artifacts).
    pub fn merged_metrics(&self) -> &RunMetrics {
        &self.metrics
    }
}

/// A deterministic mixed fleet: `n_jobs` jobs cycling through slacks,
/// workloads, checkpoint-cost profiles, policies, redundancy degrees and
/// staggered starts — the heterogeneity the fleet plane exists for.
/// Adaptive is excluded so the same mix runs under bounded pools.
pub fn fleet_mix(
    mkt: &MarketCtx,
    seed: u64,
    intensity: f64,
    n_jobs: usize,
    era: Era,
) -> Vec<FleetJob> {
    let traces = mkt.traces();
    let zones: Vec<ZoneId> = traces.zone_ids().collect();
    // Cluster the fleet inside one window (staggered by 2 h) so jobs
    // actually overlap in time — contention needs concurrency.
    let base_start = experiment_starts(traces, run_span_for(SimDuration::from_hours(16)), 8)[0];
    let bid = Price::from_millis(810);
    (0..n_jobs)
        .map(|i| {
            let slack = [15, 25, 40][i % 3];
            let work_h = [6, 8, 10][(i / 3) % 3];
            let costs = if i % 2 == 0 {
                CkptCosts::LOW
            } else {
                CkptCosts::HIGH
            };
            let kind = if i % 2 == 0 {
                PolicyKind::Periodic
            } else {
                PolicyKind::MarkovDaly
            };
            let scheme = if i % 3 == 2 {
                Scheme::Single {
                    kind,
                    zone: zones[i % zones.len()],
                }
            } else {
                Scheme::Redundant {
                    kind,
                    zones: zones.clone(),
                }
            };
            let mut cfg = ExperimentConfig::paper_default()
                .with_slack_percent(slack)
                .with_seed(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .with_faults(FaultPlan::with_intensity(intensity))
                .with_api_faults(ApiFaultPlan::with_intensity(intensity))
                .with_degrade(DegradePolicy::standard())
                .with_era(era);
            cfg.app = AppSpec::new(SimDuration::from_hours(work_h));
            cfg.deadline = cfg.app.work + SimDuration::from_secs(cfg.app.work.secs() * slack / 100);
            cfg.costs = costs;
            FleetJob {
                name: format!("job-{i:02}"),
                spec: RunSpec {
                    start: base_start + SimDuration::from_hours(2 * (i as u64 % 4)),
                    bid,
                    scheme,
                },
                cfg,
            }
        })
        .collect()
}

/// Run the study: every capacity level × intensity over the same mixed
/// fleet on a high-volatility market. `threads = 0` means one worker
/// per CPU (unbounded cells only; bounded cells run lock-step).
pub fn study(
    traces: &TraceSet,
    seed: u64,
    capacities: &[Option<u64>],
    intensities: &[f64],
    n_jobs: usize,
    threads: usize,
    era: Era,
) -> ChaosFleet {
    let n_zones = traces.zone_ids().count();
    let mkt = MarketCtx::new(traces.clone());
    let mut cells = Vec::new();
    let mut metrics = RunMetrics::default();
    for &capacity in capacities {
        for &intensity in intensities {
            let jobs = fleet_mix(&mkt, seed, intensity, n_jobs, era);
            let pool = Arc::new(match capacity {
                None => CapacityPool::unbounded(),
                Some(u) => CapacityPool::uniform(n_zones, u),
            });
            let outcome = FleetRequest::new(&mkt, &jobs, pool)
                .threads(threads)
                .metered(true)
                .execute()
                .expect("fleet mix is valid");
            let m = outcome.metrics.as_ref().expect("metered fleet");
            metrics.merge(m);
            let n = outcome.results.len();
            cells.push(FleetCell {
                capacity,
                intensity,
                total_cost: outcome.total_cost().as_dollars(),
                on_demand_rate: outcome.results.iter().filter(|r| r.used_on_demand).count() as f64
                    / n.max(1) as f64,
                zones_shed: m.zones_shed,
                start_deferrals: m.start_deferrals,
                capacity_spills: m.capacity_spills,
                pool: outcome.pool,
                pool_balanced: outcome.pool_balanced,
                violations: outcome.violations(),
                n_jobs: n,
            });
        }
    }
    ChaosFleet { cells, metrics }
}

/// Render the study as a table.
pub fn render(c: &ChaosFleet) -> String {
    let mut out = String::from(
        "Chaos-Fleet: capacity contention + both fault planes + degradation ladder\n\
         (high volatility, mixed fleet, B = $0.81, DegradePolicy::standard)\n\n  \
         capacity    intensity   total cost   denials   shed   defer   spill   on-demand   balanced   violations\n",
    );
    for cell in &c.cells {
        out.push_str(&format!(
            "  {:<10} {:>9.2}   ${:>9.2}   {:>7}   {:>4}   {:>5}   {:>5}   {:>8.0}%   {:>8}   {:>10}\n",
            cell.capacity_label(),
            cell.intensity,
            cell.total_cost,
            cell.pool.denials,
            cell.zones_shed,
            cell.start_deferrals,
            cell.capacity_spills,
            cell.on_demand_rate * 100.0,
            if cell.pool_balanced { "yes" } else { "NO" },
            cell.violations,
        ));
    }
    out.push_str(&format!(
        "\n  total deadline violations: {} (guarantee requires 0); capacity conserved: {}\n",
        c.total_violations(),
        if c.all_balanced() { "yes" } else { "NO" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_survives_contention_and_composed_faults() {
        let traces = redspot_trace::gen::GenConfig::high_volatility(23).generate();
        let c = study(
            &traces,
            23,
            &[None, Some(2)],
            &[0.0, 0.5],
            6,
            0,
            Era::Classic,
        );
        assert_eq!(c.cells.len(), 4);
        assert_eq!(
            c.total_violations(),
            0,
            "deadline violations under contention:\n{}",
            render(&c)
        );
        assert!(c.all_balanced(), "capacity leaked:\n{}", render(&c));
        for cell in &c.cells {
            assert_eq!(cell.n_jobs, 6);
            assert_eq!(cell.pool.debits, cell.pool.credits, "unbalanced counters");
            if cell.capacity.is_none() {
                // On-demand requests are counted even unbounded; the
                // gating counters must stay untouched.
                assert_eq!(
                    (cell.pool.debits, cell.pool.credits, cell.pool.denials),
                    (0, 0, 0),
                    "unbounded pool moved"
                );
            }
        }
    }

    #[test]
    fn tight_capacity_fires_the_ladder() {
        let traces = redspot_trace::gen::GenConfig::high_volatility(23).generate();
        let c = study(&traces, 23, &[Some(1)], &[0.0], 8, 0, Era::Classic);
        let cell = &c.cells[0];
        assert_eq!(cell.violations, 0, "{}", render(&c));
        assert!(
            cell.pool.denials > 0,
            "8 jobs on 1 unit/zone never contended:\n{}",
            render(&c)
        );
        assert!(
            cell.zones_shed + cell.start_deferrals + cell.capacity_spills > 0,
            "ladder never fired under starvation:\n{}",
            render(&c)
        );
    }

    #[test]
    fn render_reports_the_gates() {
        let c = ChaosFleet {
            metrics: RunMetrics::default(),
            cells: vec![FleetCell {
                capacity: Some(2),
                intensity: 0.0,
                total_cost: 12.0,
                on_demand_rate: 0.0,
                zones_shed: 1,
                start_deferrals: 0,
                capacity_spills: 0,
                pool: PoolStats::default(),
                pool_balanced: true,
                violations: 0,
                n_jobs: 4,
            }],
        };
        let text = render(&c);
        assert!(text.contains("total deadline violations: 0"));
        assert!(text.contains("capacity conserved: yes"));
        assert!(text.contains("2/zone"));
    }
}
