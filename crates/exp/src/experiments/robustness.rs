//! Robustness of the paper's headline comparison under market resampling.
//!
//! The paper's conclusions rest on one recorded year of prices; redspot's
//! on a calibrated generator. Block-bootstrapping the high-volatility
//! window produces an ensemble of statistically-similar markets — if
//! "redundancy beats the best single-zone policy at low slack" holds
//! across the ensemble, the conclusion is a property of the market
//! *statistics*, not of one lucky trace.

use crate::exec::RunRequest;
use crate::scheme::{RunSpec, Scheme};
use crate::windows::{experiment_starts, run_span_for};
use redspot_core::{ExperimentConfig, MarketCtx, PolicyKind};
use redspot_trace::bootstrap::{ensemble, BootstrapConfig};
use redspot_trace::gen::GenConfig;
use redspot_trace::{Price, TraceSet};

/// Outcome on one bootstrap variant.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantOutcome {
    /// Median single-zone cost (best of Periodic/Markov-Daly at $0.81,
    /// zones merged).
    pub single_median: f64,
    /// Median three-zone redundancy cost (best of P/M at $0.81).
    pub redundant_median: f64,
}

impl VariantOutcome {
    /// Whether redundancy won on this variant.
    pub fn redundancy_wins(&self) -> bool {
        self.redundant_median < self.single_median
    }
}

/// The ensemble study.
pub struct Robustness {
    /// Per-variant outcomes.
    pub variants: Vec<VariantOutcome>,
}

impl Robustness {
    /// Fraction of variants on which redundancy wins.
    pub fn redundancy_win_rate(&self) -> f64 {
        if self.variants.is_empty() {
            return 0.0;
        }
        self.variants.iter().filter(|v| v.redundancy_wins()).count() as f64
            / self.variants.len() as f64
    }
}

fn medians_on(traces: &TraceSet, n_starts: usize, threads: usize) -> VariantOutcome {
    let base = ExperimentConfig::paper_default().with_slack_percent(15);
    let bid = Price::from_millis(810);
    let starts = experiment_starts(traces, run_span_for(base.deadline), n_starts);
    let mkt = MarketCtx::new(traces.clone());

    let mut best_single = f64::INFINITY;
    let mut best_red = f64::INFINITY;
    for kind in [PolicyKind::Periodic, PolicyKind::MarkovDaly] {
        let mut singles = Vec::new();
        let mut reds = Vec::new();
        for &start in &starts {
            for zone in traces.zone_ids() {
                singles.push(RunSpec {
                    start,
                    bid,
                    scheme: Scheme::Single { kind, zone },
                });
            }
            reds.push(RunSpec {
                start,
                bid,
                scheme: Scheme::Redundant {
                    kind,
                    zones: traces.zone_ids().collect(),
                },
            });
        }
        let run = |specs: &[RunSpec]| -> Vec<f64> {
            RunRequest::new(&mkt, &base, specs)
                .threads(threads)
                .execute()
                .expect("robustness base config is valid")
                .results
                .iter()
                .map(|r| r.cost_dollars())
                .collect()
        };
        let s_costs = run(&singles);
        let r_costs = run(&reds);
        best_single = best_single.min(crate::report::median(&s_costs));
        best_red = best_red.min(crate::report::median(&r_costs));
    }
    VariantOutcome {
        single_median: best_single,
        redundant_median: best_red,
    }
}

/// Run the study: `n_variants` bootstrap resamples of the high-volatility
/// window, `n_starts` experiments each.
pub fn study(seed: u64, n_variants: usize, n_starts: usize, threads: usize) -> Robustness {
    let source = GenConfig::high_volatility(seed).generate();
    let cfg = BootstrapConfig {
        seed,
        ..BootstrapConfig::default()
    };
    let variants = ensemble(&source, &cfg, n_variants)
        .iter()
        .map(|t| medians_on(t, n_starts, threads))
        .collect();
    Robustness { variants }
}

/// Render the study.
pub fn render(r: &Robustness) -> String {
    let mut out = String::from(
        "Robustness: redundancy vs best single-zone (high volatility, 15% slack, B = $0.81)\n\
         across block-bootstrap resamples of the market:\n",
    );
    for (i, v) in r.variants.iter().enumerate() {
        out.push_str(&format!(
            "  variant {i}: single ${:>6.2}  redundant ${:>6.2}  -> {}\n",
            v.single_median,
            v.redundant_median,
            if v.redundancy_wins() {
                "redundancy wins"
            } else {
                "single-zone wins"
            },
        ));
    }
    out.push_str(&format!(
        "  redundancy win rate: {:.0}%\n",
        r.redundancy_win_rate() * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusion_is_stable_across_resamples() {
        let r = study(41, 3, 5, 0);
        assert_eq!(r.variants.len(), 3);
        // The paper's core claim must hold on (at least most of) the
        // ensemble, not just on the original trace.
        assert!(
            r.redundancy_win_rate() >= 2.0 / 3.0,
            "redundancy won on only {:.0}% of variants",
            r.redundancy_win_rate() * 100.0
        );
        for v in &r.variants {
            assert!(v.single_median > 0.0 && v.redundant_median > 0.0);
        }
    }

    #[test]
    fn render_lists_each_variant() {
        let r = Robustness {
            variants: vec![
                VariantOutcome {
                    single_median: 40.0,
                    redundant_median: 18.0,
                },
                VariantOutcome {
                    single_median: 20.0,
                    redundant_median: 25.0,
                },
            ],
        };
        let text = render(&r);
        assert!(text.contains("variant 0"));
        assert!(text.contains("redundancy wins"));
        assert!(text.contains("single-zone wins"));
        assert!(text.contains("50%"));
    }

    #[test]
    fn empty_study_is_zero() {
        assert_eq!(Robustness { variants: vec![] }.redundancy_win_rate(), 0.0);
    }
}
