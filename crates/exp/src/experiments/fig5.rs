//! Figure 5: the Adaptive policy against best-case Periodic, single-zone
//! Markov-Daly, and best-case redundancy, across the full evaluation grid
//! (volatility × checkpoint cost × slack — eight panels).

use crate::report::{median, LabeledBox};
use crate::setup::PaperSetup;
use crate::sweep::{adaptive_costs, best_by_median, redundant_costs, single_zone_costs};
use redspot_core::PolicyKind;
use redspot_trace::vol::Volatility;
use redspot_trace::{highlight_bids, Price};

/// One Figure-5 panel.
pub struct Fig5Panel {
    /// Regime.
    pub volatility: Volatility,
    /// Checkpoint cost, seconds.
    pub tc_secs: u64,
    /// Slack percentage.
    pub slack_pct: u64,
    /// Periodic at the $0.81 sweet-spot bid (zones merged).
    pub periodic: Vec<f64>,
    /// Single-zone Markov-Daly at $0.81 (zones merged).
    pub markov: Vec<f64>,
    /// Best-case redundancy `(label, costs)`.
    pub redundancy: (String, Vec<f64>),
    /// Adaptive.
    pub adaptive: Vec<f64>,
}

impl Fig5Panel {
    /// Boxplot rows in figure order (P, M, R, A).
    pub fn rows(&self) -> Vec<LabeledBox> {
        [
            ("P@$0.81".to_string(), &self.periodic),
            ("M@$0.81".to_string(), &self.markov),
            (format!("{}*", self.redundancy.0), &self.redundancy.1),
            ("Adaptive".to_string(), &self.adaptive),
        ]
        .into_iter()
        .filter_map(|(label, costs)| LabeledBox::from_costs(label, costs))
        .collect()
    }

    /// Median cost of the best non-adaptive candidate.
    pub fn best_existing_median(&self) -> f64 {
        [&self.periodic, &self.markov, &self.redundancy.1]
            .into_iter()
            .filter(|c| !c.is_empty())
            .map(|c| median(c))
            .fold(f64::INFINITY, f64::min)
    }

    /// Median cost of Adaptive.
    pub fn adaptive_median(&self) -> f64 {
        median(&self.adaptive)
    }

    /// Worst-case Adaptive cost relative to on-demand ($48).
    pub fn adaptive_worst_vs_od(&self) -> f64 {
        crate::report::maximum(&self.adaptive) / 48.0
    }
}

/// Compute one panel.
pub fn panel(setup: &PaperSetup, vol: Volatility, tc_secs: u64, slack_pct: u64) -> Fig5Panel {
    let base = setup.base_config(slack_pct, tc_secs);
    let sweet = Price::from_millis(810);
    let periodic = single_zone_costs(setup, vol, &base, PolicyKind::Periodic, sweet);
    let markov = single_zone_costs(setup, vol, &base, PolicyKind::MarkovDaly, sweet);
    let red_candidates = highlight_bids()
        .into_iter()
        .flat_map(|bid| {
            [PolicyKind::Periodic, PolicyKind::MarkovDaly].map(|kind| {
                (
                    format!("R({})@{bid}", kind.label()),
                    redundant_costs(setup, vol, &base, kind, bid),
                )
            })
        })
        .collect();
    let redundancy = best_by_median(red_candidates).unwrap_or(("R(none)".into(), Vec::new()));
    let adaptive = adaptive_costs(setup, vol, &base);
    Fig5Panel {
        volatility: vol,
        tc_secs,
        slack_pct,
        periodic,
        markov,
        redundancy,
        adaptive,
    }
}

/// Compute all eight panels (2 volatility × 2 `t_c` × 2 slack).
pub fn fig5(setup: &PaperSetup) -> Vec<Fig5Panel> {
    let mut panels = Vec::new();
    for vol in [Volatility::Low, Volatility::High] {
        for tc in [300u64, 900] {
            for slack in [15u64, 50] {
                panels.push(panel(setup, vol, tc, slack));
            }
        }
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_is_competitive_on_low_volatility() {
        let setup = PaperSetup::quick(13);
        let p = panel(&setup, Volatility::Low, 300, 15);
        // "Adaptive is always at least competitive with the best of the
        // other three" — allow simulation noise but catch regressions.
        assert!(
            p.adaptive_median() <= p.best_existing_median() * 1.6 + 1.0,
            "adaptive {} vs best existing {}",
            p.adaptive_median(),
            p.best_existing_median()
        );
        assert_eq!(p.rows().len(), 4);
    }

    #[test]
    fn adaptive_bounded_on_high_volatility() {
        let setup = PaperSetup::quick(13);
        let p = panel(&setup, Volatility::High, 300, 15);
        // "Total cost never exceeds 20% above the on-demand cost."
        assert!(
            p.adaptive_worst_vs_od() <= 1.2,
            "worst adaptive cost is {}x on-demand",
            p.adaptive_worst_vs_od()
        );
    }

    #[test]
    fn rows_render_in_figure_order() {
        let setup = PaperSetup::quick(13);
        let p = panel(&setup, Volatility::Low, 300, 50);
        let rows = p.rows();
        assert!(rows[0].label.starts_with("P@"));
        assert!(rows[1].label.starts_with("M@"));
        assert!(rows[2].label.starts_with('R'));
        assert_eq!(rows[3].label, "Adaptive");
    }
}
