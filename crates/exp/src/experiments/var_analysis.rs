//! Section 3.1: Vector Auto-Regression over the three zones' prices,
//! lag order chosen by the Akaike criterion, showing own-zone lagged
//! effects 1–2 orders of magnitude above cross-zone effects.

use crate::setup::PaperSetup;
use redspot_stats::{EffectSummary, VarModel};
use redspot_trace::vol::Volatility;

/// The VAR analysis result for one volatility window.
pub struct VarAnalysis {
    /// Regime analysed.
    pub volatility: Volatility,
    /// AIC-selected lag order.
    pub lag: usize,
    /// Own- vs cross-zone effect magnitudes.
    pub effects: EffectSummary,
}

/// Maximum lag order offered to the AIC selection.
pub const MAX_LAG: usize = 6;

/// Run the analysis on one volatility window.
pub fn analyse(setup: &PaperSetup, vol: Volatility) -> Option<VarAnalysis> {
    let traces = setup.traces(vol);
    let series: Vec<Vec<f64>> = traces
        .zones()
        .iter()
        .map(|z| z.samples().iter().map(|p| p.as_dollars()).collect())
        .collect();
    let model = VarModel::fit_auto(&series, MAX_LAG)?;
    Some(VarAnalysis {
        volatility: vol,
        lag: model.p,
        effects: model.effect_summary(),
    })
}

/// Render both windows' analyses.
pub fn render(analyses: &[VarAnalysis]) -> String {
    let mut out =
        String::from("Section 3.1 VAR analysis (own-zone vs cross-zone lagged price effects):\n");
    for a in analyses {
        out.push_str(&format!(
            "  {:>4} volatility: VAR({}) | own {:.4} cross {:.4} | ratio {:.1}x ({:.1} orders of magnitude)\n",
            a.volatility.to_string(),
            a.lag,
            a.effects.own,
            a.effects.cross,
            a.effects.ratio(),
            a.effects.orders_of_magnitude(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_are_order_of_magnitude_independent() {
        let setup = PaperSetup::new(23, 6);
        for vol in [Volatility::Low, Volatility::High] {
            let a = analyse(&setup, vol).expect("VAR fits a month of samples");
            assert!(a.lag >= 1 && a.lag <= MAX_LAG);
            assert!(
                a.effects.ratio() > 10.0,
                "{vol:?}: own/cross ratio only {:.2}",
                a.effects.ratio()
            );
        }
    }

    #[test]
    fn render_reports_both_windows() {
        let setup = PaperSetup::new(23, 6);
        let analyses: Vec<_> = [Volatility::Low, Volatility::High]
            .into_iter()
            .filter_map(|v| analyse(&setup, v))
            .collect();
        let text = render(&analyses);
        assert!(text.contains("low volatility"));
        assert!(text.contains("high volatility"));
        assert!(text.contains("orders of magnitude"));
    }
}
