//! Validation of the Appendix-B Markov model: does the Chapman-Kolmogorov
//! expected up-time actually predict how long a zone stays affordable?
//!
//! For many `(time, zone)` points in the high-volatility window we build
//! the model from the preceding two days, predict `E[T_u]` at a bid, and
//! compare with the *observed* time until the price first exceeds the bid.
//! A useful model separates short-lived from long-lived opportunities;
//! we report the rank correlation proxy (Pearson on log uptimes) and the
//! mean signed log-error.

use crate::setup::PaperSetup;
use redspot_core::policy::markov_daly::MARKOV_BIN_MILLIS;
use redspot_markov::MarkovModel;
use redspot_stats::descriptive::{correlation, mean};
use redspot_trace::vol::Volatility;
use redspot_trace::{Price, SimDuration, SimTime, Window, PRICE_STEP};

/// One prediction/observation pair, log-seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Predicted expected up-time, seconds.
    pub predicted: f64,
    /// Observed up-time, seconds.
    pub observed: f64,
}

/// Aggregated validation result.
pub struct MarkovValidation {
    /// Per-point samples.
    pub samples: Vec<Sample>,
    /// Pearson correlation of log-uptimes.
    pub log_correlation: f64,
    /// Mean of log(predicted / observed) — bias of the model.
    pub mean_log_error: f64,
}

/// Observed time from `t` until the zone's price first exceeds `bid`
/// (capped at the trace end).
fn observed_uptime(series: &redspot_trace::PriceSeries, t: SimTime, bid: Price) -> SimDuration {
    let mut cur = t;
    loop {
        match series.next_price_change(cur) {
            Some((at, price)) => {
                if price > bid {
                    return at.since(t);
                }
                cur = at;
            }
            None => return series.end().since(t),
        }
    }
}

/// Run the validation at `bid` over the high-volatility window.
pub fn validate(setup: &PaperSetup, bid: Price) -> MarkovValidation {
    let traces = setup.traces(Volatility::High);
    let history = SimDuration::from_hours(48);
    let mut samples = Vec::new();
    // Every 6 hours, every zone.
    let mut t = traces.start() + history;
    while t + SimDuration::from_hours(48) < traces.end() {
        for z in traces.zone_ids() {
            let series = traces.zone(z);
            let price = series.price_at(t);
            if price > bid {
                continue; // not up: nothing to predict
            }
            let window = Window::new(t.saturating_sub(history), t);
            let model = MarkovModel::with_bin(series, window, MARKOV_BIN_MILLIS);
            let predicted = model.expected_uptime(price, bid).secs() as f64;
            let observed = observed_uptime(series, t, bid).secs() as f64;
            samples.push(Sample {
                predicted: predicted.max(PRICE_STEP as f64 / 2.0),
                observed: observed.max(PRICE_STEP as f64 / 2.0),
            });
        }
        t += SimDuration::from_hours(6);
    }
    let logs_p: Vec<f64> = samples.iter().map(|s| s.predicted.ln()).collect();
    let logs_o: Vec<f64> = samples.iter().map(|s| s.observed.ln()).collect();
    let log_correlation = correlation(&logs_p, &logs_o).unwrap_or(0.0);
    let diffs: Vec<f64> = logs_p.iter().zip(&logs_o).map(|(p, o)| p - o).collect();
    let mean_log_error = mean(&diffs).unwrap_or(0.0);
    MarkovValidation {
        samples,
        log_correlation,
        mean_log_error,
    }
}

/// Render the validation summary.
pub fn render(v: &MarkovValidation, bid: Price) -> String {
    format!(
        "Markov model validation (Appendix B) at bid {bid}:\n  \
         {} prediction points | log-uptime correlation {:.2} | mean log-error {:+.2} \
         (e^err = {:.2}x)\n",
        v.samples.len(),
        v.log_correlation,
        v.mean_log_error,
        v.mean_log_error.exp(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_scale_is_calibrated_on_stochastic_market() {
        // On the regime-switching generator, spell durations are
        // geometric, hence *memoryless*: no model can rank-predict the
        // remaining up-time from the current state (the paper's Section 2
        // cites Ben-Yehuda et al. on exactly this unpredictability). What
        // the Markov-Daly policy actually needs is the right *scale* of
        // E[T_u], which we verify here: within a factor of ~5.
        let setup = PaperSetup::quick(37);
        let v = validate(&setup, Price::from_millis(810));
        assert!(v.samples.len() > 50, "only {} samples", v.samples.len());
        assert!(
            v.mean_log_error.abs() < 1.7,
            "scale bias e^{}",
            v.mean_log_error
        );
        assert!(v
            .samples
            .iter()
            .all(|s| s.predicted > 0.0 && s.observed > 0.0));
    }

    #[test]
    fn model_predicts_deterministic_cycles_exactly() {
        // A deterministic price cycle (each level appears in exactly one
        // phase) makes the empirical chain deterministic, so Eq. 2-3 must
        // recover the exact remaining up-time from any phase.
        use redspot_trace::PriceSeries;
        let m = |v: u64| Price::from_millis(v);
        // 6 up phases (distinct levels under the bid), 2 down phases.
        let cycle = [300u64, 350, 400, 450, 500, 550, 900, 950];
        let samples: Vec<Price> = (0..400).map(|i| m(cycle[i % cycle.len()])).collect();
        let series = PriceSeries::new(SimTime::ZERO, samples);
        let model = MarkovModel::with_bin(&series, Window::new(series.start(), series.end()), 10);
        let bid = m(810);
        for (phase, &level) in cycle.iter().enumerate().take(6) {
            let remaining_steps = 6 - phase;
            let predicted = model.expected_uptime(m(level), bid);
            let expected = SimDuration::from_secs(remaining_steps as u64 * PRICE_STEP);
            assert_eq!(
                predicted, expected,
                "phase {phase}: predicted {predicted}, expected {expected}"
            );
        }
    }

    #[test]
    fn observed_uptime_is_exact_on_known_series() {
        use redspot_trace::PriceSeries;
        let m = |v: u64| Price::from_millis(v);
        let s = PriceSeries::new(SimTime::ZERO, vec![m(300), m(300), m(300), m(900), m(300)]);
        assert_eq!(
            observed_uptime(&s, SimTime::ZERO, m(810)),
            SimDuration::from_secs(3 * PRICE_STEP)
        );
        // Never exceeds the bid: capped at trace end.
        assert_eq!(
            observed_uptime(&s, SimTime::from_secs(4 * PRICE_STEP), m(10_000)),
            SimDuration::from_secs(PRICE_STEP)
        );
    }
}
