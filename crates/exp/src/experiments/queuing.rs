//! Section 5's queuing-delay measurement: the paper submitted spot
//! requests twice daily for two months and measured mean 299.6 s,
//! best case 143 s, worst case 880 s. This experiment samples our delay
//! model at the same cadence and reports the same statistics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use redspot_market::DelayModel;
use redspot_stats::Histogram;

/// Queuing-delay study results.
pub struct QueuingStudy {
    /// Sample mean, seconds.
    pub mean: f64,
    /// Smallest observed delay.
    pub min: u64,
    /// Largest observed delay.
    pub max: u64,
    /// Number of samples (2/day × 60 days, as measured in the paper).
    pub n: usize,
    /// Delay histogram.
    pub histogram: Histogram,
}

/// Run the study: two samples per day for `days` days.
pub fn study(seed: u64, days: usize) -> QueuingStudy {
    let model = DelayModel::paper();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = days * 2;
    let mut histogram = Histogram::new(100.0, 900.0, 16);
    let mut min = u64::MAX;
    let mut max = 0u64;
    let mut total = 0u64;
    for _ in 0..n {
        let d = model.sample(&mut rng).secs();
        histogram.record(d as f64);
        min = min.min(d);
        max = max.max(d);
        total += d;
    }
    QueuingStudy {
        mean: total as f64 / n as f64,
        min,
        max,
        n,
        histogram,
    }
}

/// Render the study next to the paper's measurements.
pub fn render(s: &QueuingStudy) -> String {
    format!(
        "Spot queuing delay ({} requests):\n  measured: mean {:.1}s min {}s max {}s\n  paper:    mean 299.6s min 143s max 880s\n{}",
        s.n, s.mean, s.min, s.max, s.histogram.render(40)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_reproduces_paper_statistics() {
        let s = study(1, 600); // more samples than the paper for stability
        assert!((s.mean - 299.6).abs() < 20.0, "mean {}", s.mean);
        assert!(s.min >= 143);
        assert!(s.max <= 880);
        assert_eq!(s.n, 1_200);
    }

    #[test]
    fn render_compares_to_paper() {
        let s = study(1, 60);
        let text = render(&s);
        assert!(text.contains("paper:    mean 299.6s"));
        assert!(text.contains("120 requests"));
    }
}
