//! Figure 6: Large-bid (over a range of cost-control thresholds `L`,
//! plus the thresholdless Naive variant) against Adaptive. The paper's
//! point: Large-bid can beat Adaptive's median at the right threshold,
//! but its *worst case* reaches multiples of the on-demand cost, and the
//! sweet-spot threshold is unknowable in advance.

use crate::report::{maximum, median, LabeledBox};
use crate::setup::PaperSetup;
use crate::sweep::{adaptive_costs, large_bid_costs};
use redspot_trace::vol::Volatility;
use redspot_trace::Price;

/// The threshold sweep used in the figure: $0.27 (lowest spot) up to
/// $20.02 ("Max", the largest observed price).
pub fn threshold_grid() -> Vec<Price> {
    vec![
        Price::from_millis(270),
        Price::from_millis(810),
        Price::from_millis(2_400),
        Price::from_millis(5_000),
        Price::MAX_OBSERVED_SPOT,
    ]
}

/// One Figure-6 panel (one volatility window, one `(t_c, slack)` cell).
pub struct Fig6Panel {
    /// Regime.
    pub volatility: Volatility,
    /// Checkpoint cost, seconds.
    pub tc_secs: u64,
    /// Slack percentage.
    pub slack_pct: u64,
    /// `(threshold label, costs)` per Large-bid variant, Naive last.
    pub large_bid: Vec<(String, Vec<f64>)>,
    /// Adaptive costs.
    pub adaptive: Vec<f64>,
}

impl Fig6Panel {
    /// Boxplot rows: each Large-bid threshold, then Adaptive.
    pub fn rows(&self) -> Vec<LabeledBox> {
        self.large_bid
            .iter()
            .filter_map(|(l, c)| LabeledBox::from_costs(format!("L={l}"), c))
            .chain(LabeledBox::from_costs("Adaptive", &self.adaptive))
            .collect()
    }

    /// Worst observed Large-bid cost across all thresholds, relative to
    /// on-demand ($48) — the paper reports up to 3.8×.
    pub fn large_bid_worst_vs_od(&self) -> f64 {
        self.large_bid
            .iter()
            .map(|(_, c)| maximum(c))
            .fold(0.0f64, f64::max)
            / 48.0
    }

    /// Worst Adaptive cost relative to on-demand.
    pub fn adaptive_worst_vs_od(&self) -> f64 {
        maximum(&self.adaptive) / 48.0
    }

    /// Best Large-bid median across thresholds (the unknowable sweet spot).
    pub fn best_large_bid_median(&self) -> f64 {
        self.large_bid
            .iter()
            .filter(|(_, c)| !c.is_empty())
            .map(|(_, c)| median(c))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Compute one panel.
pub fn panel(setup: &PaperSetup, vol: Volatility, tc_secs: u64, slack_pct: u64) -> Fig6Panel {
    let base = setup.base_config(slack_pct, tc_secs);
    let mut large_bid: Vec<(String, Vec<f64>)> = threshold_grid()
        .into_iter()
        .map(|l| {
            let label = if l == Price::MAX_OBSERVED_SPOT {
                "Max".to_string()
            } else {
                l.to_string()
            };
            (label, large_bid_costs(setup, vol, &base, Some(l)))
        })
        .collect();
    large_bid.push(("Naive".into(), large_bid_costs(setup, vol, &base, None)));
    let adaptive = adaptive_costs(setup, vol, &base);
    Fig6Panel {
        volatility: vol,
        tc_secs,
        slack_pct,
        large_bid,
        adaptive,
    }
}

/// The two published panels: low and high volatility at the default
/// `(t_c = 300 s, slack = 15 %)` cell.
pub fn fig6(setup: &PaperSetup) -> Vec<Fig6Panel> {
    [Volatility::Low, Volatility::High]
        .into_iter()
        .map(|vol| panel(setup, vol, 300, 15))
        .collect()
}

/// The worst-case stress panel behind the paper's "as high as 3.8x the
/// on-demand costs" observation: experiments bracketing the $20.02
/// extreme spike in the 12-month history ("March 13th to 14th, 2013").
/// Large-bid variants whose threshold exceeds the spike pay spiked hours;
/// Adaptive never exceeds its bound.
pub struct SpikeStress {
    /// `(threshold label, costs)` per Large-bid variant, Naive last.
    pub large_bid: Vec<(String, Vec<f64>)>,
    /// Adaptive costs over the same starts.
    pub adaptive: Vec<f64>,
}

impl SpikeStress {
    /// Worst Large-bid cost across all variants relative to on-demand.
    pub fn large_bid_worst_vs_od(&self) -> f64 {
        self.large_bid
            .iter()
            .map(|(_, c)| maximum(c))
            .fold(0.0f64, f64::max)
            / 48.0
    }

    /// Worst Adaptive cost relative to on-demand.
    pub fn adaptive_worst_vs_od(&self) -> f64 {
        maximum(&self.adaptive) / 48.0
    }

    /// Boxplot rows, Adaptive last.
    pub fn rows(&self) -> Vec<LabeledBox> {
        self.large_bid
            .iter()
            .filter_map(|(l, c)| LabeledBox::from_costs(format!("L={l}"), c))
            .chain(LabeledBox::from_costs("Adaptive", &self.adaptive))
            .collect()
    }
}

/// Run the spike-stress experiment: `n_starts` experiment starts placed
/// across the 30 hours leading into the spike.
pub fn spike_stress(seed: u64, n_starts: usize) -> SpikeStress {
    use crate::scheme::{run_spec, RunSpec, Scheme};
    use redspot_core::{ExperimentConfig, MarketCtx, NullRecorder};
    use redspot_trace::gen::year_history;
    use redspot_trace::{SimDuration, SimTime, ZoneId};

    let mkt = MarketCtx::new(year_history(seed));
    // The spike starts at month 3 + 13 days (see redspot_trace::gen).
    let spike_start_h = 3 * 30 * 24 + 13 * 24;
    let starts: Vec<SimTime> = (0..n_starts.max(1))
        .map(|i| {
            let back = 2 + (i as u64 * 20) % 28; // 2..30 hours before the spike
            SimTime::from_hours(spike_start_h - back)
        })
        .collect();
    let base = ExperimentConfig::paper_default();
    let _ = SimDuration::ZERO;

    let mut large_bid: Vec<(String, Vec<f64>)> = Vec::new();
    let mut thresholds: Vec<(String, Option<Price>)> = threshold_grid()
        .into_iter()
        .map(|l| {
            let label = if l == Price::MAX_OBSERVED_SPOT {
                "Max".to_string()
            } else {
                l.to_string()
            };
            (label, Some(l))
        })
        .collect();
    thresholds.push(("Naive".into(), None));
    for (label, threshold) in thresholds {
        let costs: Vec<f64> = starts
            .iter()
            .map(|&start| {
                // Zone 0 carries the spike.
                let spec = RunSpec {
                    start,
                    bid: base.bid,
                    scheme: Scheme::LargeBid {
                        threshold,
                        zone: ZoneId(0),
                    },
                };
                run_spec(&mkt, &spec, &base, NullRecorder).0.cost_dollars()
            })
            .collect();
        large_bid.push((label, costs));
    }
    let adaptive: Vec<f64> = starts
        .iter()
        .map(|&start| {
            let spec = RunSpec {
                start,
                bid: base.bid,
                scheme: Scheme::Adaptive,
            };
            run_spec(&mkt, &spec, &base, NullRecorder).0.cost_dollars()
        })
        .collect();
    SpikeStress {
        large_bid,
        adaptive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_has_better_worst_case_than_large_bid() {
        // The paper's key Figure-6 claim, on the high-volatility window.
        let setup = PaperSetup::quick(19);
        let p = panel(&setup, Volatility::High, 300, 15);
        assert!(
            p.adaptive_worst_vs_od() <= p.large_bid_worst_vs_od() + 0.05,
            "adaptive worst {}x vs large-bid worst {}x",
            p.adaptive_worst_vs_od(),
            p.large_bid_worst_vs_od()
        );
        assert!(p.adaptive_worst_vs_od() <= 1.2);
    }

    #[test]
    fn panel_has_all_threshold_rows() {
        let setup = PaperSetup::quick(19);
        let p = panel(&setup, Volatility::Low, 300, 15);
        assert_eq!(p.large_bid.len(), 6); // 5 thresholds + Naive
        let rows = p.rows();
        assert_eq!(rows.last().unwrap().label, "Adaptive");
        assert!(rows.iter().any(|r| r.label == "L=Max"));
        assert!(rows.iter().any(|r| r.label == "L=Naive"));
    }

    #[test]
    fn low_volatility_large_bid_is_cheap_at_low_threshold() {
        let setup = PaperSetup::quick(19);
        let p = panel(&setup, Volatility::Low, 300, 15);
        // On a calm market every variant should be far below on-demand.
        assert!(
            p.best_large_bid_median() < 20.0,
            "median {}",
            p.best_large_bid_median()
        );
    }
}

#[cfg(test)]
mod spike_tests {
    use super::*;

    #[test]
    fn extreme_spike_ruins_permissive_large_bids_but_not_adaptive() {
        let s = spike_stress(5, 4);
        // Naive (and Max-threshold) Large-bid pays $20.02 hours: multiples
        // of the $48 on-demand cost (the paper observed up to 3.8x).
        assert!(
            s.large_bid_worst_vs_od() > 1.5,
            "expected a blow-up, worst was {}x",
            s.large_bid_worst_vs_od()
        );
        // Adaptive stays within its bound.
        assert!(
            s.adaptive_worst_vs_od() <= 1.2,
            "adaptive worst {}x",
            s.adaptive_worst_vs_od()
        );
        assert_eq!(s.rows().last().unwrap().label, "Adaptive");
    }
}
