//! The paper's headline claims, checked end-to-end:
//!
//! 1. Adaptive is up to **7× cheaper than on-demand**;
//! 2. Adaptive is up to **44 % cheaper** than the best-case existing
//!    single-zone policy (high checkpoint cost, low volatility);
//! 3. Adaptive's cost **never exceeds 20 % above on-demand**;
//! 4. best-case redundancy beats the best single-zone policy by up to
//!    **23.9 %** (`t_c` = 300 s) / **56 %** (`t_c` = 900 s) at low slack.

use crate::experiments::fig5::{fig5, Fig5Panel};
use crate::report::median;
use crate::setup::PaperSetup;

/// Aggregated headline metrics.
pub struct Headline {
    /// Max on-demand / adaptive-median cost ratio across panels.
    pub best_vs_od: f64,
    /// Max relative saving of Adaptive vs the best single-zone policy.
    pub best_vs_single: f64,
    /// Worst adaptive cost across all panels relative to on-demand.
    pub worst_vs_od: f64,
    /// The panels the metrics came from.
    pub panels: Vec<Fig5Panel>,
}

/// Compute headline metrics from the full Figure-5 grid.
pub fn headline(setup: &PaperSetup) -> Headline {
    let panels = fig5(setup);
    let mut best_vs_od = 0.0f64;
    let mut best_vs_single = f64::MIN;
    let mut worst_vs_od = 0.0f64;
    for p in &panels {
        let a = p.adaptive_median();
        if a > 0.0 {
            best_vs_od = best_vs_od.max(48.0 / a);
        }
        let best_single = [&p.periodic, &p.markov]
            .into_iter()
            .filter(|c| !c.is_empty())
            .map(|c| median(c))
            .fold(f64::INFINITY, f64::min);
        if best_single.is_finite() && best_single > 0.0 {
            best_vs_single = best_vs_single.max((best_single - a) / best_single);
        }
        worst_vs_od = worst_vs_od.max(p.adaptive_worst_vs_od());
    }
    Headline {
        best_vs_od,
        best_vs_single,
        worst_vs_od,
        panels,
    }
}

/// Render the headline summary against the paper's numbers.
pub fn render(h: &Headline) -> String {
    format!(
        "Headline claims (measured vs paper):\n  \
         Adaptive vs on-demand:          up to {:.1}x cheaper   (paper: up to 7x)\n  \
         Adaptive vs best single-zone:   up to {:.1}% cheaper  (paper: up to 44%)\n  \
         Adaptive worst case:            {:.2}x on-demand      (paper bound: 1.20x)\n",
        h.best_vs_od,
        h.best_vs_single * 100.0,
        h.worst_vs_od,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claims_hold_in_quick_mode() {
        let setup = PaperSetup::quick(29);
        let h = headline(&setup);
        // Direction and rough magnitude, not exact numbers.
        assert!(
            h.best_vs_od > 2.0,
            "adaptive only {}x cheaper than on-demand",
            h.best_vs_od
        );
        assert!(
            h.worst_vs_od <= 1.2,
            "adaptive worst case {}x on-demand",
            h.worst_vs_od
        );
        assert_eq!(h.panels.len(), 8);
        let text = render(&h);
        assert!(text.contains("paper: up to 7x"));
    }
}
