//! Tables 2 and 3: the optimal policy (and its bid) per evaluation cell.

use crate::experiments::fig4::{sweep_cell, CellData};
use crate::report::{markdown_table, median};
use crate::setup::PaperSetup;
use redspot_trace::vol::Volatility;

/// One table cell: the winning configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Winner {
    /// Human-readable policy name (e.g. "Periodic", "Redundancy (P)").
    pub label: String,
    /// Winning bid, formatted.
    pub bid: String,
    /// Winning median cost in dollars.
    pub median_cost: f64,
    /// Whether a redundancy-based scheme won.
    pub redundant: bool,
}

/// Decide the winner of one sweep cell: lowest median across every
/// single-zone `(kind, bid)` and every redundancy `(kind, bid)`.
pub fn winner(cell: &CellData) -> Option<Winner> {
    let mut best: Option<Winner> = None;
    let mut consider = |label: String, bid: String, costs: &[f64], redundant: bool| {
        if costs.is_empty() {
            return;
        }
        let m = median(costs);
        if best.as_ref().is_none_or(|b| m < b.median_cost) {
            best = Some(Winner {
                label,
                bid,
                median_cost: m,
                redundant,
            });
        }
    };
    for (kind, bid, costs) in &cell.singles {
        consider(kind.to_string(), bid.to_string(), costs, false);
    }
    for (kind, bid, costs) in &cell.reds {
        consider(
            format!("Redundancy ({})", kind.label()),
            bid.to_string(),
            costs,
            true,
        );
    }
    best
}

/// A full Table 2/3: winners for (low/high volatility) × (15 %/50 % slack)
/// at one checkpoint cost.
pub struct OptimalPolicyTable {
    /// Checkpoint cost in seconds (300 → Table 2, 900 → Table 3).
    pub tc_secs: u64,
    /// `(volatility, slack %, winner)`.
    pub cells: Vec<(Volatility, u64, Winner)>,
}

/// Compute the optimal-policy table for one checkpoint cost.
pub fn optimal_policies(setup: &PaperSetup, tc_secs: u64) -> OptimalPolicyTable {
    let mut cells = Vec::new();
    for vol in [Volatility::Low, Volatility::High] {
        for slack in [15u64, 50] {
            let cell = sweep_cell(setup, vol, slack, tc_secs);
            if let Some(w) = winner(&cell) {
                cells.push((vol, slack, w));
            }
        }
    }
    OptimalPolicyTable { tc_secs, cells }
}

/// Render as a paper-style markdown table.
pub fn render(table: &OptimalPolicyTable) -> String {
    let mut rows = Vec::new();
    for vol in [Volatility::Low, Volatility::High] {
        let mut row = vec![vol.to_string()];
        for slack in [15u64, 50] {
            let cell = table
                .cells
                .iter()
                .find(|(v, s, _)| *v == vol && *s == slack)
                .map(|(_, _, w)| {
                    format!("{} (bid = {}, med ${:.2})", w.label, w.bid, w.median_cost)
                })
                .unwrap_or_else(|| "—".into());
            row.push(cell);
        }
        rows.push(row);
    }
    format!(
        "Optimal policies, t_c = {} s (paper Table {}):\n{}",
        table.tc_secs,
        if table.tc_secs == 300 { "2" } else { "3" },
        markdown_table(&["Volatility", "Slack 15%", "Slack 50%"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use redspot_core::PolicyKind;
    use redspot_trace::Price;

    fn fake_cell() -> CellData {
        CellData {
            volatility: Volatility::Low,
            slack_pct: 15,
            tc_secs: 300,
            singles: vec![
                (
                    PolicyKind::Periodic,
                    Price::from_millis(810),
                    vec![6.0, 7.0, 8.0],
                ),
                (
                    PolicyKind::MarkovDaly,
                    Price::from_millis(810),
                    vec![9.0, 10.0],
                ),
            ],
            reds: vec![(
                PolicyKind::Periodic,
                Price::from_millis(810),
                vec![15.0, 16.0],
            )],
        }
    }

    #[test]
    fn winner_is_lowest_median() {
        let w = winner(&fake_cell()).unwrap();
        assert_eq!(w.label, "Periodic");
        assert!(!w.redundant);
        assert_eq!(w.median_cost, 7.0);
        assert_eq!(w.bid, "$0.81");
    }

    #[test]
    fn redundancy_can_win() {
        let mut cell = fake_cell();
        cell.reds[0].2 = vec![1.0, 2.0];
        let w = winner(&cell).unwrap();
        assert!(w.redundant);
        assert_eq!(w.label, "Redundancy (P)");
    }

    #[test]
    fn render_contains_all_cells() {
        let table = OptimalPolicyTable {
            tc_secs: 300,
            cells: vec![
                (Volatility::Low, 15, winner(&fake_cell()).unwrap()),
                (Volatility::Low, 50, winner(&fake_cell()).unwrap()),
            ],
        };
        let text = render(&table);
        assert!(text.contains("Table 2"));
        assert!(text.contains("Periodic (bid = $0.81"));
        assert!(text.contains("| low |"));
        assert!(text.contains("—")); // missing high-volatility cells
    }

    #[test]
    fn empty_cell_has_no_winner() {
        let cell = CellData {
            volatility: Volatility::Low,
            slack_pct: 15,
            tc_secs: 300,
            singles: vec![],
            reds: vec![],
        };
        assert!(winner(&cell).is_none());
    }
}
