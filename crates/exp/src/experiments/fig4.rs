//! Figure 4 (and the shared sweep behind Tables 2–3): single-zone
//! checkpoint policies vs best-case redundancy, per volatility window and
//! slack value, at the three highlighted bids.

use crate::report::{median, LabeledBox};
use crate::setup::PaperSetup;
use crate::sweep::{best_by_median, redundant_costs, single_zone_costs};
use redspot_core::PolicyKind;
use redspot_trace::vol::Volatility;
use redspot_trace::{highlight_bids, Price};

/// The single-zone policies Figure 4 compares (paper order: Threshold,
/// Rising Edge, Periodic, Markov-Daly; then the policy-diversity
/// additions — Spot-on cadence and randomized bidding — so Tables 2–3
/// pick their winner from the full roster).
pub const SINGLE_KINDS: [PolicyKind; 6] = [
    PolicyKind::Threshold,
    PolicyKind::RisingEdge,
    PolicyKind::Periodic,
    PolicyKind::MarkovDaly,
    PolicyKind::SpotOnCadence,
    PolicyKind::RandomizedBid(crate::scheme::RANDOMIZED_BID_SEED),
];

/// Policies eligible for the redundancy-based best case.
pub const RED_KINDS: [PolicyKind; 3] = [
    PolicyKind::Periodic,
    PolicyKind::MarkovDaly,
    PolicyKind::SpotOnCadence,
];

/// The raw sweep for one evaluation cell `(volatility, slack, t_c)`.
pub struct CellData {
    /// Regime.
    pub volatility: Volatility,
    /// Slack as a percentage of `C`.
    pub slack_pct: u64,
    /// Checkpoint cost in seconds.
    pub tc_secs: u64,
    /// `(kind, bid, merged-zone costs)` for every single-zone combination.
    pub singles: Vec<(PolicyKind, Price, Vec<f64>)>,
    /// `(kind, bid, costs)` for every redundancy combination.
    pub reds: Vec<(PolicyKind, Price, Vec<f64>)>,
}

impl CellData {
    /// The best-case single-zone `(label, costs)` by median.
    pub fn best_single(&self) -> Option<(String, Vec<f64>)> {
        best_by_median(
            self.singles
                .iter()
                .map(|(k, b, c)| (format!("{}@{b}", k.label()), c.clone()))
                .collect(),
        )
    }

    /// The best-case redundancy `(label, costs)` by median.
    pub fn best_redundant(&self) -> Option<(String, Vec<f64>)> {
        best_by_median(
            self.reds
                .iter()
                .map(|(k, b, c)| (format!("R({})@{b}", k.label()), c.clone()))
                .collect(),
        )
    }

    /// Costs for a specific single-zone `(kind, bid)`, if swept.
    pub fn single(&self, kind: PolicyKind, bid: Price) -> Option<&[f64]> {
        self.singles
            .iter()
            .find(|(k, b, _)| *k == kind && *b == bid)
            .map(|(_, _, c)| c.as_slice())
    }
}

/// Run the sweep for one cell.
pub fn sweep_cell(setup: &PaperSetup, vol: Volatility, slack_pct: u64, tc_secs: u64) -> CellData {
    let base = setup.base_config(slack_pct, tc_secs);
    let bids = highlight_bids();
    let mut singles = Vec::new();
    for kind in SINGLE_KINDS {
        for bid in bids {
            singles.push((kind, bid, single_zone_costs(setup, vol, &base, kind, bid)));
        }
    }
    let mut reds = Vec::new();
    for kind in RED_KINDS {
        for bid in bids {
            reds.push((kind, bid, redundant_costs(setup, vol, &base, kind, bid)));
        }
    }
    CellData {
        volatility: vol,
        slack_pct,
        tc_secs,
        singles,
        reds,
    }
}

/// One rendered Figure-4 panel: per-policy boxplots at the $0.81 bid
/// (the bid the paper highlights as the sweet spot) plus the best-case
/// redundancy row.
pub struct Fig4Panel {
    /// The underlying sweep.
    pub cell: CellData,
    /// Boxplot rows in figure order.
    pub rows: Vec<LabeledBox>,
}

/// Build the four Figure-4 panels (low/high volatility × 15 %/50 % slack)
/// at `t_c` = 300 s.
pub fn fig4(setup: &PaperSetup) -> Vec<Fig4Panel> {
    let mut panels = Vec::new();
    for vol in [Volatility::Low, Volatility::High] {
        for slack in [15u64, 50] {
            let cell = sweep_cell(setup, vol, slack, 300);
            panels.push(panel_from_cell(cell));
        }
    }
    panels
}

/// Assemble the boxplot rows for a cell.
pub fn panel_from_cell(cell: CellData) -> Fig4Panel {
    let mut rows = Vec::new();
    for kind in SINGLE_KINDS {
        for bid in highlight_bids() {
            if let Some(costs) = cell.single(kind, bid) {
                if let Some(row) = LabeledBox::from_costs(format!("{}@{bid}", kind.label()), costs)
                {
                    rows.push(row);
                }
            }
        }
    }
    if let Some((label, costs)) = cell.best_redundant() {
        if let Some(row) = LabeledBox::from_costs(format!("{label}*"), &costs) {
            rows.push(row);
        }
    }
    Fig4Panel { cell, rows }
}

/// The paper's headline Figure-4 observation for high volatility at low
/// slack: best-case redundancy vs best single-zone, as a relative saving
/// (positive = redundancy cheaper).
pub fn redundancy_saving(cell: &CellData) -> Option<f64> {
    let (_, best_s) = cell.best_single()?;
    let (_, best_r) = cell.best_redundant()?;
    let ms = median(&best_s);
    let mr = median(&best_r);
    (ms > 0.0).then(|| (ms - mr) / ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cell(vol: Volatility) -> CellData {
        // Periodic + Markov-Daly only (Edge/Threshold sweeps are slower
        // and exercised by the binaries); two bids.
        let setup = PaperSetup::quick(11);
        let base = setup.base_config(15, 300);
        let bids = [Price::from_millis(810)];
        let mut singles = Vec::new();
        for kind in [PolicyKind::Periodic, PolicyKind::MarkovDaly] {
            for bid in bids {
                singles.push((kind, bid, single_zone_costs(&setup, vol, &base, kind, bid)));
            }
        }
        let reds = vec![(
            PolicyKind::Periodic,
            bids[0],
            redundant_costs(&setup, vol, &base, PolicyKind::Periodic, bids[0]),
        )];
        CellData {
            volatility: vol,
            slack_pct: 15,
            tc_secs: 300,
            singles,
            reds,
        }
    }

    #[test]
    fn low_volatility_single_zone_beats_redundancy() {
        // Table 2, low volatility: Periodic (single zone) wins because
        // redundancy pays for three zones without availability benefit.
        let cell = quick_cell(Volatility::Low);
        let (_, best_s) = cell.best_single().unwrap();
        let (_, best_r) = cell.best_redundant().unwrap();
        assert!(
            median(&best_s) < median(&best_r),
            "single {} vs redundant {}",
            median(&best_s),
            median(&best_r)
        );
    }

    #[test]
    fn panel_rows_are_labeled_and_nonempty() {
        let cell = quick_cell(Volatility::Low);
        let panel = panel_from_cell(cell);
        assert!(panel.rows.len() >= 3);
        assert!(panel.rows.iter().any(|r| r.label.starts_with("P@")));
        assert!(panel.rows.last().unwrap().label.contains('*'));
    }

    #[test]
    fn redundancy_saving_is_computable() {
        let cell = quick_cell(Volatility::High);
        let saving = redundancy_saving(&cell).unwrap();
        assert!(saving.abs() <= 1.0, "saving {saving}");
    }
}
