//! Chaos-API study: the deadline guarantee under a flaky control plane.
//!
//! The companion to the infrastructure [`chaos`](super::chaos) study.
//! Here the *market* behaves, but every control-plane verb misbehaves:
//! spot requests time out, throttle, or hit capacity walls; price reads
//! fail and leave the scheduler on stale data; even terminates and the
//! on-demand migration path need retries. The sweep turns the
//! [`ApiFaultPlan::with_intensity`](redspot_core::ApiFaultPlan::with_intensity)
//! knob across schemes and starts and reports cost degradation together
//! with the supervisor's health counters (retries, breaker trips, stale
//! reads). The hard requirement is unchanged: **zero deadline violations
//! in every cell** — a flaky API may make runs more expensive, never
//! late.

use crate::exec::RunRequest;
use crate::scheme::{guarantee_suite, RunSpec};
use crate::windows::{experiment_starts, run_span_for};
use redspot_core::{ApiFaultPlan, Era, ExperimentConfig, FaultPlan, MarketCtx};
use redspot_trace::{Price, TraceSet};

/// One cell of the sweep: a scheme at an API fault intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosApiCell {
    /// API fault intensity in `[0, 1]` (0 = the fault-free baseline).
    pub intensity: f64,
    /// Scheme label (see [`Scheme::label`]).
    pub scheme: String,
    /// Median cost in dollars across starts.
    pub median_cost: f64,
    /// Mean failed-and-retried spot requests per run.
    pub mean_spot_retries: f64,
    /// Mean stale price reads per run.
    pub mean_stale_reads: f64,
    /// Total circuit-breaker trips across the cell.
    pub breaker_trips: u64,
    /// Fraction of runs that fell back to on-demand.
    pub on_demand_rate: f64,
    /// Runs that missed the deadline. Must be zero: the guarantee is
    /// unconditional.
    pub violations: usize,
    /// Number of runs in the cell.
    pub n_runs: usize,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosApi {
    /// All cells, grouped by scheme then intensity.
    pub cells: Vec<ChaosApiCell>,
    /// Whether infrastructure faults were injected alongside the
    /// control-plane faults (the composed mode).
    pub composed: bool,
}

impl ChaosApi {
    /// Total deadline violations across the sweep (must be zero).
    pub fn total_violations(&self) -> usize {
        self.cells.iter().map(|c| c.violations).sum()
    }

    /// Cost of `cell` relative to the same scheme's fault-free baseline
    /// (1.0 = no degradation), if a baseline cell exists.
    pub fn degradation(&self, cell: &ChaosApiCell) -> Option<f64> {
        let base = self
            .cells
            .iter()
            .find(|c| c.scheme == cell.scheme && c.intensity == 0.0)?;
        if base.median_cost <= 0.0 {
            return None;
        }
        Some(cell.median_cost / base.median_cost)
    }
}

/// Run the sweep: every intensity × scheme × `n_starts` start times on
/// the given market. `threads = 0` means one worker per CPU.
///
/// With `composed`, the same intensity also drives the *infrastructure*
/// fault plane ([`FaultPlan::with_intensity`]), so checkpoint failures,
/// boot failures and blackouts land in the same runs as the flaky API —
/// the worst of both studies in one invocation.
pub fn study(
    traces: &TraceSet,
    intensities: &[f64],
    n_starts: usize,
    threads: usize,
    composed: bool,
    era: Era,
) -> ChaosApi {
    let base = ExperimentConfig::paper_default()
        .with_slack_percent(15)
        .with_era(era);
    let bid = Price::from_millis(810);
    let starts = experiment_starts(traces, run_span_for(base.deadline), n_starts);
    let mkt = MarketCtx::new(traces.clone());
    let schemes = guarantee_suite(traces.zone_ids().collect());

    let mut cells = Vec::new();
    for scheme in &schemes {
        for &intensity in intensities {
            let mut cfg = base
                .clone()
                .with_api_faults(ApiFaultPlan::with_intensity(intensity));
            if composed {
                cfg = cfg.with_faults(FaultPlan::with_intensity(intensity));
            }
            let specs: Vec<RunSpec> = starts
                .iter()
                .map(|&start| RunSpec {
                    start,
                    bid,
                    scheme: scheme.clone(),
                })
                .collect();
            let results = RunRequest::new(&mkt, &cfg, &specs)
                .threads(threads)
                .execute()
                .expect("chaos config is valid")
                .results;
            let costs: Vec<f64> = results.iter().map(|r| r.cost_dollars()).collect();
            let n_runs = results.len();
            cells.push(ChaosApiCell {
                intensity,
                scheme: scheme.label(),
                median_cost: crate::report::median(&costs),
                mean_spot_retries: results
                    .iter()
                    .map(|r| r.api.spot_retries as f64)
                    .sum::<f64>()
                    / n_runs.max(1) as f64,
                mean_stale_reads: results
                    .iter()
                    .map(|r| r.api.stale_price_reads as f64)
                    .sum::<f64>()
                    / n_runs.max(1) as f64,
                breaker_trips: results.iter().map(|r| r.api.breaker_trips).sum(),
                on_demand_rate: results.iter().filter(|r| r.used_on_demand).count() as f64
                    / n_runs.max(1) as f64,
                violations: results.iter().filter(|r| !r.met_deadline).count(),
                n_runs,
            });
        }
    }
    ChaosApi { cells, composed }
}

/// Render the sweep as a table.
pub fn render(c: &ChaosApi) -> String {
    let mut out = String::from(if c.composed {
        "Chaos-API+infra: deadline guarantee with both fault planes live (high volatility, 15% slack, B = $0.81)\n\
         fault classes: call timeouts, throttling, insufficient capacity, stale reads, retries\n\
         composed with: checkpoint write failures, corrupted restores, boot failures, zone blackouts\n\n  \
         scheme      intensity   median cost   vs baseline   retries   stale reads   trips   on-demand   violations\n"
    } else {
        "Chaos-API: deadline guarantee under a flaky control plane (high volatility, 15% slack, B = $0.81)\n\
         fault classes: call timeouts, throttling, insufficient capacity, stale price reads, on-demand retries\n\n  \
         scheme      intensity   median cost   vs baseline   retries   stale reads   trips   on-demand   violations\n"
    });
    for cell in &c.cells {
        let deg = c
            .degradation(cell)
            .map_or("      -".to_string(), |d| format!("{:>6.2}x", d));
        out.push_str(&format!(
            "  {:<10} {:>9.2}   ${:>10.2}   {deg}   {:>7.1}   {:>11.1}   {:>5}   {:>8.0}%   {:>10}\n",
            cell.scheme,
            cell.intensity,
            cell.median_cost,
            cell.mean_spot_retries,
            cell.mean_stale_reads,
            cell.breaker_trips,
            cell.on_demand_rate * 100.0,
            cell.violations,
        ));
    }
    out.push_str(&format!(
        "\n  total deadline violations: {} (guarantee requires 0)\n",
        c.total_violations()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traces() -> TraceSet {
        redspot_trace::gen::GenConfig::high_volatility(17).generate()
    }

    #[test]
    fn guarantee_survives_the_sweep() {
        let c = study(&traces(), &[0.0, 0.6], 4, 0, false, Era::Classic);
        assert_eq!(c.cells.len(), 10); // 5 schemes x 2 intensities
        assert_eq!(
            c.total_violations(),
            0,
            "deadline violations under API faults:\n{}",
            render(&c)
        );
        for cell in &c.cells {
            assert!(cell.n_runs > 0);
            assert!(cell.median_cost > 0.0);
        }
    }

    #[test]
    fn api_faults_surface_in_the_counters() {
        let c = study(&traces(), &[0.0, 0.8], 4, 0, false, Era::Classic);
        // Baseline cells must be clean, faulted cells must show activity
        // — otherwise the injection is not reaching the engine.
        for cell in &c.cells {
            if cell.intensity == 0.0 {
                assert_eq!(cell.mean_spot_retries, 0.0, "{}", render(&c));
                assert_eq!(cell.mean_stale_reads, 0.0, "{}", render(&c));
                assert_eq!(cell.breaker_trips, 0, "{}", render(&c));
            }
        }
        let noisy = c
            .cells
            .iter()
            .filter(|cell| cell.intensity > 0.0)
            .any(|cell| cell.mean_spot_retries > 0.0 && cell.mean_stale_reads > 0.0);
        assert!(
            noisy,
            "API fault injection left no trace in the counters:\n{}",
            render(&c)
        );
    }

    #[test]
    fn composed_mode_keeps_the_guarantee_with_both_planes_live() {
        let c = study(&traces(), &[0.0, 0.6], 4, 0, true, Era::Classic);
        assert!(c.composed);
        assert_eq!(
            c.total_violations(),
            0,
            "deadline violations with both fault planes:\n{}",
            render(&c)
        );
        assert!(render(&c).contains("Chaos-API+infra"));
        // Both planes must leave fingerprints in the same sweep: API
        // retries from the control plane, restarts cost more than the
        // API-only baseline would explain on its own is hard to assert
        // directly, so require the control-plane counters to be live.
        let noisy = c
            .cells
            .iter()
            .filter(|cell| cell.intensity > 0.0)
            .any(|cell| cell.mean_spot_retries > 0.0);
        assert!(
            noisy,
            "composed sweep shows no API activity:\n{}",
            render(&c)
        );
    }

    #[test]
    fn render_reports_violation_total() {
        let c = ChaosApi {
            composed: false,
            cells: vec![ChaosApiCell {
                intensity: 0.0,
                scheme: "P/z0".into(),
                median_cost: 10.0,
                mean_spot_retries: 0.0,
                mean_stale_reads: 0.0,
                breaker_trips: 0,
                on_demand_rate: 0.0,
                violations: 0,
                n_runs: 4,
            }],
        };
        let text = render(&c);
        assert!(text.contains("total deadline violations: 0"));
    }
}
