//! Sweep helpers: build run-spec batches for the evaluation grid and
//! collect cost samples.

use crate::exec::RunRequest;
use crate::scheme::{RunSpec, Scheme};
use crate::setup::PaperSetup;
use redspot_core::{ExperimentConfig, PolicyKind, RunResult};
use redspot_trace::vol::Volatility;
use redspot_trace::{Price, TraceSet, ZoneId};

/// All zone ids of a trace set (the redundancy configuration; the paper
/// reports diminishing returns below N = 3, so best-case redundancy uses
/// all three zones).
pub fn all_zones(traces: &TraceSet) -> Vec<ZoneId> {
    traces.zone_ids().collect()
}

/// Costs (in dollars) of a single-zone policy at one bid, with the three
/// per-zone boxplots **merged** exactly as the paper does "for each
/// single-zone checkpoint policy, we merge the results from all three
/// individual zones".
pub fn single_zone_costs(
    setup: &PaperSetup,
    vol: Volatility,
    base: &ExperimentConfig,
    kind: PolicyKind,
    bid: Price,
) -> Vec<f64> {
    let mkt = setup.ctx(vol);
    let mut specs = Vec::new();
    for start in setup.starts(vol, base.deadline) {
        for zone in mkt.traces().zone_ids() {
            specs.push(RunSpec {
                start,
                bid,
                scheme: Scheme::Single { kind, zone },
            });
        }
    }
    costs(execute(mkt, base, &specs, setup.threads))
}

/// Costs of a redundancy-based policy (all zones) at one bid.
pub fn redundant_costs(
    setup: &PaperSetup,
    vol: Volatility,
    base: &ExperimentConfig,
    kind: PolicyKind,
    bid: Price,
) -> Vec<f64> {
    let mkt = setup.ctx(vol);
    let zones = all_zones(mkt.traces());
    let specs: Vec<RunSpec> = setup
        .starts(vol, base.deadline)
        .into_iter()
        .map(|start| RunSpec {
            start,
            bid,
            scheme: Scheme::Redundant {
                kind,
                zones: zones.clone(),
            },
        })
        .collect();
    costs(execute(mkt, base, &specs, setup.threads))
}

/// Costs of the Adaptive meta-policy.
pub fn adaptive_costs(setup: &PaperSetup, vol: Volatility, base: &ExperimentConfig) -> Vec<f64> {
    let mkt = setup.ctx(vol);
    let specs: Vec<RunSpec> = setup
        .starts(vol, base.deadline)
        .into_iter()
        .map(|start| RunSpec {
            start,
            bid: base.bid,
            scheme: Scheme::Adaptive,
        })
        .collect();
    costs(execute(mkt, base, &specs, setup.threads))
}

/// Costs of Large-bid at one threshold (zones merged, like other
/// single-zone policies). `None` is the Naive (thresholdless) variant.
pub fn large_bid_costs(
    setup: &PaperSetup,
    vol: Volatility,
    base: &ExperimentConfig,
    threshold: Option<Price>,
) -> Vec<f64> {
    let mkt = setup.ctx(vol);
    let mut specs = Vec::new();
    for start in setup.starts(vol, base.deadline) {
        for zone in mkt.traces().zone_ids() {
            specs.push(RunSpec {
                start,
                bid: base.bid,
                scheme: Scheme::LargeBid { threshold, zone },
            });
        }
    }
    costs(execute(mkt, base, &specs, setup.threads))
}

/// Pick the entry with the lowest median from labeled cost samples —
/// the paper's "best-case" selection. Returns `(label, costs)`.
pub fn best_by_median(candidates: Vec<(String, Vec<f64>)>) -> Option<(String, Vec<f64>)> {
    candidates
        .into_iter()
        .filter(|(_, c)| !c.is_empty())
        .min_by(|a, b| {
            let ma = crate::report::median(&a.1);
            let mb = crate::report::median(&b.1);
            ma.partial_cmp(&mb).expect("costs are finite")
        })
}

fn execute(
    mkt: &redspot_core::MarketCtx,
    base: &ExperimentConfig,
    specs: &[RunSpec],
    threads: usize,
) -> Vec<RunResult> {
    RunRequest::new(mkt, base, specs)
        .threads(threads)
        .execute()
        .expect("sweep base config is valid")
        .results
}

fn costs(results: Vec<RunResult>) -> Vec<f64> {
    debug_assert!(
        results.iter().all(|r| r.met_deadline),
        "a run missed its deadline"
    );
    crate::report::dollars(&results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_by_median_picks_cheapest() {
        let picked = best_by_median(vec![
            ("a".into(), vec![10.0, 12.0]),
            ("b".into(), vec![5.0, 6.0]),
            ("c".into(), vec![]),
        ])
        .unwrap();
        assert_eq!(picked.0, "b");
    }

    #[test]
    fn quick_sweep_produces_merged_samples() {
        let setup = PaperSetup::quick(2);
        let base = setup.base_config(15, 300);
        let costs = single_zone_costs(
            &setup,
            Volatility::Low,
            &base,
            PolicyKind::Periodic,
            Price::from_millis(810),
        );
        // 6 experiments × 3 zones merged.
        assert_eq!(costs.len(), 18);
        // Low volatility at a comfortable bid: every run far below
        // on-demand.
        assert!(costs.iter().all(|&c| c < 48.0), "costs {costs:?}");
    }

    #[test]
    fn redundant_sweep_uses_one_run_per_start() {
        let setup = PaperSetup::quick(2);
        let base = setup.base_config(15, 300);
        let costs = redundant_costs(
            &setup,
            Volatility::Low,
            &base,
            PolicyKind::Periodic,
            Price::from_millis(810),
        );
        assert_eq!(costs.len(), 6);
    }
}
