//! Machine-readable experiment results: every figure panel can be dumped
//! as JSON for downstream plotting or regression tracking.

use crate::experiments::{fig4, fig5, fig6};
use crate::report::LabeledBox;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// One labeled cost sample series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesJson {
    /// Row label (policy/bid/threshold).
    pub label: String,
    /// Cost samples in dollars.
    pub samples: Vec<f64>,
    /// Convenience: the median of `samples`.
    pub median: f64,
}

impl SeriesJson {
    /// Build from a label and samples.
    pub fn new(label: impl Into<String>, samples: Vec<f64>) -> SeriesJson {
        let median = crate::report::median(&samples);
        SeriesJson {
            label: label.into(),
            samples,
            median,
        }
    }
}

/// One figure panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelJson {
    /// Panel title.
    pub title: String,
    /// The series, in display order.
    pub series: Vec<SeriesJson>,
}

impl PanelJson {
    /// Convert boxplot rows (loses raw samples — prefer the dedicated
    /// converters below when samples are available).
    pub fn from_rows(title: impl Into<String>, rows: &[LabeledBox]) -> PanelJson {
        PanelJson {
            title: title.into(),
            series: rows
                .iter()
                .map(|r| SeriesJson {
                    label: r.label.clone(),
                    samples: Vec::new(),
                    median: r.plot.median,
                })
                .collect(),
        }
    }
}

/// Convert a Figure-4 panel, raw samples included.
pub fn from_fig4(panel: &fig4::Fig4Panel) -> PanelJson {
    let cell = &panel.cell;
    let mut series: Vec<SeriesJson> = cell
        .singles
        .iter()
        .map(|(k, b, c)| SeriesJson::new(format!("{}@{b}", k.label()), c.clone()))
        .collect();
    if let Some((label, costs)) = cell.best_redundant() {
        series.push(SeriesJson::new(format!("{label}*"), costs));
    }
    PanelJson {
        title: format!(
            "fig4 {} volatility slack {}% tc {}s",
            cell.volatility, cell.slack_pct, cell.tc_secs
        ),
        series,
    }
}

/// Convert a Figure-5 panel.
pub fn from_fig5(panel: &fig5::Fig5Panel) -> PanelJson {
    PanelJson {
        title: format!(
            "fig5 {} volatility tc {}s slack {}%",
            panel.volatility, panel.tc_secs, panel.slack_pct
        ),
        series: vec![
            SeriesJson::new("P@$0.81", panel.periodic.clone()),
            SeriesJson::new("M@$0.81", panel.markov.clone()),
            SeriesJson::new(
                format!("{}*", panel.redundancy.0),
                panel.redundancy.1.clone(),
            ),
            SeriesJson::new("Adaptive", panel.adaptive.clone()),
        ],
    }
}

/// Convert a Figure-6 panel.
pub fn from_fig6(panel: &fig6::Fig6Panel) -> PanelJson {
    let mut series: Vec<SeriesJson> = panel
        .large_bid
        .iter()
        .map(|(l, c)| SeriesJson::new(format!("L={l}"), c.clone()))
        .collect();
    series.push(SeriesJson::new("Adaptive", panel.adaptive.clone()));
    PanelJson {
        title: format!(
            "fig6 {} volatility tc {}s slack {}%",
            panel.volatility, panel.tc_secs, panel.slack_pct
        ),
        series,
    }
}

/// Write panels as pretty JSON.
pub fn save(path: &Path, panels: &[PanelJson]) -> io::Result<()> {
    let file = io::BufWriter::new(std::fs::File::create(path)?);
    serde_json::to_writer_pretty(file, panels).map_err(io::Error::other)
}

/// Load panels back (regression tracking).
pub fn load(path: &Path) -> io::Result<Vec<PanelJson>> {
    let file = io::BufReader::new(std::fs::File::open(path)?);
    serde_json::from_reader(file).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_records_median() {
        let s = SeriesJson::new("x", vec![1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.samples.len(), 3);
    }

    #[test]
    fn round_trip_through_disk() {
        let panels = vec![PanelJson {
            title: "test".into(),
            series: vec![SeriesJson::new("a", vec![1.0, 2.0])],
        }];
        let dir = std::env::temp_dir().join("redspot-results-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panels.json");
        save(&path, &panels).unwrap();
        assert_eq!(load(&path).unwrap(), panels);
    }

    #[test]
    fn from_rows_keeps_medians() {
        let rows = vec![LabeledBox::from_costs("a", &[2.0, 4.0]).unwrap()];
        let p = PanelJson::from_rows("t", &rows);
        assert_eq!(p.series[0].median, 3.0);
        assert!(p.series[0].samples.is_empty());
    }
}
