//! Terminal rendering of the paper's figures and tables: labeled ASCII
//! boxplot panels (Figures 4–6) and markdown tables (Tables 2–3).

use redspot_core::{RunMetrics, RunResult};
use redspot_stats::boxplot::render_row;
use redspot_stats::Boxplot;

/// The paper's reference lines: on-demand cost ($48.00 for 20 h at
/// $2.40/h) and the lowest-spot-price cost ($5.40 for 20 h at $0.27/h).
pub const REF_LINES: [(f64, &str); 2] = [(48.0, "on-demand"), (5.4, "min-spot")];

/// One labeled boxplot row in a panel.
#[derive(Debug, Clone)]
pub struct LabeledBox {
    /// Row label (policy abbreviation, bid, …).
    pub label: String,
    /// The five-number summary.
    pub plot: Boxplot,
}

impl LabeledBox {
    /// Summarize a cost sample under a label. Returns `None` on empty data.
    pub fn from_costs(label: impl Into<String>, costs: &[f64]) -> Option<LabeledBox> {
        Boxplot::from_samples(costs).map(|plot| LabeledBox {
            label: label.into(),
            plot,
        })
    }
}

/// Extract cost-in-dollars samples from run results.
pub fn dollars(results: &[RunResult]) -> Vec<f64> {
    results.iter().map(RunResult::cost_dollars).collect()
}

const PLOT_WIDTH: usize = 56;
const LABEL_WIDTH: usize = 14;

/// Render a titled boxplot panel with reference lines, matching the
/// layout of the paper's cost figures.
pub fn boxplot_panel(title: &str, rows: &[LabeledBox], refs: &[(f64, &str)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if rows.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let hi_data = rows.iter().map(|r| r.plot.max).fold(0.0f64, f64::max);
    let hi_ref = refs.iter().map(|&(v, _)| v).fold(0.0f64, f64::max);
    let hi = (hi_data.max(hi_ref) * 1.05).max(1.0);
    let lo = 0.0;

    // Reference-line ruler.
    let mut ruler = vec![b' '; PLOT_WIDTH];
    for &(v, _) in refs {
        let pos = (((v - lo) / (hi - lo)).clamp(0.0, 1.0) * (PLOT_WIDTH - 1) as f64) as usize;
        ruler[pos] = b'!';
    }
    let ruler = String::from_utf8(ruler).expect("ASCII");
    out.push_str(&format!("{:>LABEL_WIDTH$}  {}\n", "", ruler));

    for row in rows {
        let bar = render_row(&row.plot, lo, hi, PLOT_WIDTH);
        out.push_str(&format!(
            "{:>LABEL_WIDTH$}  {}  med ${:.2} (n={})\n",
            row.label, bar, row.plot.median, row.plot.n
        ));
    }
    out.push_str(&format!(
        "{:>LABEL_WIDTH$}  ${:.2} … ${:.2}",
        "scale", lo, hi
    ));
    for &(v, name) in refs {
        out.push_str(&format!("   ! {name} = ${v:.2}"));
    }
    out.push('\n');
    out
}

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}|\n",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Render telemetry — a [`RunMetrics`] value from one run, or merged over
/// every run in a sweep — as a markdown table plus derived summary lines
/// (mean commit interval, mean uninterrupted up-run, dwell share).
pub fn sweep_metrics_table(m: &RunMetrics) -> String {
    let row = |k: &str, v: String| vec![k.to_string(), v];
    let mut rows = vec![
        row("runs", m.runs.to_string()),
        row("completed", m.completed.to_string()),
        row("events seen", m.events_seen.to_string()),
        row("restarts", m.restarts.to_string()),
        row("waits", m.waits.to_string()),
        row(
            "out-of-bid terminations",
            m.out_of_bid_terminations.to_string(),
        ),
        row(
            "voluntary terminations",
            m.voluntary_terminations.to_string(),
        ),
        row(
            "checkpoints (started/committed/aborted)",
            format!(
                "{}/{}/{}",
                m.checkpoints_started, m.checkpoints_committed, m.checkpoints_aborted
            ),
        ),
        row("on-demand migrations", m.migrations.to_string()),
        row("adaptive switches", m.adaptive_switches.to_string()),
        row("hours charged", m.hours_charged.to_string()),
        row("spot charged", format!("{}", m.spot_charged)),
    ];
    // Fault-layer symptoms only clutter clean sweeps: show when nonzero.
    let faults = [
        ("boot failures", m.boot_failures),
        ("blackouts", m.blackouts),
        ("checkpoint write failures", m.checkpoint_write_failures),
        ("restore fallbacks", m.restore_fallbacks),
        ("spot request failures", m.spot_request_failures),
        ("breaker trips", m.breaker_trips),
        ("stale price reads", m.stale_price_reads),
        ("terminate lag (s)", m.terminate_lag_secs),
        ("delayed on-demand requests", m.od_delays),
        ("trace write errors", m.trace_write_errors),
    ];
    for (k, v) in faults {
        if v > 0 {
            rows.push(row(k, v.to_string()));
        }
    }
    // Decision-cache traffic exists only on adaptive runs behind a
    // MarketCtx: show when any lookup happened.
    if m.decision_cache_hits + m.decision_cache_misses > 0 {
        rows.push(row(
            "decision cache (hits/misses)",
            format!("{}/{}", m.decision_cache_hits, m.decision_cache_misses),
        ));
    }
    let dwell_total =
        m.dwell.down_secs + m.dwell.booting_secs + m.dwell.up_secs + m.dwell.waiting_secs;
    let mut out = String::from("telemetry:\n");
    out.push_str(&markdown_table(&["metric", "value"], &rows));
    if m.commit_interval.count() > 0 {
        out.push_str(&format!(
            "  commit interval: mean {:.0}s, max {}s over {} gaps\n",
            m.commit_interval.mean_secs(),
            m.commit_interval.max_secs(),
            m.commit_interval.count(),
        ));
    }
    if m.up_run.count() > 0 {
        out.push_str(&format!(
            "  up-run length:   mean {:.0}s, max {}s over {} runs\n",
            m.up_run.mean_secs(),
            m.up_run.max_secs(),
            m.up_run.count(),
        ));
    }
    if dwell_total > 0 {
        out.push_str(&format!(
            "  zone dwell: up {:.1}%, waiting {:.1}%, booting {:.1}%, down {:.1}%\n",
            100.0 * m.dwell.up_secs as f64 / dwell_total as f64,
            100.0 * m.dwell.waiting_secs as f64 / dwell_total as f64,
            100.0 * m.dwell.booting_secs as f64 / dwell_total as f64,
            100.0 * m.dwell.down_secs as f64 / dwell_total as f64,
        ));
    }
    out
}

/// Median of a sample (0.0 when empty — report-level convenience).
pub fn median(xs: &[f64]) -> f64 {
    redspot_stats::descriptive::median(xs).unwrap_or(0.0)
}

/// Maximum of a sample (0.0 when empty).
pub fn maximum(xs: &[f64]) -> f64 {
    redspot_stats::descriptive::max(xs).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_renders_rows_and_refs() {
        let rows = vec![
            LabeledBox::from_costs("P@$0.27", &[5.0, 6.0, 7.0, 8.0]).unwrap(),
            LabeledBox::from_costs("R(best)", &[10.0, 12.0, 14.0]).unwrap(),
        ];
        let panel = boxplot_panel("Figure 4(a)", &rows, &REF_LINES);
        assert!(panel.contains("Figure 4(a)"));
        assert!(panel.contains("P@$0.27"));
        assert!(panel.contains("med $6.50"));
        assert!(panel.contains("on-demand = $48.00"));
        assert!(panel.contains('!'));
    }

    #[test]
    fn empty_panel_is_graceful() {
        let panel = boxplot_panel("empty", &[], &REF_LINES);
        assert!(panel.contains("(no data)"));
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["Volatility", "15%", "50%"],
            &[vec![
                "Low".into(),
                "Periodic".into(),
                "Periodic/Markov-Daly".into(),
            ]],
        );
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("| Low | Periodic |"));
    }

    #[test]
    fn helpers_handle_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(maximum(&[]), 0.0);
        assert!(LabeledBox::from_costs("x", &[]).is_none());
    }
}
