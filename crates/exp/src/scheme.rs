//! Execution schemes: everything the evaluation compares.

use redspot_core::policy::large_bid::LARGE_BID;
use redspot_core::policy::LargeBidPolicy;
use redspot_core::{
    on_demand_run, AdaptiveRunner, Engine, ExperimentConfig, MarketCtx, PolicyKind, Recorder,
    RunMetrics, RunResult,
};
use redspot_market::DelayModel;
use redspot_trace::{Price, SimTime, ZoneId};
use serde::{Deserialize, Serialize};

/// One way of executing the experiment — a policy plus its zone setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// A Section-4 policy on a single zone at the configured bid.
    Single {
        /// Checkpoint policy.
        kind: PolicyKind,
        /// The zone to bid in.
        zone: ZoneId,
    },
    /// A Section-4 policy replicated over several zones.
    Redundant {
        /// Checkpoint policy.
        kind: PolicyKind,
        /// Zones to replicate over.
        zones: Vec<ZoneId>,
    },
    /// The Section-7 adaptive meta-policy (chooses bid, N, and policy
    /// itself; the configured bid is ignored).
    Adaptive,
    /// The Large-bid baseline on a single zone. `threshold` is the user's
    /// cost-control value `L`; `None` is the Naive variant.
    LargeBid {
        /// Cost-control threshold `L`.
        threshold: Option<Price>,
        /// The zone to run in.
        zone: ZoneId,
    },
    /// The trivial on-demand baseline.
    OnDemand,
}

/// Draw seed the guarantee suites give [`PolicyKind::RandomizedBid`] —
/// fixed so every suite (chaos, era comparison, policy comparison) runs
/// the *same* randomized strategy and results stay reproducible.
pub const RANDOMIZED_BID_SEED: u64 = 0xB1D;

/// The scheme roster every deadline-guarantee suite sweeps: the paper's
/// three reference schemes plus the two policy-diversity additions
/// (Spot-on cadence, randomized bidding), all over the full zone set
/// except the single-zone control. Chaos, the era comparison, and the
/// policy comparison share this list so "the guarantee holds" always
/// means the same roster.
pub fn guarantee_suite(zones: Vec<ZoneId>) -> Vec<Scheme> {
    vec![
        Scheme::Single {
            kind: PolicyKind::Periodic,
            zone: ZoneId(0),
        },
        Scheme::Redundant {
            kind: PolicyKind::Periodic,
            zones: zones.clone(),
        },
        Scheme::Redundant {
            kind: PolicyKind::MarkovDaly,
            zones: zones.clone(),
        },
        Scheme::Redundant {
            kind: PolicyKind::SpotOnCadence,
            zones: zones.clone(),
        },
        Scheme::Redundant {
            kind: PolicyKind::RandomizedBid(RANDOMIZED_BID_SEED),
            zones,
        },
    ]
}

impl Scheme {
    /// Short label for tables and figures.
    pub fn label(&self) -> String {
        match self {
            Scheme::Single { kind, zone } => format!("{}/{zone}", kind.label()),
            Scheme::Redundant { kind, zones } => format!("R{}({})", zones.len(), kind.label()),
            Scheme::Adaptive => "A".into(),
            Scheme::LargeBid {
                threshold: Some(l), ..
            } => format!("L({l})"),
            Scheme::LargeBid {
                threshold: None, ..
            } => "L(Naive)".into(),
            Scheme::OnDemand => "OD".into(),
        }
    }
}

/// One simulation job: a scheme, at a bid, starting at an instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Experiment start time within the trace.
    pub start: SimTime,
    /// Bid price (ignored by Adaptive, Large-bid and On-demand).
    pub bid: Price,
    /// The scheme to execute.
    pub scheme: Scheme,
}

/// Execute one run spec against a shared [`MarketCtx`] with an explicit
/// telemetry sink. Deterministic given `(mkt, spec, base)`: the spec's
/// identity is folded into the seed so queuing delays differ across jobs
/// but never across reruns, and the context's decision cache only ever
/// substitutes bit-identical tables.
///
/// This is the one dispatch point every execution path feeds through;
/// batches should go through [`crate::exec::RunRequest`], which calls
/// this per cell.
pub fn run_spec<R: Recorder>(
    mkt: &MarketCtx,
    spec: &RunSpec,
    base: &ExperimentConfig,
    mut recorder: R,
) -> (RunResult, RunMetrics) {
    let traces = mkt.traces();
    let mut cfg = base.clone();
    cfg.bid = spec.bid;
    cfg.seed = mix_seed(base.seed, spec);
    // Policies that estimate uptimes share the context's Markov memo (a
    // no-op for the rest, and for uncached contexts).
    let build = |kind: &PolicyKind| {
        let mut policy = kind.build();
        if let Some(memo) = mkt.uptime_memo() {
            policy.attach_uptime_memo(memo);
        }
        policy
    };
    match &spec.scheme {
        Scheme::Single { kind, zone } => {
            cfg.zones = vec![*zone];
            Engine::with_recorder(traces, spec.start, cfg, build(kind), recorder).run_full()
        }
        Scheme::Redundant { kind, zones } => {
            cfg.zones = zones.clone();
            Engine::with_recorder(traces, spec.start, cfg, build(kind), recorder).run_full()
        }
        Scheme::Adaptive => {
            cfg.zones = traces.zone_ids().collect();
            AdaptiveRunner::new(traces, spec.start, cfg)
                .with_market_ctx(mkt)
                .run_with(recorder)
        }
        Scheme::LargeBid { threshold, zone } => {
            cfg.zones = vec![*zone];
            cfg.bid = LARGE_BID;
            let policy = match threshold {
                Some(l) => Box::new(LargeBidPolicy::new(*l)),
                None => Box::new(LargeBidPolicy::naive()),
            };
            Engine::with_recorder(traces, spec.start, cfg, policy, recorder).run_full()
        }
        Scheme::OnDemand => {
            let r = on_demand_run(spec.start, &cfg);
            for e in &r.events {
                recorder.record(e.clone());
            }
            (r, recorder.finish())
        }
    }
}

/// Fold a spec's identity into a config seed (FNV-style): stable across
/// reruns and independent of execution order, so queuing delays differ
/// across jobs but never across replays. Shared with the fleet plane,
/// which must mix identically for its unbounded-pool runs to be
/// bit-identical to [`run_spec`].
pub(crate) fn mix_seed(base: u64, spec: &RunSpec) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    eat(spec.start.secs());
    eat(spec.bid.millis());
    match &spec.scheme {
        Scheme::Single { kind, zone } => {
            eat(1);
            eat(kind.label().as_bytes()[0] as u64);
            eat(zone.0 as u64);
        }
        Scheme::Redundant { kind, zones } => {
            eat(2);
            eat(kind.label().as_bytes()[0] as u64);
            for z in zones {
                eat(z.0 as u64);
            }
        }
        Scheme::Adaptive => eat(3),
        Scheme::LargeBid { threshold, zone } => {
            eat(4);
            eat(threshold.map_or(0, |l| l.millis()));
            eat(zone.0 as u64);
        }
        Scheme::OnDemand => eat(5),
    }
    h
}

/// Convenience used throughout the harness: run with the zero-delay model
/// replaced by the paper's (kept for signature parity; `run_one` already
/// uses the paper delay model via `Engine::new`).
pub fn delay_model() -> DelayModel {
    DelayModel::paper()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redspot_core::NullRecorder;
    use redspot_trace::{PriceSeries, TraceSet};

    fn m(v: u64) -> Price {
        Price::from_millis(v)
    }

    fn flat3(price: u64, hours: u64) -> TraceSet {
        let samples = vec![m(price); (hours * 12) as usize];
        TraceSet::new(
            (0..3)
                .map(|_| PriceSeries::new(SimTime::ZERO, samples.clone()))
                .collect(),
        )
    }

    fn base() -> ExperimentConfig {
        ExperimentConfig::paper_default()
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(
            Scheme::Single {
                kind: PolicyKind::Periodic,
                zone: ZoneId(0)
            }
            .label(),
            "P/us-east-1a"
        );
        assert_eq!(
            Scheme::Redundant {
                kind: PolicyKind::MarkovDaly,
                zones: vec![ZoneId(0), ZoneId(1), ZoneId(2)]
            }
            .label(),
            "R3(M)"
        );
        assert_eq!(Scheme::Adaptive.label(), "A");
        assert_eq!(Scheme::OnDemand.label(), "OD");
        assert_eq!(
            Scheme::LargeBid {
                threshold: Some(m(270)),
                zone: ZoneId(0)
            }
            .label(),
            "L($0.27)"
        );
        assert_eq!(
            Scheme::LargeBid {
                threshold: None,
                zone: ZoneId(0)
            }
            .label(),
            "L(Naive)"
        );
    }

    #[test]
    fn all_schemes_execute_and_meet_deadline() {
        let traces = flat3(270, 80);
        let start = SimTime::from_hours(50);
        let schemes = vec![
            Scheme::Single {
                kind: PolicyKind::Periodic,
                zone: ZoneId(1),
            },
            Scheme::Redundant {
                kind: PolicyKind::MarkovDaly,
                zones: vec![ZoneId(0), ZoneId(1), ZoneId(2)],
            },
            Scheme::Adaptive,
            Scheme::LargeBid {
                threshold: Some(m(810)),
                zone: ZoneId(0),
            },
            Scheme::OnDemand,
        ];
        let mkt = MarketCtx::new(traces);
        for scheme in schemes {
            let spec = RunSpec {
                start,
                bid: m(810),
                scheme: scheme.clone(),
            };
            let r = run_spec(&mkt, &spec, &base(), NullRecorder).0;
            assert!(r.met_deadline, "{} missed the deadline", scheme.label());
        }
    }

    #[test]
    fn runs_are_deterministic_and_seed_sensitive() {
        let mkt = MarketCtx::new(flat3(270, 80));
        let spec = RunSpec {
            start: SimTime::from_hours(50),
            bid: m(810),
            scheme: Scheme::Single {
                kind: PolicyKind::Periodic,
                zone: ZoneId(0),
            },
        };
        let a = run_spec(&mkt, &spec, &base(), NullRecorder).0;
        let b = run_spec(&mkt, &spec, &base(), NullRecorder).0;
        assert_eq!(a, b);

        let other = RunSpec {
            bid: m(470),
            ..spec.clone()
        };
        assert_ne!(mix_seed(0, &spec), mix_seed(0, &other));
    }
}
