//! The paper's evaluation setup: one low-volatility and one
//! high-volatility month of three-zone prices, plus experiment sizing.

use crate::windows::{experiment_starts, run_span_for};
use redspot_core::{ExperimentConfig, MarketCtx};
use redspot_trace::gen::GenConfig;
use redspot_trace::vol::Volatility;
use redspot_trace::{SimDuration, SimTime, TraceSet};

/// Shared evaluation context for every figure and table.
pub struct PaperSetup {
    low: MarketCtx,
    high: MarketCtx,
    /// Experiments per volatility window (the paper runs 80).
    pub n_experiments: usize,
    /// Worker threads for sweeps (0 = all CPUs).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl PaperSetup {
    /// Build the setup with a given experiment count. Each volatility
    /// window gets a sweep-grade [`MarketCtx`] (whole-trace scan seed +
    /// decision cache), built once and shared by every figure and table.
    pub fn new(seed: u64, n_experiments: usize) -> PaperSetup {
        PaperSetup {
            low: MarketCtx::for_sweep(GenConfig::low_volatility(seed).generate()),
            high: MarketCtx::for_sweep(GenConfig::high_volatility(seed.wrapping_add(1)).generate()),
            n_experiments,
            threads: 0,
            seed,
        }
    }

    /// The paper-scale setup: 80 experiments per window.
    pub fn full(seed: u64) -> PaperSetup {
        PaperSetup::new(seed, 80)
    }

    /// A fast setup for tests and smoke runs.
    pub fn quick(seed: u64) -> PaperSetup {
        PaperSetup::new(seed, 6)
    }

    /// The trace set for a volatility regime.
    ///
    /// # Panics
    /// Panics for [`Volatility::Moderate`], which has no dedicated window
    /// in the paper's evaluation.
    pub fn traces(&self, vol: Volatility) -> &TraceSet {
        self.ctx(vol).traces()
    }

    /// The shared market context for a volatility regime — feed this to
    /// [`crate::exec::RunRequest`] so every cell of a sweep shares one
    /// scan seed and one decision cache.
    ///
    /// # Panics
    /// Panics for [`Volatility::Moderate`], which has no dedicated window
    /// in the paper's evaluation.
    pub fn ctx(&self, vol: Volatility) -> &MarketCtx {
        match vol {
            Volatility::Low => &self.low,
            Volatility::High => &self.high,
            Volatility::Moderate => panic!("no moderate-volatility evaluation window"),
        }
    }

    /// Experiment start times for a volatility regime and deadline.
    pub fn starts(&self, vol: Volatility, deadline: SimDuration) -> Vec<SimTime> {
        experiment_starts(self.traces(vol), run_span_for(deadline), self.n_experiments)
    }

    /// Base experiment configuration for a `(slack %, t_c)` cell of the
    /// evaluation grid. Sweeps run with a `NullRecorder` sink, so there
    /// is no event-log toggle to set here.
    pub fn base_config(&self, slack_pct: u64, tc_secs: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default()
            .with_slack_percent(slack_pct)
            .with_costs(redspot_ckpt::CkptCosts::symmetric_secs(tc_secs));
        cfg.seed = self.seed;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_generates_both_regimes() {
        let s = PaperSetup::quick(5);
        assert_eq!(s.traces(Volatility::Low).n_zones(), 3);
        assert_eq!(s.traces(Volatility::High).n_zones(), 3);
        let starts = s.starts(Volatility::Low, SimDuration::from_hours(23));
        assert_eq!(starts.len(), 6);
    }

    #[test]
    fn base_config_reflects_grid_cell() {
        let s = PaperSetup::quick(5);
        let cfg = s.base_config(50, 900);
        assert_eq!(cfg.slack(), SimDuration::from_hours(10));
        assert_eq!(cfg.costs.checkpoint.secs(), 900);
    }

    #[test]
    #[should_panic(expected = "no moderate-volatility")]
    fn moderate_regime_is_rejected() {
        PaperSetup::quick(5).traces(Volatility::Moderate);
    }
}
