//! Torn-write recovery: a shard journal killed at *any* byte of its
//! final record resumes correctly.
//!
//! The write path appends each cell as one checksummed line, so a
//! SIGKILL can leave the file ending in any strict prefix of the last
//! line. This suite runs a real (tiny) shard to completion, then — for
//! every byte offset inside the final record — truncates a copy of the
//! journal there and resumes. The resumed run must either replay the
//! torn cell or skip it (if the truncation point kept the whole line),
//! never panic, and never double-count: afterwards the journal must
//! contain every cell of the shard exactly once, and the merged
//! artifact must equal the uninterrupted run's.

use proptest::prelude::*;
use redspot_core::{ExperimentConfig, MarketCtx};
use redspot_exp::scheme::{RunSpec, Scheme};
use redspot_exp::shard::journal::scan_journal;
use redspot_exp::shard::merge::merge_scans;
use redspot_exp::shard::run::run_shard;
use redspot_exp::{fingerprint, ShardManifest};
use redspot_trace::{Price, PriceSeries, SimTime, TraceSet};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn flat_market(price_millis: u64, hours: u64) -> TraceSet {
    let samples = vec![Price::from_millis(price_millis); (hours * 12) as usize];
    TraceSet::new(
        (0..3)
            .map(|_| PriceSeries::new(SimTime::ZERO, samples.clone()))
            .collect(),
    )
}

fn grid(n_cells: usize) -> Vec<RunSpec> {
    (0..n_cells)
        .map(|i| RunSpec {
            start: SimTime::from_hours(50 + i as u64),
            bid: Price::from_millis(810),
            scheme: if i % 2 == 0 {
                Scheme::OnDemand
            } else {
                Scheme::LargeBid {
                    threshold: None,
                    zone: redspot_trace::ZoneId(i % 3),
                }
            },
        })
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("redspot-torn-write").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Exhaustive truncation sweep over the final record: for every cut
    /// point inside the last line, resume must recover to the exact
    /// uninterrupted journal.
    #[test]
    fn every_final_record_truncation_recovers(
        n_cells in 2usize..6,
        price in 200u64..900,
        seed in 0u64..100,
    ) {
        let mkt = MarketCtx::new(flat_market(price, 120));
        let base = ExperimentConfig::paper_default().with_seed(seed);
        let specs = grid(n_cells);
        let fp = fingerprint(&base, &specs);
        let manifest = ShardManifest::plan(specs.len(), 1, 1, fp).unwrap();

        // Reference: the uninterrupted run's journal bytes and merge.
        let ref_dir = tmp_dir(&format!("ref-{n_cells}-{price}-{seed}"));
        let report = run_shard(&mkt, &base, &specs, &manifest, &ref_dir, Some(2)).unwrap();
        prop_assert_eq!(report.executed, n_cells);
        prop_assert_eq!(report.skipped, 0);
        let reference = std::fs::read(&report.journal).unwrap();
        let ref_scan = scan_journal(&report.journal).unwrap();
        let (ref_merged, _) = merge_scans(vec![(report.journal.clone(), ref_scan)]).unwrap();

        // The final record spans from the end of the second-to-last
        // line to EOF.
        let text = std::str::from_utf8(&reference).unwrap();
        let body = text.strip_suffix('\n').unwrap();
        let final_start = body.rfind('\n').unwrap() + 1;

        let cut_dir = tmp_dir(&format!("cut-{n_cells}-{price}-{seed}"));
        for cut in final_start..=reference.len() {
            let path = cut_dir.join("shard-1-of-1.journal");
            std::fs::write(&path, &reference[..cut]).unwrap();

            let report = run_shard(&mkt, &base, &specs, &manifest, &cut_dir, Some(2)).unwrap();
            prop_assert!(report.resumed, "cut {} must resume", cut);
            // The torn cell is replayed iff the cut clipped its
            // payload. Cutting exactly at the line boundary keeps it
            // journaled, and cutting only the trailing newline keeps
            // the (checksum-valid) record too — resume just restores
            // the newline.
            let torn = cut < reference.len() - 1;
            prop_assert_eq!(report.executed, usize::from(torn), "cut {}", cut);
            prop_assert_eq!(report.skipped, n_cells - usize::from(torn), "cut {}", cut);
            prop_assert_eq!(report.truncated_torn_tail, torn && cut > final_start, "cut {}", cut);

            // Never double-counted: every cell exactly once, and the
            // recovered journal is byte-identical to the reference.
            let scan = scan_journal(&path).unwrap();
            let cells: Vec<usize> = scan.records.iter().map(|r| r.cell).collect();
            let unique: BTreeSet<usize> = cells.iter().copied().collect();
            prop_assert_eq!(unique.len(), cells.len(), "cut {} double-counted", cut);
            prop_assert_eq!(cells.len(), n_cells, "cut {} lost cells", cut);
            prop_assert_eq!(std::fs::read(&path).unwrap(), reference.clone(), "cut {}", cut);
            let (merged, _) = merge_scans(vec![(path.clone(), scan)]).unwrap();
            prop_assert_eq!(&merged, &ref_merged, "cut {}", cut);
        }
    }
}
