//! The sharded sweep plane's acceptance pin: a shard SIGKILL'd at an
//! arbitrary instant, resumed, and merged produces an artifact
//! byte-identical to an uninterrupted single-process sweep — and the
//! resumed invocation re-executes only the cells the journal did not
//! already certify (the skip counter is asserted against an independent
//! scan of the post-kill journal).
//!
//! The kill timing is deliberately uncontrolled: whether SIGKILL lands
//! before the manifest, mid-cell, between fsync batches, mid-record, or
//! after the shard finished, every assertion below must hold.

use redspot_exp::shard::journal::scan_journal;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn redspot() -> Command {
    Command::new(env!("CARGO_BIN_EXE_redspot"))
}

fn run_ok(args: &[&str]) -> String {
    let out = redspot().args(args).output().expect("spawn redspot");
    assert!(
        out.status.success(),
        "redspot {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("redspot-kill-resume").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Grid flags shared verbatim by every invocation: same flags -> same
/// fingerprint -> journals and artifact agree. 3 bids x 8 starts x 3
/// zones = 72 cells.
fn sweep_args(trace: &Path) -> Vec<String> {
    [
        "sweep",
        "--trace",
        trace.to_str().unwrap(),
        "--policy",
        "markov-daly",
        "--bids",
        "0.27,0.81,2.40",
        "--n",
        "8",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn sigkilled_shard_resumes_and_merges_byte_identical() {
    let dir = work_dir("main");
    let trace = dir.join("trace.json");
    run_ok(&[
        "gen-trace",
        "--profile",
        "low",
        "--seed",
        "8",
        "--out",
        trace.to_str().unwrap(),
    ]);

    // Uninterrupted single-process reference artifact.
    let reference = dir.join("reference.json");
    let mut args = sweep_args(&trace);
    args.extend(["--out".into(), reference.to_str().unwrap().into()]);
    run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());

    // Start shard 1/2 journaled (fsync every record so the journal
    // tracks progress closely), then SIGKILL it mid-sweep.
    let journal_dir = dir.join("journal");
    let mut args = sweep_args(&trace);
    args.extend([
        "--shard".into(),
        "1/2".into(),
        "--journal".into(),
        journal_dir.to_str().unwrap().into(),
        "--sync-every".into(),
        "1".into(),
    ]);
    let mut child = redspot()
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard 1/2");
    // Wait until the journal exists so the kill usually lands mid-run;
    // killing earlier (or after completion) must also be recoverable.
    let journal_path = journal_dir.join("shard-1-of-2.journal");
    for _ in 0..100 {
        if journal_path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    std::thread::sleep(std::time::Duration::from_millis(40));
    child.kill().expect("SIGKILL shard"); // kill() is SIGKILL on unix
    child.wait().expect("reap shard");

    // Independently count the cells the torn journal certifies: that is
    // exactly what the resume must skip.
    let certified = if journal_path.exists() {
        scan_journal(&journal_path)
            .expect("post-kill scan")
            .records
            .len()
    } else {
        0
    };

    // Resume shard 1/2 with identical flags; it must skip precisely the
    // certified cells and execute the rest (shard 1 of 2 owns 36 of 72).
    let mut args = sweep_args(&trace);
    args.extend([
        "--shard".into(),
        "1/2".into(),
        "--journal".into(),
        journal_dir.to_str().unwrap().into(),
    ]);
    let stdout = run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        stdout.contains(&format!("skipped {certified} already-journaled")),
        "resume must skip exactly the {certified} certified cells:\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("executed {} cell(s)", 36 - certified)),
        "resume must execute the remaining {} cells:\n{stdout}",
        36 - certified
    );

    // Shard 2/2 runs uninterrupted, then merge all journals.
    let mut args = sweep_args(&trace);
    args.extend([
        "--shard".into(),
        "2/2".into(),
        "--journal".into(),
        journal_dir.to_str().unwrap().into(),
    ]);
    run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());

    let merged = dir.join("merged.json");
    let stdout = run_ok(&[
        "merge",
        "--journal",
        journal_dir.to_str().unwrap(),
        "--out",
        merged.to_str().unwrap(),
    ]);
    assert!(
        stdout.contains("merged 2 shard journal(s): 72 cells"),
        "{stdout}"
    );

    // The acceptance pin: byte identity with the uninterrupted run.
    let reference_bytes = std::fs::read(&reference).unwrap();
    let merged_bytes = std::fs::read(&merged).unwrap();
    assert_eq!(
        reference_bytes, merged_bytes,
        "kill-resume-merge artifact must be byte-identical to the single-process sweep"
    );
}

#[test]
fn merge_exit_codes_follow_violation_semantics() {
    let dir = work_dir("exit-codes");
    let trace = dir.join("trace.json");
    run_ok(&[
        "gen-trace",
        "--profile",
        "low",
        "--seed",
        "8",
        "--out",
        trace.to_str().unwrap(),
    ]);

    // Missing --journal is a usage error: exit 2.
    let out = redspot().arg("merge").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");

    // An incomplete shard set is an integrity violation: exit 1 with a
    // precise diagnosis, no usage text.
    let journal_dir = dir.join("journal");
    let mut args = sweep_args(&trace);
    args.extend([
        "--shard".into(),
        "1/3".into(),
        "--journal".into(),
        journal_dir.to_str().unwrap().into(),
    ]);
    run_ok(&args.iter().map(String::as_str).collect::<Vec<_>>());
    let out = redspot()
        .args(["merge", "--journal", journal_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "integrity violations exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("missing journals for shard(s) [2, 3]"),
        "diagnosis must name the missing shards: {stdout}"
    );
    assert!(!stdout.contains("USAGE"), "no usage text on violations");
}
