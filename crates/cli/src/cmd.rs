//! Command implementations.

use crate::args::{CommonArgs, ParsedArgs};
use crate::CliError;
use redspot_core::{AdaptiveRunner, Engine, ExperimentConfig, PolicyKind, RunResult};
use redspot_exp::experiments::{fig2, fig4, fig5, fig6, tables};
use redspot_exp::report::{boxplot_panel, REF_LINES};
use redspot_exp::PaperSetup;
use redspot_trace::{Price, Profile, SimTime, TraceSet, ZoneId};
use std::path::Path;

fn load_trace(parsed: &ParsedArgs, key: &str) -> Result<TraceSet, String> {
    let path = parsed
        .get(key)
        .or_else(|| parsed.positional(0))
        .ok_or_else(|| format!("need --{key} FILE (or a positional path)"))?;
    redspot_trace::load_trace_file(Path::new(path))
}

/// The shared no-clobber guard every artifact-writing command applies to
/// its `--out` before doing any work: refuse to overwrite an existing
/// file unless `--force` was given, leaving the file untouched.
fn guard_out(parsed: &ParsedArgs, path: &str) -> Result<(), String> {
    if Path::new(path).exists() && !parsed.has("force") {
        return Err(format!("{path} already exists; pass --force to overwrite"));
    }
    Ok(())
}

/// `gen-trace`: generate and save a synthetic trace.
pub fn gen_trace(parsed: &ParsedArgs) -> Result<String, String> {
    let seed = parsed.num_or("seed", 42u64)?;
    let profile = Profile::parse(parsed.get_or("profile", "high"))?;
    let traces = profile.generate(seed)?;
    let out = parsed.get_or("out", "trace.json");
    guard_out(parsed, out)?;
    let path = Path::new(out);
    let save = match parsed.get_or("format", "json") {
        "json" => redspot_trace::io::save_json(&traces, path),
        "csv" => redspot_trace::io::save_csv(&traces, path),
        other => return Err(format!("unknown format: {other} (json|csv)")),
    };
    save.map_err(|e| format!("cannot write {out}: {e}"))?;
    let what = match &profile {
        Profile::Calibrated(_) => format!("{profile} trace"),
        _ => format!("{profile}-volatility trace"),
    };
    Ok(format!(
        "wrote {what} (seed {seed}) to {out}\n{}",
        redspot_trace::io::describe(&traces)
    ))
}

/// `calibrate`: fit a generator profile to an observed trace, for
/// re-generation via `--profile calibrated:FILE` (any subcommand) or
/// `gen-trace`.
pub fn calibrate(parsed: &ParsedArgs) -> Result<String, String> {
    let traces = load_trace(parsed, "trace")?;
    let out = parsed.get("out").ok_or("need --out FILE")?;
    guard_out(parsed, out)?;
    let profile = redspot_trace::calibrate::fit(&traces);
    profile
        .save_json(Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "fitted a {}-zone calibrated profile ({} span) to {out}\n\
         regenerate with: redspot gen-trace --profile calibrated:{out}\n",
        profile.zones.len(),
        format_args!("{:.1}h", profile.duration.as_hours()),
    ))
}

/// `describe`: summarize a trace file.
pub fn describe(parsed: &ParsedArgs) -> Result<String, String> {
    let traces = load_trace(parsed, "trace")?;
    Ok(redspot_trace::io::describe(&traces))
}

fn experiment_config(
    parsed: &ParsedArgs,
    common: &CommonArgs,
    traces: &TraceSet,
) -> Result<ExperimentConfig, String> {
    let slack = parsed.num_or("slack", 15u64)?;
    let tc = parsed.num_or("tc", 300u64)?;
    let bid = Price::from_dollars(parsed.num_or("bid", 0.81f64)?);
    let zones: Vec<ZoneId> = match parsed.get("zones") {
        None => traces.zone_ids().collect(),
        Some(spec) => spec
            .split(',')
            .map(|z| {
                z.trim()
                    .parse::<usize>()
                    .map(ZoneId)
                    .map_err(|_| format!("bad zone id: {z}"))
            })
            .collect::<Result<_, _>>()?,
    };
    let mut cfg = ExperimentConfig::paper_default()
        .with_costs(redspot_ckpt::CkptCosts::symmetric_secs(tc))
        .with_bid(bid)
        .with_zones(zones)
        .with_seed(common.seed)
        .with_era(common.era);
    if let Some(name) = parsed.get("workload") {
        let w = redspot_ckpt::workloads::by_name(name)
            .ok_or_else(|| format!("unknown workload: {name} (try `redspot workloads`)"))?;
        cfg.app = w.app;
        cfg.costs = w.costs;
    }
    cfg = cfg.with_slack_percent(slack);
    // Seal through the validating constructor: the engines re-check, but
    // a bad flag combination should fail here with a config error.
    Ok(cfg.build().map_err(|e| e.to_string())?.into_inner())
}

/// `workloads`: list the workload catalog.
pub fn workloads(_parsed: &ParsedArgs) -> Result<String, String> {
    let mut out = String::from(
        "workload catalog:
",
    );
    for w in redspot_ckpt::workloads::ALL {
        let iteration = match w.app.iteration {
            Some(it) => format!("{:.0} min iterations", it.secs() as f64 / 60.0),
            None => "continuous progress".into(),
        };
        out.push_str(&format!(
            "  {:<16} C = {:>4.0} h, t_c = {:>3} s, {:<24} — {}
",
            w.name,
            w.app.work.as_hours(),
            w.costs.checkpoint.secs(),
            iteration,
            w.description,
        ));
    }
    Ok(out)
}

fn report_run(label: &str, start: SimTime, r: &RunResult) -> String {
    format!(
        "{label}: cost ${:.2} (spot ${:.2} + on-demand ${:.2})\n  \
         makespan {:.1}h, deadline met: {}, checkpoints {}, restarts {}, out-of-bid {}\n",
        r.cost_dollars(),
        r.spot_cost.as_dollars(),
        r.od_cost.as_dollars(),
        r.makespan(start).as_hours(),
        r.met_deadline,
        r.checkpoints,
        r.restarts,
        r.out_of_bid_terminations,
    )
}

fn parse_policy(parsed: &ParsedArgs) -> Result<PolicyKind, String> {
    match parsed.get_or("policy", "periodic") {
        "periodic" => Ok(PolicyKind::Periodic),
        "markov-daly" => Ok(PolicyKind::MarkovDaly),
        "edge" => Ok(PolicyKind::RisingEdge),
        "threshold" => Ok(PolicyKind::Threshold),
        "spot-on" => Ok(PolicyKind::SpotOnCadence),
        // The randomized-bid draw stream follows the run's master seed,
        // so `--seed` reproduces the whole run including the bids.
        "randomized-bid" => Ok(PolicyKind::RandomizedBid(parsed.num_or("seed", 42u64)?)),
        other => Err(format!(
            "unknown policy: {other} \
             (periodic|markov-daly|edge|threshold|spot-on|randomized-bid)"
        )),
    }
}

/// `run`: a single experiment under one policy.
///
/// Observation is opt-in: by default the engine runs with a
/// `NullRecorder` (telemetry costs nothing). `--trace-out FILE` streams
/// every event as one JSON line; `--metrics` folds events into counters
/// and appends a telemetry table. Both flags compose (a tee).
pub fn run(parsed: &ParsedArgs) -> Result<String, String> {
    use redspot_core::{JsonlRecorder, MetricsRecorder, NullRecorder};
    use std::io::BufWriter;

    let common = parsed.common()?;
    let traces = common.source.resolve()?;
    let cfg = experiment_config(parsed, &common, &traces)?;
    let kind = parse_policy(parsed)?;
    let start = SimTime::from_hours(parsed.num_or("start", 48u64)?);
    if start + cfg.deadline > traces.end() {
        return Err("experiment start too late for the trace".into());
    }

    let trace_out = parsed.get("trace-out");
    let want_metrics = common.metrics;
    let jsonl_sink = |path: &str| -> Result<JsonlRecorder<BufWriter<std::fs::File>>, String> {
        let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        Ok(JsonlRecorder::new(BufWriter::new(file)))
    };
    // Four statically-dispatched sink shapes; the engine is monomorphized
    // per recorder type, so the unobserved path carries no recording cost.
    let (result, metrics) = match (trace_out, want_metrics) {
        (None, false) => {
            let r = Engine::try_with_recorder(&traces, start, cfg, kind.build(), NullRecorder)
                .map_err(|e| e.to_string())?
                .run();
            (r, None)
        }
        (None, true) => {
            let (r, m) = Engine::try_with_recorder(
                &traces,
                start,
                cfg,
                kind.build(),
                MetricsRecorder::new(),
            )
            .map_err(|e| e.to_string())?
            .run_full();
            (r, Some(m))
        }
        (Some(path), false) => {
            let (r, m) =
                Engine::try_with_recorder(&traces, start, cfg, kind.build(), jsonl_sink(path)?)
                    .map_err(|e| e.to_string())?
                    .run_full();
            if m.trace_write_errors > 0 {
                return Err(format!(
                    "{} write errors streaming to {path}",
                    m.trace_write_errors
                ));
            }
            (r, None)
        }
        (Some(path), true) => {
            let sink = (jsonl_sink(path)?, MetricsRecorder::new());
            let (r, m) = Engine::try_with_recorder(&traces, start, cfg, kind.build(), sink)
                .map_err(|e| e.to_string())?
                .run_full();
            if m.trace_write_errors > 0 {
                return Err(format!(
                    "{} write errors streaming to {path}",
                    m.trace_write_errors
                ));
            }
            (r, Some(m))
        }
    };

    let mut out = report_run(&format!("{kind}"), start, &result);
    if let Some(path) = trace_out {
        out.push_str(&format!("  wrote event trace to {path}\n"));
    }
    if let Some(m) = metrics {
        out.push_str(&redspot_exp::report::sweep_metrics_table(&m));
    }
    Ok(out)
}

/// Event fields that carry a price. Listed here so the raw-JSON check in
/// [`validate_trace`] stays in sync with the [`redspot_core::Event`]
/// schema.
const PRICE_FIELDS: &[&str] = &["bid", "charged", "rate"];

/// Reject malformed price values in a raw JSON tree *before* the typed
/// `Event` parse gets a chance to coerce them. The actual walk lives in
/// [`redspot_core::serve::check_price_fields`] — the serve daemon's
/// ingestion stream and this offline validator enforce the same
/// discipline through the same code, just over different field lists.
fn check_price_fields(value: &serde::Value) -> Result<(), String> {
    redspot_core::serve::check_price_fields(value, PRICE_FIELDS)
}

/// `validate-trace`: check that a `--trace-out` JSONL file is well formed
/// — every line parses as an [`redspot_core::Event`], every price field
/// is a finite, non-negative integer milli-dollar count, and timestamps
/// never go backwards. CI's observability smoke test.
pub fn validate_trace(parsed: &ParsedArgs) -> Result<String, String> {
    let path = parsed
        .get("trace")
        .or_else(|| parsed.positional(0))
        .ok_or("need a trace file (positional or --trace)")?;
    let data = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut events = 0u64;
    let mut last_at = None;
    for (i, line) in data.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // Two passes per line: the raw tree rejects price values the
        // typed parse would coerce (floats) or mask (null from a
        // non-finite write), then the typed parse checks the schema.
        let raw: serde::Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: not valid JSON: {e}", i + 1))?;
        check_price_fields(&raw).map_err(|why| format!("{path}:{}: {why}", i + 1))?;
        let event: redspot_core::Event = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: not a valid Event: {e}", i + 1))?;
        let at = event.at();
        if let Some(prev) = last_at {
            if at < prev {
                return Err(format!("{path}:{}: timestamps go backwards", i + 1));
            }
        }
        last_at = Some(at);
        events += 1;
    }
    if events == 0 {
        return Err(format!("{path}: no events"));
    }
    Ok(format!(
        "{path}: {events} events, all lines parse, prices finite and non-negative, timestamps non-decreasing\n"
    ))
}

/// `adaptive`: a single experiment under the adaptive meta-policy.
pub fn adaptive(parsed: &ParsedArgs) -> Result<String, String> {
    let common = parsed.common()?;
    let traces = common.source.resolve()?;
    let mut cfg = experiment_config(parsed, &common, &traces)?;
    cfg.zones = traces.zone_ids().collect();
    let start = SimTime::from_hours(parsed.num_or("start", 48u64)?);
    if start + cfg.deadline > traces.end() {
        return Err("experiment start too late for the trace".into());
    }
    let result = AdaptiveRunner::new(&traces, start, cfg).run();
    let switches: Vec<String> = result
        .events
        .iter()
        .filter_map(|e| match e {
            redspot_core::Event::AdaptiveSwitch { at, to } => {
                Some(format!("  {:>6.2}h -> {to}", at.since(start).as_hours()))
            }
            _ => None,
        })
        .collect();
    Ok(format!(
        "{}adaptive decisions:\n{}\n",
        report_run("Adaptive", start, &result),
        switches.join("\n")
    ))
}

fn setup_from(parsed: &ParsedArgs) -> Result<PaperSetup, String> {
    let n = parsed.num_or("n", 16usize)?;
    let seed = parsed.num_or("seed", 42u64)?;
    Ok(PaperSetup::new(seed, n))
}

/// `figure`: regenerate a paper figure.
pub fn figure(parsed: &ParsedArgs) -> Result<String, String> {
    let which = parsed.positional(0).ok_or("which figure? (2|4|5|6)")?;
    let setup = setup_from(parsed)?;
    let mut out = String::new();
    match which {
        "2" => out.push_str(&fig2::render(&fig2::fig2(&setup, Price::from_millis(810)))),
        "4" => {
            for (i, panel) in fig4::fig4(&setup).iter().enumerate() {
                let title = format!(
                    "Figure 4({}) — {} volatility, slack {}%, t_c = 300 s",
                    char::from(b'a' + i as u8),
                    panel.cell.volatility,
                    panel.cell.slack_pct,
                );
                out.push_str(&boxplot_panel(&title, &panel.rows, &REF_LINES));
            }
        }
        "5" => {
            for (i, panel) in fig5::fig5(&setup).iter().enumerate() {
                let title = format!(
                    "Figure 5({}) — {} volatility, t_c = {} s, slack {}%",
                    char::from(b'a' + i as u8),
                    panel.volatility,
                    panel.tc_secs,
                    panel.slack_pct,
                );
                out.push_str(&boxplot_panel(&title, &panel.rows(), &REF_LINES));
            }
        }
        "6" => {
            for (i, panel) in fig6::fig6(&setup).iter().enumerate() {
                let title = format!(
                    "Figure 6({}) — {} volatility, t_c = {} s, slack {}%",
                    char::from(b'a' + i as u8),
                    panel.volatility,
                    panel.tc_secs,
                    panel.slack_pct,
                );
                out.push_str(&boxplot_panel(&title, &panel.rows(), &REF_LINES));
            }
        }
        other => return Err(format!("unknown figure: {other} (2|4|5|6)")),
    }
    Ok(out)
}

/// `table`: regenerate a paper table.
pub fn table(parsed: &ParsedArgs) -> Result<String, String> {
    let which = parsed.positional(0).ok_or("which table? (2|3)")?;
    let setup = setup_from(parsed)?;
    let tc = match which {
        "2" => 300,
        "3" => 900,
        other => return Err(format!("unknown table: {other} (2|3)")),
    };
    Ok(tables::render(&tables::optimal_policies(&setup, tc)))
}

#[cfg(test)]
mod tests {

    use crate::dispatch;

    fn dispatch_str(args: &[&str]) -> Result<String, String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).map_err(|e| e.to_string())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("redspot-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_describe_run_adaptive_round_trip() {
        let path = tmp("low.json");
        let out = dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "3",
            "--out",
            &path,
        ])
        .unwrap();
        assert!(out.contains("low-volatility trace"));

        let out = dispatch_str(&["describe", &path]).unwrap();
        assert!(out.contains("3 zones"));

        let out = dispatch_str(&[
            "run", "--trace", &path, "--policy", "periodic", "--zones", "0", "--start", "48",
        ])
        .unwrap();
        assert!(out.contains("deadline met: true"), "{out}");

        let out = dispatch_str(&["adaptive", "--trace", &path, "--start", "48"]).unwrap();
        assert!(out.contains("Adaptive: cost $"), "{out}");
    }

    #[test]
    fn csv_format_is_supported() {
        let path = tmp("low.csv");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "3",
            "--out",
            &path,
            "--format",
            "csv",
        ])
        .unwrap();
        let out = dispatch_str(&["describe", &path]).unwrap();
        assert!(out.contains("3 zones"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(dispatch_str(&[]).is_err());
        assert!(dispatch_str(&["frobnicate"]).is_err());
        assert!(dispatch_str(&["figure", "9"]).is_err());
        assert!(dispatch_str(&["table", "5"]).is_err());
        assert!(dispatch_str(&["describe", "/nonexistent/trace.json"]).is_err());
        assert!(dispatch_str(&["gen-trace", "--force", "--profile", "weird"]).is_err());
    }

    #[test]
    fn chaos_runs_and_rejects_bad_intensities() {
        let out = dispatch_str(&["chaos", "--n", "2", "--intensities", "0,0.5"]).unwrap();
        assert!(out.contains("total deadline violations: 0"), "{out}");
        assert!(dispatch_str(&["chaos", "--intensities", "0,2"]).is_err());
        assert!(dispatch_str(&["chaos", "--intensities", "zebra"]).is_err());
    }

    #[test]
    fn chaos_api_flag_composes_both_fault_planes() {
        let out = dispatch_str(&["chaos", "--api", "--n", "2", "--intensities", "0,0.5"]).unwrap();
        assert!(out.contains("Chaos-API+infra"), "{out}");
        assert!(out.contains("total deadline violations: 0"), "{out}");
        // Bad intensities are usage errors regardless of the mode.
        let err = crate::dispatch(&[
            "chaos".to_string(),
            "--api".to_string(),
            "--intensities".to_string(),
            "0,2".to_string(),
        ])
        .unwrap_err();
        assert!(matches!(err, crate::CliError::Usage(_)));
    }

    #[test]
    fn chaos_api_only_flag_keeps_control_plane_faults_alone() {
        let out =
            dispatch_str(&["chaos", "--api-only", "--n", "2", "--intensities", "0,0.5"]).unwrap();
        assert!(out.contains("Chaos-API:"), "{out}");
        assert!(!out.contains("Chaos-API+infra"), "{out}");
        assert!(out.contains("total deadline violations: 0"), "{out}");
    }

    #[test]
    fn fleet_contends_and_writes_the_metrics_artifact() {
        let out_path = tmp("fleet-metrics.json");
        let _ = std::fs::remove_file(&out_path);
        let out = dispatch_str(&[
            "fleet",
            "--jobs",
            "4",
            "--capacity",
            "unbounded,1",
            "--intensities",
            "0",
            "--out",
            &out_path,
        ])
        .unwrap();
        assert!(out.contains("total deadline violations: 0"), "{out}");
        assert!(out.contains("capacity conserved: yes"), "{out}");
        assert!(out.contains("unbounded"), "{out}");
        assert!(out.contains("1/zone"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"runs\""), "{json}");
        // Bad capacity specs are usage errors.
        assert!(dispatch_str(&["fleet", "--capacity", "many"]).is_err());

        // A second run must refuse to clobber the artifact without
        // --force, and must not have touched the file when refusing.
        let before = std::fs::read_to_string(&out_path).unwrap();
        let err = dispatch_str(&[
            "fleet",
            "--jobs",
            "2",
            "--intensities",
            "0",
            "--out",
            &out_path,
        ])
        .unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        assert!(err.contains("--force"), "{err}");
        assert_eq!(std::fs::read_to_string(&out_path).unwrap(), before);
        let forced = dispatch_str(&[
            "fleet",
            "--jobs",
            "2",
            "--intensities",
            "0",
            "--out",
            &out_path,
            "--force",
        ])
        .unwrap();
        assert!(forced.contains("metrics written"), "{forced}");
    }

    #[test]
    fn help_prints_usage() {
        let out = dispatch_str(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("gen-trace"));
    }

    #[test]
    fn run_validates_start_and_zones() {
        let path = tmp("low2.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "4",
            "--out",
            &path,
        ])
        .unwrap();
        assert!(dispatch_str(&["run", "--trace", &path, "--start", "900"]).is_err());
        assert!(dispatch_str(&["run", "--trace", &path, "--zones", "0,zebra"]).is_err());
        assert!(dispatch_str(&["run", "--trace", &path, "--policy", "psychic"]).is_err());
    }
}

/// `headline`: the abstract's claims, measured.
pub fn headline(parsed: &ParsedArgs) -> Result<String, String> {
    use redspot_exp::experiments::headline as hl;
    let setup = setup_from(parsed)?;
    Ok(hl::render(&hl::headline(&setup)))
}

/// `var-analysis`: Section 3.1 cross-zone independence.
pub fn var_analysis(parsed: &ParsedArgs) -> Result<String, String> {
    use redspot_exp::experiments::var_analysis as va;
    use redspot_trace::vol::Volatility;
    let setup = setup_from(parsed)?;
    let analyses: Vec<_> = [Volatility::Low, Volatility::High]
        .into_iter()
        .filter_map(|v| va::analyse(&setup, v))
        .collect();
    Ok(va::render(&analyses))
}

/// `queuing-delay`: the Section-5 measurement reproduction.
pub fn queuing_delay(parsed: &ParsedArgs) -> Result<String, String> {
    use redspot_exp::experiments::queuing;
    let seed = parsed.num_or("seed", 42u64)?;
    Ok(queuing::render(&queuing::study(seed, 60)))
}

/// `spike-stress`: Large-bid vs Adaptive around the $20.02 spike.
pub fn spike_stress(parsed: &ParsedArgs) -> Result<String, String> {
    use redspot_exp::experiments::fig6;
    use redspot_exp::report::{boxplot_panel, REF_LINES};
    let seed = parsed.num_or("seed", 42u64)?;
    let n = parsed.num_or("n", 8usize)?;
    let s = fig6::spike_stress(seed, n);
    Ok(format!(
        "{}  worst vs on-demand: Large-bid {:.2}x (paper: up to 3.8x), Adaptive {:.2}x\n",
        boxplot_panel(
            "Spike stress — 12-month history, starts bracketing the $20.02 spike",
            &s.rows(),
            &REF_LINES
        ),
        s.large_bid_worst_vs_od(),
        s.adaptive_worst_vs_od(),
    ))
}

/// Parse the shared `--intensities` list (values in `[0, 1]`).
fn parse_intensities(parsed: &ParsedArgs, default: &str) -> Result<Vec<f64>, String> {
    let spec = parsed.get_or("intensities", default);
    let intensities: Vec<f64> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("--intensities: cannot parse '{s}'"))
                .and_then(|v| {
                    if (0.0..=1.0).contains(&v) {
                        Ok(v)
                    } else {
                        Err(format!("--intensities: {v} outside [0, 1]"))
                    }
                })
        })
        .collect::<Result<_, _>>()?;
    if intensities.is_empty() {
        return Err("--intensities: need at least one value".into());
    }
    Ok(intensities)
}

/// `chaos`: the deadline guarantee under injected faults — infrastructure
/// faults by default; `--api` *composes* control-plane faults with the
/// infrastructure faults in the same runs; `--api-only` injects the
/// control-plane faults alone. Any deadline violation in the sweep is a
/// [`CliError::Violation`]: the binary prints the table and exits
/// nonzero, so CI can gate on it.
pub fn chaos(parsed: &ParsedArgs) -> Result<String, CliError> {
    use redspot_exp::experiments::{chaos, chaos_api};
    let usage = CliError::Usage;
    let common = parsed.common().map_err(usage)?;
    let n = parsed.num_or("n", 8usize).map_err(usage)?;
    let intensities = parse_intensities(parsed, "0,0.3,0.6,1").map_err(usage)?;
    let traces = common.source.resolve().map_err(usage)?;
    let (rendered, violations) = if parsed.has("api") || parsed.has("api-only") {
        let composed = !parsed.has("api-only");
        let c = chaos_api::study(
            &traces,
            &intensities,
            n,
            common.threads,
            composed,
            common.era,
        );
        (chaos_api::render(&c), c.total_violations())
    } else {
        let c = chaos::study(&traces, &intensities, n, common.threads, common.era);
        (chaos::render(&c), c.total_violations())
    };
    if violations > 0 {
        return Err(CliError::Violation(rendered));
    }
    Ok(rendered)
}

/// `fleet`: N mixed jobs contending for shared per-zone spot capacity,
/// with both fault planes live and the graceful-degradation ladder
/// enabled. `--capacity` takes a comma list of per-zone unit counts
/// ("unbounded" for the independent-runs control). Exits nonzero on any
/// deadline violation or capacity-conservation failure; `--out` writes
/// the merged fleet metrics as a JSON artifact.
pub fn fleet(parsed: &ParsedArgs) -> Result<String, CliError> {
    use redspot_exp::experiments::chaos_fleet;
    let usage = CliError::Usage;
    let common = parsed.common().map_err(usage)?;
    let n_jobs = parsed.num_or("jobs", 8usize).map_err(usage)?;
    if n_jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".into()));
    }
    let intensities = parse_intensities(parsed, "0,0.5").map_err(usage)?;
    let capacities: Vec<Option<u64>> = parsed
        .get_or("capacity", "unbounded,2")
        .split(',')
        .map(|s| match s.trim() {
            "unbounded" | "inf" => Ok(None),
            v => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("--capacity: cannot parse '{v}'")),
        })
        .collect::<Result<_, _>>()
        .map_err(usage)?;

    let traces = common.source.resolve().map_err(usage)?;
    let c = chaos_fleet::study(
        &traces,
        common.seed,
        &capacities,
        &intensities,
        n_jobs,
        common.threads,
        common.era,
    );
    let mut rendered = chaos_fleet::render(&c);

    if let Some(out) = parsed.get("out") {
        // Never silently clobber an existing artifact: a fleet metrics
        // file is typically the baseline another run diffs against.
        guard_out(parsed, out).map_err(CliError::Usage)?;
        let json = serde_json::to_string(&c.merged_metrics())
            .map_err(|e| CliError::Usage(format!("cannot serialize metrics: {e}")))?;
        std::fs::write(out, json)
            .map_err(|e| CliError::Usage(format!("cannot write {out}: {e}")))?;
        rendered.push_str(&format!("\n  merged fleet metrics written to {out}\n"));
    }
    if c.total_violations() > 0 || !c.all_balanced() {
        return Err(CliError::Violation(rendered));
    }
    Ok(rendered)
}

/// `serve`: the live advisory daemon. Clients stream price rows in over
/// line-JSON (the `validate-trace` discipline, checked per line), query
/// "what would Adaptive do right now?", and subscribe to interruption
/// notices the sentinel classifies under each market's era. `--stdio`
/// serves a single client over stdin/stdout (the CI smoke mode);
/// otherwise `--addr HOST:PORT` (default `127.0.0.1:7071`, port 0 for
/// ephemeral) serves concurrent TCP clients. Exits 1 if any request
/// line failed — a malformed ingestion stream never exits clean.
pub fn serve(parsed: &ParsedArgs) -> Result<String, CliError> {
    use redspot_core::serve::{serve_stdio_with, Daemon, Server};
    let usage = CliError::Usage;
    let dirty =
        CliError::Violation("serve: one or more request lines failed (see replies)\n".into());
    let common = parsed.common().map_err(usage)?;
    // Preload only when a source was named explicitly: a daemon has no
    // natural default market, so a bare `serve` starts empty and waits
    // for clients to open markets themselves.
    let preload = if common.source_explicit {
        let traces = common.source.resolve().map_err(usage)?;
        let market = parsed.get_or("market", "preload").to_string();
        let bid = Price::from_dollars(parsed.num_or("bid", 0.81f64).map_err(usage)?);
        Some((traces, market, bid))
    } else {
        None
    };
    let preload_into = |server: &Server| -> Result<String, CliError> {
        match &preload {
            None => Ok(String::new()),
            Some((traces, market, bid)) => {
                let rows = server
                    .registry()
                    .preload(market, traces, common.era, *bid, common.seed)
                    .map_err(usage)?;
                Ok(format!(
                    "serve: preloaded market '{market}' ({rows} rows from {})\n",
                    common.source
                ))
            }
        }
    };
    if parsed.has("stdio") {
        let server = Server::new();
        let banner = preload_into(&server)?;
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let clean = serve_stdio_with(&server, stdin.lock(), stdout.lock())
            .map_err(|e| CliError::Usage(format!("serve I/O error: {e}")))?;
        return if clean {
            Ok(format!("{banner}serve: session closed cleanly\n"))
        } else {
            Err(dirty)
        };
    }
    let addr = parsed.get_or("addr", "127.0.0.1:7071");
    let daemon =
        Daemon::bind(addr).map_err(|e| CliError::Usage(format!("cannot bind {addr}: {e}")))?;
    let banner = preload_into(daemon.server())?;
    print!("{banner}");
    let bound = daemon
        .local_addr()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    // Announce the bound address before blocking in the accept loop —
    // scripts (and the CI smoke job) read it to find an ephemeral port.
    println!("serve: listening on {bound}");
    if daemon.run() {
        Ok(format!("serve: shut down cleanly ({bound})\n"))
    } else {
        Err(dirty)
    }
}

/// `policy-compare`: every checkpoint policy head-to-head as redundancy
/// over all zones, under both market eras — the policy × era cost table.
/// Any deadline violation is a [`CliError::Violation`]; `--out FILE`
/// writes the full comparison as a JSON artifact (the `policy-smoke` CI
/// job uploads it), refusing to clobber without `--force`.
pub fn policy_compare(parsed: &ParsedArgs) -> Result<String, CliError> {
    use redspot_exp::experiments::policy_compare as pc;
    let usage = CliError::Usage;
    let common = parsed.common().map_err(usage)?;
    let n = parsed.num_or("n", 8usize).map_err(usage)?;
    let traces = common.source.resolve().map_err(usage)?;
    let c = pc::study(&traces, n, common.threads);
    let mut rendered = pc::render(&c);
    if let Some(out) = parsed.get("out") {
        guard_out(parsed, out).map_err(usage)?;
        let json = serde_json::to_string_pretty(&c)
            .map_err(|e| CliError::Usage(format!("cannot serialize comparison: {e}")))?;
        std::fs::write(out, json)
            .map_err(|e| CliError::Usage(format!("cannot write {out}: {e}")))?;
        rendered.push_str(&format!("\n  comparison artifact written to {out}\n"));
    }
    if c.total_violations() > 0 {
        return Err(CliError::Violation(rendered));
    }
    Ok(rendered)
}

/// `era-compare`: the paper's 2014 hourly market against the post-2017
/// per-second/interruption-notice market, same traces and schemes. Any
/// deadline violation in either era is a [`CliError::Violation`].
pub fn era_compare(parsed: &ParsedArgs) -> Result<String, CliError> {
    use redspot_exp::experiments::era_compare;
    let usage = CliError::Usage;
    let common = parsed.common().map_err(usage)?;
    let n = parsed.num_or("n", 8usize).map_err(usage)?;
    let traces = common.source.resolve().map_err(usage)?;
    let c = era_compare::study(&traces, n, common.threads);
    let rendered = era_compare::render(&c);
    if c.total_violations() > 0 {
        return Err(CliError::Violation(rendered));
    }
    Ok(rendered)
}

/// `markov-validation`: Appendix-B model vs observed up-times.
pub fn markov_validation(parsed: &ParsedArgs) -> Result<String, String> {
    use redspot_exp::experiments::markov_validation as mv;
    let setup = setup_from(parsed)?;
    let bid = Price::from_dollars(parsed.num_or("bid", 0.81f64)?);
    let v = mv::validate(&setup, bid);
    Ok(mv::render(&v, bid))
}

/// `bootstrap`: resample an observed trace into a synthetic variant.
pub fn bootstrap(parsed: &ParsedArgs) -> Result<String, String> {
    use redspot_trace::bootstrap::{resample, BootstrapConfig};
    use redspot_trace::SimDuration;
    let out = parsed.get("out").ok_or("need --out FILE")?;
    guard_out(parsed, out)?;
    let source = load_trace(parsed, "trace")?;
    let cfg = BootstrapConfig {
        seed: parsed.num_or("seed", 0u64)?,
        block: SimDuration::from_hours(parsed.num_or("block-hours", 12u64)?),
        output_len: SimDuration::from_hours(parsed.num_or("days", 30u64)? * 24),
    };
    let variant = resample(&source, &cfg);
    redspot_trace::io::save_json(&variant, Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "wrote bootstrap variant to {out}\n{}",
        redspot_trace::io::describe(&variant)
    ))
}

#[cfg(test)]
mod extra_tests {
    use crate::dispatch;

    fn dispatch_str(args: &[&str]) -> Result<String, String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).map_err(|e| e.to_string())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("redspot-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn analysis_commands_produce_output() {
        let out = dispatch_str(&["var-analysis", "--n", "4"]).unwrap();
        assert!(out.contains("orders of magnitude"));
        let out = dispatch_str(&["queuing-delay"]).unwrap();
        assert!(out.contains("299.6"));
    }

    #[test]
    fn bootstrap_round_trip() {
        let src = tmp("src.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "high",
            "--seed",
            "2",
            "--out",
            &src,
        ])
        .unwrap();
        let dst = tmp("variant.json");
        let _ = std::fs::remove_file(&dst);
        let out = dispatch_str(&[
            "bootstrap",
            "--trace",
            &src,
            "--out",
            &dst,
            "--days",
            "10",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("bootstrap variant"));
        let described = dispatch_str(&["describe", &dst]).unwrap();
        assert!(described.contains("span 240.0h"));
        assert!(dispatch_str(&["bootstrap", "--trace", &src]).is_err()); // no --out

        // The no-clobber guard: a repeat run refuses and leaves the
        // artifact untouched; --force overwrites.
        let before = std::fs::read(&dst).unwrap();
        let err = dispatch_str(&["bootstrap", "--trace", &src, "--out", &dst, "--days", "10"])
            .unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        assert!(err.contains("--force"), "{err}");
        assert_eq!(std::fs::read(&dst).unwrap(), before);
        dispatch_str(&[
            "bootstrap",
            "--trace",
            &src,
            "--out",
            &dst,
            "--days",
            "10",
            "--force",
        ])
        .unwrap();
    }

    #[test]
    fn gen_trace_refuses_to_clobber_without_force() {
        let path = tmp("clobber-gen.json");
        std::fs::write(&path, b"precious trace").unwrap();
        let err = dispatch_str(&["gen-trace", "--profile", "low", "--out", &path]).unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        assert!(err.contains("--force"), "{err}");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"precious trace".to_vec(),
            "refused run must not touch the file"
        );
        let ok =
            dispatch_str(&["gen-trace", "--profile", "low", "--out", &path, "--force"]).unwrap();
        assert!(ok.contains("low-volatility trace"), "{ok}");
        assert_ne!(std::fs::read(&path).unwrap(), b"precious trace".to_vec());
    }

    #[test]
    fn calibrate_fits_and_regenerates() {
        let src = tmp("calib-src.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "high",
            "--seed",
            "6",
            "--out",
            &src,
        ])
        .unwrap();
        let fit = tmp("calib-profile.json");
        let _ = std::fs::remove_file(&fit);
        let out = dispatch_str(&["calibrate", "--trace", &src, "--out", &fit]).unwrap();
        assert!(out.contains("calibrated profile"), "{out}");
        assert!(out.contains("calibrated:"), "{out}");

        // The no-clobber guard holds here too.
        let before = std::fs::read(&fit).unwrap();
        let err = dispatch_str(&["calibrate", "--trace", &src, "--out", &fit]).unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        assert_eq!(std::fs::read(&fit).unwrap(), before);

        // The fitted profile round-trips through gen-trace and the
        // unified --profile flag on a simulation command.
        let regen = tmp("calib-regen.json");
        let spec = format!("calibrated:{fit}");
        let out = dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            &spec,
            "--seed",
            "9",
            "--out",
            &regen,
        ])
        .unwrap();
        assert!(out.contains("wrote calibrated:"), "{out}");
        let out = dispatch_str(&["run", "--profile", &spec, "--start", "48"]).unwrap();
        assert!(out.contains("cost $"), "{out}");
        assert!(dispatch_str(&["calibrate", "--trace", &src]).is_err()); // no --out
    }
}

#[cfg(test)]
mod workload_tests {
    use crate::dispatch;

    fn dispatch_str(args: &[&str]) -> Result<String, String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).map_err(|e| e.to_string())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("redspot-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn workload_catalog_lists_and_runs() {
        let list = dispatch_str(&["workloads"]).unwrap();
        assert!(list.contains("nas-ft-e"));
        assert!(list.contains("paper-heavy"));

        let path = tmp("wl.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "5",
            "--out",
            &path,
        ])
        .unwrap();
        let out = dispatch_str(&[
            "run",
            "--trace",
            &path,
            "--workload",
            "nas-ft-e",
            "--zones",
            "0",
            "--start",
            "48",
            "--slack",
            "40",
        ])
        .unwrap();
        assert!(out.contains("deadline met: true"), "{out}");
        assert!(dispatch_str(&["run", "--trace", &path, "--workload", "bogus"]).is_err());
    }
}

/// A sweep's full grid: the flat, canonically-ordered cell list every
/// sweep mode (single-process, sharded, merged) agrees on. The order is
/// bid-major — bids outer, experiment starts inner, zones innermost for
/// single-zone schemes — so cell `i` means the same `RunSpec` to every
/// invocation with the same flags, which is what makes `--shard K/N`
/// journals from different processes mergeable.
struct SweepGrid {
    bids: Vec<Price>,
    n_starts: usize,
    specs: Vec<redspot_exp::scheme::RunSpec>,
    adaptive: bool,
    redundant: bool,
    kind: PolicyKind,
}

fn sweep_grid(
    parsed: &ParsedArgs,
    traces: &TraceSet,
    base: &ExperimentConfig,
) -> Result<SweepGrid, String> {
    use redspot_exp::scheme::{RunSpec, Scheme};
    use redspot_exp::windows::{experiment_starts, run_span_for};

    let adaptive = parsed.get_or("policy", "periodic") == "adaptive";
    let kind = if adaptive {
        PolicyKind::Periodic // unused; the meta-policy picks per decision
    } else {
        parse_policy(parsed)?
    };
    let redundant = parsed.get_or("redundant", "false") == "true";
    let n = parsed.num_or("n", 16usize)?;
    let bids: Vec<Price> = match parsed.get("bids") {
        None => vec![
            Price::from_millis(270),
            Price::from_millis(810),
            Price::from_millis(2_400),
        ],
        Some(spec) => spec
            .split(',')
            .map(|b| {
                b.trim()
                    .parse::<f64>()
                    .map(Price::from_dollars)
                    .map_err(|_| format!("bad bid: {b}"))
            })
            .collect::<Result<_, _>>()?,
    };
    let starts = experiment_starts(traces, run_span_for(base.deadline), n);
    if starts.is_empty() {
        return Err(
            "trace too short for this deadline (need 48h bootstrap + deadline + 1h)".into(),
        );
    }
    let mut specs = Vec::new();
    for &bid in &bids {
        for &start in &starts {
            if adaptive {
                specs.push(RunSpec {
                    start,
                    bid,
                    scheme: Scheme::Adaptive,
                });
            } else if redundant {
                specs.push(RunSpec {
                    start,
                    bid,
                    scheme: Scheme::Redundant {
                        kind,
                        zones: traces.zone_ids().collect(),
                    },
                });
            } else {
                for zone in traces.zone_ids() {
                    specs.push(RunSpec {
                        start,
                        bid,
                        scheme: Scheme::Single { kind, zone },
                    });
                }
            }
        }
    }
    Ok(SweepGrid {
        bids,
        n_starts: starts.len(),
        specs,
        adaptive,
        redundant,
        kind,
    })
}

/// Parse `--shard K/N`.
fn parse_shard(spec: &str) -> Result<(usize, usize), String> {
    let bad = || format!("--shard: expected K/N (e.g. 2/4), got '{spec}'");
    let (k, n) = spec.split_once('/').ok_or_else(bad)?;
    let k: usize = k.trim().parse().map_err(|_| bad())?;
    let n: usize = n.trim().parse().map_err(|_| bad())?;
    Ok((k, n))
}

/// Write a merged sweep artifact. One function shared by `sweep --out`
/// and `merge --out`, so the two paths are byte-identical by
/// construction (same serializer, same call).
fn write_merged(path: &str, merged: &redspot_exp::MergedSweep) -> Result<(), String> {
    let json = serde_json::to_string(merged).map_err(|e| format!("cannot serialize: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))
}

/// `sweep`: run many overlapping experiments on a user-provided trace and
/// print a cost boxplot per bid — the Figure-4 machinery pointed at your
/// own data. `--policy adaptive` sweeps the meta-policy instead of a
/// fixed checkpoint policy; `--cache-stats` reports how well the shared
/// decision cache deduplicated adaptive sub-simulations.
///
/// Crash-safe sharding: `--shard K/N --journal DIR` runs only shard `K`
/// of the grid, appending each completed cell to a checksummed
/// write-ahead journal; a killed invocation re-run with the same flags
/// resumes, skipping journaled cells. `redspot merge --journal DIR`
/// combines the `N` journals. `--out FILE` (without `--shard`) writes
/// the same merged artifact from an uninterrupted in-process run.
pub fn sweep(parsed: &ParsedArgs) -> Result<String, CliError> {
    use redspot_core::MarketCtx;
    use redspot_exp::exec::RunRequest;
    use redspot_exp::report::{boxplot_panel, sweep_metrics_table, LabeledBox, REF_LINES};
    use redspot_exp::shard::journal::DEFAULT_SYNC_EVERY;
    use redspot_exp::shard::run::run_shard;
    use redspot_exp::{fingerprint, MergedSweep, ShardManifest};

    let common = parsed.common().map_err(CliError::Usage)?;
    let traces = common.source.resolve().map_err(CliError::Usage)?;
    let base = experiment_config(parsed, &common, &traces).map_err(CliError::Usage)?;
    let grid = sweep_grid(parsed, &traces, &base).map_err(CliError::Usage)?;
    let fp = fingerprint(&base, &grid.specs);

    // One shared context for the whole sweep: every bid row reuses the
    // same whole-trace scan seed and decision cache.
    let mkt = if grid.adaptive {
        MarketCtx::for_sweep(traces.clone())
    } else {
        MarketCtx::new(traces.clone())
    };

    if let Some(shard_spec) = parsed.get("shard") {
        let dir = parsed
            .get("journal")
            .ok_or_else(|| CliError::Usage("--shard needs --journal DIR".into()))?;
        let (k, n) = parse_shard(shard_spec).map_err(CliError::Usage)?;
        let manifest = ShardManifest::plan(grid.specs.len(), k, n, fp.clone())
            .map_err(|e| CliError::Usage(e.to_string()))?;
        let sync_every = parsed
            .num_or("sync-every", DEFAULT_SYNC_EVERY)
            .map_err(CliError::Usage)?;
        // Journal problems are integrity violations, not usage errors:
        // print the diagnosis and exit 1, like merge and chaos do.
        let report = run_shard(
            &mkt,
            &base,
            &grid.specs,
            &manifest,
            Path::new(dir),
            Some(sync_every),
        )
        .map_err(|e| CliError::Violation(format!("shard journal error: {e}\n")))?;
        return Ok(format!(
            "shard {k}/{n}: cells {}..{} of {} ({} this shard)\n\
             executed {} cell(s), skipped {} already-journaled{}{}\n\
             fingerprint {fp}\njournal {}\n",
            manifest.cell_lo,
            manifest.cell_hi,
            manifest.n_cells,
            manifest.cells().len(),
            report.executed,
            report.skipped,
            if report.resumed { " (resumed)" } else { "" },
            if report.truncated_torn_tail {
                ", truncated a torn final record"
            } else {
                ""
            },
            report.journal.display(),
        ));
    }
    if parsed.get("journal").is_some() {
        return Err(CliError::Usage("--journal needs --shard K/N".into()));
    }

    let out_path = parsed.get("out");
    // Never silently clobber an existing artifact (checked before the
    // sweep runs, so a refused invocation costs nothing): a sweep
    // artifact is typically the baseline another run diffs against —
    // the same guard every artifact-writing command applies.
    if let Some(path) = out_path {
        guard_out(parsed, path).map_err(CliError::Usage)?;
    }
    let want_cache_stats = parsed.has("cache-stats");
    // `--out` always meters: the artifact embeds merged per-cell metrics
    // and must match what `merge` assembles from journaled shards.
    let outcome = RunRequest::new(&mkt, &base, &grid.specs)
        .threads(common.threads)
        .metered(common.metrics || out_path.is_some())
        .execute()
        .map_err(|e| CliError::Usage(e.to_string()))?;

    let mut rows = Vec::new();
    for &bid in &grid.bids {
        let costs: Vec<f64> = grid
            .specs
            .iter()
            .zip(&outcome.results)
            .filter(|(s, _)| s.bid == bid)
            .map(|(_, r)| r.cost_dollars())
            .collect();
        let label = if grid.adaptive {
            format!("A@{bid}")
        } else {
            format!("{}@{bid}", grid.kind.label())
        };
        if let Some(row) = LabeledBox::from_costs(label, &costs) {
            rows.push(row);
        }
    }
    let policy_label = if grid.adaptive {
        "Adaptive".to_string()
    } else {
        format!("{}", grid.kind)
    };
    let title = format!(
        "{policy_label} sweep over {} experiments ({})",
        grid.n_starts,
        if grid.adaptive {
            "meta-policy, all zones"
        } else if grid.redundant {
            "redundant, all zones"
        } else {
            "single zones merged"
        },
    );
    let mut out = boxplot_panel(&title, &rows, &REF_LINES);
    if common.metrics {
        if let Some(m) = &outcome.metrics {
            out.push_str(&sweep_metrics_table(m));
        }
    }
    if want_cache_stats {
        let (cache, uptime) = (&outcome.cache, &outcome.uptime);
        out.push_str(&format!(
            "decision cache: {} hits / {} misses ({:.1}% hit rate), {} tables\n",
            cache.hits,
            cache.misses,
            cache.hit_rate() * 100.0,
            cache.entries,
        ));
        out.push_str(&format!(
            "uptime memo: {} hits / {} misses ({:.1}% hit rate), {} scalars\n",
            uptime.hits,
            uptime.misses,
            uptime.hit_rate() * 100.0,
            uptime.entries,
        ));
    }
    if let Some(path) = out_path {
        let merged = MergedSweep::from_run(
            fp.clone(),
            outcome.results,
            outcome.metrics.unwrap_or_default(),
        );
        write_merged(path, &merged).map_err(CliError::Usage)?;
        out.push_str(&format!(
            "merged sweep artifact ({} cells, fingerprint {fp}) written to {path}\n",
            merged.n_cells
        ));
    }
    Ok(out)
}

/// `merge`: verify and combine the `N` shard journals of a sharded sweep
/// into the single merged artifact an uninterrupted `sweep --out` would
/// have produced. Any integrity violation — schema version skew,
/// fingerprint disagreement, a missing or incomplete shard, a corrupt
/// record — is diagnosed precisely and exits 1.
pub fn merge(parsed: &ParsedArgs) -> Result<String, CliError> {
    use redspot_exp::shard::merge::merge_dir;

    let dir = parsed
        .get("journal")
        .or_else(|| parsed.positional(0))
        .ok_or_else(|| CliError::Usage("need --journal DIR (or a positional path)".into()))?;
    // Guard the artifact before the (possibly expensive) merge runs.
    if let Some(path) = parsed.get("out") {
        guard_out(parsed, path).map_err(CliError::Usage)?;
    }
    let (merged, report) = merge_dir(Path::new(dir))
        .map_err(|e| CliError::Violation(format!("merge failed: {e}\n")))?;
    let mut out = format!(
        "merged {} shard journal(s): {} cells, {} checksummed records verified\n\
         fingerprint {}\n",
        report.n_shards, report.n_cells, report.records_verified, merged.fingerprint,
    );
    for file in &report.files {
        out.push_str(&format!("  {}\n", file.display()));
    }
    if let Some(path) = parsed.get("out") {
        write_merged(path, &merged).map_err(CliError::Usage)?;
        out.push_str(&format!("merged sweep artifact written to {path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod sweep_tests {
    use crate::dispatch;

    fn dispatch_str(args: &[&str]) -> Result<String, String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).map_err(|e| e.to_string())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("redspot-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn sweep_out_refuses_to_clobber_without_force() {
        let trace = tmp("sweep-clobber-trace.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "8",
            "--out",
            &trace,
        ])
        .unwrap();
        let out = tmp("sweep-clobber.json");
        std::fs::write(&out, b"precious baseline").unwrap();
        let args = [
            "sweep",
            "--trace",
            &trace,
            "--policy",
            "markov-daly",
            "--bids",
            "0.81",
            "--n",
            "1",
            "--out",
            &out,
        ];
        let err = dispatch_str(&args).unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        assert_eq!(
            std::fs::read(&out).unwrap(),
            b"precious baseline".to_vec(),
            "refused run must not touch the file"
        );
        let mut forced = args.to_vec();
        forced.push("--force");
        let ok = dispatch_str(&forced).unwrap();
        assert!(ok.contains("written to"), "{ok}");
        assert_ne!(std::fs::read(&out).unwrap(), b"precious baseline".to_vec());
    }

    #[test]
    fn serve_rejects_an_unbindable_address() {
        let err = dispatch_str(&["serve", "--addr", "definitely not an address"]).unwrap_err();
        assert!(err.contains("cannot bind"), "{err}");
    }

    #[test]
    fn sweep_renders_boxplots_per_bid() {
        let path = tmp("sweep.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "8",
            "--out",
            &path,
        ])
        .unwrap();
        let out = dispatch_str(&[
            "sweep",
            "--trace",
            &path,
            "--policy",
            "markov-daly",
            "--bids",
            "0.81,2.40",
            "--n",
            "4",
        ])
        .unwrap();
        assert!(out.contains("M@$0.81"), "{out}");
        assert!(out.contains("M@$2.40"));
        assert!(out.contains("on-demand = $48.00"));
        assert!(dispatch_str(&["sweep", "--trace", &path, "--bids", "xx"]).is_err());
    }

    #[test]
    fn adaptive_sweep_reports_cache_stats() {
        let path = tmp("sweep-adaptive.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "8",
            "--out",
            &path,
        ])
        .unwrap();
        let out = dispatch_str(&[
            "sweep",
            "--trace",
            &path,
            "--policy",
            "adaptive",
            "--bids",
            "0.81",
            "--n",
            "3",
            "--threads",
            "2",
            "--cache-stats",
        ])
        .unwrap();
        assert!(out.contains("A@$0.81"), "{out}");
        assert!(out.contains("meta-policy, all zones"), "{out}");
        assert!(out.contains("decision cache:"), "{out}");
        assert!(out.contains("uptime memo:"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
    }

    #[test]
    fn redundant_sweep_works() {
        let path = tmp("sweep2.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "8",
            "--out",
            &path,
        ])
        .unwrap();
        let out = dispatch_str(&[
            "sweep",
            "--trace",
            &path,
            "--redundant",
            "true",
            "--bids",
            "0.81",
            "--n",
            "3",
        ])
        .unwrap();
        assert!(out.contains("redundant, all zones"));
    }

    #[test]
    fn sweep_metrics_flag_appends_merged_telemetry() {
        let path = tmp("sweep3.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "8",
            "--out",
            &path,
        ])
        .unwrap();
        let out = dispatch_str(&[
            "sweep",
            "--trace",
            &path,
            "--policy",
            "markov-daly",
            "--bids",
            "0.81,2.40",
            "--n",
            "3",
            "--metrics",
        ])
        .unwrap();
        assert!(out.contains("telemetry:"), "{out}");
        // 3 experiment starts × 3 single zones × 2 bids merged into one table.
        assert!(out.contains("| runs | 18 |"), "{out}");
    }

    #[test]
    fn sharded_sweep_merges_byte_identical_to_single_process() {
        let trace = tmp("sweep-shard.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "8",
            "--out",
            &trace,
        ])
        .unwrap();
        let sweep_flags = [
            "--trace",
            trace.as_str(),
            "--policy",
            "markov-daly",
            "--bids",
            "0.81,2.40",
            "--n",
            "3",
        ];
        // Reference: uninterrupted single-process run.
        let reference = tmp("sweep-ref.json");
        let _ = std::fs::remove_file(&reference);
        let mut args = vec!["sweep"];
        args.extend_from_slice(&sweep_flags);
        args.extend_from_slice(&["--out", &reference]);
        dispatch_str(&args).unwrap();

        // The same grid, run as two journaled shards and merged.
        let dir = tmp("sweep-shard-journal");
        let _ = std::fs::remove_dir_all(&dir);
        for shard in ["1/2", "2/2"] {
            let mut args = vec!["sweep"];
            args.extend_from_slice(&sweep_flags);
            args.extend_from_slice(&["--shard", shard, "--journal", &dir]);
            let out = dispatch_str(&args).unwrap();
            assert!(out.contains("executed 9 cell(s), skipped 0"), "{out}");
        }
        let merged = tmp("sweep-merged.json");
        let _ = std::fs::remove_file(&merged);
        let out = dispatch_str(&["merge", "--journal", &dir, "--out", &merged]).unwrap();
        assert!(out.contains("merged 2 shard journal(s): 18 cells"), "{out}");
        assert_eq!(
            std::fs::read(&reference).unwrap(),
            std::fs::read(&merged).unwrap(),
            "merged artifact must be byte-identical to the single-process run"
        );

        // merge --out honors the same no-clobber guard as sweep --out,
        // and a refused merge leaves the artifact untouched.
        let before = std::fs::read(&merged).unwrap();
        let err = dispatch_str(&["merge", "--journal", &dir, "--out", &merged]).unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        assert!(err.contains("--force"), "{err}");
        assert_eq!(std::fs::read(&merged).unwrap(), before);
        let out = dispatch_str(&["merge", "--journal", &dir, "--out", &merged, "--force"]).unwrap();
        assert!(out.contains("written to"), "{out}");

        // Re-running a completed shard executes nothing and the merge
        // (and artifact) are unchanged.
        let mut args = vec!["sweep"];
        args.extend_from_slice(&sweep_flags);
        args.extend_from_slice(&["--shard", "1/2", "--journal", &dir]);
        let out = dispatch_str(&args).unwrap();
        assert!(out.contains("executed 0 cell(s), skipped 9"), "{out}");

        // Different flags -> different fingerprint -> merge-poisoning
        // append is refused.
        let mut args = vec!["sweep"];
        args.extend_from_slice(&sweep_flags);
        args.extend_from_slice(&["--shard", "1/2", "--journal", &dir, "--slack", "40"]);
        let err = dispatch_str(&args).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // Usage errors: shard without journal, journal without shard,
        // malformed K/N, K outside 1..=N.
        let mut args = vec!["sweep"];
        args.extend_from_slice(&sweep_flags);
        args.extend_from_slice(&["--shard", "1/2"]);
        assert!(dispatch_str(&args).unwrap_err().contains("--journal"));
        let mut args = vec!["sweep"];
        args.extend_from_slice(&sweep_flags);
        args.extend_from_slice(&["--journal", &dir]);
        assert!(dispatch_str(&args).unwrap_err().contains("--shard"));
        let mut args = vec!["sweep"];
        args.extend_from_slice(&sweep_flags);
        args.extend_from_slice(&["--shard", "banana", "--journal", &dir]);
        assert!(dispatch_str(&args).unwrap_err().contains("K/N"));
        let mut args = vec!["sweep"];
        args.extend_from_slice(&sweep_flags);
        args.extend_from_slice(&["--shard", "3/2", "--journal", &dir]);
        assert!(dispatch_str(&args).unwrap_err().contains("outside"));
    }

    #[test]
    fn merge_refuses_incomplete_and_missing_journals() {
        let trace = tmp("sweep-shard2.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "8",
            "--out",
            &trace,
        ])
        .unwrap();
        let dir = tmp("sweep-shard2-journal");
        let _ = std::fs::remove_dir_all(&dir);
        // Merging an absent/empty directory is an error.
        assert!(dispatch_str(&["merge", "--journal", &dir]).is_err());
        std::fs::create_dir_all(&dir).unwrap();
        let err = dispatch_str(&["merge", "--journal", &dir]).unwrap_err();
        assert!(err.contains("no shard-"), "{err}");
        // Only shard 1 of 2 journaled: merge names the missing shard.
        dispatch_str(&[
            "sweep",
            "--trace",
            &trace,
            "--policy",
            "markov-daly",
            "--bids",
            "0.81",
            "--n",
            "3",
            "--shard",
            "1/2",
            "--journal",
            &dir,
        ])
        .unwrap();
        let err = dispatch_str(&["merge", "--journal", &dir]).unwrap_err();
        assert!(err.contains("missing journals for shard(s) [2]"), "{err}");
    }
}

#[cfg(test)]
mod source_tests {
    use crate::dispatch;

    fn dispatch_str(args: &[&str]) -> Result<String, String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).map_err(|e| e.to_string())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("redspot-cli-test6");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn run_and_adaptive_default_to_the_generated_profile() {
        // No --trace required anymore: the shared TraceSource defaults to
        // the generated high-volatility profile at the master seed.
        let out = dispatch_str(&["run", "--start", "48", "--zones", "0"]).unwrap();
        assert!(out.contains("cost $"), "{out}");
        let out =
            dispatch_str(&["run", "--profile", "low", "--start", "48", "--zones", "0"]).unwrap();
        assert!(out.contains("deadline met: true"), "{out}");
        // Naming two sources at once is a usage error on any subcommand.
        let err = dispatch_str(&["run", "--trace", "x.json", "--profile", "high"]).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = dispatch_str(&["sweep", "--trace", "x.json", "--bootstrap-from", "y.json"])
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn bootstrap_from_flag_feeds_simulation_commands() {
        let src = tmp("boot-feed.json");
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "2",
            "--out",
            &src,
        ])
        .unwrap();
        let out = dispatch_str(&[
            "run",
            "--bootstrap-from",
            &src,
            "--days",
            "10",
            "--zones",
            "0",
            "--start",
            "48",
        ])
        .unwrap();
        assert!(out.contains("cost $"), "{out}");
    }

    #[test]
    fn new_policies_run_and_replay_deterministically() {
        let flags = [
            "run",
            "--policy",
            "randomized-bid",
            "--seed",
            "7",
            "--start",
            "48",
            "--zones",
            "0",
        ];
        let a = dispatch_str(&flags).unwrap();
        let b = dispatch_str(&flags).unwrap();
        assert_eq!(a, b, "same seed must replay byte-identically");
        assert!(a.contains("deadline met: true"), "{a}");
        let out = dispatch_str(&[
            "run", "--policy", "spot-on", "--start", "48", "--zones", "0",
        ])
        .unwrap();
        assert!(out.contains("deadline met: true"), "{out}");
    }

    #[test]
    fn policy_compare_sweeps_the_roster_and_writes_the_artifact() {
        let out_path = tmp("policy-compare.json");
        let _ = std::fs::remove_file(&out_path);
        let out = dispatch_str(&["policy-compare", "--n", "2", "--out", &out_path]).unwrap();
        assert!(out.contains("total deadline violations: 0"), "{out}");
        assert!(out.contains("cheapest under classic"), "{out}");
        assert!(out.contains("cheapest under modern"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"cells\""), "{json}");
        // Same no-clobber contract as every other artifact.
        let before = std::fs::read(&out_path).unwrap();
        let err = dispatch_str(&["policy-compare", "--n", "2", "--out", &out_path]).unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        assert_eq!(std::fs::read(&out_path).unwrap(), before);
    }

    #[test]
    fn serve_preload_resolves_the_source_before_binding() {
        // A bad preload source fails as a usage error without ever
        // binding a socket or blocking in the accept loop.
        let err = dispatch_str(&[
            "serve",
            "--trace",
            "/nonexistent/preload.json",
            "--addr",
            "127.0.0.1:0",
        ])
        .unwrap_err();
        assert!(err.contains("cannot load trace"), "{err}");
    }
}

#[cfg(test)]
mod observability_tests {
    use crate::dispatch;

    fn dispatch_str(args: &[&str]) -> Result<String, String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).map_err(|e| e.to_string())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("redspot-cli-test5");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn gen(path: &str) {
        dispatch_str(&[
            "gen-trace",
            "--force",
            "--profile",
            "low",
            "--seed",
            "5",
            "--out",
            path,
        ])
        .unwrap();
    }

    #[test]
    fn run_without_observability_flags_prints_summary_only() {
        let path = tmp("plain.json");
        gen(&path);
        let out = dispatch_str(&["run", "--trace", &path, "--start", "48"]).unwrap();
        assert!(out.contains("cost $"), "{out}");
        assert!(!out.contains("telemetry:"), "{out}");
        assert!(!out.contains("wrote event trace"), "{out}");
    }

    #[test]
    fn trace_out_and_metrics_round_trip_through_validate_trace() {
        let path = tmp("obs.json");
        gen(&path);
        let jsonl = tmp("obs.jsonl");
        let out = dispatch_str(&[
            "run",
            "--trace",
            &path,
            "--start",
            "48",
            "--trace-out",
            &jsonl,
            "--metrics",
        ])
        .unwrap();
        assert!(out.contains("wrote event trace to"), "{out}");
        assert!(out.contains("telemetry:"), "{out}");
        assert!(out.contains("| runs | 1 |"), "{out}");

        let lines = std::fs::read_to_string(&jsonl)
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        assert!(lines > 0);
        let checked = dispatch_str(&["validate-trace", &jsonl]).unwrap();
        assert!(
            checked.contains(&format!("{lines} events, all lines parse")),
            "{checked}"
        );

        // The streamed event count matches the metrics sink's count.
        assert!(out.contains(&format!("| events seen | {lines} |")), "{out}");
    }

    #[test]
    fn validate_trace_rejects_garbage_and_missing_files() {
        let bad = tmp("bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        let err = dispatch_str(&["validate-trace", &bad]).unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
        assert!(dispatch_str(&["validate-trace", &tmp("absent.jsonl")]).is_err());
        assert!(dispatch_str(&["validate-trace"]).is_err());
        let empty = tmp("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        assert!(dispatch_str(&["validate-trace", &empty]).is_err());
    }

    #[test]
    fn validate_trace_rejects_bad_prices_with_line_numbers() {
        let ok = r#"{"Requested":{"at":0,"zone":0,"bid":810}}"#;
        for (bad_line, why) in [
            (
                r#"{"Requested":{"at":300,"zone":0,"bid":810.0}}"#,
                "not an integer milli-dollar count",
            ),
            (
                r#"{"Requested":{"at":300,"zone":0,"bid":-810}}"#,
                "negative",
            ),
            (
                r#"{"Requested":{"at":300,"zone":0,"bid":810.5}}"#,
                "not an integer milli-dollar count",
            ),
            (r#"{"Requested":{"at":300,"zone":0,"bid":null}}"#, "null"),
            (
                r#"{"HourCharged":{"at":300,"zone":0,"rate":"810"}}"#,
                "not a number",
            ),
        ] {
            let path = tmp("bad-price.jsonl");
            std::fs::write(&path, format!("{ok}\n{bad_line}\n")).unwrap();
            let err = dispatch_str(&["validate-trace", &path]).unwrap_err();
            assert!(err.contains(why), "{bad_line} -> {err}");
            assert!(err.contains(":2:"), "must name line 2: {bad_line} -> {err}");
        }
        // A fully valid file still passes and reports the price check.
        let good = tmp("good-price.jsonl");
        std::fs::write(&good, format!("{ok}\n")).unwrap();
        let out = dispatch_str(&["validate-trace", &good]).unwrap();
        assert!(out.contains("prices finite and non-negative"), "{out}");
    }
}
