//! Flag parsing. Hand-rolled (the offline crate set has no argument
//! parser, and the surface is small).

use redspot_core::Era;
use redspot_trace::bootstrap::BootstrapConfig;
use redspot_trace::{Profile, SimDuration, TraceSource};
use std::collections::BTreeMap;

/// Flags that take no value: present means `true`.
const BOOL_FLAGS: &[&str] = &[
    "api",
    "api-only",
    "metrics",
    "cache-stats",
    "force",
    "stdio",
];

/// Parsed flags plus positional arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl ParsedArgs {
    /// Parse `--key value` pairs (plus bare boolean flags) and positionals.
    pub fn parse(args: &[String]) -> Result<ParsedArgs, String> {
        let mut out = ParsedArgs::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    out.flags.insert(key.to_string(), "true".to_string());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                out.flags.insert(key.to_string(), value.clone());
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// A string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a bare boolean flag was given.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// A string flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A parsed numeric flag with a default.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse '{v}'")),
        }
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// The flags shared by every simulation subcommand, parsed in one
    /// place so `run`, `sweep` and `chaos` agree on names and defaults.
    pub fn common(&self) -> Result<CommonArgs, String> {
        let seed = self.num_or("seed", 42)?;
        Ok(CommonArgs {
            threads: self.num_or("threads", 0)?,
            seed,
            metrics: self.has("metrics"),
            era: Era::parse(self.get_or("era", "classic"))?,
            source: self.trace_source(seed)?,
            source_explicit: self.names_a_source(),
        })
    }

    /// Whether any trace-source flag was given explicitly (as opposed to
    /// falling back to the generated default). Commands with no natural
    /// default market (`serve` preload) only resolve a source when this
    /// is true.
    pub fn names_a_source(&self) -> bool {
        self.has("trace") || self.has("bootstrap-from") || self.has("profile")
    }

    /// Resolve the shared trace-source flags into one [`TraceSource`].
    ///
    /// Precedence (the flags are mutually exclusive, erroring otherwise):
    /// `--trace FILE` loads a recorded trace; `--bootstrap-from FILE`
    /// (with `--block-hours` and `--days`) block-bootstraps from one;
    /// otherwise `--profile` (default `high`, matching what the batch
    /// studies historically generated) synthesizes with `--seed`.
    pub fn trace_source(&self, seed: u64) -> Result<TraceSource, String> {
        let exclusive: Vec<&str> = ["trace", "bootstrap-from", "profile"]
            .into_iter()
            .filter(|f| self.has(f))
            .collect();
        if exclusive.len() > 1 {
            let list: Vec<String> = exclusive.iter().map(|f| format!("--{f}")).collect();
            return Err(format!(
                "{} are mutually exclusive: name one trace source",
                list.join(" and ")
            ));
        }
        if let Some(path) = self.get("trace") {
            return Ok(TraceSource::File { path: path.into() });
        }
        if let Some(path) = self.get("bootstrap-from") {
            return Ok(TraceSource::Bootstrap {
                path: path.into(),
                config: BootstrapConfig {
                    block: SimDuration::from_hours(self.num_or("block-hours", 12)?),
                    output_len: SimDuration::from_hours(24 * self.num_or("days", 30)?),
                    seed,
                },
            });
        }
        Ok(TraceSource::Generate {
            profile: Profile::parse(self.get_or("profile", "high"))?,
            seed,
        })
    }
}

/// Flags every simulation subcommand shares.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Worker threads for batch execution (0 = one per CPU).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Whether to print the telemetry table.
    pub metrics: bool,
    /// Market rules era (`classic` = the paper's 2014 hourly market,
    /// `modern` = post-2017 per-second billing with interruption notices).
    pub era: Era,
    /// Where the market trace comes from (`--trace`, `--bootstrap-from`,
    /// or `--profile` + `--seed`; defaults to the generated
    /// high-volatility profile).
    pub source: TraceSource,
    /// Whether any source flag was given explicitly rather than
    /// defaulted.
    pub source_explicit: bool,
}

/// The help text.
pub fn usage() -> String {
    "\
redspot — cost-effective, time-constrained HPC on the EC2 spot market (HPDC'14 reproduction)

USAGE:
  redspot gen-trace [--profile low|high|year|calibrated:FILE] [--seed N]
                    [--out FILE] [--format json|csv] [--force]
  redspot calibrate --trace FILE --out PROFILE.json [--force]
                                    # fit generator parameters (price level,
                                    # volatility, spell lengths, change-point
                                    # density) to an observed trace; the emitted
                                    # profile regenerates synthetic look-alikes via
                                    # gen-trace --profile calibrated:PROFILE.json
  redspot describe FILE
  redspot run [--policy periodic|markov-daly|edge|threshold|spot-on|randomized-bid]
              [--bid DOLLARS] [--zones 0,1,2] [--slack PCT] [--tc SECS]
              [--start HOURS] [--seed N] [--trace-out FILE.jsonl] [--metrics]
                                    # observation is opt-in: --trace-out streams the
                                    # event log as JSONL, --metrics prints telemetry
  redspot validate-trace FILE.jsonl # check a --trace-out file line by line: schema,
                                    # finite non-negative prices, ordered timestamps
  redspot adaptive [--slack PCT] [--tc SECS] [--start HOURS] [--seed N]
  redspot figure 2|4|5|6 [--n COUNT] [--seed N]
  redspot table 2|3 [--n COUNT] [--seed N]
  redspot headline [--n COUNT] [--seed N]
  redspot var-analysis [--seed N]
  redspot queuing-delay [--seed N]
  redspot spike-stress [--n COUNT] [--seed N]
  redspot chaos [--api | --api-only] [--n COUNT] [--seed N] [--intensities 0,0.3,0.6,1]
                                    # --api composes control-plane faults WITH the
                                    # infrastructure faults in the same runs; --api-only
                                    # injects control-plane faults alone; exits 1 on any
                                    # deadline violation
  redspot fleet [--jobs N] [--capacity unbounded,2,1] [--intensities 0,0.5]
                [--seed N] [--threads N] [--out metrics.json] [--force]
                                    # N mixed jobs contending for shared per-zone spot
                                    # capacity with the degradation ladder enabled;
                                    # exits 1 on any deadline violation or capacity leak;
                                    # --out writes the merged fleet metrics as JSON
                                    # (refuses to overwrite an existing file without
                                    # --force)
  redspot era-compare [--n COUNT] [--seed N] [--threads N]
                                    # the paper's 2014 hourly market vs the post-2017
                                    # per-second/interruption-notice market, same traces
                                    # and schemes; exits 1 on any deadline violation
  redspot policy-compare [--n COUNT] [--seed N] [--threads N] [--out FILE] [--force]
                                    # every checkpoint/bid policy (including spot-on
                                    # and randomized-bid) under both eras on the same
                                    # traces: median cost, checkpoints, interruptions,
                                    # on-demand rate, violations; --out writes the
                                    # comparison artifact as JSON; exits 1 on any
                                    # deadline violation
  redspot markov-validation [--seed N] [--bid DOLLARS]
  redspot bootstrap --trace FILE --out FILE [--seed N] [--block-hours H] [--days D]
                    [--force]
  redspot workloads                 # list the workload catalog
  redspot sweep [--policy P|adaptive] [--bids 0.27,0.81,2.40] [--n COUNT]
                [--redundant true] [--slack PCT] [--tc SECS] [--seed N] [--metrics]
                [--threads N] [--cache-stats] [--out sweep.json]
                [--shard K/N --journal DIR [--sync-every N]] [--force]
                                    # --threads 0 (default) = one worker per CPU;
                                    # --cache-stats prints decision-cache hit rates
                                    # (adaptive sweeps share one memoization cache);
                                    # --out writes the merged sweep artifact as JSON;
                                    # --shard K/N --journal DIR runs only shard K of
                                    # the grid, journaling each completed cell — a
                                    # killed invocation re-run with the same flags
                                    # resumes, skipping already-journaled cells
  redspot merge --journal DIR [--out sweep.json] [--force]
                                    # verify and combine all N shard journals into the
                                    # artifact an uninterrupted sweep --out produces
                                    # (byte-identical); exits 1 with a diagnosis on
                                    # schema/fingerprint/coverage/checksum violations
  redspot serve [--addr HOST:PORT | --stdio] [--market NAME] [--bid DOLLARS]
                                    # live advisory daemon: stream price rows in over
                                    # line-JSON (validated like validate-trace), query
                                    # what Adaptive would do right now, subscribe to
                                    # era-classified interruption notices; --stdio
                                    # serves one client on stdin/stdout; --addr
                                    # (default 127.0.0.1:7071, port 0 = ephemeral)
                                    # serves concurrent TCP clients; exits 1 if any
                                    # request line failed; naming a trace source
                                    # (--trace/--profile/--bootstrap-from) preloads
                                    # it as market NAME (default \"preload\") at --bid
                                    # (default 0.81) before serving
  redspot help

Every simulating command (run, adaptive, sweep, chaos, fleet, era-compare,
policy-compare, serve preload) draws its market from one shared trace
source, resolved in this order:
  --trace FILE                      # load a recorded JSON/CSV trace verbatim
  --bootstrap-from FILE [--block-hours H] [--days D]
                                    # block-bootstrap a synthetic ensemble member
                                    # from an observed trace, seeded by --seed
  --profile low|high|year|calibrated:FILE   (default: high)
                                    # regenerate from a stock or fitted profile,
                                    # seeded by --seed
Naming more than one source is a usage error. Commands that write files
(--out) refuse to overwrite an existing file unless --force is passed.

Flags --workload NAME (on run/adaptive) override C, t_c and iteration
structure from the catalog.
Shared flags on run/sweep/chaos: --threads N, --seed N, --metrics.
Shared flag --era classic|modern (default classic) selects the market
rules: classic is the paper's 2014 hourly market; modern is post-2017
per-second billing with 2-minute interruption notices and no user bids.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, String> {
        ParsedArgs::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&["4", "--n", "16", "--seed", "7"]).unwrap();
        assert_eq!(a.positional(0), Some("4"));
        assert_eq!(a.get("n"), Some("16"));
        assert_eq!(a.num_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.num_or("missing", 5u64).unwrap(), 5);
        assert_eq!(a.get_or("profile", "low"), "low");
    }

    #[test]
    fn dangling_flag_is_an_error() {
        assert!(parse(&["--n"]).is_err());
    }

    #[test]
    fn bare_boolean_flags_take_no_value() {
        let a = parse(&["--api", "--n", "4"]).unwrap();
        assert!(a.has("api"));
        assert_eq!(a.get("n"), Some("4"));
        assert!(!a.has("n-missing"));
        // --api must not swallow the following token.
        let a = parse(&["--api", "positional"]).unwrap();
        assert!(a.has("api"));
        assert_eq!(a.positional(0), Some("positional"));
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse(&["--n", "many"]).unwrap();
        assert!(a.num_or("n", 1usize).is_err());
    }

    #[test]
    fn common_args_share_defaults_and_flags() {
        let c = parse(&[]).unwrap().common().unwrap();
        assert_eq!(
            c,
            CommonArgs {
                threads: 0,
                seed: 42,
                metrics: false,
                era: Era::Classic,
                source: TraceSource::Generate {
                    profile: Profile::High,
                    seed: 42
                },
                source_explicit: false,
            }
        );
        let c = parse(&[
            "--threads",
            "3",
            "--seed",
            "9",
            "--metrics",
            "--era",
            "modern",
        ])
        .unwrap()
        .common()
        .unwrap();
        assert_eq!(
            c,
            CommonArgs {
                threads: 3,
                seed: 9,
                metrics: true,
                era: Era::Modern,
                source: TraceSource::Generate {
                    profile: Profile::High,
                    seed: 9
                },
                source_explicit: false,
            }
        );
        assert!(parse(&["--threads", "x"]).unwrap().common().is_err());
        assert!(parse(&["--era", "2019"]).unwrap().common().is_err());
    }

    #[test]
    fn trace_source_resolution_order() {
        // --trace wins, and the same flag means the same thing everywhere.
        let c = parse(&["--trace", "prices.csv"]).unwrap().common().unwrap();
        assert_eq!(
            c.source,
            TraceSource::File {
                path: "prices.csv".into()
            }
        );
        assert!(c.source_explicit);

        // --bootstrap-from carries the block/length knobs and the seed.
        let c = parse(&[
            "--bootstrap-from",
            "prices.json",
            "--block-hours",
            "6",
            "--days",
            "10",
            "--seed",
            "7",
        ])
        .unwrap()
        .common()
        .unwrap();
        assert_eq!(
            c.source,
            TraceSource::Bootstrap {
                path: "prices.json".into(),
                config: BootstrapConfig {
                    block: SimDuration::from_hours(6),
                    output_len: SimDuration::from_hours(240),
                    seed: 7,
                },
            }
        );

        // --profile selects a generator, including calibrated:FILE.
        let c = parse(&["--profile", "low"]).unwrap().common().unwrap();
        assert_eq!(
            c.source,
            TraceSource::Generate {
                profile: Profile::Low,
                seed: 42
            }
        );
        let c = parse(&["--profile", "calibrated:fit.json"])
            .unwrap()
            .common()
            .unwrap();
        assert_eq!(
            c.source,
            TraceSource::Generate {
                profile: Profile::Calibrated("fit.json".into()),
                seed: 42
            }
        );
        assert!(parse(&["--profile", "weird"]).unwrap().common().is_err());
    }

    #[test]
    fn conflicting_trace_sources_are_an_error() {
        let err = parse(&["--trace", "a.json", "--profile", "high"])
            .unwrap()
            .common()
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse(&["--trace", "a.json", "--bootstrap-from", "b.json"])
            .unwrap()
            .common()
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }
}
