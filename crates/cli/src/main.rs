//! `redspot` — command-line interface to the HPDC'14 reproduction.

use redspot_cli::{dispatch, usage, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(CliError::Violation(output)) => {
            print!("{output}");
            eprintln!("error: invariant violations detected");
            std::process::exit(1);
        }
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}
