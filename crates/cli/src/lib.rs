//! # redspot-cli
//!
//! Command dispatch for the `redspot` binary. Kept in the library so the
//! whole surface is unit-testable; `main.rs` is a thin shell.

#![warn(missing_docs)]

mod args;
mod cmd;

pub use args::{usage, ParsedArgs};

/// Dispatch a command line (without the program name) and return the text
/// to print.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    let parsed = ParsedArgs::parse(rest)?;
    match cmd.as_str() {
        "gen-trace" => cmd::gen_trace(&parsed),
        "describe" => cmd::describe(&parsed),
        "run" => cmd::run(&parsed),
        "adaptive" => cmd::adaptive(&parsed),
        "figure" => cmd::figure(&parsed),
        "table" => cmd::table(&parsed),
        "headline" => cmd::headline(&parsed),
        "var-analysis" => cmd::var_analysis(&parsed),
        "queuing-delay" => cmd::queuing_delay(&parsed),
        "spike-stress" => cmd::spike_stress(&parsed),
        "chaos" => cmd::chaos(&parsed),
        "markov-validation" => cmd::markov_validation(&parsed),
        "bootstrap" => cmd::bootstrap(&parsed),
        "workloads" => cmd::workloads(&parsed),
        "sweep" => cmd::sweep(&parsed),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command: {other}")),
    }
}
