//! # redspot-cli
//!
//! Command dispatch for the `redspot` binary. Kept in the library so the
//! whole surface is unit-testable; `main.rs` is a thin shell.

#![warn(missing_docs)]

mod args;
mod cmd;

use std::fmt;

pub use args::{usage, ParsedArgs};

/// How a command invocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad arguments or I/O trouble: exit 2 and show usage.
    Usage(String),
    /// The command ran to completion but its result breaks a guarantee
    /// the tool is supposed to uphold (a chaos sweep with deadline
    /// violations): print the output, exit 1, no usage text.
    Violation(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Violation(output) => write!(f, "{output}"),
        }
    }
}

/// Dispatch a command line (without the program name) and return the text
/// to print.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    let parsed = ParsedArgs::parse(rest).map_err(CliError::Usage)?;
    match cmd.as_str() {
        "gen-trace" => cmd::gen_trace(&parsed).map_err(CliError::Usage),
        "calibrate" => cmd::calibrate(&parsed).map_err(CliError::Usage),
        "describe" => cmd::describe(&parsed).map_err(CliError::Usage),
        "run" => cmd::run(&parsed).map_err(CliError::Usage),
        "validate-trace" => cmd::validate_trace(&parsed).map_err(CliError::Usage),
        "adaptive" => cmd::adaptive(&parsed).map_err(CliError::Usage),
        "figure" => cmd::figure(&parsed).map_err(CliError::Usage),
        "table" => cmd::table(&parsed).map_err(CliError::Usage),
        "headline" => cmd::headline(&parsed).map_err(CliError::Usage),
        "var-analysis" => cmd::var_analysis(&parsed).map_err(CliError::Usage),
        "queuing-delay" => cmd::queuing_delay(&parsed).map_err(CliError::Usage),
        "spike-stress" => cmd::spike_stress(&parsed).map_err(CliError::Usage),
        "chaos" => cmd::chaos(&parsed),
        "fleet" => cmd::fleet(&parsed),
        "era-compare" => cmd::era_compare(&parsed),
        "policy-compare" => cmd::policy_compare(&parsed),
        "markov-validation" => cmd::markov_validation(&parsed).map_err(CliError::Usage),
        "bootstrap" => cmd::bootstrap(&parsed).map_err(CliError::Usage),
        "workloads" => cmd::workloads(&parsed).map_err(CliError::Usage),
        "sweep" => cmd::sweep(&parsed),
        "merge" => cmd::merge(&parsed),
        "serve" => cmd::serve(&parsed),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Usage(format!("unknown command: {other}"))),
    }
}
