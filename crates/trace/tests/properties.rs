//! Property-based tests for the trace substrate.

use proptest::prelude::*;
use redspot_trace::gen::{GenConfig, ZoneRegime};
use redspot_trace::{Price, PriceSeries, SimDuration, SimTime, Window};

proptest! {
    /// Price fixed-point round trip through dollars never drifts more
    /// than half a milli-dollar.
    #[test]
    fn price_dollar_round_trip(millis in 0u64..100_000_000) {
        let p = Price::from_millis(millis);
        let back = Price::from_dollars(p.as_dollars());
        prop_assert_eq!(p, back);
    }

    /// Price arithmetic is consistent with the underlying integers.
    #[test]
    fn price_arithmetic_is_integer_arithmetic(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (pa, pb) = (Price::from_millis(a), Price::from_millis(b));
        prop_assert_eq!((pa + pb).millis(), a + b);
        prop_assert_eq!(pa.saturating_sub(pb).millis(), a.saturating_sub(b));
        prop_assert_eq!(pa.midpoint(pb).millis(), (a + b) / 2);
        prop_assert_eq!((pa * 3).millis(), a * 3);
    }

    /// Pro-rated cost is monotone in duration and exact on whole hours.
    #[test]
    fn prorated_monotone(rate in 1u64..30_000, secs in 0u64..1_000_000) {
        let p = Price::from_millis(rate);
        prop_assert!(p.prorated(secs) <= p.prorated(secs + 60));
        prop_assert_eq!(p.prorated(3_600), p);
    }

    /// Billed hours is the ceiling of the duration in hours.
    #[test]
    fn billed_hours_is_ceiling(secs in 0u64..1_000_000) {
        let d = SimDuration::from_secs(secs);
        let h = d.billed_hours();
        prop_assert!(h * 3_600 >= secs);
        prop_assert!(h == 0 || (h - 1) * 3_600 < secs);
    }

    /// price_at always returns one of the series' samples, and slicing
    /// preserves lookups inside the window.
    #[test]
    fn series_lookup_and_slice_agree(
        samples in prop::collection::vec(1u64..5_000, 4..60),
        query in 0u64..20_000,
        lo in 0usize..3,
    ) {
        let prices: Vec<Price> = samples.iter().map(|&m| Price::from_millis(m)).collect();
        let s = PriceSeries::new(SimTime::ZERO, prices.clone());
        let t = SimTime::from_secs(query);
        prop_assert!(prices.contains(&s.price_at(t)));

        let w = Window::new(
            SimTime::from_secs(lo as u64 * 300),
            s.end(),
        );
        let sub = s.slice(w);
        // Lookups inside the slice agree with the parent series.
        let mid = SimTime::from_secs(lo as u64 * 300 + 150);
        prop_assert_eq!(sub.price_at(mid), s.price_at(mid));
    }

    /// Windows laid out by the overlapping layout always fit the span.
    #[test]
    fn layout_fits_span(count in 1usize..50, span_h in 40u64..200) {
        let span = Window::new(SimTime::ZERO, SimTime::from_hours(span_h));
        let wins = redspot_trace::overlapping_windows(span, SimDuration::from_hours(30), count);
        prop_assert_eq!(wins.len(), count);
        for w in &wins {
            prop_assert!(w.start() >= span.start());
            prop_assert!(w.end() <= span.end());
        }
    }

    /// Generated traces are positive, aligned and deterministic per seed,
    /// whatever the regime parameters.
    #[test]
    fn generator_is_total_and_deterministic(
        seed in 0u64..1_000,
        calm in 100u64..1_000,
        elev in 1_000u64..3_000,
        p_spike in 0.0f64..0.05,
    ) {
        let regime = ZoneRegime {
            calm_base: calm,
            calm_jitter: calm / 10,
            p_move: 0.2,
            elevated_base: elev,
            elevated_jitter: elev / 10,
            p_calm_to_elevated: 0.01,
            p_elevated_to_calm: 0.05,
            p_spike,
            spike_range: (elev, elev * 2),
            spike_steps: (1, 5),
        };
        let cfg = GenConfig {
            zones: vec![regime.clone(), regime],
            duration: SimDuration::from_hours(24),
            start: SimTime::ZERO,
            seed,
            common_amplitude: 5,
        };
        let a = cfg.generate();
        let b = cfg.generate();
        prop_assert_eq!(&a, &b);
        for z in a.zones() {
            prop_assert!(z.min_price() > Price::ZERO);
            prop_assert_eq!(z.len(), 24 * 12);
        }
    }

    /// Combined availability is at least every single zone's availability
    /// and at most their sum.
    #[test]
    fn combined_availability_bounds(seed in 0u64..200, bid in 200u64..3_000) {
        let set = GenConfig::high_volatility(seed).generate();
        let bid = Price::from_millis(bid);
        let combined = set.combined_availability(bid);
        let singles = set.zone_availabilities(bid);
        for &s in &singles {
            prop_assert!(combined >= s - 1e-12);
        }
        prop_assert!(combined <= singles.iter().sum::<f64>() + 1e-12);
        prop_assert!((0.0..=1.0).contains(&combined));
    }
}

/// The pre-index `next_price_change`: a linear forward rescan from the
/// sample covering `t`. Kept as the reference implementation for the
/// equivalence property below.
fn next_price_change_linear(s: &PriceSeries, t: SimTime) -> Option<(SimTime, Price)> {
    let samples = s.samples();
    let idx = if t <= s.start() {
        0
    } else {
        (((t.secs() - s.start().secs()) / s.step()) as usize).min(samples.len() - 1)
    };
    let cur = samples[idx];
    for (j, &p) in samples.iter().enumerate().skip(idx + 1) {
        if p != cur {
            return Some((s.start() + SimDuration::from_secs(j as u64 * s.step()), p));
        }
    }
    None
}

proptest! {
    /// The O(log n) change-point index answers `next_price_change`
    /// identically to the original linear rescan, over arbitrary series
    /// (including long flat runs, which is where the index pays off) and
    /// arbitrary query times including points before the start and past
    /// the end.
    #[test]
    fn next_price_change_matches_linear_rescan(
        runs in prop::collection::vec((1u64..6, 1usize..8), 1..20),
        start in 0u64..2_000,
        query in 0u64..60_000,
    ) {
        // Build a series from (value, run-length) pairs so flat spans of
        // every length are exercised, not just i.i.d. samples.
        let prices: Vec<Price> = runs
            .iter()
            .flat_map(|&(v, n)| std::iter::repeat_n(Price::from_millis(v * 100), n))
            .collect();
        let s = PriceSeries::new(SimTime::from_secs(start), prices);
        let t = SimTime::from_secs(query);
        prop_assert_eq!(s.next_price_change(t), next_price_change_linear(&s, t));
    }
}

proptest! {
    /// CSV export/import round-trips any generated trace exactly
    /// (milli-dollar precision is preserved by the 3-decimal format).
    #[test]
    fn csv_round_trip_is_exact(seed in 0u64..300) {
        use std::io::Cursor;
        let cfg = GenConfig { duration: SimDuration::from_hours(24), ..GenConfig::high_volatility(seed) };
        let set = cfg.generate();
        let mut buf = Vec::new();
        redspot_trace::io::export_csv(&set, &mut buf).unwrap();
        let back = redspot_trace::io::import_csv(Cursor::new(buf)).unwrap();
        prop_assert_eq!(set, back);
    }

    /// Bootstrap resampling preserves the sampling grid and value domain.
    #[test]
    fn bootstrap_respects_grid(seed in 0u64..100, block_h in 2u64..48, out_days in 1u64..20) {
        use redspot_trace::bootstrap::{resample, BootstrapConfig};
        let src = GenConfig::high_volatility(seed).generate();
        let cfg = BootstrapConfig {
            block: SimDuration::from_hours(block_h),
            output_len: SimDuration::from_hours(out_days * 24),
            seed,
        };
        let out = resample(&src, &cfg);
        prop_assert_eq!(out.n_zones(), src.n_zones());
        prop_assert_eq!(out.duration(), SimDuration::from_hours(out_days * 24));
        prop_assert!(out.zones().iter().all(|z| z.min_price() > Price::ZERO));
    }
}
