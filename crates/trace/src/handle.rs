//! Shared ownership of trace data.
//!
//! [`TraceHandle`] wraps an `Arc<TraceSet>` so long-lived hosts (the
//! engine, the adaptive runner, the serve daemon's market registry) can
//! own their price history without a borrow lifetime, while call sites
//! that hold a plain [`TraceSet`] keep working unchanged: every
//! constructor that used to take `&TraceSet` now takes
//! `impl Into<TraceHandle>`, and the `From<&TraceSet>` impl below makes
//! the old call shape compile. Converting from a reference clones the
//! set — O(zones), not O(samples), because per-zone samples already live
//! behind their own `Arc` (see [`crate::PriceSeries`]).

use crate::TraceSet;
use std::ops::Deref;
use std::sync::Arc;

/// Shared, immutable ownership of a [`TraceSet`].
///
/// Derefs to [`TraceSet`], so every `&TraceSet` API works through the
/// handle. Cloning is an `Arc` bump.
#[derive(Debug, Clone)]
pub struct TraceHandle(Arc<TraceSet>);

impl TraceHandle {
    /// Take ownership of a trace set.
    pub fn new(traces: TraceSet) -> TraceHandle {
        TraceHandle(Arc::new(traces))
    }

    /// Whether two handles share the same allocation. Cheaper than `==`
    /// (which falls back to comparing the sets when the pointers differ).
    pub fn ptr_eq(&self, other: &TraceHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// The underlying shared allocation.
    pub fn as_arc(&self) -> &Arc<TraceSet> {
        &self.0
    }
}

impl Deref for TraceHandle {
    type Target = TraceSet;
    fn deref(&self) -> &TraceSet {
        &self.0
    }
}

impl AsRef<TraceSet> for TraceHandle {
    fn as_ref(&self) -> &TraceSet {
        &self.0
    }
}

impl From<TraceSet> for TraceHandle {
    fn from(t: TraceSet) -> TraceHandle {
        TraceHandle::new(t)
    }
}

impl From<&TraceSet> for TraceHandle {
    fn from(t: &TraceSet) -> TraceHandle {
        TraceHandle::new(t.clone())
    }
}

impl From<Arc<TraceSet>> for TraceHandle {
    fn from(t: Arc<TraceSet>) -> TraceHandle {
        TraceHandle(t)
    }
}

impl From<&TraceHandle> for TraceHandle {
    fn from(h: &TraceHandle) -> TraceHandle {
        h.clone()
    }
}

/// Handles compare by contents (pointer equality is a fast path), so two
/// independently-built handles over equal trace data are equal — the
/// contract [`crate::TraceSet`] itself has.
impl PartialEq for TraceHandle {
    fn eq(&self, other: &TraceHandle) -> bool {
        self.ptr_eq(other) || *self.0 == *other.0
    }
}

impl Eq for TraceHandle {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Price, PriceSeries, SimTime};

    fn set() -> TraceSet {
        TraceSet::new(vec![PriceSeries::new(
            SimTime::ZERO,
            vec![Price::from_millis(100), Price::from_millis(200)],
        )])
    }

    #[test]
    fn handle_derefs_and_compares_by_contents() {
        let a = TraceHandle::from(set());
        let b = TraceHandle::from(&set());
        assert!(!a.ptr_eq(&b));
        assert_eq!(a, b);
        assert_eq!(a.n_zones(), 1);
        let c = a.clone();
        assert!(a.ptr_eq(&c));
    }
}
