//! Real-trace calibration: fit the regime-switching generator to an
//! ingested price trace.
//!
//! The fit closes the loop *real data → model → synthetic sweeps*: a
//! user ingests a recorded CSV/JSONL spot-price history, `fit` recovers
//! per-zone [`ZoneRegime`] parameters (price levels, jitter, stickiness,
//! regime spell lengths, spike shape), and the resulting
//! [`CalibratedProfile`] regenerates arbitrarily many statistically
//! similar synthetic traces (`gen-trace --profile calibrated:FILE`),
//! each seeded and bit-reproducible.
//!
//! The fit is two-phase:
//!
//! 1. **Direct moment estimation.** Each zone's samples are split into
//!    calm / elevated / spike bands by robust thresholds (2× the median
//!    separates calm from elevated; 1.6× the elevated median separates
//!    elevated from spikes). Band means give the regime bases, band
//!    percentile deviations the jitter half-widths, band transition
//!    counts the regime-switch probabilities, and the fraction of moving
//!    adjacent calm samples the stickiness `p_move`.
//! 2. **Probe correction.** The estimators above are biased (the
//!    generator's mean-reversion shrinks observed jitter; spikes and
//!    regime snaps leak into the change count), so the fit generates a
//!    probe trace from the candidate parameters with a fixed internal
//!    seed and rescales the price bases and `p_move` until the probe's
//!    per-zone mean and change-point density match the source. Three
//!    rounds land both inside a couple of percent.

use crate::gen::{GenConfig, ZoneRegime};
use crate::series::PriceSeries;
use crate::time::{SimDuration, SimTime};
use crate::traceset::TraceSet;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Summary statistics of the source trace the profile was fitted from,
/// kept for provenance and round-trip verification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceSummary {
    /// Per-zone mean price, milli-dollars.
    pub zone_mean_millis: Vec<f64>,
    /// Per-zone change-point density: fraction of adjacent sample pairs
    /// with differing prices.
    pub zone_change_density: Vec<f64>,
    /// Source sampling step, seconds.
    pub step: u64,
    /// Source duration.
    pub duration: SimDuration,
}

/// A fitted generator profile: feed it a seed to regenerate synthetic
/// traces statistically similar to the source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedProfile {
    /// Fitted per-zone regime parameters.
    pub zones: Vec<ZoneRegime>,
    /// Regeneration length (defaults to the source duration).
    pub duration: SimDuration,
    /// What the fit measured on the source.
    pub source: SourceSummary,
}

impl CalibratedProfile {
    /// The generator configuration for one regeneration seed.
    ///
    /// Zones are regenerated *independently* (`common_amplitude = 0`):
    /// the weak shared factor is below the fit's resolution and coupling
    /// would perturb the calibrated change density.
    pub fn to_gen_config(&self, seed: u64) -> GenConfig {
        GenConfig {
            zones: self.zones.clone(),
            duration: self.duration,
            start: SimTime::ZERO,
            seed,
            common_amplitude: 0,
        }
    }

    /// Regenerate a synthetic trace set (at the generator's native
    /// 5-minute step).
    pub fn generate(&self, seed: u64) -> TraceSet {
        self.to_gen_config(seed).generate()
    }

    /// Save as JSON.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let file = io::BufWriter::new(std::fs::File::create(path)?);
        serde_json::to_writer_pretty(file, self).map_err(io::Error::other)
    }

    /// Load from JSON.
    pub fn load_json(path: &Path) -> io::Result<CalibratedProfile> {
        let file = io::BufReader::new(std::fs::File::open(path)?);
        serde_json::from_reader(file).map_err(io::Error::other)
    }
}

/// Mean price of a series in milli-dollars.
fn mean_millis(z: &PriceSeries) -> f64 {
    let s = z.samples();
    s.iter().map(|p| p.millis() as f64).sum::<f64>() / s.len().max(1) as f64
}

/// Fraction of adjacent sample pairs whose prices differ.
fn change_density(z: &PriceSeries) -> f64 {
    let s = z.samples();
    if s.len() < 2 {
        return 0.0;
    }
    s.windows(2).filter(|w| w[0] != w[1]).count() as f64 / (s.len() - 1) as f64
}

/// Percentile (0–100) of a sorted slice.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-sample band classification.
#[derive(Clone, Copy, PartialEq)]
enum Band {
    Calm,
    Elevated,
    Spike,
}

/// Phase 1: direct moment estimation for one zone.
fn fit_zone(z: &PriceSeries) -> ZoneRegime {
    let mut sorted: Vec<u64> = z.samples().iter().map(|p| p.millis()).collect();
    sorted.sort_unstable();
    let median = percentile(&sorted, 50.0).max(1);

    // Robust band thresholds: calm lives within 2× the median (the bulk
    // of any spot history); elevated above that; spikes above 1.6× the
    // elevated median.
    let t_calm = 2 * median;
    let above: Vec<u64> = sorted.iter().copied().filter(|&v| v > t_calm).collect();
    let t_spike = if above.is_empty() {
        u64::MAX
    } else {
        percentile(&above, 50.0) * 8 / 5
    };

    let band = |v: u64| {
        if v <= t_calm {
            Band::Calm
        } else if v <= t_spike {
            Band::Elevated
        } else {
            Band::Spike
        }
    };
    let samples: Vec<u64> = z.samples().iter().map(|p| p.millis()).collect();
    let bands: Vec<Band> = samples.iter().map(|&v| band(v)).collect();

    // Band moments.
    let band_stats = |want: Band| -> (f64, Vec<u64>) {
        let vals: Vec<u64> = samples
            .iter()
            .zip(&bands)
            .filter(|(_, b)| **b == want)
            .map(|(&v, _)| v)
            .collect();
        let mean = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len().max(1) as f64;
        (mean, vals)
    };
    let (calm_mean, calm_vals) = band_stats(Band::Calm);
    let (elev_mean, elev_vals) = band_stats(Band::Elevated);
    let (_, mut spike_vals) = band_stats(Band::Spike);

    let jitter = |vals: &[u64], base: f64| -> u64 {
        let mut dev: Vec<u64> = vals
            .iter()
            .map(|&v| (v as f64 - base).abs().round() as u64)
            .collect();
        dev.sort_unstable();
        percentile(&dev, 95.0).max(1)
    };
    let calm_base = (calm_mean.round() as u64).max(1);
    let calm_jitter = jitter(&calm_vals, calm_mean);
    let two_regime = !elev_vals.is_empty();
    let elevated_base = if two_regime {
        (elev_mean.round() as u64).max(calm_base + 1)
    } else {
        calm_base * 3 / 2
    };
    let elevated_jitter = if two_regime {
        jitter(&elev_vals, elev_mean)
    } else {
        calm_jitter
    };

    // Transition probabilities from band runs.
    let mut c2e = 0u64;
    let mut e2c = 0u64;
    let mut spike_entries = 0u64;
    let mut calm_steps = 0u64;
    let mut elev_steps = 0u64;
    let mut nonspike_steps = 0u64;
    let mut p_move_num = 0u64;
    let mut p_move_den = 0u64;
    let mut spike_runs: Vec<u64> = Vec::new();
    let mut run = 0u64;
    for i in 0..bands.len() {
        match bands[i] {
            Band::Calm => calm_steps += 1,
            Band::Elevated => elev_steps += 1,
            Band::Spike => {}
        }
        if bands[i] != Band::Spike {
            nonspike_steps += 1;
        }
        if bands[i] == Band::Spike {
            run += 1;
        } else if run > 0 {
            spike_runs.push(run);
            run = 0;
        }
        if i + 1 < bands.len() {
            match (bands[i], bands[i + 1]) {
                (Band::Calm, Band::Elevated) => c2e += 1,
                (Band::Elevated, Band::Calm) => e2c += 1,
                (b, Band::Spike) if b != Band::Spike => spike_entries += 1,
                _ => {}
            }
            if bands[i] == Band::Calm && bands[i + 1] == Band::Calm {
                p_move_den += 1;
                if samples[i] != samples[i + 1] {
                    p_move_num += 1;
                }
            }
        }
    }
    if run > 0 {
        spike_runs.push(run);
    }

    let rate = |num: u64, den: u64, fallback: f64| {
        if den == 0 {
            fallback
        } else {
            (num as f64 / den as f64).clamp(0.0, 0.95)
        }
    };
    let p_move = rate(p_move_num, p_move_den, 0.1).max(0.001);
    let p_calm_to_elevated = if two_regime {
        rate(c2e, calm_steps, 0.0)
    } else {
        0.0
    };
    let p_elevated_to_calm = if two_regime {
        rate(e2c, elev_steps, 0.1).max(0.001)
    } else {
        0.1
    };
    let p_spike = rate(spike_entries, nonspike_steps, 0.0);

    // Spike shape from percentile-trimmed spike samples, so one extreme
    // outlier (the $20.02 event) cannot drag the whole range up.
    spike_vals.sort_unstable();
    let spike_range = if spike_vals.is_empty() {
        (elevated_base * 2, elevated_base * 3)
    } else {
        let lo = percentile(&spike_vals, 5.0);
        (lo, percentile(&spike_vals, 95.0).max(lo + 1))
    };
    spike_runs.sort_unstable();
    let spike_steps = if spike_runs.is_empty() {
        (1, 3)
    } else {
        let lo = percentile(&spike_runs, 5.0).max(1);
        (lo, percentile(&spike_runs, 95.0).max(lo))
    };

    ZoneRegime {
        calm_base,
        calm_jitter,
        p_move,
        elevated_base,
        elevated_jitter,
        p_calm_to_elevated,
        p_elevated_to_calm,
        p_spike,
        spike_range,
        spike_steps,
    }
}

/// Internal probe seed for the correction phase (any fixed value works;
/// it must simply not depend on user input so fits are reproducible).
const PROBE_SEED: u64 = 0xCA11_B7A7_ED5E_ED01;

/// Probe length: long enough to average out regime-occupancy noise,
/// bounded so fitting a year-long trace stays fast.
fn probe_duration(source: SimDuration) -> SimDuration {
    let min = SimDuration::from_hours(24 * 60);
    let max = SimDuration::from_hours(24 * 360);
    SimDuration::from_secs(source.secs().clamp(min.secs(), max.secs()))
}

/// Fit a [`CalibratedProfile`] to an ingested trace set.
pub fn fit(set: &TraceSet) -> CalibratedProfile {
    let source = SourceSummary {
        zone_mean_millis: set.zones().iter().map(mean_millis).collect(),
        zone_change_density: set.zones().iter().map(change_density).collect(),
        step: set.zones()[0].step(),
        duration: set.duration(),
    };
    let mut zones: Vec<ZoneRegime> = set.zones().iter().map(fit_zone).collect();

    // Phase 2: probe correction. Rescale bases toward the source mean and
    // p_move toward the source change density, measuring each candidate
    // on a fixed-seed probe ensemble.
    let probe_cfg = |zones: &[ZoneRegime], seed: u64| GenConfig {
        zones: zones.to_vec(),
        duration: probe_duration(set.duration()),
        start: SimTime::ZERO,
        seed,
        common_amplitude: 0,
    };
    for _ in 0..3 {
        let probes = [
            probe_cfg(&zones, PROBE_SEED).generate(),
            probe_cfg(&zones, PROBE_SEED ^ 0x5555_5555_5555_5555).generate(),
        ];
        for (i, zone) in zones.iter_mut().enumerate() {
            let probe_mean = probes
                .iter()
                .map(|p| mean_millis(&p.zones()[i]))
                .sum::<f64>()
                / probes.len() as f64;
            let probe_density = probes
                .iter()
                .map(|p| change_density(&p.zones()[i]))
                .sum::<f64>()
                / probes.len() as f64;
            if probe_mean > 0.0 {
                let r = source.zone_mean_millis[i] / probe_mean;
                let scale = |v: u64| ((v as f64 * r).round() as u64).max(1);
                zone.calm_base = scale(zone.calm_base);
                zone.elevated_base = scale(zone.elevated_base).max(zone.calm_base + 1);
            }
            if probe_density > 0.0 {
                let r = source.zone_change_density[i] / probe_density;
                zone.p_move = (zone.p_move * r).clamp(0.001, 0.95);
            }
        }
    }

    CalibratedProfile {
        zones,
        duration: set.duration(),
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::year_history;

    /// Round-trip acceptance: generate → fit → regenerate must reproduce
    /// per-zone mean price and change-point density within 5 %, averaged
    /// over a small regeneration ensemble (single seeds carry
    /// regime-occupancy noise by design).
    fn assert_round_trip(source: &TraceSet, label: &str) {
        let profile = fit(source);
        let regen: Vec<TraceSet> = (0..4).map(|s| profile.generate(1_000 + s)).collect();
        for (i, z) in source.zones().iter().enumerate() {
            let src_mean = mean_millis(z);
            let src_density = change_density(z);
            let regen_mean = regen
                .iter()
                .map(|t| mean_millis(&t.zones()[i]))
                .sum::<f64>()
                / regen.len() as f64;
            let regen_density = regen
                .iter()
                .map(|t| change_density(&t.zones()[i]))
                .sum::<f64>()
                / regen.len() as f64;
            let mean_err = (regen_mean - src_mean).abs() / src_mean;
            let density_err = (regen_density - src_density).abs() / src_density.max(1e-9);
            assert!(
                mean_err < 0.05,
                "{label} zone {i}: mean {src_mean:.1} regenerated as {regen_mean:.1} ({:.1} % off)",
                mean_err * 100.0
            );
            assert!(
                density_err < 0.05,
                "{label} zone {i}: density {src_density:.4} regenerated as {regen_density:.4} \
                 ({:.1} % off)",
                density_err * 100.0
            );
        }
    }

    #[test]
    fn round_trip_low_volatility() {
        assert_round_trip(&GenConfig::low_volatility(42).generate(), "low");
    }

    #[test]
    fn round_trip_high_volatility() {
        assert_round_trip(&GenConfig::high_volatility(42).generate(), "high");
    }

    #[test]
    fn round_trip_year_history() {
        assert_round_trip(&year_history(42), "year");
    }

    #[test]
    fn fit_is_deterministic() {
        let set = GenConfig::high_volatility(9).generate();
        assert_eq!(fit(&set), fit(&set));
    }

    #[test]
    fn profile_serializes_and_regenerates_identically() {
        let set = GenConfig::low_volatility(5).generate();
        let profile = fit(&set);
        let dir = std::env::temp_dir().join("redspot-test-calibrate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        profile.save_json(&path).unwrap();
        let loaded = CalibratedProfile::load_json(&path).unwrap();
        assert_eq!(profile, loaded);
        assert_eq!(profile.generate(7), loaded.generate(7));
        assert_ne!(profile.generate(7), loaded.generate(8));
    }

    #[test]
    fn fitted_high_volatility_looks_two_regime() {
        let set = GenConfig::high_volatility(42).generate();
        let profile = fit(&set);
        for z in &profile.zones {
            assert!(z.elevated_base > 2 * z.calm_base, "{z:?}");
            assert!(z.p_calm_to_elevated > 0.0, "{z:?}");
            assert!(z.p_spike > 0.0, "{z:?}");
        }
    }
}
