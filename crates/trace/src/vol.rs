//! Volatility classification of price windows (the paper's low- vs
//! high-volatility evaluation regimes, Section 5).

use crate::traceset::TraceSet;
use crate::window::Window;
use serde::{Deserialize, Serialize};

/// Volatility regime of a price window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Volatility {
    /// Paper's March-2013-like regime: variance < 0.01 per zone.
    Low,
    /// Between the paper's published thresholds.
    Moderate,
    /// Paper's January-2013-like regime: variance up to ≈ 2 per zone.
    High,
}

impl std::fmt::Display for Volatility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Volatility::Low => "low",
            Volatility::Moderate => "moderate",
            Volatility::High => "high",
        })
    }
}

/// Variance threshold below which a window counts as low-volatility
/// (the paper's "variance of less than 0.01 in each zone").
pub const LOW_VARIANCE: f64 = 0.01;

/// Variance threshold above which a window counts as high-volatility.
/// The paper's high window has variance "up to 2.02"; any zone above 0.25
/// already behaves qualitatively like the high regime for the policies.
pub const HIGH_VARIANCE: f64 = 0.25;

/// Classify the volatility of `window` within `set`: low iff *every* zone
/// is below [`LOW_VARIANCE`], high iff *any* zone exceeds [`HIGH_VARIANCE`].
pub fn classify(set: &TraceSet, window: Window) -> Volatility {
    let vars: Vec<f64> = set
        .zones()
        .iter()
        .map(|z| z.slice(window).variance_dollars())
        .collect();
    if vars.iter().all(|&v| v < LOW_VARIANCE) {
        Volatility::Low
    } else if vars.iter().any(|&v| v > HIGH_VARIANCE) {
        Volatility::High
    } else {
        Volatility::Moderate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    #[test]
    fn presets_classify_as_intended() {
        let low = GenConfig::low_volatility(21).generate();
        assert_eq!(classify(&low, low.span()), Volatility::Low);
        let high = GenConfig::high_volatility(21).generate();
        assert_eq!(classify(&high, high.span()), Volatility::High);
    }

    #[test]
    fn display_names() {
        assert_eq!(Volatility::Low.to_string(), "low");
        assert_eq!(Volatility::High.to_string(), "high");
        assert_eq!(Volatility::Moderate.to_string(), "moderate");
    }
}
