//! Block-bootstrap resampling of price traces.
//!
//! Given *one* observed trace (e.g. a user's own recorded spot-price
//! history), block bootstrapping produces statistically-similar synthetic
//! variants: contiguous blocks are drawn with replacement and spliced,
//! preserving the short-range dynamics (regime spells, spikes, edges)
//! that the checkpoint policies react to, while shuffling their order.
//! Levels at splice points are left untouched — spot prices jump
//! discontinuously in reality too.
//!
//! This lets every experiment in redspot run against ensembles derived
//! from real data instead of the parametric generator.

use crate::price::Price;
use crate::series::PriceSeries;
use crate::time::SimDuration;
use crate::traceset::TraceSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Block-bootstrap configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapConfig {
    /// Block length. The paper's dynamics live at hour scale; the default
    /// (12 hours) keeps whole regime spells together.
    pub block: SimDuration,
    /// Length of each resampled trace.
    pub output_len: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> BootstrapConfig {
        BootstrapConfig {
            block: SimDuration::from_hours(12),
            output_len: SimDuration::from_hours(24 * 30),
            seed: 0,
        }
    }
}

/// Resample one synthetic variant of `source`. Zones are resampled with
/// the *same* block choices so weak cross-zone structure survives.
///
/// # Panics
/// Panics if the source is shorter than one block or the block length is
/// shorter than one sampling step.
pub fn resample(source: &TraceSet, cfg: &BootstrapConfig) -> TraceSet {
    let z0 = source.zones().first().expect("trace set is never empty");
    let step = z0.step();
    let block_steps = (cfg.block.secs() / step).max(1) as usize;
    let out_steps = (cfg.output_len.secs() / step).max(1) as usize;
    let src_steps = z0.len();
    assert!(
        src_steps >= block_steps,
        "source trace shorter than one bootstrap block"
    );

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5851_F42D_4C95_7F2D);
    // Shared block starts across zones.
    let n_blocks = out_steps.div_ceil(block_steps);
    let starts: Vec<usize> = (0..n_blocks)
        .map(|_| rng.gen_range(0..=src_steps - block_steps))
        .collect();

    let zones = source
        .zones()
        .iter()
        .map(|z| {
            let mut samples: Vec<Price> = Vec::with_capacity(out_steps);
            for &s in &starts {
                let end = (s + block_steps).min(src_steps);
                samples.extend_from_slice(&z.samples()[s..end]);
                if samples.len() >= out_steps {
                    break;
                }
            }
            samples.truncate(out_steps);
            PriceSeries::with_step(z.start(), step, samples)
        })
        .collect();
    TraceSet::new(zones)
}

/// Resample an ensemble of `count` variants with distinct seeds.
pub fn ensemble(source: &TraceSet, cfg: &BootstrapConfig, count: usize) -> Vec<TraceSet> {
    (0..count)
        .map(|i| {
            let cfg = BootstrapConfig {
                seed: cfg.seed.wrapping_add(i as u64),
                ..*cfg
            };
            resample(source, &cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    fn source() -> TraceSet {
        GenConfig::high_volatility(9).generate()
    }

    #[test]
    fn resample_has_requested_shape() {
        let src = source();
        let cfg = BootstrapConfig {
            output_len: SimDuration::from_hours(24 * 10),
            ..BootstrapConfig::default()
        };
        let out = resample(&src, &cfg);
        assert_eq!(out.n_zones(), src.n_zones());
        assert_eq!(out.duration(), SimDuration::from_hours(240));
    }

    #[test]
    fn resample_is_deterministic_per_seed() {
        let src = source();
        let cfg = BootstrapConfig::default();
        assert_eq!(resample(&src, &cfg), resample(&src, &cfg));
        let other = BootstrapConfig { seed: 1, ..cfg };
        assert_ne!(resample(&src, &cfg), resample(&src, &other));
    }

    #[test]
    fn resampled_values_come_from_the_source() {
        let src = source();
        let out = resample(&src, &BootstrapConfig::default());
        for (zs, zo) in src.zones().iter().zip(out.zones()) {
            let have: std::collections::HashSet<u64> =
                zs.samples().iter().map(|p| p.millis()).collect();
            assert!(zo.samples().iter().all(|p| have.contains(&p.millis())));
        }
    }

    #[test]
    fn statistics_are_roughly_preserved() {
        let src = source();
        let out = resample(&src, &BootstrapConfig::default());
        for (zs, zo) in src.zones().iter().zip(out.zones()) {
            let (ms, mo) = (zs.mean_dollars(), zo.mean_dollars());
            assert!(
                (ms - mo).abs() / ms < 0.35,
                "bootstrap mean drifted: {ms} vs {mo}"
            );
        }
    }

    #[test]
    fn ensemble_produces_distinct_variants() {
        let src = source();
        let e = ensemble(&src, &BootstrapConfig::default(), 3);
        assert_eq!(e.len(), 3);
        assert_ne!(e[0], e[1]);
        assert_ne!(e[1], e[2]);
    }

    #[test]
    #[should_panic(expected = "shorter than one bootstrap block")]
    fn tiny_source_panics() {
        let src = GenConfig {
            duration: SimDuration::from_hours(2),
            ..GenConfig::low_volatility(1)
        }
        .generate();
        resample(&src, &BootstrapConfig::default());
    }
}
