//! Unified trace acquisition: every consumer of market data — one-off
//! runs, sweeps, chaos suites, the era comparison, the serve daemon's
//! preload — names *where its prices come from* as one [`TraceSource`]
//! value, resolved exactly once.
//!
//! Before this existed each subcommand grew its own flag plumbing (`run`
//! required `--trace`, `chaos` silently generated, `bootstrap` had its
//! own loader), so identical flags meant different things in different
//! places. A `TraceSource` is the single answer to "which market?":
//!
//! * [`TraceSource::Generate`] — synthesize from a named [`Profile`]
//!   (stock `low`/`high`/`year`, or `calibrated:FILE` for a fitted
//!   [`CalibratedProfile`]) and a seed;
//! * [`TraceSource::File`] — load a recorded trace (CSV or JSON, by
//!   extension);
//! * [`TraceSource::Bootstrap`] — load a recorded trace and block-
//!   bootstrap a resampled variant from it.

use crate::bootstrap::{resample, BootstrapConfig};
use crate::calibrate::CalibratedProfile;
use crate::gen::{year_history, GenConfig};
use crate::io;
use crate::traceset::TraceSet;
use std::path::{Path, PathBuf};

/// A named generator profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Profile {
    /// The stock low-volatility market.
    Low,
    /// The stock high-volatility market.
    High,
    /// The 12-month mixed history with the $20.02 spike.
    Year,
    /// A fitted [`CalibratedProfile`] loaded from a JSON file.
    Calibrated(PathBuf),
}

impl Profile {
    /// Parse a profile spec: `low`, `high`, `year`, or `calibrated:FILE`.
    pub fn parse(spec: &str) -> Result<Profile, String> {
        match spec {
            "low" => Ok(Profile::Low),
            "high" => Ok(Profile::High),
            "year" => Ok(Profile::Year),
            other => match other.strip_prefix("calibrated:") {
                Some(path) if !path.is_empty() => Ok(Profile::Calibrated(PathBuf::from(path))),
                _ => Err(format!(
                    "unknown profile: {other} (low|high|year|calibrated:FILE)"
                )),
            },
        }
    }

    /// Generate a trace set from this profile.
    pub fn generate(&self, seed: u64) -> Result<TraceSet, String> {
        match self {
            Profile::Low => Ok(GenConfig::low_volatility(seed).generate()),
            Profile::High => Ok(GenConfig::high_volatility(seed).generate()),
            Profile::Year => Ok(year_history(seed)),
            Profile::Calibrated(path) => {
                let profile = CalibratedProfile::load_json(path).map_err(|e| {
                    format!("cannot load calibrated profile {}: {e}", path.display())
                })?;
                Ok(profile.generate(seed))
            }
        }
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Profile::Low => write!(f, "low"),
            Profile::High => write!(f, "high"),
            Profile::Year => write!(f, "year"),
            Profile::Calibrated(path) => write!(f, "calibrated:{}", path.display()),
        }
    }
}

/// Where a subcommand's market trace comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSource {
    /// Synthesize from a generator profile.
    Generate {
        /// The profile to synthesize from.
        profile: Profile,
        /// Generator seed.
        seed: u64,
    },
    /// Load a recorded trace file (CSV by `.csv` extension, else JSON).
    File {
        /// The trace file.
        path: PathBuf,
    },
    /// Load a recorded trace and block-bootstrap a resampled variant.
    Bootstrap {
        /// The source trace file.
        path: PathBuf,
        /// Resampling parameters (block length, output length, seed).
        config: BootstrapConfig,
    },
}

/// Load a trace file, dispatching on the extension. The shared loader
/// behind [`TraceSource::File`] and [`TraceSource::Bootstrap`]; CLI
/// commands with genuinely file-only semantics (`describe`,
/// `validate-trace`) use it directly.
pub fn load_trace_file(path: &Path) -> Result<TraceSet, String> {
    let load = if path.extension().is_some_and(|e| e == "csv") {
        io::load_csv(path)
    } else {
        io::load_json(path)
    };
    load.map_err(|e| format!("cannot load trace {}: {e}", path.display()))
}

impl TraceSource {
    /// Resolve the source into a concrete trace set. Deterministic: the
    /// same source value always yields the same prices.
    pub fn resolve(&self) -> Result<TraceSet, String> {
        match self {
            TraceSource::Generate { profile, seed } => profile.generate(*seed),
            TraceSource::File { path } => load_trace_file(path),
            TraceSource::Bootstrap { path, config } => {
                Ok(resample(&load_trace_file(path)?, config))
            }
        }
    }
}

impl std::fmt::Display for TraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSource::Generate { profile, seed } => {
                write!(f, "generated ({profile}, seed {seed})")
            }
            TraceSource::File { path } => write!(f, "file {}", path.display()),
            TraceSource::Bootstrap { path, config } => {
                write!(f, "bootstrap of {} (seed {})", path.display(), config.seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("redspot-test-source");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn profiles_parse_and_roundtrip_display() {
        for spec in ["low", "high", "year", "calibrated:/tmp/p.json"] {
            let p = Profile::parse(spec).unwrap();
            assert_eq!(p.to_string(), spec);
        }
        assert!(Profile::parse("weird").is_err());
        assert!(Profile::parse("calibrated:").is_err());
    }

    #[test]
    fn generate_matches_the_direct_generators() {
        let s = TraceSource::Generate {
            profile: Profile::High,
            seed: 9,
        };
        assert_eq!(
            s.resolve().unwrap(),
            GenConfig::high_volatility(9).generate()
        );
        let s = TraceSource::Generate {
            profile: Profile::Year,
            seed: 3,
        };
        assert_eq!(s.resolve().unwrap(), year_history(3));
    }

    #[test]
    fn file_source_loads_csv_and_json_by_extension() {
        let set = GenConfig::low_volatility(4).generate();
        let json = tmp("src.json");
        let csv = tmp("src.csv");
        io::save_json(&set, &json).unwrap();
        io::save_csv(&set, &csv).unwrap();
        for path in [json, csv] {
            let loaded = TraceSource::File { path }.resolve().unwrap();
            assert_eq!(loaded, set);
        }
        let missing = TraceSource::File {
            path: tmp("absent.json"),
        };
        let err = missing.resolve().unwrap_err();
        assert!(err.contains("cannot load trace"), "{err}");
    }

    #[test]
    fn bootstrap_source_matches_direct_resampling() {
        let set = GenConfig::high_volatility(6).generate();
        let path = tmp("boot-src.json");
        io::save_json(&set, &path).unwrap();
        let config = BootstrapConfig {
            seed: 11,
            ..BootstrapConfig::default()
        };
        let via_source = TraceSource::Bootstrap { path, config }.resolve().unwrap();
        assert_eq!(via_source, resample(&set, &config));
    }

    #[test]
    fn calibrated_profile_resolves_through_generate() {
        let set = GenConfig::low_volatility(2).generate();
        let fitted = calibrate::fit(&set);
        let path = tmp("profile.json");
        fitted.save_json(&path).unwrap();
        let source = TraceSource::Generate {
            profile: Profile::Calibrated(path),
            seed: 21,
        };
        assert_eq!(source.resolve().unwrap(), fitted.generate(21));
        let bad = TraceSource::Generate {
            profile: Profile::Calibrated(tmp("absent-profile.json")),
            seed: 21,
        };
        assert!(bad.resolve().unwrap_err().contains("calibrated profile"));
    }
}
