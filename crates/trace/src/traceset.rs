//! Aligned multi-zone spot-price traces.

use crate::price::Price;
use crate::series::PriceSeries;
use crate::time::{SimDuration, SimTime};
use crate::window::Window;
use serde::{Deserialize, Serialize};

/// Identifier of an availability zone within a [`TraceSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ZoneId(pub usize);

impl std::fmt::Display for ZoneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Mirror EC2's us-east-1a/b/c naming for the paper's three CC2 zones.
        let letter = (b'a' + (self.0 % 26) as u8) as char;
        write!(f, "us-east-1{letter}")
    }
}

/// A set of per-zone price series with identical start, step, and length —
/// the paper's three US-East CC2 zones.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSet {
    zones: Vec<PriceSeries>,
}

impl TraceSet {
    /// Build from per-zone series.
    ///
    /// # Panics
    /// Panics if `zones` is empty or the series are not aligned (same
    /// start, step and sample count).
    pub fn new(zones: Vec<PriceSeries>) -> TraceSet {
        assert!(!zones.is_empty(), "trace set needs at least one zone");
        let (s0, st0, l0) = (zones[0].start(), zones[0].step(), zones[0].len());
        for z in &zones[1..] {
            assert!(
                z.start() == s0 && z.step() == st0 && z.len() == l0,
                "zone series must be aligned"
            );
        }
        TraceSet { zones }
    }

    /// Number of availability zones.
    pub fn n_zones(&self) -> usize {
        self.zones.len()
    }

    /// All zone ids.
    pub fn zone_ids(&self) -> impl Iterator<Item = ZoneId> {
        (0..self.zones.len()).map(ZoneId)
    }

    /// The series for one zone.
    ///
    /// # Panics
    /// Panics if the zone id is out of range.
    pub fn zone(&self, id: ZoneId) -> &PriceSeries {
        &self.zones[id.0]
    }

    /// All zone series.
    pub fn zones(&self) -> &[PriceSeries] {
        &self.zones
    }

    /// First instant covered.
    pub fn start(&self) -> SimTime {
        self.zones[0].start()
    }

    /// One past the last instant covered.
    pub fn end(&self) -> SimTime {
        self.zones[0].end()
    }

    /// The full span as a window.
    pub fn span(&self) -> Window {
        Window::new(self.start(), self.end())
    }

    /// Time span covered.
    pub fn duration(&self) -> SimDuration {
        self.zones[0].duration()
    }

    /// Spot price of `zone` at `t`.
    pub fn price_at(&self, zone: ZoneId, t: SimTime) -> Price {
        self.zones[zone.0].price_at(t)
    }

    /// Slice every zone to `window`.
    pub fn slice(&self, window: Window) -> TraceSet {
        TraceSet::new(self.zones.iter().map(|z| z.slice(window)).collect())
    }

    /// Restrict to a subset of zones (used for single-zone experiments).
    ///
    /// # Panics
    /// Panics if `ids` is empty or contains an out-of-range zone.
    pub fn select_zones(&self, ids: &[ZoneId]) -> TraceSet {
        assert!(!ids.is_empty(), "must select at least one zone");
        TraceSet::new(ids.iter().map(|id| self.zones[id.0].clone()).collect())
    }

    /// Fraction of sample steps at which *at least one* zone's price is at
    /// or below `bid` — the paper's "combined availability" (Figure 2).
    pub fn combined_availability(&self, bid: Price) -> f64 {
        let n = self.zones[0].len();
        let up = (0..n)
            .filter(|&i| self.zones.iter().any(|z| z.samples()[i] <= bid))
            .count();
        up as f64 / n as f64
    }

    /// Availability of one zone at `bid` over the canonical forecast grid
    /// of `window` (see [`PriceSeries::forecast_grid`]). Because all zone
    /// series are aligned, every zone shares the same grid, so these
    /// per-zone fractions are directly comparable. Empty clamped windows
    /// report zero availability instead of panicking like `slice` would.
    pub fn availability_in(&self, zone: ZoneId, window: Window, bid: Price) -> f64 {
        self.zones[zone.0].availability_in(window, bid)
    }

    /// Per-zone availability at `bid` (fraction of steps with price ≤ bid).
    pub fn zone_availabilities(&self, bid: Price) -> Vec<f64> {
        self.zones
            .iter()
            .map(|z| z.availability_at_bid(bid))
            .collect()
    }

    /// Up/down runs for one zone at `bid`: a vector of `(window, up)` pairs
    /// covering the whole trace — directly renders Figure 2's bars.
    pub fn availability_runs(&self, zone: ZoneId, bid: Price) -> Vec<(Window, bool)> {
        let z = &self.zones[zone.0];
        let mut runs: Vec<(Window, bool)> = Vec::new();
        for (t, p) in z.iter() {
            let up = p <= bid;
            let end = t + SimDuration::from_secs(z.step());
            match runs.last_mut() {
                Some((w, state)) if *state == up => *w = Window::new(w.start(), end),
                _ => runs.push((Window::new(t, end), up)),
            }
        }
        runs
    }

    /// Up/down runs of the *combined* system (up when any zone is up).
    pub fn combined_availability_runs(&self, bid: Price) -> Vec<(Window, bool)> {
        let z0 = &self.zones[0];
        let mut runs: Vec<(Window, bool)> = Vec::new();
        for i in 0..z0.len() {
            let up = self.zones.iter().any(|z| z.samples()[i] <= bid);
            let t = SimTime::from_secs(z0.start().secs() + i as u64 * z0.step());
            let end = t + SimDuration::from_secs(z0.step());
            match runs.last_mut() {
                Some((w, state)) if *state == up => *w = Window::new(w.start(), end),
                _ => runs.push((Window::new(t, end), up)),
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(m: u64) -> Price {
        Price::from_millis(m)
    }

    fn set() -> TraceSet {
        let z0 = PriceSeries::new(SimTime::ZERO, vec![p(200), p(900), p(900), p(200)]);
        let z1 = PriceSeries::new(SimTime::ZERO, vec![p(900), p(200), p(900), p(900)]);
        let z2 = PriceSeries::new(SimTime::ZERO, vec![p(900), p(900), p(900), p(200)]);
        TraceSet::new(vec![z0, z1, z2])
    }

    #[test]
    fn alignment_is_enforced() {
        let z0 = PriceSeries::new(SimTime::ZERO, vec![p(1), p(2)]);
        let z1 = PriceSeries::new(SimTime::from_secs(300), vec![p(1), p(2)]);
        let result = std::panic::catch_unwind(|| TraceSet::new(vec![z0, z1]));
        assert!(result.is_err());
    }

    #[test]
    fn combined_availability_is_union() {
        let s = set();
        let bid = p(500);
        // zone availabilities: 2/4, 1/4, 1/4; union covers steps 0,1,3 = 3/4
        assert_eq!(s.zone_availabilities(bid), vec![0.5, 0.25, 0.25]);
        assert!((s.combined_availability(bid) - 0.75).abs() < 1e-12);
        // Redundancy never lowers availability below the best single zone.
        for z in s.zone_availabilities(bid) {
            assert!(s.combined_availability(bid) >= z);
        }
    }

    #[test]
    fn runs_partition_the_trace() {
        let s = set();
        let runs = s.availability_runs(ZoneId(0), p(500));
        assert_eq!(runs.len(), 3); // up, down(2 steps), up
        assert!(runs[0].1 && !runs[1].1 && runs[2].1);
        assert_eq!(runs[1].0.duration(), SimDuration::from_secs(600));
        let total: u64 = runs.iter().map(|(w, _)| w.duration().secs()).sum();
        assert_eq!(total, s.duration().secs());

        let cruns = s.combined_availability_runs(p(500));
        let ctotal: u64 = cruns.iter().map(|(w, _)| w.duration().secs()).sum();
        assert_eq!(ctotal, s.duration().secs());
        // combined: up, up, down, up -> merges to up(2), down(1), up(1)
        assert_eq!(cruns.len(), 3);
    }

    #[test]
    fn select_and_slice() {
        let s = set();
        let one = s.select_zones(&[ZoneId(1)]);
        assert_eq!(one.n_zones(), 1);
        assert_eq!(one.price_at(ZoneId(0), SimTime::from_secs(300)), p(200));

        let sub = s.slice(Window::new(
            SimTime::from_secs(300),
            SimTime::from_secs(900),
        ));
        assert_eq!(sub.zone(ZoneId(0)).len(), 2);
        assert_eq!(sub.start(), SimTime::from_secs(300));
    }

    #[test]
    fn windowed_availability_shares_one_grid_across_zones() {
        let s = set(); // 4 samples, [0, 1200)
        let w = Window::new(SimTime::from_secs(300), SimTime::from_secs(900));
        assert_eq!(s.availability_in(ZoneId(0), w, p(500)), 0.0);
        assert_eq!(s.availability_in(ZoneId(1), w, p(500)), 0.5);
        // Window overrunning the trace: clamped, not padded.
        let over = Window::new(SimTime::from_secs(900), SimTime::from_secs(9_000));
        assert_eq!(s.availability_in(ZoneId(0), over, p(500)), 1.0);
        // Disjoint window: zero, no panic.
        let gone = Window::new(SimTime::from_secs(5_000), SimTime::from_secs(6_000));
        assert_eq!(s.availability_in(ZoneId(2), gone, p(500)), 0.0);
    }

    #[test]
    fn zone_id_display_mimics_ec2() {
        assert_eq!(ZoneId(0).to_string(), "us-east-1a");
        assert_eq!(ZoneId(2).to_string(), "us-east-1c");
    }
}
