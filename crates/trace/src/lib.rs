//! # redspot-trace
//!
//! Spot-price trace substrate for redspot, the reproduction of
//! *"Exploiting Redundancy for Cost-Effective, Time-Constrained Execution
//! of HPC Applications on Amazon EC2"* (HPDC'14).
//!
//! This crate provides:
//!
//! * fixed-point money ([`Price`]) and integer-second simulation time
//!   ([`SimTime`], [`SimDuration`]);
//! * per-zone stepwise-constant price series ([`PriceSeries`]) and aligned
//!   multi-zone trace sets ([`TraceSet`]);
//! * half-open windows and the paper's overlapping experiment-window
//!   layout ([`Window`], [`overlapping_windows`]);
//! * a calibrated regime-switching synthetic price generator standing in
//!   for the paper's unavailable 12-month CC2 history ([`gen`]), plus a
//!   block-bootstrap resampler for ensembles from observed traces
//!   ([`bootstrap`]);
//! * JSON/CSV persistence ([`io`]) and volatility classification ([`vol`]).

#![warn(missing_docs)]

pub mod bootstrap;
pub mod calibrate;
pub mod gen;
mod handle;
pub mod io;
mod price;
mod series;
pub mod source;
pub mod spells;
mod time;
mod traceset;
pub mod vol;
mod window;

pub use handle::TraceHandle;
pub use price::{highlight_bids, paper_bid_grid, Price};
pub use series::PriceSeries;
pub use source::{load_trace_file, Profile, TraceSource};
pub use time::{SimDuration, SimTime, HOUR, PRICE_STEP};
pub use traceset::{TraceSet, ZoneId};
pub use window::{overlapping_windows, Window};
