//! Synthetic spot-price trace generation.
//!
//! The paper evaluates against 12 months of recorded CC2 spot prices
//! (December 2012 – January 2014, three US-East zones, 5-minute samples).
//! Those traces are not publicly archived, so redspot substitutes a seeded
//! regime-switching stochastic process calibrated to the summary statistics
//! the paper publishes (Section 5):
//!
//! * **low-volatility window** (March 2013): mean spot ≈ $0.30,
//!   per-zone variance < 0.01;
//! * **high-volatility window** (January 2013): per-zone means
//!   $0.70–$1.12, variance up to 2.02, spikes up to ≈ $3.00;
//! * one rare extreme spike to **$20.02** somewhere in the year (drives the
//!   Large-bid worst case in Figure 6).
//!
//! Zones evolve almost independently (their own RNG substreams) with a
//! small shared market factor, so a Vector Auto-Regression reproduces the
//! paper's Section-3.1 finding that cross-zone lagged effects are 1–2
//! orders of magnitude smaller than own-zone effects.

use crate::price::Price;
use crate::series::PriceSeries;
use crate::time::{SimDuration, SimTime, PRICE_STEP};
use crate::traceset::{TraceSet, ZoneId};
use crate::window::Window;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Price-regime parameters for one zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneRegime {
    /// Calm-regime base price, milli-dollars.
    pub calm_base: u64,
    /// Half-width of the calm jitter band, milli-dollars.
    pub calm_jitter: u64,
    /// Probability per 5-min step that the calm price moves at all.
    /// Real spot prices are sticky; most steps see no movement.
    pub p_move: f64,
    /// Elevated-regime base price, milli-dollars.
    pub elevated_base: u64,
    /// Half-width of the elevated jitter band, milli-dollars.
    pub elevated_jitter: u64,
    /// Probability per step of entering the elevated regime from calm.
    pub p_calm_to_elevated: f64,
    /// Probability per step of returning to calm from elevated.
    pub p_elevated_to_calm: f64,
    /// Probability per step of a short price spike (from either regime).
    pub p_spike: f64,
    /// Spike price range, milli-dollars (inclusive).
    pub spike_range: (u64, u64),
    /// Spike length range in steps (inclusive).
    pub spike_steps: (u64, u64),
}

impl ZoneRegime {
    /// Calm-market profile matching the paper's March-2013 window:
    /// mean ≈ $0.30, variance < 0.01.
    pub fn low_volatility(zone_index: usize) -> ZoneRegime {
        ZoneRegime {
            calm_base: 285 + 10 * (zone_index as u64 % 3),
            calm_jitter: 20,
            p_move: 0.08,
            elevated_base: 430,
            elevated_jitter: 40,
            p_calm_to_elevated: 0.002,
            p_elevated_to_calm: 0.08,
            p_spike: 0.0006,
            spike_range: (600, 900),
            spike_steps: (1, 3),
        }
    }

    /// Turbulent profile matching the paper's January-2013 window:
    /// per-zone means $0.70–$1.12, variance up to ≈ 2, spikes to ≈ $3.00.
    /// Roughly a quarter of the time is spent in the elevated regime
    /// (above the $0.81 sweet-spot bid), so single zones are unreliable at
    /// moderate bids while three-zone redundancy stays mostly available —
    /// the regime structure behind the paper's Figure 4(c).
    pub fn high_volatility(zone_index: usize) -> ZoneRegime {
        ZoneRegime {
            calm_base: 330 + 25 * (zone_index as u64 % 3),
            calm_jitter: 50,
            p_move: 0.25,
            elevated_base: 1_400 + 150 * (zone_index as u64 % 3),
            elevated_jitter: 300,
            // Hour-scale regimes: calm spells last ~7.5 h, elevated spells
            // ~3.8 h, spikes ~0.5–2.5 h every ~1.4 days — zones fail a few
            // times per 23-hour experiment rather than hourly.
            p_calm_to_elevated: 0.006,
            p_elevated_to_calm: 0.022,
            p_spike: 0.005,
            spike_range: (2_300, 3_070),
            spike_steps: (6, 30),
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Per-zone regime parameters; the vector length fixes the zone count.
    pub zones: Vec<ZoneRegime>,
    /// Trace length.
    pub duration: SimDuration,
    /// Trace start time.
    pub start: SimTime,
    /// Master RNG seed; every zone derives an independent substream.
    pub seed: u64,
    /// Amplitude (milli-dollars) of the weak shared market factor that
    /// couples zones. Keep small relative to jitter so cross-zone effects
    /// stay 1–2 orders below own-zone effects.
    pub common_amplitude: u64,
}

impl GenConfig {
    /// The paper's low-volatility evaluation window: three zones, one
    /// month, calm prices.
    ///
    /// ```
    /// use redspot_trace::gen::GenConfig;
    /// let traces = GenConfig::low_volatility(42).generate();
    /// assert_eq!(traces.n_zones(), 3);
    /// // Calibrated to the paper's March-2013 statistics.
    /// for zone in traces.zones() {
    ///     assert!(zone.variance_dollars() < 0.01);
    /// }
    /// ```
    pub fn low_volatility(seed: u64) -> GenConfig {
        GenConfig {
            zones: (0..3).map(ZoneRegime::low_volatility).collect(),
            duration: SimDuration::from_hours(24 * 30),
            start: SimTime::ZERO,
            seed,
            common_amplitude: 6,
        }
    }

    /// The paper's high-volatility evaluation window: three zones, one
    /// month, turbulent prices.
    pub fn high_volatility(seed: u64) -> GenConfig {
        GenConfig {
            zones: (0..3).map(ZoneRegime::high_volatility).collect(),
            duration: SimDuration::from_hours(24 * 30),
            start: SimTime::ZERO,
            seed,
            common_amplitude: 12,
        }
    }

    /// Generate a trace set from this configuration.
    pub fn generate(&self) -> TraceSet {
        assert!(!self.zones.is_empty(), "need at least one zone");
        let n_steps = (self.duration.secs() / PRICE_STEP).max(1) as usize;

        // Shared market factor: a slow, small-amplitude random walk added
        // to every zone. This is what the VAR analysis picks up as the weak
        // cross-zone dependency.
        let mut common_rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut common = Vec::with_capacity(n_steps);
        let mut level: i64 = 0;
        let amp = self.common_amplitude as i64;
        for _ in 0..n_steps {
            if common_rng.gen_bool(0.2) {
                level += common_rng.gen_range(-1..=1) * amp.max(1) / 2;
                level = level.clamp(-amp, amp);
            }
            common.push(level);
        }

        let zones = self
            .zones
            .iter()
            .enumerate()
            .map(|(i, regime)| {
                let zone_seed = self
                    .seed
                    .wrapping_add(0xA076_1D64_78BD_642F_u64.wrapping_mul(i as u64 + 1));
                let samples = generate_zone(regime, zone_seed, n_steps, &common);
                PriceSeries::new(self.start, samples)
            })
            .collect();
        TraceSet::new(zones)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    Calm,
    Elevated,
    /// Spiking, with this many steps left.
    Spike(u64),
}

fn generate_zone(regime: &ZoneRegime, seed: u64, n_steps: usize, common: &[i64]) -> Vec<Price> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = Regime::Calm;
    let mut price = regime.calm_base as i64;
    let mut spike_price = 0i64;
    let mut out = Vec::with_capacity(n_steps);

    for &drift in common.iter().take(n_steps) {
        // Regime transitions.
        state = match state {
            Regime::Spike(0) => Regime::Calm,
            Regime::Spike(left) => Regime::Spike(left - 1),
            cur => {
                if rng.gen_bool(regime.p_spike) {
                    let len = rng.gen_range(regime.spike_steps.0..=regime.spike_steps.1);
                    spike_price = rng.gen_range(regime.spike_range.0..=regime.spike_range.1) as i64;
                    Regime::Spike(len)
                } else {
                    match cur {
                        Regime::Calm if rng.gen_bool(regime.p_calm_to_elevated) => Regime::Elevated,
                        Regime::Elevated if rng.gen_bool(regime.p_elevated_to_calm) => Regime::Calm,
                        other => other,
                    }
                }
            }
        };

        // Within-regime sticky random walk toward the regime base.
        let (base, jitter) = match state {
            Regime::Calm => (regime.calm_base as i64, regime.calm_jitter as i64),
            Regime::Elevated => (regime.elevated_base as i64, regime.elevated_jitter as i64),
            Regime::Spike(_) => (spike_price, spike_price / 20),
        };
        let moved = match state {
            Regime::Spike(_) => true,
            _ => rng.gen_bool(regime.p_move),
        };
        if moved || (price - base).abs() > 4 * jitter.max(1) {
            // Mean-revert with jitter; jumps to a new regime snap quickly.
            let target = base
                + if jitter > 0 {
                    rng.gen_range(-jitter..=jitter)
                } else {
                    0
                };
            price = (price + 3 * target) / 4;
        }
        let quoted = (price + drift).max(1) as u64;
        out.push(Price::from_millis(quoted));
    }
    out
}

/// Overwrite `zone`'s prices with `price` over `window` — used to inject
/// the rare $20.02 extreme spike the paper observed on March 13–14, 2013.
///
/// # Panics
/// Panics if the zone id is out of range or the window does not overlap
/// the trace.
pub fn inject_spike(set: &TraceSet, zone: ZoneId, window: Window, price: Price) -> TraceSet {
    assert!(zone.0 < set.n_zones(), "zone out of range");
    assert!(window.overlaps(set.span()), "spike window outside trace");
    let zones = set
        .zones()
        .iter()
        .enumerate()
        .map(|(i, z)| {
            if i != zone.0 {
                return z.clone();
            }
            let samples = z
                .iter()
                .map(|(t, p)| if window.contains(t) { price } else { p })
                .collect();
            PriceSeries::new(z.start(), samples)
        })
        .collect();
    TraceSet::new(zones)
}

/// Build the 12-month composite trace standing in for the paper's
/// December 2012 – January 2014 history: months alternate volatility
/// profiles (month 1 = high volatility ≙ January 2013, month 3 = low
/// volatility ≙ March 2013), and month 3 carries the $20.02 extreme spike
/// in one zone ("March 13th to 14th, 2013").
pub fn year_history(seed: u64) -> TraceSet {
    let month = SimDuration::from_hours(24 * 30);
    let mut per_zone: Vec<Vec<Price>> = vec![Vec::new(); 3];
    for m in 0..12u64 {
        // Months 1 (Jan) and 7 are high-volatility; 5 and 10 moderately so;
        // the rest calm. "Moderate" reuses the high profile with a damped
        // spike rate.
        let cfg = match m {
            1 | 7 => GenConfig::high_volatility(seed.wrapping_add(m)),
            5 | 10 => {
                let mut c = GenConfig::high_volatility(seed.wrapping_add(m));
                for z in &mut c.zones {
                    z.p_spike /= 4.0;
                    z.p_calm_to_elevated /= 2.0;
                }
                c
            }
            _ => GenConfig::low_volatility(seed.wrapping_add(m)),
        };
        let cfg = GenConfig {
            duration: month,
            ..cfg
        };
        let set = cfg.generate();
        for (i, z) in set.zones().iter().enumerate() {
            per_zone[i].extend_from_slice(z.samples());
        }
    }
    let zones = per_zone
        .into_iter()
        .map(|samples| PriceSeries::new(SimTime::ZERO, samples))
        .collect();
    let set = TraceSet::new(zones);

    // The extreme spike: ~30 hours at $20.02 in zone 0, mid-March
    // (month index 3, day 13).
    let spike_start = SimTime::from_secs(month.secs() * 3) + SimDuration::from_hours(13 * 24);
    let spike = Window::starting_at(spike_start, SimDuration::from_hours(30));
    inject_spike(&set, ZoneId(0), spike, Price::MAX_OBSERVED_SPOT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = GenConfig::low_volatility(42).generate();
        let b = GenConfig::low_volatility(42).generate();
        let c = GenConfig::low_volatility(43).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn low_volatility_matches_paper_calibration() {
        let set = GenConfig::low_volatility(7).generate();
        assert_eq!(set.n_zones(), 3);
        for z in set.zones() {
            let mean = z.mean_dollars();
            let var = z.variance_dollars();
            assert!((0.25..=0.40).contains(&mean), "mean {mean} out of range");
            assert!(
                var < 0.01,
                "variance {var} too high for low-volatility window"
            );
        }
    }

    #[test]
    fn high_volatility_matches_paper_calibration() {
        let set = GenConfig::high_volatility(7).generate();
        for z in set.zones() {
            let mean = z.mean_dollars();
            let var = z.variance_dollars();
            assert!((0.55..=1.35).contains(&mean), "mean {mean} out of range");
            assert!((0.2..=2.5).contains(&var), "variance {var} out of range");
            // Spikes approach but do not exceed the $3.07 bid cap rationale.
            assert!(
                z.max_price() <= Price::from_millis(3_300),
                "max {}",
                z.max_price()
            );
            assert!(
                z.max_price() >= Price::from_millis(2_000),
                "max {}",
                z.max_price()
            );
        }
    }

    #[test]
    fn zones_are_nearly_independent() {
        // Correlation of 5-min changes across zones should be weak.
        let set = GenConfig::high_volatility(11).generate();
        let d = |z: &PriceSeries| -> Vec<f64> {
            z.samples()
                .windows(2)
                .map(|w| w[1].as_dollars() - w[0].as_dollars())
                .collect()
        };
        let a = d(set.zone(ZoneId(0)));
        let b = d(set.zone(ZoneId(1)));
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ma, mb) = (mean(&a), mean(&b));
        let cov: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - ma) * (y - mb))
            .sum::<f64>()
            / a.len() as f64;
        let sd = |v: &[f64], m: f64| {
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let corr = cov / (sd(&a, ma) * sd(&b, mb));
        assert!(
            corr.abs() < 0.2,
            "cross-zone change correlation too strong: {corr}"
        );
    }

    #[test]
    fn spike_injection_replaces_window_only() {
        let set = GenConfig::low_volatility(5).generate();
        let w = Window::starting_at(SimTime::from_hours(100), SimDuration::from_hours(10));
        let spiked = inject_spike(&set, ZoneId(1), w, Price::MAX_OBSERVED_SPOT);
        assert_eq!(
            spiked.price_at(ZoneId(1), SimTime::from_hours(105)),
            Price::MAX_OBSERVED_SPOT
        );
        // Other zones and other times untouched.
        assert_eq!(
            spiked.price_at(ZoneId(0), SimTime::from_hours(105)),
            set.price_at(ZoneId(0), SimTime::from_hours(105))
        );
        assert_eq!(
            spiked.price_at(ZoneId(1), SimTime::from_hours(200)),
            set.price_at(ZoneId(1), SimTime::from_hours(200))
        );
    }

    #[test]
    fn year_history_contains_extreme_spike() {
        let set = year_history(3);
        assert_eq!(set.n_zones(), 3);
        // 12 months of 30 days.
        assert_eq!(set.duration(), SimDuration::from_hours(12 * 30 * 24));
        let max = set.zones().iter().map(|z| z.max_price()).max().unwrap();
        assert_eq!(max, Price::MAX_OBSERVED_SPOT);
        // The spike is confined to zone 0.
        assert!(set.zone(ZoneId(1)).max_price() < Price::from_dollars(4.0));
    }

    #[test]
    fn prices_are_always_positive() {
        let set = GenConfig::high_volatility(99).generate();
        for z in set.zones() {
            assert!(z.min_price() > Price::ZERO);
        }
    }
}
