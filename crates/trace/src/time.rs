//! Simulation time.
//!
//! Time is measured in integer seconds from the start of a trace epoch.
//! Spot prices are sampled every [`PRICE_STEP`] (5 minutes, the paper's
//! sampling resolution), while simulation events (checkpoint completions,
//! boot completions, billing-hour boundaries) occur at exact seconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One billing hour, in seconds.
pub const HOUR: u64 = 3_600;

/// The spot-price sampling interval: 5 minutes (Section 5).
pub const PRICE_STEP: u64 = 300;

/// An absolute instant on the simulation clock (seconds since trace epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulation time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The trace epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from seconds since epoch.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs)
    }

    /// Construct from whole hours since epoch.
    pub const fn from_hours(hours: u64) -> SimTime {
        SimTime(hours * HOUR)
    }

    /// Seconds since epoch.
    pub const fn secs(self) -> u64 {
        self.0
    }

    /// Hours since epoch as a float (reporting only).
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Time elapsed since `earlier`; zero if `earlier` is in the future.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The index of the 5-minute price-sampling step containing this time.
    pub const fn price_step_index(self) -> u64 {
        self.0 / PRICE_STEP
    }

    /// The next strictly-later 5-minute sampling boundary.
    pub const fn next_price_step(self) -> SimTime {
        SimTime((self.0 / PRICE_STEP + 1) * PRICE_STEP)
    }

    /// The next strictly-later boundary of a billing hour that *started* at
    /// `hour_origin` (billing hours are anchored at instance launch, not at
    /// the trace epoch).
    pub const fn next_hour_boundary(self, hour_origin: SimTime) -> SimTime {
        let elapsed = self.0.saturating_sub(hour_origin.0);
        SimTime(hour_origin.0 + (elapsed / HOUR + 1) * HOUR)
    }

    /// Saturating subtraction of a duration.
    pub const fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(mins: u64) -> SimDuration {
        SimDuration(mins * 60)
    }

    /// Construct from whole hours.
    pub const fn from_hours(hours: u64) -> SimDuration {
        SimDuration(hours * HOUR)
    }

    /// Length in seconds.
    pub const fn secs(self) -> u64 {
        self.0
    }

    /// Length in hours as a float (reporting only).
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Number of *started* billing hours this span covers (ceiling), e.g.
    /// 1 second → 1 hour. Zero-length spans cover zero hours.
    pub const fn billed_hours(self) -> u64 {
        self.0.div_ceil(HOUR)
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Scale by an integer factor.
    pub const fn scaled(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}h{:02}m{:02}s",
            self.0 / HOUR,
            (self.0 % HOUR) / 60,
            self.0 % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}h{:02}m{:02}s",
            self.0 / HOUR,
            (self.0 % HOUR) / 60,
            self.0 % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_indexing() {
        assert_eq!(SimTime::from_secs(0).price_step_index(), 0);
        assert_eq!(SimTime::from_secs(299).price_step_index(), 0);
        assert_eq!(SimTime::from_secs(300).price_step_index(), 1);
        assert_eq!(
            SimTime::from_secs(0).next_price_step(),
            SimTime::from_secs(300)
        );
        assert_eq!(
            SimTime::from_secs(300).next_price_step(),
            SimTime::from_secs(600)
        );
        assert_eq!(
            SimTime::from_secs(301).next_price_step(),
            SimTime::from_secs(600)
        );
    }

    #[test]
    fn hour_boundaries_are_anchored_at_launch() {
        let launch = SimTime::from_secs(1_000);
        assert_eq!(launch.next_hour_boundary(launch), SimTime::from_secs(4_600));
        assert_eq!(
            SimTime::from_secs(4_599).next_hour_boundary(launch),
            SimTime::from_secs(4_600)
        );
        assert_eq!(
            SimTime::from_secs(4_600).next_hour_boundary(launch),
            SimTime::from_secs(8_200)
        );
    }

    #[test]
    fn billed_hours_is_ceiling() {
        assert_eq!(SimDuration::ZERO.billed_hours(), 0);
        assert_eq!(SimDuration::from_secs(1).billed_hours(), 1);
        assert_eq!(SimDuration::from_hours(1).billed_hours(), 1);
        assert_eq!(SimDuration::from_secs(HOUR + 1).billed_hours(), 2);
        assert_eq!(SimDuration::from_hours(20).billed_hours(), 20);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_hours(2);
        let d = SimDuration::from_mins(30);
        assert_eq!((t + d).secs(), 2 * HOUR + 1800);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t.saturating_sub(SimDuration::from_hours(3)), SimTime::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3_725).to_string(), "1h02m05s");
        assert_eq!(SimDuration::from_secs(65).to_string(), "0h01m05s");
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_secs(5);
        let b = SimDuration::from_secs(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let t = SimTime::from_secs(5);
        let u = SimTime::from_secs(9);
        assert_eq!(t.min(u), t);
        assert_eq!(t.max(u), u);
    }
}
