//! Up/down spell statistics at a bid price.
//!
//! A *spell* is a maximal run of consecutive samples on one side of the
//! bid. Spell-length distributions are the raw material behind expected
//! up-time models and availability forecasting, and make trace regimes
//! comparable ("calm markets have day-long up-spells; turbulent ones,
//! hour-long").

use crate::price::Price;
use crate::series::PriceSeries;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Spell-length statistics for one zone at one bid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpellStats {
    /// Bid the spells were computed against.
    pub bid: Price,
    /// Lengths of maximal affordable runs.
    pub up_spells: Vec<SimDuration>,
    /// Lengths of maximal unaffordable runs.
    pub down_spells: Vec<SimDuration>,
}

impl SpellStats {
    /// Compute spells for a series at `bid`.
    pub fn compute(series: &PriceSeries, bid: Price) -> SpellStats {
        let step = series.step();
        let mut up_spells = Vec::new();
        let mut down_spells = Vec::new();
        let mut current: Option<(bool, u64)> = None;
        for &p in series.samples() {
            let up = p <= bid;
            current = match current {
                Some((state, n)) if state == up => Some((state, n + 1)),
                Some((state, n)) => {
                    let spell = SimDuration::from_secs(n * step);
                    if state {
                        up_spells.push(spell);
                    } else {
                        down_spells.push(spell);
                    }
                    Some((up, 1))
                }
                None => Some((up, 1)),
            };
        }
        if let Some((state, n)) = current {
            let spell = SimDuration::from_secs(n * step);
            if state {
                up_spells.push(spell);
            } else {
                down_spells.push(spell);
            }
        }
        SpellStats {
            bid,
            up_spells,
            down_spells,
        }
    }

    /// Mean up-spell length, or zero when never affordable.
    pub fn mean_up(&self) -> SimDuration {
        mean(&self.up_spells)
    }

    /// Mean down-spell length, or zero when never unaffordable.
    pub fn mean_down(&self) -> SimDuration {
        mean(&self.down_spells)
    }

    /// Fraction of time affordable.
    pub fn availability(&self) -> f64 {
        let up: u64 = self.up_spells.iter().map(|d| d.secs()).sum();
        let down: u64 = self.down_spells.iter().map(|d| d.secs()).sum();
        if up + down == 0 {
            0.0
        } else {
            up as f64 / (up + down) as f64
        }
    }

    /// Number of up→down transitions (failures a running instance at this
    /// bid would suffer).
    pub fn failures(&self) -> usize {
        // Every down spell except a leading one is preceded by an up spell.
        match (self.up_spells.is_empty(), self.down_spells.is_empty()) {
            (true, _) => 0,
            (_, true) => 0,
            _ => self.down_spells.len().min(self.up_spells.len()),
        }
    }
}

fn mean(spells: &[SimDuration]) -> SimDuration {
    if spells.is_empty() {
        return SimDuration::ZERO;
    }
    SimDuration::from_secs(spells.iter().map(|d| d.secs()).sum::<u64>() / spells.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn m(v: u64) -> Price {
        Price::from_millis(v)
    }

    fn series(vals: &[u64]) -> PriceSeries {
        PriceSeries::new(SimTime::ZERO, vals.iter().map(|&v| m(v)).collect())
    }

    #[test]
    fn spells_partition_the_series() {
        // up(2), down(3), up(1)
        let s = series(&[300, 300, 900, 900, 900, 300]);
        let st = SpellStats::compute(&s, m(500));
        assert_eq!(
            st.up_spells,
            vec![SimDuration::from_secs(600), SimDuration::from_secs(300)]
        );
        assert_eq!(st.down_spells, vec![SimDuration::from_secs(900)]);
        assert!((st.availability() - 0.5).abs() < 1e-12);
        assert_eq!(st.failures(), 1);
    }

    #[test]
    fn always_up_and_always_down() {
        let up = SpellStats::compute(&series(&[300; 10]), m(500));
        assert_eq!(up.up_spells.len(), 1);
        assert!(up.down_spells.is_empty());
        assert_eq!(up.availability(), 1.0);
        assert_eq!(up.failures(), 0);

        let down = SpellStats::compute(&series(&[900; 10]), m(500));
        assert!(down.up_spells.is_empty());
        assert_eq!(down.availability(), 0.0);
        assert_eq!(down.failures(), 0);
        assert_eq!(down.mean_up(), SimDuration::ZERO);
    }

    #[test]
    fn means_are_correct() {
        let s = series(&[300, 900, 300, 300, 900, 900]);
        let st = SpellStats::compute(&s, m(500));
        // up spells: 1, 2 steps → mean 1.5 steps = 450s (integer: 450)
        assert_eq!(st.mean_up(), SimDuration::from_secs(450));
        // down spells: 1, 2 steps
        assert_eq!(st.mean_down(), SimDuration::from_secs(450));
    }

    #[test]
    fn high_volatility_spells_are_hour_scale() {
        // The calibrated generator must produce hour-scale regime spells
        // (this is what distinguishes it from per-step noise).
        let set = crate::gen::GenConfig::high_volatility(3).generate();
        let st = SpellStats::compute(set.zone(crate::traceset::ZoneId(0)), m(810));
        assert!(
            st.mean_up() > SimDuration::from_hours(1),
            "mean up {}",
            st.mean_up()
        );
        assert!(
            st.mean_down() > SimDuration::from_mins(30),
            "mean down {}",
            st.mean_down()
        );
        assert!(st.failures() > 10);
    }
}
