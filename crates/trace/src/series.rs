//! A single availability zone's spot-price history.

use crate::price::Price;
use crate::time::{SimDuration, SimTime, PRICE_STEP};
use crate::window::Window;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// A stepwise-constant spot-price series for one availability zone, sampled
/// at a fixed interval (5 minutes in all paper experiments).
///
/// The price at time `t` is the sample of the step containing `t`; queries
/// before the first sample return the first sample, queries at or past the
/// end return the last sample (policies only ever look backwards, so this
/// clamping only matters at trace edges).
/// Samples live behind an [`Arc`] so cloning a series (and therefore a
/// whole [`crate::TraceSet`]) is O(zones), not O(samples) — sweeps hand
/// the same market to hundreds of cells without copying price data.
#[derive(Debug, Clone)]
pub struct PriceSeries {
    start: SimTime,
    step: u64,
    prices: Arc<Vec<Price>>,
    /// Sorted sample indices `j` with `prices[j] != prices[j - 1]`, built
    /// lazily on the first [`next_price_change`](Self::next_price_change)
    /// and shared by clones. Derived from `prices`, so it is excluded from
    /// equality and serialization (the manual impls below).
    changes: OnceLock<Arc<[u32]>>,
}

/// Equality ignores the lazily-built change-point index: it is a pure
/// function of `prices`.
impl PartialEq for PriceSeries {
    fn eq(&self, other: &PriceSeries) -> bool {
        self.start == other.start && self.step == other.step && self.prices == other.prices
    }
}

impl Eq for PriceSeries {}

/// Hand-written to keep the wire shape at `{start, step, prices}` — the
/// change-point cache is derived data and must not leak into trace files.
impl Serialize for PriceSeries {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("start".to_string(), self.start.to_value()),
            ("step".to_string(), self.step.to_value()),
            ("prices".to_string(), self.prices.to_value()),
        ])
    }
}

impl Deserialize for PriceSeries {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("PriceSeries: expected map"))?;
        let field = |k: &str| {
            serde::__find(m, k)
                .ok_or_else(|| serde::Error::custom(format!("PriceSeries: missing field `{k}`")))
        };
        Ok(PriceSeries {
            start: Deserialize::from_value(field("start")?)?,
            step: Deserialize::from_value(field("step")?)?,
            prices: Deserialize::from_value(field("prices")?)?,
            changes: OnceLock::new(),
        })
    }
}

impl PriceSeries {
    /// Build a series starting at `start` with one sample per [`PRICE_STEP`].
    ///
    /// # Panics
    /// Panics if `prices` is empty.
    pub fn new(start: SimTime, prices: Vec<Price>) -> PriceSeries {
        PriceSeries::with_step(start, PRICE_STEP, prices)
    }

    /// Build a series with an explicit sampling step (seconds).
    ///
    /// # Panics
    /// Panics if `prices` is empty or `step` is zero.
    pub fn with_step(start: SimTime, step: u64, prices: Vec<Price>) -> PriceSeries {
        assert!(
            !prices.is_empty(),
            "price series must have at least one sample"
        );
        assert!(step > 0, "sampling step must be positive");
        PriceSeries {
            start,
            step,
            prices: Arc::new(prices),
            changes: OnceLock::new(),
        }
    }

    /// First instant covered by the series.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// One past the last instant covered (start + len * step).
    pub fn end(&self) -> SimTime {
        self.start + SimDuration::from_secs(self.step * self.prices.len() as u64)
    }

    /// Sampling step in seconds.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Whether the series has no samples. Always false by construction, but
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Time span covered.
    pub fn duration(&self) -> SimDuration {
        self.end() - self.start
    }

    /// Raw samples.
    pub fn samples(&self) -> &[Price] {
        &self.prices
    }

    /// Index of the sample covering `t`, clamped to the series bounds.
    fn index_at(&self, t: SimTime) -> usize {
        if t <= self.start {
            return 0;
        }
        let idx = (t.secs() - self.start.secs()) / self.step;
        (idx as usize).min(self.prices.len() - 1)
    }

    /// The spot price in effect at `t`.
    pub fn price_at(&self, t: SimTime) -> Price {
        self.prices[self.index_at(t)]
    }

    /// True when the sample covering `t` is strictly higher than the
    /// previous sample — the paper's "rising edge" signal (Section 4.3).
    /// The first sample is never a rising edge.
    pub fn is_rising_edge(&self, t: SimTime) -> bool {
        let idx = self.index_at(t);
        idx > 0 && self.prices[idx] > self.prices[idx - 1]
    }

    /// The instant the sample covering `t` begins.
    pub fn step_start(&self, t: SimTime) -> SimTime {
        self.start + SimDuration::from_secs(self.index_at(t) as u64 * self.step)
    }

    /// Iterate over `(sample_start_time, price)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, Price)> + '_ {
        self.prices
            .iter()
            .enumerate()
            .map(move |(i, &p)| (self.start + SimDuration::from_secs(i as u64 * self.step), p))
    }

    /// The half-open sample index range `slice(window)` would copy, without
    /// copying it. Two windows that differ only by sub-step jitter map to
    /// the same range (start floors to a sample boundary, end rounds up),
    /// which is what makes the range usable as a canonical memoization key
    /// for anything derived purely from the sliced samples.
    ///
    /// # Panics
    /// Panics if the window does not overlap the series at all.
    pub fn window_indices(&self, window: Window) -> (usize, usize) {
        let lo = self.index_at(window.start());
        let hi_t = window.end().min(self.end());
        assert!(
            window.start() < self.end() && hi_t > self.start,
            "window does not overlap series"
        );
        let hi_excl = {
            let raw = (hi_t.secs().saturating_sub(self.start.secs())).div_ceil(self.step) as usize;
            raw.clamp(lo + 1, self.prices.len())
        };
        (lo, hi_excl)
    }

    /// Extract the sub-series covering `window` (clamped to the series
    /// bounds). The returned series starts at the sample boundary at or
    /// before `window.start()`.
    ///
    /// # Panics
    /// Panics if the window does not overlap the series at all.
    pub fn slice(&self, window: Window) -> PriceSeries {
        let (lo, hi_excl) = self.window_indices(window);
        PriceSeries {
            start: self.start + SimDuration::from_secs(lo as u64 * self.step),
            step: self.step,
            prices: Arc::new(self.prices[lo..hi_excl].to_vec()),
            changes: OnceLock::new(),
        }
    }

    /// Samples within `window`, as raw prices (used by statistics).
    pub fn samples_in(&self, window: Window) -> &[Price] {
        let lo = self.index_at(window.start());
        let hi = (self.index_at(window.end().saturating_sub(SimDuration::from_secs(1))) + 1)
            .min(self.prices.len());
        &self.prices[lo..hi.max(lo + 1)]
    }

    /// Minimum price over the whole series.
    pub fn min_price(&self) -> Price {
        *self.prices.iter().min().expect("non-empty by construction")
    }

    /// Maximum price over the whole series.
    pub fn max_price(&self) -> Price {
        *self.prices.iter().max().expect("non-empty by construction")
    }

    /// Minimum price over the samples covering `[from, to)` looking
    /// backwards — used by the Threshold policy, which tracks the minimum
    /// observed spot price.
    pub fn min_price_in(&self, window: Window) -> Price {
        *self
            .samples_in(window)
            .iter()
            .min()
            .expect("samples_in returns at least one sample")
    }

    /// Mean price in dollars (reporting / calibration only).
    pub fn mean_dollars(&self) -> f64 {
        self.prices.iter().map(|p| p.as_dollars()).sum::<f64>() / self.prices.len() as f64
    }

    /// Population variance of the price in dollars² (reporting /
    /// calibration only).
    pub fn variance_dollars(&self) -> f64 {
        let mean = self.mean_dollars();
        self.prices
            .iter()
            .map(|p| {
                let d = p.as_dollars() - mean;
                d * d
            })
            .sum::<f64>()
            / self.prices.len() as f64
    }

    /// Fraction of samples at which the zone would be available at bid `b`
    /// (price ≤ bid).
    pub fn availability_at_bid(&self, bid: Price) -> f64 {
        let up = self.prices.iter().filter(|&&p| p <= bid).count();
        up as f64 / self.prices.len() as f64
    }

    /// The canonical forecast sampling grid for `window`: [`PRICE_STEP`]-spaced
    /// probe times starting at `window.start()` clamped up to the series
    /// start, truncated at `window.end()` clamped down to the series end.
    /// Returns `(origin, n_steps)`, or `None` when the clamped window is
    /// empty (the window lies entirely before or after the series). Windows
    /// shorter than one step but with a non-empty overlap probe a single
    /// sample, which by construction lies inside the requested window.
    ///
    /// Every forecast-style reader (the adaptive controller's `estimate`,
    /// its permutation scan, and [`availability_in`](Self::availability_in))
    /// shares this grid, so their sample sets — and therefore their
    /// statistics — agree exactly without materialising a [`slice`](Self::slice).
    pub fn forecast_grid(&self, window: Window) -> Option<(SimTime, u64)> {
        let lo = window.start().max(self.start());
        let hi = window.end().min(self.end());
        (hi > lo).then(|| (lo, ((hi.secs() - lo.secs()) / PRICE_STEP).max(1)))
    }

    /// Availability at `bid` over the canonical forecast grid of `window`
    /// (see [`forecast_grid`](Self::forecast_grid)): the fraction of probe
    /// steps whose price is at or below `bid`. An empty clamped window has
    /// zero availability. Unlike `slice(window).availability_at_bid(bid)`,
    /// this allocates nothing and never panics on disjoint windows.
    pub fn availability_in(&self, window: Window, bid: Price) -> f64 {
        let Some((lo, n_steps)) = self.forecast_grid(window) else {
            return 0.0;
        };
        let up = (0..n_steps)
            .filter(|i| self.price_at(SimTime::from_secs(lo.secs() + i * PRICE_STEP)) <= bid)
            .count();
        up as f64 / n_steps as f64
    }

    /// Sorted indices of samples that differ from their predecessor.
    /// Built once per allocation (clones share it through the `Arc`).
    fn change_points(&self) -> &[u32] {
        self.changes.get_or_init(|| {
            self.prices
                .windows(2)
                .enumerate()
                .filter(|(_, w)| w[0] != w[1])
                .map(|(i, _)| (i + 1) as u32)
                .collect()
        })
    }

    /// Time of the next sample boundary strictly after `t` at which the
    /// price moves (changes value), or `None` if the price never moves
    /// again. Used by event-driven simulation to skip quiet spans.
    ///
    /// O(log C) in the number of change points via a binary search over
    /// the precomputed [`change_points`](Self::change_points) index —
    /// prices are constant between consecutive change points, so the
    /// first change point past `t`'s sample necessarily carries a value
    /// different from the price at `t`.
    pub fn next_price_change(&self, t: SimTime) -> Option<(SimTime, Price)> {
        let idx = self.index_at(t);
        let ch = self.change_points();
        let pos = ch.partition_point(|&j| j as usize <= idx);
        let j = *ch.get(pos)? as usize;
        debug_assert_ne!(self.prices[j], self.prices[idx]);
        Some((
            self.start + SimDuration::from_secs(j as u64 * self.step),
            self.prices[j],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(millis: u64) -> Price {
        Price::from_millis(millis)
    }

    fn series() -> PriceSeries {
        // 5 samples at 300s: [t0..300)=270, [300..600)=270, [600..900)=500,
        // [900..1200)=400, [1200..1500)=400
        PriceSeries::new(SimTime::ZERO, vec![p(270), p(270), p(500), p(400), p(400)])
    }

    #[test]
    fn price_lookup_is_stepwise_constant() {
        let s = series();
        assert_eq!(s.price_at(SimTime::from_secs(0)), p(270));
        assert_eq!(s.price_at(SimTime::from_secs(299)), p(270));
        assert_eq!(s.price_at(SimTime::from_secs(600)), p(500));
        assert_eq!(s.price_at(SimTime::from_secs(899)), p(500));
        // clamped past the end
        assert_eq!(s.price_at(SimTime::from_secs(10_000)), p(400));
    }

    #[test]
    fn rising_edge_detection() {
        let s = series();
        assert!(!s.is_rising_edge(SimTime::from_secs(0)));
        assert!(!s.is_rising_edge(SimTime::from_secs(300)));
        assert!(s.is_rising_edge(SimTime::from_secs(600)));
        assert!(s.is_rising_edge(SimTime::from_secs(899)));
        assert!(!s.is_rising_edge(SimTime::from_secs(900))); // falling
        assert!(!s.is_rising_edge(SimTime::from_secs(1200))); // flat
    }

    #[test]
    fn bounds_and_duration() {
        let s = series();
        assert_eq!(s.len(), 5);
        assert_eq!(s.end(), SimTime::from_secs(1500));
        assert_eq!(s.duration(), SimDuration::from_secs(1500));
    }

    #[test]
    fn slicing_clamps_to_bounds() {
        let s = series();
        let w = Window::new(SimTime::from_secs(300), SimTime::from_secs(900));
        let sub = s.slice(w);
        assert_eq!(sub.start(), SimTime::from_secs(300));
        assert_eq!(sub.samples(), &[p(270), p(500)]);

        let w2 = Window::new(SimTime::from_secs(250), SimTime::from_secs(10_000));
        let sub2 = s.slice(w2);
        assert_eq!(sub2.start(), SimTime::ZERO);
        assert_eq!(sub2.len(), 5);
    }

    #[test]
    #[should_panic(expected = "window does not overlap")]
    fn slicing_disjoint_window_panics() {
        let s = series();
        s.slice(Window::new(
            SimTime::from_secs(2_000),
            SimTime::from_secs(3_000),
        ));
    }

    #[test]
    fn extrema_and_availability() {
        let s = series();
        assert_eq!(s.min_price(), p(270));
        assert_eq!(s.max_price(), p(500));
        assert!((s.availability_at_bid(p(400)) - 0.8).abs() < 1e-12);
        assert!((s.availability_at_bid(p(269)) - 0.0).abs() < 1e-12);
        assert!((s.availability_at_bid(p(500)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forecast_grid_clamps_both_edges() {
        // `series()` covers [0, 1500).
        let s = series();
        // Fully inside.
        let w = Window::new(SimTime::from_secs(300), SimTime::from_secs(900));
        assert_eq!(s.forecast_grid(w), Some((SimTime::from_secs(300), 2)));
        // Overrunning the end: steps stop at the series end instead of
        // repeating the final sample.
        let w = Window::new(SimTime::from_secs(900), SimTime::from_secs(90_000));
        assert_eq!(s.forecast_grid(w), Some((SimTime::from_secs(900), 2)));
        // Starting before the series: origin clamps up.
        let w = Window::new(SimTime::ZERO, SimTime::from_secs(600));
        let shifted = PriceSeries::new(SimTime::from_secs(300), vec![p(1), p(2)]);
        assert_eq!(shifted.forecast_grid(w), Some((SimTime::from_secs(300), 1)));
        // Entirely past the end / entirely before the start: empty.
        assert_eq!(
            s.forecast_grid(Window::new(
                SimTime::from_secs(1_500),
                SimTime::from_secs(2_000)
            )),
            None
        );
        assert_eq!(
            shifted.forecast_grid(Window::new(SimTime::ZERO, SimTime::from_secs(300))),
            None
        );
        // Sub-step overlap probes exactly one in-window sample.
        let w = Window::new(SimTime::from_secs(600), SimTime::from_secs(700));
        assert_eq!(s.forecast_grid(w), Some((SimTime::from_secs(600), 1)));
    }

    #[test]
    fn availability_in_matches_sliced_availability_on_aligned_windows() {
        let s = series();
        let w = Window::new(SimTime::from_secs(300), SimTime::from_secs(1_200));
        assert_eq!(
            s.availability_in(w, p(400)),
            s.slice(w).availability_at_bid(p(400))
        );
        // Disjoint window: 0.0 instead of the panic slice() raises.
        let disjoint = Window::new(SimTime::from_secs(9_000), SimTime::from_secs(9_300));
        assert_eq!(s.availability_in(disjoint, p(400)), 0.0);
    }

    #[test]
    fn next_price_change_skips_quiet_spans() {
        let s = series();
        assert_eq!(
            s.next_price_change(SimTime::ZERO),
            Some((SimTime::from_secs(600), p(500)))
        );
        assert_eq!(
            s.next_price_change(SimTime::from_secs(600)),
            Some((SimTime::from_secs(900), p(400)))
        );
        assert_eq!(s.next_price_change(SimTime::from_secs(900)), None);
    }

    #[test]
    fn statistics() {
        let s = PriceSeries::new(SimTime::ZERO, vec![p(1000), p(3000)]);
        assert!((s.mean_dollars() - 2.0).abs() < 1e-12);
        assert!((s.variance_dollars() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_series_panics() {
        PriceSeries::new(SimTime::ZERO, vec![]);
    }

    #[test]
    fn window_indices_match_slice_and_absorb_substep_jitter() {
        let s = series();
        let t = |secs: u64| SimTime::from_secs(secs);
        let aligned = Window::new(t(300), t(900));
        let (lo, hi) = s.window_indices(aligned);
        assert_eq!(s.slice(aligned).samples(), &s.samples()[lo..hi]);
        // Jitter inside a step changes neither bound: the start floors to
        // its sample, the end rounds up to the next boundary — exactly the
        // samples slice() copies.
        let jittered = Window::new(t(337), t(841));
        assert_eq!(s.window_indices(jittered), (1, 3));
        assert_eq!(s.slice(jittered).samples(), &s.samples()[1..3]);
        // A boundary end excludes the sample a mid-step end would include.
        assert_eq!(s.window_indices(Window::new(t(300), t(600))), (1, 2));
        assert_eq!(s.window_indices(Window::new(t(300), t(601))), (1, 3));
    }
}
