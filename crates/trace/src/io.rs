//! Trace persistence: JSON (self-describing, via serde) and CSV export for
//! external plotting tools.

use crate::price::Price;
use crate::time::SimDuration;
use crate::traceset::TraceSet;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Save a trace set as JSON.
pub fn save_json(set: &TraceSet, path: &Path) -> io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    serde_json::to_writer(file, set).map_err(io::Error::other)
}

/// Load a trace set from JSON.
///
/// Deserialization bypasses [`TraceSet::new`]'s alignment asserts, so the
/// structural invariants are re-checked here: a hand-edited file with no
/// zones, misaligned series, or a single sample is rejected with a
/// diagnostic instead of panicking later inside the simulator.
pub fn load_json(path: &Path) -> io::Result<TraceSet> {
    let file = BufReader::new(File::open(path)?);
    let set: TraceSet = serde_json::from_reader(file).map_err(io::Error::other)?;
    validate_structure(&set).map_err(|why| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {why}", path.display()),
        )
    })?;
    Ok(set)
}

/// Structural invariants every loaded trace must satisfy (mirrors what
/// [`TraceSet::new`] asserts, plus the two-sample minimum the simulator
/// needs to infer a step).
fn validate_structure(set: &TraceSet) -> Result<(), String> {
    let zones = set.zones();
    if zones.is_empty() {
        return Err("trace has no zones".into());
    }
    let (s0, st0, l0) = (zones[0].start(), zones[0].step(), zones[0].len());
    for (i, z) in zones.iter().enumerate() {
        if z.start() != s0 || z.step() != st0 || z.len() != l0 {
            return Err(format!(
                "zone {i} is misaligned (start {} step {} len {}, expected start {} step {st0} len {l0})",
                z.start().secs(),
                z.step(),
                z.len(),
                s0.secs(),
            ));
        }
    }
    if l0 < 2 {
        return Err(format!("need at least two samples per zone, got {l0}"));
    }
    if st0 == 0 {
        return Err("zone step is zero".into());
    }
    Ok(())
}

/// Export a trace set as CSV: `time_s,zone0_usd,zone1_usd,...`.
pub fn export_csv<W: Write>(set: &TraceSet, out: &mut W) -> io::Result<()> {
    write!(out, "time_s")?;
    for id in set.zone_ids() {
        write!(out, ",{id}")?;
    }
    writeln!(out)?;
    let z0 = set.zone(crate::traceset::ZoneId(0));
    for i in 0..z0.len() {
        let t = z0.start().secs() + i as u64 * z0.step();
        write!(out, "{t}")?;
        for z in set.zones() {
            write!(out, ",{:.3}", z.samples()[i].as_dollars())?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Import a trace set from CSV in the [`export_csv`] format. All zones use
/// the row spacing of the first two rows as the sampling step.
///
/// Every rejection names the 1-based line it happened on (the header is
/// line 1), the same discipline `validate-trace` applies to event logs:
/// duplicate or backwards timestamps, irregular row spacing, missing or
/// extra columns, and non-finite or negative prices are all errors, never
/// silently accepted.
pub fn import_csv<R: BufRead>(input: R) -> io::Result<TraceSet> {
    use crate::series::PriceSeries;
    use crate::time::SimTime;

    fn bad(lineno: usize, why: impl std::fmt::Display) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {why}"))
    }

    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let n_zones = header.split(',').count().saturating_sub(1);
    if n_zones == 0 {
        return Err(bad(1, "no zone columns in header"));
    }

    let mut times: Vec<u64> = Vec::new();
    let mut cols: Vec<Vec<Price>> = vec![Vec::new(); n_zones];
    let mut step: Option<u64> = None;
    for (i, line) in lines.enumerate() {
        let lineno = i + 2; // 1-based, after the header
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != n_zones + 1 {
            return Err(bad(
                lineno,
                format!("expected {} fields, got {}", n_zones + 1, fields.len()),
            ));
        }
        let t: u64 = fields[0]
            .trim()
            .parse()
            .map_err(|_| bad(lineno, format!("bad time field {:?}", fields[0].trim())))?;
        if let Some(&prev) = times.last() {
            if t == prev {
                return Err(bad(lineno, format!("duplicate timestamp {t}")));
            }
            if t < prev {
                return Err(bad(
                    lineno,
                    format!("timestamp {t} goes backwards (previous row was {prev})"),
                ));
            }
            let gap = t - prev;
            match step {
                None => step = Some(gap),
                Some(s) if s != gap => {
                    return Err(bad(
                        lineno,
                        format!("irregular step: expected {s}s between rows, got {gap}s"),
                    ))
                }
                Some(_) => {}
            }
        }
        times.push(t);
        for (z, col) in cols.iter_mut().enumerate() {
            let field = fields[z + 1].trim();
            let v: f64 = field
                .parse()
                .map_err(|_| bad(lineno, format!("bad price field {field:?}")))?;
            if !v.is_finite() {
                return Err(bad(lineno, format!("non-finite price {field:?}")));
            }
            if v < 0.0 {
                return Err(bad(lineno, format!("negative price {field:?}")));
            }
            col.push(Price::from_dollars(v));
        }
    }
    if times.len() < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("need at least two samples, got {}", times.len()),
        ));
    }
    let step = step.expect("two samples imply a step");
    let start = SimTime::from_secs(times[0]);
    let zones = cols
        .into_iter()
        .map(|samples| PriceSeries::with_step(start, step, samples))
        .collect();
    Ok(TraceSet::new(zones))
}

/// Round-trip helper used by the CLI: write CSV to a file.
pub fn save_csv(set: &TraceSet, path: &Path) -> io::Result<()> {
    let mut file = BufWriter::new(File::create(path)?);
    export_csv(set, &mut file)?;
    file.flush()
}

/// Load a trace set from a CSV file. Errors are prefixed with the path so
/// a failing `--trace` names both file and line, like `validate-trace`.
pub fn load_csv(path: &Path) -> io::Result<TraceSet> {
    import_csv(BufReader::new(File::open(path)?))
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
}

/// A short human-readable description of a trace set.
pub fn describe(set: &TraceSet) -> String {
    let mut s = format!(
        "{} zones, {} samples/zone, span {}\n",
        set.n_zones(),
        set.zone(crate::traceset::ZoneId(0)).len(),
        fmt_span(set.duration()),
    );
    for (id, z) in set.zone_ids().zip(set.zones()) {
        s.push_str(&format!(
            "  {id}: mean {:.3} var {:.4} min {} max {}\n",
            z.mean_dollars(),
            z.variance_dollars(),
            z.min_price(),
            z.max_price()
        ));
    }
    s
}

fn fmt_span(d: SimDuration) -> String {
    format!("{:.1}h", d.as_hours())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;
    use std::io::Cursor;

    #[test]
    fn json_round_trip() {
        let set = GenConfig::low_volatility(1).generate();
        let dir = std::env::temp_dir().join("redspot-test-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        save_json(&set, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(set, loaded);
    }

    #[test]
    fn csv_round_trip() {
        let set = GenConfig::high_volatility(2).generate();
        let mut buf = Vec::new();
        export_csv(&set, &mut buf).unwrap();
        let loaded = import_csv(Cursor::new(buf)).unwrap();
        assert_eq!(set.n_zones(), loaded.n_zones());
        assert_eq!(
            set.zone(crate::traceset::ZoneId(0)).len(),
            loaded.zone(crate::traceset::ZoneId(0)).len()
        );
        // CSV stores 3 decimals = exact milli-dollars, so prices round-trip.
        assert_eq!(set, loaded);
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(import_csv(Cursor::new(b"".as_slice())).is_err());
        assert!(import_csv(Cursor::new(b"time_s\n".as_slice())).is_err());
        assert!(import_csv(Cursor::new(b"time_s,z\nx,y\n".as_slice())).is_err());
        assert!(import_csv(Cursor::new(b"time_s,z\n0,0.3\n".as_slice())).is_err());
    }

    fn import_err(body: &str) -> String {
        import_csv(Cursor::new(body.as_bytes()))
            .unwrap_err()
            .to_string()
    }

    #[test]
    fn import_errors_name_the_offending_line() {
        // Duplicate timestamp.
        let e = import_err("time_s,z\n0,0.3\n300,0.3\n300,0.4\n");
        assert!(
            e.contains("line 4") && e.contains("duplicate timestamp 300"),
            "{e}"
        );
        // Out-of-order rows.
        let e = import_err("time_s,z\n0,0.3\n600,0.3\n300,0.4\n");
        assert!(e.contains("line 4") && e.contains("goes backwards"), "{e}");
        // Irregular spacing.
        let e = import_err("time_s,z\n0,0.3\n300,0.3\n900,0.4\n");
        assert!(e.contains("line 4") && e.contains("irregular step"), "{e}");
        // NaN, infinity, and negative prices.
        let e = import_err("time_s,z\n0,0.3\n300,NaN\n");
        assert!(
            e.contains("line 3") && e.contains("non-finite price"),
            "{e}"
        );
        let e = import_err("time_s,z\n0,0.3\n300,inf\n");
        assert!(
            e.contains("line 3") && e.contains("non-finite price"),
            "{e}"
        );
        let e = import_err("time_s,z\n0,0.3\n300,-0.5\n");
        assert!(e.contains("line 3") && e.contains("negative price"), "{e}");
        // Ragged rows, both short and long.
        let e = import_err("time_s,a,b\n0,0.3\n");
        assert!(
            e.contains("line 2") && e.contains("expected 3 fields, got 2"),
            "{e}"
        );
        let e = import_err("time_s,a\n0,0.3,0.4\n");
        assert!(
            e.contains("line 2") && e.contains("expected 2 fields, got 3"),
            "{e}"
        );
        // Bad time and price tokens name themselves.
        let e = import_err("time_s,z\nsoon,0.3\n");
        assert!(
            e.contains("line 2") && e.contains("bad time field \"soon\""),
            "{e}"
        );
        let e = import_err("time_s,z\n0,cheap\n");
        assert!(
            e.contains("line 2") && e.contains("bad price field \"cheap\""),
            "{e}"
        );
    }

    #[test]
    fn load_csv_prefixes_errors_with_the_path() {
        let dir = std::env::temp_dir().join("redspot-test-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dup.csv");
        std::fs::write(&path, "time_s,z\n0,0.3\n0,0.4\n").unwrap();
        let e = load_csv(&path).unwrap_err().to_string();
        assert!(e.contains("dup.csv") && e.contains("line 3"), "{e}");
    }

    #[test]
    fn load_json_rejects_structurally_broken_traces() {
        let dir = std::env::temp_dir().join("redspot-test-io");
        std::fs::create_dir_all(&dir).unwrap();

        // No zones: deserializes fine, must still be rejected.
        let path = dir.join("empty-zones.json");
        std::fs::write(&path, r#"{"zones":[]}"#).unwrap();
        let e = load_json(&path).unwrap_err().to_string();
        assert!(e.contains("no zones"), "{e}");

        // Misaligned zones: serde cannot see this, validation must.
        let set = GenConfig::low_volatility(1).generate();
        let good = serde_json::to_string(&set).unwrap();
        let z0 = serde_json::to_string(set.zone(crate::traceset::ZoneId(0))).unwrap();
        let short = {
            let mut s: crate::series::PriceSeries = serde_json::from_str(&z0).unwrap();
            s = s.slice(crate::window::Window::new(
                s.start(),
                s.start() + crate::time::SimDuration::from_hours(2),
            ));
            serde_json::to_string(&s).unwrap()
        };
        let path = dir.join("misaligned.json");
        std::fs::write(&path, format!(r#"{{"zones":[{z0},{short}]}}"#)).unwrap();
        let e = load_json(&path).unwrap_err().to_string();
        assert!(e.contains("zone 1 is misaligned"), "{e}");

        // A non-finite price in the JSON is a parse error with position
        // info from serde, not a silent acceptance.
        let path = dir.join("nan.json");
        std::fs::write(&path, good.replacen(char::is_numeric, "NaN", 1)).unwrap();
        assert!(load_json(&path).is_err());

        // And the good trace still loads.
        let path = dir.join("good.json");
        std::fs::write(&path, &good).unwrap();
        assert_eq!(load_json(&path).unwrap(), set);
    }

    #[test]
    fn describe_mentions_all_zones() {
        let set = GenConfig::low_volatility(1).generate();
        let d = describe(&set);
        assert!(d.contains("us-east-1a"));
        assert!(d.contains("us-east-1c"));
    }
}
