//! Trace persistence: JSON (self-describing, via serde) and CSV export for
//! external plotting tools.

use crate::price::Price;
use crate::time::SimDuration;
use crate::traceset::TraceSet;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Save a trace set as JSON.
pub fn save_json(set: &TraceSet, path: &Path) -> io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    serde_json::to_writer(file, set).map_err(io::Error::other)
}

/// Load a trace set from JSON.
pub fn load_json(path: &Path) -> io::Result<TraceSet> {
    let file = BufReader::new(File::open(path)?);
    serde_json::from_reader(file).map_err(io::Error::other)
}

/// Export a trace set as CSV: `time_s,zone0_usd,zone1_usd,...`.
pub fn export_csv<W: Write>(set: &TraceSet, out: &mut W) -> io::Result<()> {
    write!(out, "time_s")?;
    for id in set.zone_ids() {
        write!(out, ",{id}")?;
    }
    writeln!(out)?;
    let z0 = set.zone(crate::traceset::ZoneId(0));
    for i in 0..z0.len() {
        let t = z0.start().secs() + i as u64 * z0.step();
        write!(out, "{t}")?;
        for z in set.zones() {
            write!(out, ",{:.3}", z.samples()[i].as_dollars())?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Import a trace set from CSV in the [`export_csv`] format. All zones use
/// the row spacing of the first two rows as the sampling step.
pub fn import_csv<R: BufRead>(input: R) -> io::Result<TraceSet> {
    use crate::series::PriceSeries;
    use crate::time::SimTime;

    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let n_zones = header.split(',').count().saturating_sub(1);
    if n_zones == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no zone columns",
        ));
    }

    let mut times: Vec<u64> = Vec::new();
    let mut cols: Vec<Vec<Price>> = vec![Vec::new(); n_zones];
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let t: u64 = fields
            .next()
            .and_then(|f| f.trim().parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad time field"))?;
        times.push(t);
        for col in cols.iter_mut() {
            let v: f64 = fields
                .next()
                .and_then(|f| f.trim().parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad price field"))?;
            col.push(Price::from_dollars(v));
        }
    }
    if times.len() < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "need at least two samples",
        ));
    }
    let step = times[1] - times[0];
    let start = SimTime::from_secs(times[0]);
    let zones = cols
        .into_iter()
        .map(|samples| PriceSeries::with_step(start, step, samples))
        .collect();
    Ok(TraceSet::new(zones))
}

/// Round-trip helper used by the CLI: write CSV to a file.
pub fn save_csv(set: &TraceSet, path: &Path) -> io::Result<()> {
    let mut file = BufWriter::new(File::create(path)?);
    export_csv(set, &mut file)?;
    file.flush()
}

/// Load a trace set from a CSV file.
pub fn load_csv(path: &Path) -> io::Result<TraceSet> {
    import_csv(BufReader::new(File::open(path)?))
}

/// A short human-readable description of a trace set.
pub fn describe(set: &TraceSet) -> String {
    let mut s = format!(
        "{} zones, {} samples/zone, span {}\n",
        set.n_zones(),
        set.zone(crate::traceset::ZoneId(0)).len(),
        fmt_span(set.duration()),
    );
    for (id, z) in set.zone_ids().zip(set.zones()) {
        s.push_str(&format!(
            "  {id}: mean {:.3} var {:.4} min {} max {}\n",
            z.mean_dollars(),
            z.variance_dollars(),
            z.min_price(),
            z.max_price()
        ));
    }
    s
}

fn fmt_span(d: SimDuration) -> String {
    format!("{:.1}h", d.as_hours())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;
    use std::io::Cursor;

    #[test]
    fn json_round_trip() {
        let set = GenConfig::low_volatility(1).generate();
        let dir = std::env::temp_dir().join("redspot-test-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        save_json(&set, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(set, loaded);
    }

    #[test]
    fn csv_round_trip() {
        let set = GenConfig::high_volatility(2).generate();
        let mut buf = Vec::new();
        export_csv(&set, &mut buf).unwrap();
        let loaded = import_csv(Cursor::new(buf)).unwrap();
        assert_eq!(set.n_zones(), loaded.n_zones());
        assert_eq!(
            set.zone(crate::traceset::ZoneId(0)).len(),
            loaded.zone(crate::traceset::ZoneId(0)).len()
        );
        // CSV stores 3 decimals = exact milli-dollars, so prices round-trip.
        assert_eq!(set, loaded);
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(import_csv(Cursor::new(b"".as_slice())).is_err());
        assert!(import_csv(Cursor::new(b"time_s\n".as_slice())).is_err());
        assert!(import_csv(Cursor::new(b"time_s,z\nx,y\n".as_slice())).is_err());
        assert!(import_csv(Cursor::new(b"time_s,z\n0,0.3\n".as_slice())).is_err());
    }

    #[test]
    fn describe_mentions_all_zones() {
        let set = GenConfig::low_volatility(1).generate();
        let d = describe(&set);
        assert!(d.contains("us-east-1a"));
        assert!(d.contains("us-east-1c"));
    }
}
