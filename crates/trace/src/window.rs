//! Half-open time windows and the paper's overlapping-window experiment
//! layout (Section 5: "80 experiments over partially overlapping chunks in
//! each spot price window").

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A half-open interval `[start, end)` of simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Window {
    start: SimTime,
    end: SimTime,
}

impl Window {
    /// Construct a window.
    ///
    /// # Panics
    /// Panics if `end <= start`.
    pub fn new(start: SimTime, end: SimTime) -> Window {
        assert!(end > start, "window must have positive duration");
        Window { start, end }
    }

    /// Construct from a start and a duration.
    pub fn starting_at(start: SimTime, duration: SimDuration) -> Window {
        Window::new(start, start + duration)
    }

    /// Inclusive start.
    pub fn start(self) -> SimTime {
        self.start
    }

    /// Exclusive end.
    pub fn end(self) -> SimTime {
        self.end
    }

    /// Length of the window.
    pub fn duration(self) -> SimDuration {
        self.end - self.start
    }

    /// Whether `t` lies within `[start, end)`.
    pub fn contains(self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether two windows share any instant.
    pub fn overlaps(self, other: Window) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The overlapping part of two windows, if any.
    pub fn intersect(self, other: Window) -> Option<Window> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (end > start).then(|| Window::new(start, end))
    }

    /// Shift the whole window later by `d`.
    pub fn shifted(self, d: SimDuration) -> Window {
        Window::new(self.start + d, self.end + d)
    }
}

/// Lay out `count` equal-length, partially overlapping experiment windows
/// across `span`, mirroring the paper's "80 experiments over partially
/// overlapping chunks". Windows are spaced evenly; when the span is large
/// enough they merely overlap, when it is tight they stack more densely.
///
/// Returns fewer than `count` windows only if even a single window does not
/// fit, in which case it returns an empty vector.
pub fn overlapping_windows(span: Window, window_len: SimDuration, count: usize) -> Vec<Window> {
    if count == 0 || window_len > span.duration() {
        return Vec::new();
    }
    let free = span.duration().secs() - window_len.secs();
    if count == 1 {
        return vec![Window::starting_at(span.start(), window_len)];
    }
    (0..count)
        .map(|i| {
            // Evenly distribute starts over the available play, rounding to
            // whole 5-minute steps so experiment starts align with samples.
            let offset = free * i as u64 / (count as u64 - 1);
            let offset = offset / 300 * 300;
            Window::starting_at(span.start() + SimDuration::from_secs(offset), window_len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: u64, b: u64) -> Window {
        Window::new(SimTime::from_secs(a), SimTime::from_secs(b))
    }

    #[test]
    fn basics() {
        let win = w(100, 400);
        assert_eq!(win.duration(), SimDuration::from_secs(300));
        assert!(win.contains(SimTime::from_secs(100)));
        assert!(win.contains(SimTime::from_secs(399)));
        assert!(!win.contains(SimTime::from_secs(400)));
        assert!(!win.contains(SimTime::from_secs(99)));
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn degenerate_window_panics() {
        w(100, 100);
    }

    #[test]
    fn overlap_and_intersection() {
        assert!(w(0, 10).overlaps(w(5, 15)));
        assert!(!w(0, 10).overlaps(w(10, 20)));
        assert_eq!(w(0, 10).intersect(w(5, 15)), Some(w(5, 10)));
        assert_eq!(w(0, 10).intersect(w(10, 20)), None);
    }

    #[test]
    fn shifted_moves_both_ends() {
        assert_eq!(w(0, 10).shifted(SimDuration::from_secs(5)), w(5, 15));
    }

    #[test]
    fn layout_produces_requested_count() {
        let span = Window::new(SimTime::ZERO, SimTime::from_hours(24 * 30));
        let wins = overlapping_windows(span, SimDuration::from_hours(30), 80);
        assert_eq!(wins.len(), 80);
        assert_eq!(wins[0].start(), span.start());
        // All windows fit inside the span.
        assert!(wins.iter().all(|x| x.end() <= span.end()));
        // Starts are non-decreasing and the last window reaches near the end.
        assert!(wins.windows(2).all(|p| p[0].start() <= p[1].start()));
        assert!(wins.last().unwrap().end() + SimDuration::from_mins(5) > span.end());
        // Starts align to 5-minute boundaries.
        assert!(wins.iter().all(|x| x.start().secs() % 300 == 0));
        // Consecutive windows overlap (partially overlapping chunks).
        assert!(wins.windows(2).all(|p| p[0].overlaps(p[1])));
    }

    #[test]
    fn layout_degenerate_cases() {
        let span = Window::new(SimTime::ZERO, SimTime::from_hours(10));
        assert!(overlapping_windows(span, SimDuration::from_hours(20), 5).is_empty());
        assert!(overlapping_windows(span, SimDuration::from_hours(1), 0).is_empty());
        let one = overlapping_windows(span, SimDuration::from_hours(10), 3);
        assert_eq!(one.len(), 3);
        assert!(one.iter().all(|x| *x == one[0]));
    }
}
