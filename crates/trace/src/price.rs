//! Fixed-point money types.
//!
//! All prices and costs in redspot are stored as integer **milli-dollars**
//! (1/1000 of a US dollar). The paper's price grid ($0.27 … $3.07 in $0.20
//! steps, spikes to $20.02, on-demand $2.40) is exactly representable, and
//! integer arithmetic keeps long simulation sweeps bit-for-bit reproducible
//! across platforms and thread counts.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A spot/on-demand price or an accumulated cost, in milli-dollars.
///
/// `Price` is used both for instantaneous hourly rates and for accumulated
/// charges; the arithmetic is identical and keeping one type avoids a zoo of
/// conversions in the billing code.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Price(u64);

impl Price {
    /// Zero dollars.
    pub const ZERO: Price = Price(0);

    /// The paper's on-demand rate for CC2 instances: $2.40/hour.
    pub const ON_DEMAND: Price = Price::from_millis(2_400);

    /// The lowest spot price observed in the paper's 12-month history: $0.27.
    pub const MIN_SPOT: Price = Price::from_millis(270);

    /// The largest spot price observed in the paper's 12-month history: $20.02.
    pub const MAX_OBSERVED_SPOT: Price = Price::from_millis(20_020);

    /// Construct from integer milli-dollars ($0.001 units).
    pub const fn from_millis(millis: u64) -> Price {
        Price(millis)
    }

    /// Construct from integer cents.
    pub const fn from_cents(cents: u64) -> Price {
        Price(cents * 10)
    }

    /// Construct from a floating-point dollar amount, rounding to the
    /// nearest milli-dollar. Negative inputs clamp to zero.
    pub fn from_dollars(dollars: f64) -> Price {
        if dollars <= 0.0 || !dollars.is_finite() {
            return Price::ZERO;
        }
        Price((dollars * 1000.0).round() as u64)
    }

    /// Raw milli-dollar value.
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Value in dollars as a float (for reporting only).
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Price) -> Price {
        Price(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Price) -> Option<Price> {
        self.0.checked_add(rhs.0).map(Price)
    }

    /// Midpoint of two prices, rounding down. Used by the Threshold policy's
    /// `PriceThresh = (S_min + B) / 2`.
    pub const fn midpoint(self, other: Price) -> Price {
        Price((self.0 + other.0) / 2)
    }

    /// Multiply by a dimensionless scale (e.g. 1.2 for "120% of on-demand"),
    /// rounding to nearest.
    pub fn scale(self, factor: f64) -> Price {
        Price::from_dollars(self.as_dollars() * factor)
    }

    /// Cost of running for `seconds` at this hourly rate, pro-rated to the
    /// second. EC2's 2014 billing never pro-rates (it charges whole hours);
    /// this is provided for *forecasting* inside policies, not for billing.
    pub fn prorated(self, seconds: u64) -> Price {
        // u128 intermediate: 20_020 * u64::MAX would overflow u64.
        Price(((self.0 as u128 * seconds as u128) / 3600) as u64)
    }
}

impl Add for Price {
    type Output = Price;
    fn add(self, rhs: Price) -> Price {
        Price(self.0 + rhs.0)
    }
}

impl AddAssign for Price {
    fn add_assign(&mut self, rhs: Price) {
        self.0 += rhs.0;
    }
}

impl Sub for Price {
    type Output = Price;
    fn sub(self, rhs: Price) -> Price {
        Price(self.0 - rhs.0)
    }
}

impl SubAssign for Price {
    fn sub_assign(&mut self, rhs: Price) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Price {
    type Output = Price;
    fn mul(self, rhs: u64) -> Price {
        Price(self.0 * rhs)
    }
}

impl Div<u64> for Price {
    type Output = Price;
    fn div(self, rhs: u64) -> Price {
        Price(self.0 / rhs)
    }
}

impl Sum for Price {
    fn sum<I: Iterator<Item = Price>>(iter: I) -> Price {
        iter.fold(Price::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dollars = self.0 / 1000;
        let millis = self.0 % 1000;
        if millis.is_multiple_of(10) {
            write!(f, "${}.{:02}", dollars, millis / 10)
        } else {
            write!(f, "${}.{:03}", dollars, millis)
        }
    }
}

/// The paper's bid grid: $0.27 to $3.07 in steps of $0.20 (15 values).
///
/// Bids above $2.40 exist "to avoid failures due to occasional spot price
/// spikes of up to $3.00" (Section 5).
pub fn paper_bid_grid() -> Vec<Price> {
    (0..15).map(|i| Price::from_millis(270 + 200 * i)).collect()
}

/// The three bid prices Figure 4 highlights: $0.27, $0.81 and $2.40.
///
/// $0.81 is not on the Section-5 sweep grid; the paper calls it out
/// separately as the bid that "generally results in better median costs".
pub fn highlight_bids() -> [Price; 3] {
    [
        Price::from_millis(270),
        Price::from_millis(810),
        Price::from_millis(2_400),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Price::from_cents(27), Price::from_millis(270));
        assert_eq!(Price::from_dollars(0.27), Price::from_millis(270));
        assert_eq!(Price::from_dollars(20.02), Price::MAX_OBSERVED_SPOT);
        assert_eq!(Price::from_dollars(2.40), Price::ON_DEMAND);
    }

    #[test]
    fn from_dollars_clamps_and_rounds() {
        assert_eq!(Price::from_dollars(-1.0), Price::ZERO);
        assert_eq!(Price::from_dollars(f64::NAN), Price::ZERO);
        assert_eq!(Price::from_dollars(0.0004), Price::ZERO);
        assert_eq!(Price::from_dollars(0.0006), Price::from_millis(1));
    }

    #[test]
    fn display_formats_dollars() {
        assert_eq!(Price::from_millis(270).to_string(), "$0.27");
        assert_eq!(Price::from_millis(2400).to_string(), "$2.40");
        assert_eq!(Price::from_millis(20020).to_string(), "$20.02");
        assert_eq!(Price::from_millis(1).to_string(), "$0.001");
        assert_eq!(Price::ZERO.to_string(), "$0.00");
    }

    #[test]
    fn arithmetic_basics() {
        let a = Price::from_millis(300);
        let b = Price::from_millis(120);
        assert_eq!(a + b, Price::from_millis(420));
        assert_eq!(a - b, Price::from_millis(180));
        assert_eq!(a * 3, Price::from_millis(900));
        assert_eq!(a / 2, Price::from_millis(150));
        assert_eq!(b.saturating_sub(a), Price::ZERO);
        assert_eq!(a.midpoint(b), Price::from_millis(210));
    }

    #[test]
    fn prorated_is_exact_for_whole_hours() {
        let rate = Price::from_dollars(2.40);
        assert_eq!(rate.prorated(3600), rate);
        assert_eq!(rate.prorated(1800), Price::from_dollars(1.20));
        assert_eq!(rate.prorated(0), Price::ZERO);
        // 20 hours at on-demand: the paper's $48.00 reference line.
        assert_eq!(rate.prorated(20 * 3600), Price::from_dollars(48.0));
    }

    #[test]
    fn paper_grid_matches_section_5() {
        let grid = paper_bid_grid();
        assert_eq!(grid.len(), 15);
        assert_eq!(grid[0], Price::from_dollars(0.27));
        assert_eq!(grid[1], Price::from_dollars(0.47));
        assert_eq!(grid[14], Price::from_dollars(3.07));
        assert!(grid.contains(&Price::from_dollars(0.27)));
    }

    #[test]
    fn highlight_bids_match_figure_4() {
        assert_eq!(
            highlight_bids(),
            [
                Price::from_dollars(0.27),
                Price::from_dollars(0.81),
                Price::from_dollars(2.40)
            ]
        );
    }

    #[test]
    fn sum_over_iterator() {
        let total: Price = (1..=4).map(Price::from_millis).sum();
        assert_eq!(total, Price::from_millis(10));
    }
}
