//! Vector Auto-Regression with Akaike-criterion lag selection — the
//! Section-3.1 analysis showing that cross-zone lagged price effects are
//! 1–2 orders of magnitude smaller than own-zone effects, i.e. zones are
//! sufficiently independent for redundancy to pay off.

use crate::matrix::Matrix;
use crate::ols;
use serde::{Deserialize, Serialize};

/// A fitted VAR(p) model over `k` series:
/// `y_t = c + Σ_{l=1..p} A_l · y_{t-l} + ε_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarModel {
    /// Number of series (zones).
    pub k: usize,
    /// Lag order.
    pub p: usize,
    /// Intercepts, one per series.
    pub intercept: Vec<f64>,
    /// Coefficient matrices; `coef[l]` holds, at row `i` and column `j`,
    /// the effect of series `j` at lag `l + 1` on series `i`.
    pub coef: Vec<Matrix>,
    /// Multivariate AIC of the fit.
    pub aic: f64,
    /// Number of usable observations (T − p).
    pub n_obs: usize,
}

/// Own-lag vs cross-lag effect magnitudes extracted from a fitted model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EffectSummary {
    /// Mean magnitude of the diagonal (own-lag) coefficients.
    pub own: f64,
    /// Mean magnitude of the off-diagonal (cross-lag) coefficients.
    pub cross: f64,
}

impl EffectSummary {
    /// Own-to-cross magnitude ratio (∞ if cross is zero).
    pub fn ratio(&self) -> f64 {
        if self.cross == 0.0 {
            f64::INFINITY
        } else {
            self.own / self.cross
        }
    }

    /// Order-of-magnitude difference, `log10(ratio)`.
    pub fn orders_of_magnitude(&self) -> f64 {
        self.ratio().log10()
    }
}

impl VarModel {
    /// Fit a VAR(p) to `series` (each inner slice is one zone's samples,
    /// all the same length). Returns `None` if there are too few
    /// observations for the requested lag.
    pub fn fit(series: &[Vec<f64>], p: usize) -> Option<VarModel> {
        let k = series.len();
        if k == 0 || p == 0 {
            return None;
        }
        let t_len = series[0].len();
        if series.iter().any(|s| s.len() != t_len) {
            return None;
        }
        let n_obs = t_len.checked_sub(p)?;
        let n_params = k * p + 1;
        if n_obs <= n_params {
            return None;
        }

        // Shared design matrix: row t has [1, y_{t-1,0..k}, ..., y_{t-p,0..k}].
        let mut rows = Vec::with_capacity(n_obs);
        for t in p..t_len {
            let mut row = Vec::with_capacity(n_params);
            row.push(1.0);
            for lag in 1..=p {
                for s in series {
                    row.push(s[t - lag]);
                }
            }
            rows.push(row);
        }
        let design = Matrix::from_rows(&rows);

        let mut intercept = vec![0.0; k];
        let mut coef = vec![Matrix::zeros(k, k); p];
        let mut rss_per_eq = vec![0.0; k];
        for (i, s) in series.iter().enumerate() {
            let y: Vec<f64> = s[p..].to_vec();
            let fitted = ols::fit(&design, &y)?;
            intercept[i] = fitted.beta[0];
            for (lag, a) in coef.iter_mut().enumerate() {
                for j in 0..k {
                    a[(i, j)] = fitted.beta[1 + lag * k + j];
                }
            }
            rss_per_eq[i] = fitted.rss;
        }

        // Multivariate AIC with diagonal residual covariance (equations are
        // fit independently): ln det Σ ≈ Σ_i ln(rss_i / T).
        let ln_det: f64 = rss_per_eq
            .iter()
            .map(|&rss| ((rss / n_obs as f64).max(1e-300)).ln())
            .sum();
        let aic = ln_det + 2.0 * (k * n_params) as f64 / n_obs as f64;

        Some(VarModel {
            k,
            p,
            intercept,
            coef,
            aic,
            n_obs,
        })
    }

    /// Fit VAR(p) for `p = 1..=max_lag` and keep the AIC-minimizing order
    /// (the paper: "using the Akaike criteria to determine the optimal
    /// number of lags").
    pub fn fit_auto(series: &[Vec<f64>], max_lag: usize) -> Option<VarModel> {
        (1..=max_lag)
            .filter_map(|p| VarModel::fit(series, p))
            .min_by(|a, b| a.aic.partial_cmp(&b.aic).expect("AIC is finite"))
    }

    /// Mean own-lag vs cross-lag coefficient magnitudes.
    pub fn effect_summary(&self) -> EffectSummary {
        let mut own = 0.0;
        let mut own_n = 0usize;
        let mut cross = 0.0;
        let mut cross_n = 0usize;
        for a in &self.coef {
            for i in 0..self.k {
                for j in 0..self.k {
                    if i == j {
                        own += a[(i, j)].abs();
                        own_n += 1;
                    } else {
                        cross += a[(i, j)].abs();
                        cross_n += 1;
                    }
                }
            }
        }
        EffectSummary {
            own: if own_n > 0 { own / own_n as f64 } else { 0.0 },
            cross: if cross_n > 0 {
                cross / cross_n as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Generate k independent AR(1) processes with strong self-dependence.
    fn independent_ar1(k: usize, t: usize, phi: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| {
                let mut s = Vec::with_capacity(t);
                let mut y = 0.0;
                for _ in 0..t {
                    y = phi * y + rng.gen_range(-1.0..1.0);
                    s.push(y);
                }
                s
            })
            .collect()
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let series = independent_ar1(1, 5_000, 0.8, 1);
        let m = VarModel::fit(&series, 1).unwrap();
        assert!(
            (m.coef[0][(0, 0)] - 0.8).abs() < 0.05,
            "got {}",
            m.coef[0][(0, 0)]
        );
    }

    #[test]
    fn independent_series_show_weak_cross_effects() {
        let series = independent_ar1(3, 5_000, 0.9, 2);
        let m = VarModel::fit_auto(&series, 4).unwrap();
        let eff = m.effect_summary();
        assert!(eff.own > 0.5, "own effect too small: {}", eff.own);
        assert!(
            eff.ratio() > 10.0,
            "expected ≥1 order of magnitude separation, got ratio {}",
            eff.ratio()
        );
    }

    #[test]
    fn aic_prefers_true_lag_order() {
        // AR(2) process: y_t = 0.5 y_{t-1} + 0.3 y_{t-2} + e.
        let mut rng = StdRng::seed_from_u64(3);
        let t = 4_000;
        let mut s = vec![0.0f64; 2];
        for _ in 0..t {
            let n = s.len();
            let y = 0.5 * s[n - 1] + 0.3 * s[n - 2] + rng.gen_range(-1.0..1.0);
            s.push(y);
        }
        let m = VarModel::fit_auto(&[s], 5).unwrap();
        assert!(m.p >= 2, "AIC chose lag {} for an AR(2) process", m.p);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(VarModel::fit(&[], 1).is_none());
        assert!(VarModel::fit(&[vec![1.0, 2.0]], 0).is_none());
        assert!(VarModel::fit(&[vec![1.0, 2.0, 3.0]], 3).is_none()); // too short
                                                                     // ragged
        assert!(VarModel::fit(&[vec![1.0; 100], vec![1.0; 99]], 1).is_none());
    }

    #[test]
    fn effect_ratio_handles_zero_cross() {
        let e = EffectSummary {
            own: 0.5,
            cross: 0.0,
        };
        assert!(e.ratio().is_infinite());
        let e2 = EffectSummary {
            own: 1.0,
            cross: 0.01,
        };
        assert!((e2.orders_of_magnitude() - 2.0).abs() < 1e-12);
    }
}
