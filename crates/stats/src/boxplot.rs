//! Five-number summaries and ASCII boxplots, matching the boxplot figures
//! in the paper's evaluation (Figures 4–6).

use crate::descriptive::quantile_sorted;
use serde::{Deserialize, Serialize};

/// A Tukey five-number summary with 1.5×IQR whiskers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Boxplot {
    /// Smallest observation.
    pub min: f64,
    /// Lower whisker (smallest observation ≥ q1 − 1.5 IQR).
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (largest observation ≤ q3 + 1.5 IQR).
    pub whisker_hi: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Boxplot {
    /// Summarize a sample. Returns `None` for an empty slice.
    pub fn from_samples(xs: &[f64]) -> Option<Boxplot> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(sorted[0]);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(*sorted.last().expect("non-empty"));
        // Interpolated quartiles need not be observations; when every
        // observation past a quartile is an outlier, the whisker collapses
        // onto the box edge (the standard drawing convention).
        let whisker_lo = whisker_lo.min(q1);
        let whisker_hi = whisker_hi.max(q3);
        Some(Boxplot {
            min: sorted[0],
            whisker_lo,
            q1,
            median,
            q3,
            whisker_hi,
            max: *sorted.last().expect("non-empty"),
            n: sorted.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Internal consistency: min ≤ whiskers/quartiles ≤ max in order.
    pub fn is_well_formed(&self) -> bool {
        self.min <= self.whisker_lo
            && self.whisker_lo <= self.q1 + 1e-12
            && self.q1 <= self.median
            && self.median <= self.q3
            && self.q3 - 1e-12 <= self.whisker_hi
            && self.whisker_hi <= self.max
    }
}

/// Render one boxplot as a fixed-width ASCII row spanning `[lo, hi]`,
/// `width` characters wide: `|--[==M==]--|` with outliers elided.
/// Used by the figure-regeneration binaries to draw Figures 4–6 in the
/// terminal.
pub fn render_row(b: &Boxplot, lo: f64, hi: f64, width: usize) -> String {
    let width = width.max(10);
    let clamp_pos = |x: f64| -> usize {
        if hi <= lo {
            return 0;
        }
        let frac = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((frac * (width - 1) as f64).round() as usize).min(width - 1)
    };
    let mut row = vec![b' '; width];
    let (wl, q1, med, q3, wh) = (
        clamp_pos(b.whisker_lo),
        clamp_pos(b.q1),
        clamp_pos(b.median),
        clamp_pos(b.q3),
        clamp_pos(b.whisker_hi),
    );
    for cell in row.iter_mut().take(wh).skip(wl) {
        *cell = b'-';
    }
    for cell in row.iter_mut().take(q3).skip(q1) {
        *cell = b'=';
    }
    row[wl] = b'|';
    row[wh] = b'|';
    row[q1] = b'[';
    row[q3] = b']';
    row[med] = b'M';
    String::from_utf8(row).expect("ASCII by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_numbers_of_simple_sample() {
        let b = Boxplot::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.n, 5);
        assert!(b.is_well_formed());
    }

    #[test]
    fn whiskers_exclude_outliers() {
        let mut xs: Vec<f64> = (1..=20).map(|x| x as f64).collect();
        xs.push(1000.0); // extreme outlier
        let b = Boxplot::from_samples(&xs).unwrap();
        assert_eq!(b.max, 1000.0);
        assert!(b.whisker_hi <= 20.0);
        assert!(b.is_well_formed());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Boxplot::from_samples(&[]).is_none());
        let b = Boxplot::from_samples(&[7.0]).unwrap();
        assert_eq!(b.min, 7.0);
        assert_eq!(b.median, 7.0);
        assert_eq!(b.max, 7.0);
        assert_eq!(b.iqr(), 0.0);
        assert!(b.is_well_formed());
    }

    #[test]
    fn render_places_median_between_brackets() {
        let b = Boxplot::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let row = render_row(&b, 0.0, 6.0, 40);
        assert_eq!(row.len(), 40);
        let bracket_open = row.find('[').unwrap();
        let m = row.find('M').unwrap();
        let bracket_close = row.find(']').unwrap();
        assert!(bracket_open < m && m < bracket_close);
        assert!(row.find('|').unwrap() < bracket_open);
    }

    #[test]
    fn render_handles_degenerate_scale() {
        let b = Boxplot::from_samples(&[5.0]).unwrap();
        let row = render_row(&b, 5.0, 5.0, 20);
        assert_eq!(row.len(), 20);
    }
}
