//! Fixed-bin histograms, used for queuing-delay and cost distributions.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins plus underflow /
/// overflow counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `n_bins` bins.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `n_bins == 0`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Histogram {
        assert!(hi > lo, "histogram range must be non-degenerate");
        assert!(n_bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bin_lo, bin_hi, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + w * i as f64, self.lo + w * (i + 1) as f64, c))
    }

    /// Render as ASCII bars, `width` characters for the fullest bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (lo, hi, c) in self.iter() {
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{lo:8.1}, {hi:8.1}) {c:6} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_observations_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.record(x);
        }
        assert_eq!(h.bins(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-1.0);
        h.record(1.0);
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[0, 0]);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn mean_tracks_all_observations() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(2.0);
        h.record(4.0);
        h.record(100.0); // overflow still counts toward the mean
        assert!((h.mean() - 106.0 / 3.0).abs() < 1e-12);
        assert_eq!(Histogram::new(0.0, 1.0, 1).mean(), 0.0);
    }

    #[test]
    fn render_produces_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(0.5);
        h.record(0.7);
        h.record(3.0);
        let s = h.render(10);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
