//! Minimal dense matrix support: just enough linear algebra for OLS and
//! vector auto-regression (solve, least squares, determinant). Row-major
//! `f64` storage; sizes here are tiny (a handful of lags × zones), so
//! clarity beats cleverness.

use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        assert!(
            !rows.is_empty() && !rows[0].is_empty(),
            "matrix must be non-empty"
        );
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Solve `self * X = b` for `X` by Gaussian elimination with partial
    /// pivoting, where `b` may have multiple right-hand-side columns.
    /// Returns `None` if the system is (numerically) singular.
    ///
    /// # Panics
    /// Panics if `self` is not square or `b.rows() != self.rows()`.
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.rows, self.rows, "right-hand side has wrong height");
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.clone();

        for col in 0..n {
            // Partial pivot.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[(r1, col)]
                        .abs()
                        .partial_cmp(&a[(r2, col)].abs())
                        .expect("NaN in solve")
                })
                .expect("non-empty range");
            if a[(pivot_row, col)].abs() < 1e-12 {
                return None;
            }
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                x.swap_rows(pivot_row, col);
            }
            let pivot = a[(col, col)];
            for r in (col + 1)..n {
                let factor = a[(r, col)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= factor * v;
                }
                for c in 0..x.cols {
                    let v = x[(col, c)];
                    x[(r, c)] -= factor * v;
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let pivot = a[(col, col)];
            for c in 0..x.cols {
                let mut acc = x[(col, c)];
                for k in (col + 1)..n {
                    acc -= a[(col, k)] * x[(k, c)];
                }
                x[(col, c)] = acc / pivot;
            }
        }
        Some(x)
    }

    /// Determinant by LU decomposition. Square matrices only.
    ///
    /// # Panics
    /// Panics if `self` is not square.
    pub fn det(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "det requires a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = 1.0;
        for col in 0..n {
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[(r1, col)]
                        .abs()
                        .partial_cmp(&a[(r2, col)].abs())
                        .expect("NaN in det")
                })
                .expect("non-empty range");
            if a[(pivot_row, col)].abs() < 1e-300 {
                return 0.0;
            }
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                det = -det;
            }
            let pivot = a[(col, col)];
            det *= pivot;
            for r in (col + 1)..n {
                let factor = a[(r, col)] / pivot;
                for c in col..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= factor * v;
                }
            }
        }
        det
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r1 * self.cols + c, r2 * self.cols + c);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let i = Matrix::identity(3);
        let b = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(i.solve(&b).unwrap(), b);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![10.0]]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![2.0], vec![3.0]]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(a.solve(&b).is_none());
    }

    #[test]
    fn determinant_known_values() {
        assert_eq!(Matrix::identity(4).det(), 1.0);
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!((a.det() + 2.0).abs() < 1e-12);
        let sing = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(sing.det(), 0.0);
        // Row swap flips sign.
        let swapped = Matrix::from_rows(&[vec![3.0, 4.0], vec![1.0, 2.0]]);
        assert!((swapped.det() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![6.0]]);
        let ab = a.matmul(&b);
        assert_eq!(ab.rows(), 2);
        assert_eq!(ab.cols(), 1);
        assert_eq!(ab[(0, 0)], 17.0);
        assert_eq!(ab[(1, 0)], 39.0);
        let t = a.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert_eq!(t[(1, 0)], 2.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}
