//! Ordinary least squares via the normal equations, with ridge fallback
//! for near-collinear designs (spot prices sit flat for long spans, which
//! makes lagged designs rank-deficient).

use crate::matrix::Matrix;

/// Result of a least-squares fit `y ≈ X β`.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Coefficient estimates, one per design column.
    pub beta: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Number of observations.
    pub n: usize,
}

/// Fit `y ≈ X β` by OLS. `x` is `n × k` (rows = observations), `y` has
/// length `n`. Returns `None` if `n < k`, or the normal equations are
/// singular even after a tiny ridge regularizer.
pub fn fit(x: &Matrix, y: &[f64]) -> Option<OlsFit> {
    let (n, k) = (x.rows(), x.cols());
    if y.len() != n || n < k {
        return None;
    }
    let xt = x.transpose();
    let xtx = xt.matmul(x);
    let ycol = Matrix::from_rows(&y.iter().map(|&v| vec![v]).collect::<Vec<_>>());
    let xty = xt.matmul(&ycol);

    let solution = xtx.solve(&xty).or_else(|| {
        // Tiny ridge: spot-price designs are frequently collinear because
        // prices are constant for long stretches.
        let mut ridged = xtx.clone();
        for i in 0..k {
            ridged[(i, i)] += 1e-8;
        }
        ridged.solve(&xty)
    })?;

    let beta: Vec<f64> = (0..k).map(|i| solution[(i, 0)]).collect();
    let mut rss = 0.0;
    for row in 0..n {
        let pred: f64 = (0..k).map(|j| x[(row, j)] * beta[j]).sum();
        let r = y[row] - pred;
        rss += r * r;
    }
    Some(OlsFit { beta, rss, n })
}

/// Convenience: simple linear regression `y ≈ a + b·x`, returning `(a, b)`.
pub fn simple(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let design = Matrix::from_rows(&xs.iter().map(|&x| vec![1.0, x]).collect::<Vec<_>>());
    let f = fit(&design, ys)?;
    Some((f.beta[0], f.beta[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = simple(&xs, &ys).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rss_is_zero_for_perfect_fit() {
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]]);
        let y = [2.0, 4.0, 6.0]; // y = 0 + 2x
        let f = fit(&x, &y).unwrap();
        assert!(f.rss < 1e-18);
        assert!((f.beta[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_returns_none() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert!(fit(&x, &[1.0]).is_none());
        assert!(simple(&[1.0], &[1.0]).is_none());
        assert!(simple(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn collinear_design_uses_ridge() {
        // Two identical columns: singular normal equations.
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let y = [2.0, 4.0, 6.0];
        let f = fit(&x, &y).expect("ridge fallback should handle collinearity");
        // Ridge splits the coefficient between the two identical columns;
        // their sum predicts y.
        assert!((f.beta[0] + f.beta[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn noisy_fit_has_positive_rss() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.5 * x + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let design = Matrix::from_rows(&xs.iter().map(|&x| vec![1.0, x]).collect::<Vec<_>>());
        let f = fit(&design, &ys).unwrap();
        assert!(f.rss > 0.0);
        assert!((f.beta[1] - 0.5).abs() < 0.02);
    }
}
