//! # redspot-stats
//!
//! Numerics substrate for redspot: descriptive statistics, Tukey boxplots
//! (the paper reports every evaluation as cost boxplots), a minimal dense
//! matrix with Gaussian elimination, ordinary least squares, and Vector
//! Auto-Regression with Akaike-criterion lag selection (the Section-3.1
//! cross-zone independence analysis).

#![warn(missing_docs)]

pub mod boxplot;
pub mod descriptive;
pub mod histogram;
pub mod matrix;
pub mod ols;
pub mod var;

pub use boxplot::Boxplot;
pub use histogram::Histogram;
pub use matrix::Matrix;
pub use var::{EffectSummary, VarModel};
