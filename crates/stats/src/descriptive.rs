//! Descriptive statistics over `f64` samples.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance. Returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample (Bessel-corrected) variance. Returns `None` for < 2 samples.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Minimum (ignoring NaNs is the caller's job; NaN input gives NaN-ish
/// results). Returns `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum. Returns `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Linear-interpolated quantile (the "R-7" / NumPy default definition).
/// `q` must lie in `[0, 1]`. Returns `None` for an empty slice.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// [`quantile`] on data already sorted ascending.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient. Returns `None` if either series is
/// empty, lengths differ, or either variance is zero.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let (mx, my) = (mean(xs)?, mean(ys)?);
    let cov: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64;
    let (sx, sy) = (stddev(xs)?, stddev(ys)?);
    if sx == 0.0 || sy == 0.0 {
        return None;
    }
    Some(cov / (sx * sy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slices_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(correlation(&[], &[]), None);
    }

    #[test]
    fn mean_variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(stddev(&xs), Some(2.0));
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_needs_two_points() {
        assert_eq!(sample_variance(&[1.0]), None);
        assert_eq!(sample_variance(&[1.0, 3.0]), Some(2.0));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
        // unsorted input is handled
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        // single element
        assert_eq!(quantile(&[7.0], 0.9), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_rejects_out_of_range() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn correlation_known_values() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [6.0, 4.0, 2.0];
        assert!((correlation(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &[1.0, 1.0, 1.0]), None); // zero variance
        assert_eq!(correlation(&xs, &[1.0]), None); // length mismatch
    }
}

/// Sample autocorrelation at `lag`. Returns `None` for empty input,
/// `lag >= len`, or zero variance.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Option<f64> {
    if xs.is_empty() || lag >= xs.len() {
        return None;
    }
    let m = mean(xs)?;
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return None;
    }
    let num: f64 = xs[lag..]
        .iter()
        .zip(xs)
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    Some(num / denom)
}

#[cfg(test)]
mod autocorr_tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert!((autocorrelation(&xs, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_series_is_anticorrelated_at_lag_one() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1).unwrap() < -0.9);
        assert!(autocorrelation(&xs, 2).unwrap() > 0.9);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(autocorrelation(&[], 0), None);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), None);
        assert_eq!(autocorrelation(&[2.0, 2.0, 2.0], 1), None); // zero variance
    }
}
