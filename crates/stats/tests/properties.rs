//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use redspot_stats::descriptive::{max, mean, median, min, quantile, variance};
use redspot_stats::{Boxplot, Matrix};

proptest! {
    /// Quantiles are bounded by the extremes and monotone in q.
    #[test]
    fn quantiles_bounded_and_monotone(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        prop_assert!(a >= min(&xs).unwrap() - 1e-9);
        prop_assert!(b <= max(&xs).unwrap() + 1e-9);
    }

    /// The boxplot five-number summary is always ordered.
    #[test]
    fn boxplot_is_well_formed(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let b = Boxplot::from_samples(&xs).unwrap();
        prop_assert!(b.is_well_formed(), "{b:?}");
        prop_assert_eq!(b.n, xs.len());
        prop_assert!((b.median - median(&xs).unwrap()).abs() < 1e-9);
    }

    /// Mean is translation-equivariant; variance is translation-invariant.
    #[test]
    fn mean_variance_translation(
        xs in prop::collection::vec(-1e3f64..1e3, 1..50),
        shift in -100.0f64..100.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((mean(&shifted).unwrap() - mean(&xs).unwrap() - shift).abs() < 1e-6);
        prop_assert!((variance(&shifted).unwrap() - variance(&xs).unwrap()).abs() < 1e-6);
    }

    /// Solving A·x = A·e recovers e for well-conditioned random matrices.
    #[test]
    fn solve_recovers_known_solution(
        diag in prop::collection::vec(1.0f64..10.0, 2..6),
        off in 0.0f64..0.3,
    ) {
        let n = diag.len();
        // Diagonally dominant: guaranteed non-singular.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = if i == j { diag[i] + off * n as f64 } else { off };
            }
        }
        let e = Matrix::from_rows(&(0..n).map(|i| vec![i as f64 + 1.0]).collect::<Vec<_>>());
        let b = a.matmul(&e);
        let x = a.solve(&b).expect("diagonally dominant is non-singular");
        for i in 0..n {
            prop_assert!((x[(i, 0)] - e[(i, 0)]).abs() < 1e-6);
        }
    }

    /// det(A) changes sign under row swap and det(I) = 1.
    #[test]
    fn det_row_swap_flips_sign(vals in prop::collection::vec(-5.0f64..5.0, 9)) {
        let a = Matrix::from_rows(&[
            vals[0..3].to_vec(),
            vals[3..6].to_vec(),
            vals[6..9].to_vec(),
        ]);
        let swapped = Matrix::from_rows(&[
            vals[3..6].to_vec(),
            vals[0..3].to_vec(),
            vals[6..9].to_vec(),
        ]);
        let (d1, d2) = (a.det(), swapped.det());
        prop_assert!((d1 + d2).abs() < 1e-6 * (1.0 + d1.abs()), "d1={d1} d2={d2}");
    }
}
