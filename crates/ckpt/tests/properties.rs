//! Property-based tests for the checkpoint substrate.

use proptest::prelude::*;
use redspot_ckpt::{optimum_interval, AppSpec, DalyOrder, ReplicaSet};
use redspot_trace::SimDuration;

proptest! {
    /// Daly's optimum is positive and monotone in the MTBF.
    #[test]
    fn daly_positive_and_monotone(tc in 1u64..2_000, m in 60u64..500_000) {
        let d = SimDuration::from_secs(tc);
        for order in [DalyOrder::FirstOrder, DalyOrder::HigherOrder] {
            let t1 = optimum_interval(d, SimDuration::from_secs(m), order);
            let t2 = optimum_interval(d, SimDuration::from_secs(m * 2), order);
            prop_assert!(t1.secs() >= 1);
            prop_assert!(t2 >= t1, "interval shrank when MTBF grew");
        }
    }

    /// The replica set's best position never exceeds the work, never lags
    /// committed progress, and commits are monotone.
    #[test]
    fn replica_invariants(
        ops in prop::collection::vec((0usize..3, 0u64..4, 0u64..7_200), 1..60),
        work_h in 1u64..30,
    ) {
        let work = SimDuration::from_hours(work_h);
        let mut rs = ReplicaSet::new(AppSpec::new(work), 3);
        let mut last_committed = SimDuration::ZERO;
        for (slot, op, amount) in ops {
            match op {
                0 => {
                    if rs.position(slot).is_none() {
                        rs.start(slot, rs.committed());
                    }
                }
                1 => rs.stop(slot),
                2 => rs.advance(slot, SimDuration::from_secs(amount)),
                _ => {
                    let target = rs.best_position();
                    rs.commit(target);
                    prop_assert!(rs.committed() >= last_committed);
                    last_committed = rs.committed();
                }
            }
            prop_assert!(rs.best_position() <= work);
            prop_assert!(rs.best_position() >= rs.committed());
            prop_assert!(rs.remaining_committed() + rs.committed() == work);
        }
    }
}
