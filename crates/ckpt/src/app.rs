//! Analytic application model.
//!
//! The paper abstracts the MPI application as a fixed amount of
//! uninterrupted compute time `C` (20 hours in all experiments) whose
//! progress `P` is observable through an `MPI_Pcontrol`-style interface.
//! With redundancy, each zone runs a *full replica* of the application;
//! replicas started from the same checkpoint at different times sit at
//! different positions, and global progress is the furthest position of
//! any live replica. Only checkpoints make progress durable: when every
//! replica dies, execution rolls back to the last committed checkpoint.

use crate::store::GenerationStore;
use redspot_trace::SimDuration;
use serde::{Deserialize, Serialize};

/// Static description of the application workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppSpec {
    /// Total uninterrupted compute time `C`.
    pub work: SimDuration,
    /// Iteration length for iterative MPI applications. Progress is
    /// reported through an `MPI_Pcontrol`-style hook at iteration
    /// completion, so checkpoints can only capture whole iterations.
    /// `None` models continuously-checkpointable progress (the paper's
    /// simulation default).
    #[serde(default)]
    pub iteration: Option<SimDuration>,
}

impl AppSpec {
    /// The paper's standard workload: 20 hours of compute.
    pub const PAPER: AppSpec = AppSpec {
        work: SimDuration::from_hours(20),
        iteration: None,
    };

    /// Construct from a work requirement.
    pub const fn new(work: SimDuration) -> AppSpec {
        AppSpec {
            work,
            iteration: None,
        }
    }

    /// Make the workload iterative: progress is only observable (and
    /// checkpointable) at multiples of `iteration`.
    ///
    /// # Panics
    /// Panics if the iteration length is zero.
    pub fn with_iteration(mut self, iteration: SimDuration) -> AppSpec {
        assert!(
            iteration > SimDuration::ZERO,
            "iteration length must be positive"
        );
        self.iteration = Some(iteration);
        self
    }

    /// The furthest *checkpointable* position at or below `position`:
    /// `position` itself for continuous progress, else the last completed
    /// iteration boundary (the final position `work` is always
    /// checkpointable — the application has finished).
    pub fn checkpointable(&self, position: SimDuration) -> SimDuration {
        match self.iteration {
            None => position,
            Some(_) if position >= self.work => self.work,
            Some(it) => SimDuration::from_secs(position.secs() / it.secs() * it.secs()),
        }
    }
}

/// Positions of up to `n` application replicas plus the committed
/// checkpoint history. Replica `i` corresponds to zone `i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaSet {
    spec: AppSpec,
    /// `Some(position)` while the replica is executing, `None` otherwise.
    positions: Vec<Option<SimDuration>>,
    /// Committed checkpoint generations (see [`GenerationStore`]).
    #[serde(default)]
    store: GenerationStore,
}

impl ReplicaSet {
    /// A fresh application: no replicas running, nothing committed.
    ///
    /// # Panics
    /// Panics if `n_zones` is zero.
    pub fn new(spec: AppSpec, n_zones: usize) -> ReplicaSet {
        assert!(n_zones > 0, "need at least one replica slot");
        ReplicaSet {
            spec,
            positions: vec![None; n_zones],
            store: GenerationStore::new(),
        }
    }

    /// The workload description.
    pub fn spec(&self) -> AppSpec {
        self.spec
    }

    /// Number of replica slots (zones).
    pub fn n_slots(&self) -> usize {
        self.positions.len()
    }

    /// Durable progress `P`: the newest *valid* committed checkpoint
    /// position. Restores that discover corruption fall back to older
    /// generations, so this can move backwards across a
    /// [`Self::invalidate_newest_checkpoint`] call (never across a commit).
    pub fn committed(&self) -> SimDuration {
        self.store.newest_valid()
    }

    /// Furthest position ever committed — what the reliable I/O-server
    /// path restores during an on-demand migration. Monotone; always at
    /// least [`Self::committed`].
    pub fn reliable(&self) -> SimDuration {
        self.store.reliable()
    }

    /// Remaining compute `C_r` measured from *committed* progress — the
    /// conservative value Algorithm 1 uses for its deadline guard (an
    /// uncommitted replica position can still be lost).
    pub fn remaining_committed(&self) -> SimDuration {
        self.spec.work - self.committed()
    }

    /// Remaining compute measured from the furthest live replica (used for
    /// optimistic forecasting); equals [`Self::remaining_committed`] when
    /// nothing is running.
    pub fn remaining_best(&self) -> SimDuration {
        self.spec.work - self.best_position()
    }

    /// The furthest position among live replicas, or the committed
    /// checkpoint when none are running.
    pub fn best_position(&self) -> SimDuration {
        self.positions
            .iter()
            .flatten()
            .copied()
            .chain(std::iter::once(self.committed()))
            .max()
            .expect("chain is non-empty")
    }

    /// Position of one replica, if it is executing.
    pub fn position(&self, slot: usize) -> Option<SimDuration> {
        self.positions[slot]
    }

    /// Whether any replica is executing.
    pub fn any_running(&self) -> bool {
        self.positions.iter().any(Option::is_some)
    }

    /// Whether the committed position covers all work.
    pub fn complete(&self) -> bool {
        self.committed() >= self.spec.work
    }

    /// Begin executing a replica from `from` (usually the committed
    /// checkpoint). Idempotent restarts from earlier positions are allowed;
    /// positions past the total work are clamped.
    ///
    /// # Panics
    /// Panics if the slot is already running.
    pub fn start(&mut self, slot: usize, from: SimDuration) {
        assert!(
            self.positions[slot].is_none(),
            "replica {slot} already running"
        );
        self.positions[slot] = Some(from.min(self.spec.work));
    }

    /// Stop a replica (zone terminated); its speculative progress is lost.
    /// Stopping an idle slot is a no-op.
    pub fn stop(&mut self, slot: usize) {
        self.positions[slot] = None;
    }

    /// Advance a running replica by `dt` of useful compute, clamped at the
    /// total work. No-op for idle slots.
    pub fn advance(&mut self, slot: usize, dt: SimDuration) {
        if let Some(pos) = self.positions[slot] {
            self.positions[slot] = Some((pos + dt).min(self.spec.work));
        }
    }

    /// Commit a checkpoint at `position`, making that progress durable as
    /// a fresh generation.
    ///
    /// # Panics
    /// Panics if `position` regresses behind the current committed point —
    /// checkpoints never move progress backwards.
    pub fn commit(&mut self, position: SimDuration) {
        self.store.commit(position.min(self.spec.work));
    }

    /// A restore found the newest checkpoint generation corrupt: drop it
    /// and return the position restore now falls back to (zero once the
    /// generation history is exhausted). The reliable I/O-server view is
    /// unaffected.
    pub fn invalidate_newest_checkpoint(&mut self) -> SimDuration {
        self.store.invalidate_newest()
    }

    /// Reset every replica to idle (e.g. after migrating to on-demand).
    pub fn stop_all(&mut self) {
        self.positions.iter_mut().for_each(|p| *p = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(hours: u64) -> SimDuration {
        SimDuration::from_hours(hours)
    }

    fn set() -> ReplicaSet {
        ReplicaSet::new(AppSpec::PAPER, 3)
    }

    #[test]
    fn fresh_state() {
        let r = set();
        assert_eq!(r.committed(), SimDuration::ZERO);
        assert_eq!(r.remaining_committed(), h(20));
        assert!(!r.any_running());
        assert!(!r.complete());
        assert_eq!(r.best_position(), SimDuration::ZERO);
    }

    #[test]
    fn progress_and_commit_cycle() {
        let mut r = set();
        r.start(0, SimDuration::ZERO);
        r.advance(0, h(2));
        assert_eq!(r.best_position(), h(2));
        assert_eq!(r.committed(), SimDuration::ZERO); // speculative only
        r.commit(h(2));
        assert_eq!(r.committed(), h(2));
        assert_eq!(r.remaining_committed(), h(18));
    }

    #[test]
    fn losing_all_replicas_rolls_back_to_checkpoint() {
        let mut r = set();
        r.start(0, SimDuration::ZERO);
        r.advance(0, h(3));
        r.commit(h(3));
        r.advance(0, h(2)); // speculative position 5h
        assert_eq!(r.best_position(), h(5));
        r.stop(0);
        assert_eq!(r.best_position(), h(3)); // back to committed
        assert_eq!(r.remaining_best(), h(17));
    }

    #[test]
    fn replicas_at_different_positions() {
        let mut r = set();
        r.start(0, SimDuration::ZERO);
        r.advance(0, h(4));
        r.commit(h(4));
        // Waiting zone restarts from the fresh checkpoint while zone 0
        // runs ahead.
        r.start(1, r.committed());
        r.advance(0, h(2));
        r.advance(1, h(1));
        assert_eq!(r.position(0), Some(h(6)));
        assert_eq!(r.position(1), Some(h(5)));
        assert_eq!(r.best_position(), h(6));
        // Losing the leader falls back to the trailing replica.
        r.stop(0);
        assert_eq!(r.best_position(), h(5));
    }

    #[test]
    fn work_clamps() {
        let mut r = ReplicaSet::new(AppSpec::new(h(2)), 1);
        r.start(0, SimDuration::ZERO);
        r.advance(0, h(10));
        assert_eq!(r.best_position(), h(2));
        r.commit(h(2));
        assert!(r.complete());
        // Starting beyond the work clamps as well.
        let mut r2 = ReplicaSet::new(AppSpec::new(h(2)), 1);
        r2.start(0, h(100));
        assert_eq!(r2.position(0), Some(h(2)));
    }

    #[test]
    #[should_panic(expected = "behind committed")]
    fn commit_cannot_regress() {
        let mut r = set();
        r.start(0, SimDuration::ZERO);
        r.advance(0, h(5));
        r.commit(h(5));
        r.commit(h(4));
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn double_start_panics() {
        let mut r = set();
        r.start(0, SimDuration::ZERO);
        r.start(0, SimDuration::ZERO);
    }

    #[test]
    fn corrupt_restore_falls_back_a_generation() {
        let mut r = set();
        r.start(0, SimDuration::ZERO);
        r.advance(0, h(3));
        r.commit(h(3));
        r.advance(0, h(4));
        r.commit(h(7));
        assert_eq!(r.committed(), h(7));
        // Restore discovers the 7h checkpoint is corrupt.
        assert_eq!(r.invalidate_newest_checkpoint(), h(3));
        assert_eq!(r.committed(), h(3));
        assert_eq!(r.remaining_committed(), h(17));
        // The reliable migration path still has the furthest commit.
        assert_eq!(r.reliable(), h(7));
        // Exhausting the history bottoms out at a from-scratch restart.
        assert_eq!(r.invalidate_newest_checkpoint(), SimDuration::ZERO);
        assert_eq!(r.reliable(), h(7));
    }

    #[test]
    fn stop_all_clears_everything() {
        let mut r = set();
        r.start(0, SimDuration::ZERO);
        r.start(2, SimDuration::ZERO);
        r.stop_all();
        assert!(!r.any_running());
    }
}
