//! A catalog of HPC workload presets.
//!
//! Section 5 grounds the paper's checkpoint-cost assumptions in
//! measurements: NAS benchmarks showed up to ~200 s of system-level
//! checkpoint overhead at small scale [Hursey et al.], real applications
//! with large working sets spend up to tens of minutes per
//! checkpoint/restart on cloud I/O [ACIC, SC'13], which motivates the
//! paper's 300–900 s range. These presets package representative
//! combinations of runtime, checkpoint cost, and iteration structure so
//! examples and experiments can speak in terms of applications rather
//! than raw parameters.

use crate::app::AppSpec;
use crate::model::CkptCosts;
use redspot_trace::SimDuration;
use serde::{Deserialize, Serialize};

/// A named workload: an application profile plus its checkpoint costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Short name (e.g. "nas-cg-e").
    pub name: &'static str,
    /// What it models.
    pub description: &'static str,
    /// Application spec (runtime + iteration structure).
    pub app: AppSpec,
    /// Checkpoint/restart costs.
    pub costs: CkptCosts,
}

/// NAS CG class E at moderate scale: iterative solver, small working set,
/// cheap checkpoints (the Hursey et al. measurement regime).
pub const NAS_CG: Workload = Workload {
    name: "nas-cg-e",
    description: "iterative CG solver, small working set, cheap checkpoints",
    app: AppSpec {
        work: SimDuration::from_hours(6),
        iteration: Some(SimDuration::from_mins(3)),
    },
    costs: CkptCosts::symmetric_secs(200),
};

/// NAS FT class E: memory-heavy FFT, mid-sized checkpoints.
pub const NAS_FT: Workload = Workload {
    name: "nas-ft-e",
    description: "memory-heavy FFT, mid-sized checkpoints",
    app: AppSpec {
        work: SimDuration::from_hours(10),
        iteration: Some(SimDuration::from_mins(8)),
    },
    costs: CkptCosts::symmetric_secs(400),
};

/// The paper's standard experiment: a 20-hour tightly-coupled MPI job
/// with 300-second checkpoints.
pub const PAPER_STANDARD: Workload = Workload {
    name: "paper-standard",
    description: "the paper's 20 h experiment with t_c = 300 s",
    app: AppSpec {
        work: SimDuration::from_hours(20),
        iteration: None,
    },
    costs: CkptCosts::LOW,
};

/// The paper's heavy configuration: same job, 900-second checkpoints
/// (large working set over cloud I/O).
pub const PAPER_HEAVY: Workload = Workload {
    name: "paper-heavy",
    description: "the paper's 20 h experiment with t_c = 900 s",
    app: AppSpec {
        work: SimDuration::from_hours(20),
        iteration: None,
    },
    costs: CkptCosts::HIGH,
};

/// A weather-model-like production run: long iterations (one simulated
/// forecast hour each), large state, expensive checkpoints.
pub const WEATHER: Workload = Workload {
    name: "weather",
    description: "production forecast model: 30 min iterations, heavy state",
    app: AppSpec {
        work: SimDuration::from_hours(20),
        iteration: Some(SimDuration::from_mins(30)),
    },
    costs: CkptCosts::symmetric_secs(700),
};

/// A molecular-dynamics-like run: tiny per-step state, very cheap
/// checkpoints, fine-grained iterations.
pub const MD: Workload = Workload {
    name: "md",
    description: "molecular dynamics: tiny state, very cheap checkpoints",
    app: AppSpec {
        work: SimDuration::from_hours(14),
        iteration: Some(SimDuration::from_secs(60)),
    },
    costs: CkptCosts::symmetric_secs(120),
};

/// Every preset in the catalog.
pub const ALL: [Workload; 6] = [NAS_CG, NAS_FT, PAPER_STANDARD, PAPER_HEAVY, WEATHER, MD];

/// Look a preset up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    ALL.into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_well_formed() {
        for w in ALL {
            assert!(w.app.work > SimDuration::ZERO, "{}", w.name);
            assert!(w.costs.checkpoint.secs() >= 100, "{}", w.name);
            assert!(
                w.costs.checkpoint.secs() <= 900,
                "{}: beyond the paper's range",
                w.name
            );
            if let Some(it) = w.app.iteration {
                assert!(it > SimDuration::ZERO && it < w.app.work, "{}", w.name);
            }
            assert!(!w.description.is_empty());
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        for w in ALL {
            assert_eq!(by_name(w.name).unwrap(), w);
        }
        assert_eq!(
            ALL.iter()
                .map(|w| w.name)
                .collect::<std::collections::HashSet<_>>()
                .len(),
            ALL.len()
        );
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn paper_presets_match_section_5() {
        assert_eq!(PAPER_STANDARD.costs, CkptCosts::LOW);
        assert_eq!(PAPER_HEAVY.costs, CkptCosts::HIGH);
        assert_eq!(PAPER_STANDARD.app.work, SimDuration::from_hours(20));
    }
}
