//! # redspot-ckpt
//!
//! Checkpoint substrate for redspot: Daly's optimum checkpoint interval
//! (first-order and higher-order forms), the paper's fixed
//! checkpoint/restart cost model (`t_c = t_r ∈ {300, 900}` s), and the
//! analytic application model with per-zone replica positions and
//! committed-checkpoint progress semantics.

#![warn(missing_docs)]

pub mod app;
pub mod daly;
pub mod model;
pub mod workloads;

pub use app::{AppSpec, ReplicaSet};
pub use daly::{efficiency, optimum_interval, DalyOrder};
pub use model::CkptCosts;
pub use workloads::Workload;
