//! # redspot-ckpt
//!
//! Checkpoint substrate for redspot: Daly's optimum checkpoint interval
//! (first-order and higher-order forms), the paper's fixed
//! checkpoint/restart cost model (`t_c = t_r ∈ {300, 900}` s), the
//! analytic application model with per-zone replica positions and
//! committed-checkpoint progress semantics, and the checkpoint generation
//! store that lets corrupted restores fall back to older generations.

#![warn(missing_docs)]

pub mod app;
pub mod daly;
pub mod model;
pub mod store;
pub mod workloads;

pub use app::{AppSpec, ReplicaSet};
pub use daly::{efficiency, optimum_interval, DalyOrder};
pub use model::CkptCosts;
pub use store::{Generation, GenerationStore};
pub use workloads::Workload;
