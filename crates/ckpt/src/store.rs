//! Checkpoint generation store.
//!
//! The seed modeled durable progress as a single committed position. Fault
//! injection needs more structure: a restore can discover that the newest
//! checkpoint is corrupt and fall back to an older *generation*. This module
//! keeps the short history of committed checkpoints that makes such
//! fallback meaningful, while distinguishing two notions of durable
//! progress:
//!
//! - [`GenerationStore::newest_valid`] — the newest generation not yet
//!   found corrupt. Spot-side restarts restore from here, and the deadline
//!   guard budgets remaining work against it (pessimistic: a later restore
//!   may still invalidate it and fall further back).
//! - [`GenerationStore::reliable`] — the furthest position ever committed.
//!   The paper stores checkpoints on a dedicated I/O server whose writes
//!   are synchronous and verified, so the on-demand migration path (which
//!   reads from that same server, not from a spot node's view) always
//!   recovers the furthest committed state. Corruption in this model is a
//!   spot-side *read-path* failure, which is why `reliable` never
//!   decreases and is never invalidated.
//!
//! Since `reliable() >= newest_valid()` always holds, a guard computed
//! against `newest_valid` reserves at least as much time as the on-demand
//! migration needs — the deadline guarantee survives arbitrary corruption
//! schedules.

use redspot_trace::SimDuration;
use serde::{Deserialize, Serialize};

/// Oldest generations are dropped beyond this history depth. Eight is
/// plenty: fallback chains longer than the store simply bottom out at a
/// from-scratch restart (position zero), which is always safe.
const MAX_GENERATIONS: usize = 8;

/// One committed checkpoint generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Generation {
    /// Application position captured by this checkpoint.
    pub position: SimDuration,
    /// Whether the generation is still believed restorable. Flipped to
    /// `false` when a restore discovers corruption.
    pub valid: bool,
}

/// Bounded history of committed checkpoint generations, newest last.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationStore {
    gens: Vec<Generation>,
    /// Furthest position ever committed; monotone, survives trimming and
    /// invalidation (see module docs).
    reliable: SimDuration,
}

impl Default for GenerationStore {
    fn default() -> GenerationStore {
        GenerationStore::new()
    }
}

impl GenerationStore {
    /// An empty store: nothing committed, everything restarts from zero.
    pub fn new() -> GenerationStore {
        GenerationStore {
            gens: Vec::new(),
            reliable: SimDuration::ZERO,
        }
    }

    /// Commit a new generation at `position`.
    ///
    /// Committing at exactly the newest valid position is a no-op (the
    /// checkpoint carries no new progress). Older generations beyond the
    /// history cap are dropped.
    ///
    /// # Panics
    /// Panics if `position` regresses behind the newest valid generation —
    /// checkpoints never move durable progress backwards.
    pub fn commit(&mut self, position: SimDuration) {
        let newest = self.newest_valid();
        assert!(
            position >= newest,
            "checkpoint at {position} behind committed {newest}"
        );
        if position == newest && self.gens.iter().any(|g| g.valid) {
            return;
        }
        self.gens.push(Generation {
            position,
            valid: true,
        });
        if self.gens.len() > MAX_GENERATIONS {
            let excess = self.gens.len() - MAX_GENERATIONS;
            self.gens.drain(..excess);
        }
        self.reliable = self.reliable.max(position);
    }

    /// Position of the newest valid generation, or zero when none exists
    /// (restart from scratch).
    pub fn newest_valid(&self) -> SimDuration {
        self.gens
            .iter()
            .rev()
            .find(|g| g.valid)
            .map_or(SimDuration::ZERO, |g| g.position)
    }

    /// Furthest position ever committed — what the reliable I/O-server
    /// path (on-demand migration) restores from. Monotone.
    pub fn reliable(&self) -> SimDuration {
        self.reliable
    }

    /// Mark the newest valid generation corrupt and return the position of
    /// the generation that restore now falls back to (zero once the history
    /// is exhausted).
    pub fn invalidate_newest(&mut self) -> SimDuration {
        if let Some(g) = self.gens.iter_mut().rev().find(|g| g.valid) {
            g.valid = false;
        }
        self.newest_valid()
    }

    /// The stored generations, oldest first.
    pub fn generations(&self) -> &[Generation] {
        &self.gens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(hours: u64) -> SimDuration {
        SimDuration::from_hours(hours)
    }

    #[test]
    fn fresh_store_is_zero() {
        let s = GenerationStore::new();
        assert_eq!(s.newest_valid(), SimDuration::ZERO);
        assert_eq!(s.reliable(), SimDuration::ZERO);
        assert!(s.generations().is_empty());
    }

    #[test]
    fn commits_advance_both_views() {
        let mut s = GenerationStore::new();
        s.commit(h(2));
        s.commit(h(5));
        assert_eq!(s.newest_valid(), h(5));
        assert_eq!(s.reliable(), h(5));
        assert_eq!(s.generations().len(), 2);
    }

    #[test]
    fn equal_position_commit_dedupes() {
        let mut s = GenerationStore::new();
        s.commit(h(3));
        s.commit(h(3));
        assert_eq!(s.generations().len(), 1);
    }

    #[test]
    fn invalidation_falls_back_but_reliable_holds() {
        let mut s = GenerationStore::new();
        s.commit(h(2));
        s.commit(h(5));
        s.commit(h(9));
        assert_eq!(s.invalidate_newest(), h(5));
        assert_eq!(s.newest_valid(), h(5));
        assert_eq!(s.invalidate_newest(), h(2));
        assert_eq!(s.invalidate_newest(), SimDuration::ZERO);
        // Exhausted history: further invalidation stays at zero.
        assert_eq!(s.invalidate_newest(), SimDuration::ZERO);
        // The reliable path never regressed.
        assert_eq!(s.reliable(), h(9));
    }

    #[test]
    fn recommit_after_fallback_is_allowed() {
        let mut s = GenerationStore::new();
        s.commit(h(6));
        s.invalidate_newest(); // back to zero
        s.commit(h(1)); // re-earned progress commits fine
        assert_eq!(s.newest_valid(), h(1));
        assert_eq!(s.reliable(), h(6));
    }

    #[test]
    #[should_panic(expected = "behind committed")]
    fn regressing_commit_panics() {
        let mut s = GenerationStore::new();
        s.commit(h(5));
        s.commit(h(4));
    }

    #[test]
    fn history_is_bounded() {
        let mut s = GenerationStore::new();
        for i in 1..=20 {
            s.commit(SimDuration::from_hours(i));
        }
        assert!(s.generations().len() <= MAX_GENERATIONS);
        assert_eq!(s.newest_valid(), h(20));
        assert_eq!(s.reliable(), h(20));
    }
}
