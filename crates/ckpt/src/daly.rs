//! Daly's optimum checkpoint interval.
//!
//! The Markov-Daly policy (Section 4.2) feeds the Markov model's expected
//! zone up-time into Daly's estimate of the optimum time between restart
//! dumps [Daly, FGCS 2006]. Both the first-order estimate
//! `t_opt = sqrt(2 δ M)` and the paper's higher-order refinement are
//! provided; redspot uses the higher-order form by default and benches the
//! difference (`ablate_daly`).

use redspot_trace::SimDuration;

/// Which of Daly's estimates to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DalyOrder {
    /// `t_opt = sqrt(2 δ M) − δ` (Young's classic first-order estimate).
    FirstOrder,
    /// Daly's higher-order estimate:
    /// `t_opt = sqrt(2 δ M)·[1 + ⅓·√(δ/2M) + (1/9)·(δ/2M)] − δ` for
    /// `δ < 2M`, else `t_opt = M`.
    #[default]
    HigherOrder,
}

/// Optimum compute time between checkpoints for checkpoint cost `delta`
/// and mean time between failures `mtbf`.
///
/// ```
/// use redspot_ckpt::{optimum_interval, DalyOrder};
/// use redspot_trace::SimDuration;
/// // 300 s checkpoints on a zone that stays up ~6 h: checkpoint
/// // roughly hourly.
/// let t = optimum_interval(
///     SimDuration::from_secs(300),
///     SimDuration::from_hours(6),
///     DalyOrder::HigherOrder,
/// );
/// assert!(t > SimDuration::from_mins(45) && t < SimDuration::from_mins(90));
/// ```
///
/// Returns at least 1 second: a zero interval would checkpoint forever.
/// When `delta >= 2·mtbf`, checkpointing cannot pay for itself within an
/// expected uptime and Daly prescribes `t_opt = M`.
pub fn optimum_interval(delta: SimDuration, mtbf: SimDuration, order: DalyOrder) -> SimDuration {
    let d = delta.secs() as f64;
    let m = mtbf.secs() as f64;
    if m <= 0.0 {
        return SimDuration::from_secs(1);
    }
    if d >= 2.0 * m {
        return SimDuration::from_secs(mtbf.secs().max(1));
    }
    let base = (2.0 * d * m).sqrt();
    let t = match order {
        DalyOrder::FirstOrder => base - d,
        DalyOrder::HigherOrder => {
            let ratio = d / (2.0 * m);
            base * (1.0 + ratio.sqrt() / 3.0 + ratio / 9.0) - d
        }
    };
    // Both estimates misbehave as δ approaches 2M (the first-order form
    // collapses to zero, which would checkpoint continuously). Clamping to
    // min(δ, M) keeps the interval monotone in the MTBF and continuous
    // with the δ ≥ 2M branch, and never touches the δ ≪ M regime the
    // formulas were derived for.
    let t = t.max(d.min(m));
    SimDuration::from_secs((t.round() as i64).max(1) as u64)
}

/// Expected useful fraction of wall-clock time when checkpointing every
/// `interval` with cost `delta` on a machine with the given `mtbf`,
/// assuming an exponential failure model. Used in tests and ablations to
/// confirm the optimum actually optimizes.
///
/// Efficiency = (interval / (interval + delta)) · P(no failure mid-segment
/// amortized), approximated by the standard expected-work-per-segment
/// formula `e^{-(interval+delta)/M}`-weighted progress.
pub fn efficiency(interval: SimDuration, delta: SimDuration, mtbf: SimDuration) -> f64 {
    let tau = interval.secs() as f64;
    let d = delta.secs() as f64;
    let m = mtbf.secs() as f64;
    if tau <= 0.0 || m <= 0.0 {
        return 0.0;
    }
    // Expected wall-clock to complete one segment of tau useful seconds on
    // an exponential-failure machine with restart cost folded into delta
    // (Daly's model): E[T] = (M + tau_rollback) (e^{(tau+d)/M} - 1) ≈
    // for ranking purposes we use the common first-principles form:

    (tau / (tau + d)) * (-(tau + d) / (2.0 * m)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn first_order_matches_youngs_formula() {
        // delta = 300 s, M = 6 h = 21600 s: sqrt(2*300*21600) = 3600.
        let t = optimum_interval(secs(300), secs(21_600), DalyOrder::FirstOrder);
        assert_eq!(t, secs(3_300));
    }

    #[test]
    fn higher_order_exceeds_first_order() {
        for (d, m) in [(300u64, 21_600u64), (900, 7_200), (60, 86_400)] {
            let lo = optimum_interval(secs(d), secs(m), DalyOrder::FirstOrder);
            let hi = optimum_interval(secs(d), secs(m), DalyOrder::HigherOrder);
            assert!(
                hi >= lo,
                "higher-order {hi} < first-order {lo} for d={d} m={m}"
            );
            // ... but by a modest correction, not a blow-up.
            assert!(hi.secs() < lo.secs() * 2);
        }
    }

    #[test]
    fn saturates_when_checkpoint_dominates() {
        // delta >= 2M: checkpoint as rarely as the expected uptime.
        let t = optimum_interval(secs(900), secs(400), DalyOrder::HigherOrder);
        assert_eq!(t, secs(400));
    }

    #[test]
    fn degenerate_inputs_stay_positive() {
        assert_eq!(
            optimum_interval(secs(300), secs(0), DalyOrder::HigherOrder),
            secs(1)
        );
        assert!(optimum_interval(secs(0), secs(3600), DalyOrder::HigherOrder) >= secs(1));
    }

    #[test]
    fn interval_shrinks_with_shorter_uptime() {
        // As expected up-time falls (more volatility / lower bid), the
        // optimal checkpoint interval must fall too — the mechanism behind
        // the Markov-Daly policy reacting to market conditions.
        let d = secs(300);
        let t_long = optimum_interval(d, secs(24 * 3600), DalyOrder::HigherOrder);
        let t_mid = optimum_interval(d, secs(6 * 3600), DalyOrder::HigherOrder);
        let t_short = optimum_interval(d, secs(3600), DalyOrder::HigherOrder);
        assert!(t_long > t_mid && t_mid > t_short);
    }

    #[test]
    fn optimum_roughly_maximizes_efficiency() {
        let d = secs(300);
        let m = secs(6 * 3600);
        let t_opt = optimum_interval(d, m, DalyOrder::FirstOrder);
        let e_opt = efficiency(t_opt, d, m);
        // Efficiency at the optimum beats clearly-off intervals.
        assert!(e_opt > efficiency(secs(t_opt.secs() / 4), d, m));
        assert!(e_opt > efficiency(secs(t_opt.secs() * 4), d, m));
    }
}
