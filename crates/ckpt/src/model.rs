//! Checkpoint/restart cost model.
//!
//! The paper assumes fixed, equal checkpoint and restart costs per
//! experiment configuration, in the 300–900 s range measured for
//! system-level checkpointing of MPI applications over cloud networks
//! (Section 5).

use redspot_trace::SimDuration;
use serde::{Deserialize, Serialize};

/// Fixed checkpoint and restart costs for one experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CkptCosts {
    /// Time to write a checkpoint (`t_c`).
    pub checkpoint: SimDuration,
    /// Time to restart from a checkpoint (`t_r`).
    pub restart: SimDuration,
}

impl CkptCosts {
    /// The paper's low-cost configuration: `t_c = t_r = 300` seconds.
    pub const LOW: CkptCosts = CkptCosts::symmetric_secs(300);

    /// The paper's high-cost configuration: `t_c = t_r = 900` seconds.
    pub const HIGH: CkptCosts = CkptCosts::symmetric_secs(900);

    /// Equal checkpoint and restart cost (the paper's simplifying
    /// assumption), in seconds.
    pub const fn symmetric_secs(secs: u64) -> CkptCosts {
        CkptCosts {
            checkpoint: SimDuration::from_secs(secs),
            restart: SimDuration::from_secs(secs),
        }
    }

    /// Construct with distinct costs.
    pub const fn new(checkpoint: SimDuration, restart: SimDuration) -> CkptCosts {
        CkptCosts {
            checkpoint,
            restart,
        }
    }

    /// Combined migration overhead `t_c + t_r` — the reserve the deadline
    /// guard must keep before switching to on-demand (Algorithm 1 line 11).
    pub fn migration(self) -> SimDuration {
        self.checkpoint + self.restart
    }
}

impl Default for CkptCosts {
    fn default() -> CkptCosts {
        CkptCosts::LOW
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(CkptCosts::LOW.checkpoint.secs(), 300);
        assert_eq!(CkptCosts::LOW.restart.secs(), 300);
        assert_eq!(CkptCosts::HIGH.checkpoint.secs(), 900);
        assert_eq!(CkptCosts::default(), CkptCosts::LOW);
    }

    #[test]
    fn migration_is_sum() {
        assert_eq!(CkptCosts::LOW.migration().secs(), 600);
        let asym = CkptCosts::new(SimDuration::from_secs(100), SimDuration::from_secs(40));
        assert_eq!(asym.migration().secs(), 140);
    }
}
