//! Seeded, deterministic fault injection.
//!
//! The paper's deadline guarantee (Algorithm 1) is an *invariant*, not a
//! best-effort property: it must hold no matter how hostile the spot market
//! or the infrastructure gets. The engine's chaos harness stresses it with
//! four fault classes the real EC2 deployment would face:
//!
//! 1. **Checkpoint write failures** — the checkpoint completes its `t_c`
//!    window but never commits (lost write on the I/O path). Progress stays
//!    at the previous generation.
//! 2. **Corrupted restores** — a restarting replica finds the newest
//!    checkpoint generation unreadable and falls back to an older one
//!    (possibly all the way to a from-scratch restart).
//! 3. **Boot failures** — a booting instance dies at `ready_at`
//!    (`InsufficientInstanceCapacity` and friends); the engine retries with
//!    bounded exponential backoff.
//! 4. **Zone blackouts** — a whole zone goes dark for a fixed window,
//!    force-terminating its instance and rejecting requests, independent of
//!    the spot price.
//!
//! All draws come from a dedicated fault RNG seeded from the experiment
//! seed, kept separate from the queuing-delay RNG so that
//! [`FaultPlan::none`] reproduces the fault-free engine bit for bit: with
//! no faults active the fault RNG is never advanced.

use crate::backoff::Backoff;
use redspot_market::OutageSchedule;
use redspot_trace::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Probabilities and shapes for the injected fault classes. The default
/// ([`FaultPlan::none`]) disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that a completed checkpoint fails to commit.
    #[serde(default)]
    pub p_ckpt_write_fail: f64,
    /// Probability that a restore finds the newest generation corrupt
    /// (applied per generation: the fallback target is checked again, so
    /// a restore can fall through several generations).
    #[serde(default)]
    pub p_restore_corrupt: f64,
    /// Probability that a booting instance fails at its ready instant.
    #[serde(default)]
    pub p_boot_fail: f64,
    /// Backoff before re-requesting after the first boot failure; doubles
    /// per consecutive failure up to [`FaultPlan::boot_backoff_cap`].
    #[serde(default = "default_boot_backoff")]
    pub boot_backoff: SimDuration,
    /// Upper bound on the boot-retry backoff.
    #[serde(default = "default_boot_backoff_cap")]
    pub boot_backoff_cap: SimDuration,
    /// Per-hour probability that a zone blackout begins.
    #[serde(default)]
    pub p_blackout_per_hour: f64,
    /// Length of each blackout window.
    #[serde(default = "default_blackout_duration")]
    pub blackout_duration: SimDuration,
}

fn default_boot_backoff() -> SimDuration {
    SimDuration::from_secs(120)
}

fn default_boot_backoff_cap() -> SimDuration {
    SimDuration::from_secs(1920)
}

fn default_blackout_duration() -> SimDuration {
    SimDuration::from_hours(2)
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults: the engine behaves exactly as without the fault layer.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            p_ckpt_write_fail: 0.0,
            p_restore_corrupt: 0.0,
            p_boot_fail: 0.0,
            boot_backoff: SimDuration::from_secs(120),
            boot_backoff_cap: SimDuration::from_secs(1920),
            p_blackout_per_hour: 0.0,
            blackout_duration: SimDuration::from_hours(2),
        }
    }

    /// Whether every fault class is disabled.
    pub fn is_none(&self) -> bool {
        self.p_ckpt_write_fail == 0.0
            && self.p_restore_corrupt == 0.0
            && self.p_boot_fail == 0.0
            && self.p_blackout_per_hour == 0.0
    }

    /// A plan whose fault rates all scale with one `intensity` knob in
    /// `[0, 1]` — the axis the chaos experiment sweeps. Intensity 1 is
    /// deliberately brutal: a third of checkpoints fail to commit, a
    /// quarter of restores hit corruption, a third of boots fail, and each
    /// zone is dark roughly five hours a day.
    ///
    /// # Panics
    /// Panics if `intensity` is not in `[0, 1]`.
    pub fn with_intensity(intensity: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "fault intensity must be in [0, 1], got {intensity}"
        );
        FaultPlan {
            p_ckpt_write_fail: 0.35 * intensity,
            p_restore_corrupt: 0.25 * intensity,
            p_boot_fail: 0.35 * intensity,
            p_blackout_per_hour: 0.10 * intensity,
            ..FaultPlan::none()
        }
    }

    /// Validate the plan's parameters.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("p_ckpt_write_fail", self.p_ckpt_write_fail),
            ("p_restore_corrupt", self.p_restore_corrupt),
            ("p_boot_fail", self.p_boot_fail),
            ("p_blackout_per_hour", self.p_blackout_per_hour),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if self.p_restore_corrupt >= 1.0 {
            // p = 1 would make every restore fall through the entire
            // generation history forever, so restores never make progress.
            return Err(format!(
                "p_restore_corrupt must be < 1, got {}",
                self.p_restore_corrupt
            ));
        }
        if self.p_boot_fail >= 1.0 {
            return Err(format!("p_boot_fail must be < 1, got {}", self.p_boot_fail));
        }
        if self.p_boot_fail > 0.0 && self.boot_backoff == SimDuration::ZERO {
            return Err("boot_backoff must be positive when boot failures are enabled".into());
        }
        if self.boot_backoff_cap < self.boot_backoff {
            return Err(format!(
                "boot_backoff_cap ({}) below boot_backoff ({})",
                self.boot_backoff_cap, self.boot_backoff
            ));
        }
        if self.p_blackout_per_hour > 0.0 && self.blackout_duration == SimDuration::ZERO {
            return Err("blackout_duration must be positive when blackouts are enabled".into());
        }
        Ok(())
    }

    /// The boot-retry backoff after `failures` consecutive boot failures
    /// (`failures >= 1`): exponential, capped.
    pub fn backoff_after(&self, failures: u32) -> SimDuration {
        self.boot_backoff().delay(failures)
    }

    /// The boot-retry backoff schedule as a [`Backoff`] value.
    pub fn boot_backoff(&self) -> Backoff {
        Backoff::doubling(self.boot_backoff, self.boot_backoff_cap)
    }

    /// The blackout schedule for one zone slot: seeded from the experiment
    /// seed and the slot index so zones fail independently but every rerun
    /// sees the same schedule.
    pub fn outage_schedule(
        &self,
        cfg_seed: u64,
        zone_slot: usize,
        from: SimTime,
        horizon: SimDuration,
    ) -> OutageSchedule {
        if self.p_blackout_per_hour <= 0.0 {
            return OutageSchedule::none();
        }
        let seed = mix(cfg_seed ^ 0xB1AC_0175_0000_0000, zone_slot as u64);
        OutageSchedule::generate(
            seed,
            from,
            horizon,
            self.p_blackout_per_hour,
            self.blackout_duration,
        )
    }

    /// The seed for the engine's dedicated fault RNG.
    pub fn rng_seed(cfg_seed: u64) -> u64 {
        mix(cfg_seed, 0xFA17_5EED_ABCD_EF01)
    }
}

/// SplitMix64-style mix of two words, for decorrelating derived seeds.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(p.validate().is_ok());
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn intensity_scales_rates() {
        let zero = FaultPlan::with_intensity(0.0);
        assert!(zero.is_none());
        let full = FaultPlan::with_intensity(1.0);
        assert!(!full.is_none());
        assert!(full.validate().is_ok());
        let half = FaultPlan::with_intensity(0.5);
        assert!((half.p_boot_fail - full.p_boot_fail / 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = FaultPlan::none();
        p.p_ckpt_write_fail = 1.5;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.p_restore_corrupt = 1.0;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.p_boot_fail = 0.2;
        p.boot_backoff = SimDuration::ZERO;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.boot_backoff_cap = SimDuration::from_secs(1);
        assert!(p.validate().is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = FaultPlan::none();
        assert_eq!(p.backoff_after(1), SimDuration::from_secs(120));
        assert_eq!(p.backoff_after(2), SimDuration::from_secs(240));
        assert_eq!(p.backoff_after(3), SimDuration::from_secs(480));
        assert_eq!(p.backoff_after(10), SimDuration::from_secs(1920));
        assert_eq!(p.backoff_after(60), SimDuration::from_secs(1920));
    }

    #[test]
    fn outage_schedules_differ_per_zone_but_not_per_rerun() {
        let p = FaultPlan::with_intensity(1.0);
        let from = SimTime::from_hours(10);
        let horizon = SimDuration::from_hours(400);
        let a0 = p.outage_schedule(7, 0, from, horizon);
        let a0_again = p.outage_schedule(7, 0, from, horizon);
        let a1 = p.outage_schedule(7, 1, from, horizon);
        assert_eq!(a0, a0_again);
        assert_ne!(a0, a1, "zones should black out independently");
        assert!(!a0.windows().is_empty());
    }

    #[test]
    fn none_generates_no_outages() {
        let p = FaultPlan::none();
        let s = p.outage_schedule(7, 0, SimTime::ZERO, SimDuration::from_hours(1000));
        assert!(s.windows().is_empty());
    }

    #[test]
    fn serde_round_trip_and_defaults() {
        let p = FaultPlan::with_intensity(0.4);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        // An empty object deserializes to the no-fault plan.
        let empty: FaultPlan = serde_json::from_str("{}").unwrap();
        assert!(empty.is_none());
        assert_eq!(empty, FaultPlan::none());
    }
}
