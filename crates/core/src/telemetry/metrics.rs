//! Metrics aggregation: fold the event stream into counters and
//! histograms without retaining the events.
//!
//! [`MetricsRecorder`] is the constant-memory answer to "what happened
//! in this run?": it counts every fault-tolerance action (checkpoints,
//! restarts, out-of-bid terminations), every control-plane symptom
//! (request failures, breaker trips, stale prices, terminate lag),
//! tracks per-state dwell time for each zone, and attributes spot spend
//! from billing events. [`RunMetrics`] values merge, so a sweep can sum
//! its windows into one table row.

use super::Recorder;
use crate::run::{Event, TerminationCause};
use redspot_trace::{Price, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Number of log2 buckets: `secs == 0` lands in bucket 0, otherwise
/// bucket `1 + floor(log2(secs))`; 40 buckets cover ~17 000 years.
const BUCKETS: usize = 40;

/// A log2-bucketed histogram of durations in seconds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket `i` counts observations with `floor(log2(secs)) == i - 1`
    /// (bucket 0 counts zero-length observations).
    counts: Vec<u64>,
    /// Total observations.
    count: u64,
    /// Sum of all observed seconds (for the mean).
    sum_secs: u64,
    /// Largest observation, in seconds.
    max_secs: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_secs: 0,
            max_secs: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one duration.
    pub fn observe(&mut self, d: SimDuration) {
        let secs = d.secs();
        let bucket = if secs == 0 {
            0
        } else {
            (64 - secs.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum_secs = self.sum_secs.saturating_add(secs);
        self.max_secs = self.max_secs.max(secs);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_secs as f64 / self.count as f64
        }
    }

    /// Largest observation in seconds.
    pub fn max_secs(&self) -> u64 {
        self.max_secs
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_secs = self.sum_secs.saturating_add(other.sum_secs);
        self.max_secs = self.max_secs.max(other.max_secs);
    }
}

/// Wall-clock seconds spent by zones in each lifecycle state, summed
/// over all zones. Derived from event transitions, so it only covers
/// the span between a run's first and last event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ZoneDwell {
    /// No instance and no outstanding request.
    pub down_secs: u64,
    /// Request submitted, instance not yet running.
    pub booting_secs: u64,
    /// Replica executing.
    pub up_secs: u64,
    /// Affordable but deliberately idle (redundancy policy).
    pub waiting_secs: u64,
}

impl ZoneDwell {
    /// Fold another dwell tally into this one.
    pub fn merge(&mut self, other: &ZoneDwell) {
        self.down_secs += other.down_secs;
        self.booting_secs += other.booting_secs;
        self.up_secs += other.up_secs;
        self.waiting_secs += other.waiting_secs;
    }
}

/// Aggregated per-run telemetry, the output of [`Recorder::finish`].
///
/// All fields are additive: [`merge`](RunMetrics::merge) sums two runs
/// (or tees), which is how sweeps aggregate windows.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Runs folded into this value (0 for sinks that do not aggregate).
    pub runs: u64,
    /// Events retained or streamed by the sink (VecRecorder log length,
    /// JSONL lines written; 0 for sinks that drop events).
    pub events_recorded: u64,
    /// Events observed by the metrics fold.
    pub events_seen: u64,
    /// Spot requests submitted.
    pub spot_requests: u64,
    /// Spot requests that failed at the control plane or were refused.
    pub spot_request_failures: u64,
    /// Replica (re)starts.
    pub restarts: u64,
    /// Zones parked in the waiting state.
    pub waits: u64,
    /// Out-of-bid (EC2-initiated) terminations.
    pub out_of_bid_terminations: u64,
    /// Scheduler-initiated terminations.
    pub voluntary_terminations: u64,
    /// Checkpoints started.
    pub checkpoints_started: u64,
    /// Checkpoints committed.
    pub checkpoints_committed: u64,
    /// Checkpoints aborted (writer terminated mid-write).
    pub checkpoints_aborted: u64,
    /// Checkpoint commits lost to injected write failures.
    pub checkpoint_write_failures: u64,
    /// Restores that fell back past a corrupt generation.
    pub restore_fallbacks: u64,
    /// Injected boot failures.
    pub boot_failures: u64,
    /// Zone blackout windows entered.
    pub blackouts: u64,
    /// Circuit-breaker trips (zone quarantined).
    pub breaker_trips: u64,
    /// Breaker half-open probes that closed the breaker.
    pub breaker_closes: u64,
    /// Price reads served stale.
    pub stale_price_reads: u64,
    /// Billed lag from terminate retries, in seconds.
    pub terminate_lag_secs: u64,
    /// Delayed on-demand migrations (control-plane retries on the path).
    pub od_delays: u64,
    /// Deadline-guard migrations to on-demand.
    pub migrations: u64,
    /// Zones dropped from the redundant set after persistent capacity
    /// denials (degradation ladder rung 1).
    pub zones_shed: u64,
    /// Admission-control start deferrals under capacity contention
    /// (degradation ladder rung 2).
    pub start_deferrals: u64,
    /// Proactive spills to on-demand after the last zone stayed drained
    /// (degradation ladder rung 3).
    pub capacity_spills: u64,
    /// Adaptive controller reconfigurations.
    pub adaptive_switches: u64,
    /// Runtime deadline changes.
    pub deadline_changes: u64,
    /// Full billing hours charged at a boundary.
    pub hours_charged: u64,
    /// Provider interruption notices issued (modern era only).
    pub interruption_notices: u64,
    /// Runs that emitted `Completed`.
    pub completed: u64,
    /// Spot spend settled at instance stops (`Terminated.charged`) —
    /// cross-checks `RunResult.spot_cost` on fault-free runs. (Blackout
    /// and boot-failure settlements have no `Terminated` event, so the
    /// two can diverge under injected faults.)
    pub spot_charged: Price,
    /// Per-state dwell time summed over zones.
    pub dwell: ZoneDwell,
    /// Time between consecutive checkpoint commits.
    pub commit_interval: Histogram,
    /// Lengths of uninterrupted replica executions.
    pub up_run: Histogram,
    /// Trace-sink write failures (JSONL sink; the run continues).
    pub trace_write_errors: u64,
    /// Adaptive decision points answered from the sweep-shared
    /// decision-table cache (zero without a `MarketCtx` attached).
    pub decision_cache_hits: u64,
    /// Adaptive decision points that computed a fresh decision table.
    pub decision_cache_misses: u64,
}

impl RunMetrics {
    /// Fold `other` into `self`, field-wise.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.runs += other.runs;
        self.events_recorded += other.events_recorded;
        self.events_seen += other.events_seen;
        self.spot_requests += other.spot_requests;
        self.spot_request_failures += other.spot_request_failures;
        self.restarts += other.restarts;
        self.waits += other.waits;
        self.out_of_bid_terminations += other.out_of_bid_terminations;
        self.voluntary_terminations += other.voluntary_terminations;
        self.checkpoints_started += other.checkpoints_started;
        self.checkpoints_committed += other.checkpoints_committed;
        self.checkpoints_aborted += other.checkpoints_aborted;
        self.checkpoint_write_failures += other.checkpoint_write_failures;
        self.restore_fallbacks += other.restore_fallbacks;
        self.boot_failures += other.boot_failures;
        self.blackouts += other.blackouts;
        self.breaker_trips += other.breaker_trips;
        self.breaker_closes += other.breaker_closes;
        self.stale_price_reads += other.stale_price_reads;
        self.terminate_lag_secs += other.terminate_lag_secs;
        self.od_delays += other.od_delays;
        self.migrations += other.migrations;
        self.zones_shed += other.zones_shed;
        self.start_deferrals += other.start_deferrals;
        self.capacity_spills += other.capacity_spills;
        self.adaptive_switches += other.adaptive_switches;
        self.deadline_changes += other.deadline_changes;
        self.hours_charged += other.hours_charged;
        self.interruption_notices += other.interruption_notices;
        self.completed += other.completed;
        self.spot_charged += other.spot_charged;
        self.dwell.merge(&other.dwell);
        self.commit_interval.merge(&other.commit_interval);
        self.up_run.merge(&other.up_run);
        self.trace_write_errors += other.trace_write_errors;
        self.decision_cache_hits += other.decision_cache_hits;
        self.decision_cache_misses += other.decision_cache_misses;
    }
}

/// Zone lifecycle states tracked for dwell accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ZoneState {
    Down,
    Booting,
    Up,
    Waiting,
}

/// Per-zone dwell tracking: current state and when it was entered.
#[derive(Debug, Clone, Copy)]
struct ZoneTrack {
    state: ZoneState,
    since: SimTime,
}

/// Folds the event stream into [`RunMetrics`] in constant memory.
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    m: RunMetrics,
    zones: Vec<Option<ZoneTrack>>,
    last_commit: Option<SimTime>,
    last_event: SimTime,
}

impl MetricsRecorder {
    /// A fresh, all-zero recorder.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder::default()
    }

    /// Transition `zone` to `state` at `now`, crediting the time spent
    /// in the previous state.
    fn transition(&mut self, zone: redspot_trace::ZoneId, now: SimTime, state: ZoneState) {
        let idx = zone.0;
        if self.zones.len() <= idx {
            self.zones.resize(idx + 1, None);
        }
        let prev = self.zones[idx].replace(ZoneTrack { state, since: now });
        if let Some(t) = prev {
            self.credit(t, now);
            if t.state == ZoneState::Up && state != ZoneState::Up {
                self.m.up_run.observe(now.since(t.since));
            }
        }
    }

    /// Add `since → now` to the dwell bucket for a zone's old state.
    fn credit(&mut self, t: ZoneTrack, now: SimTime) {
        let secs = now.since(t.since).secs();
        match t.state {
            ZoneState::Down => self.m.dwell.down_secs += secs,
            ZoneState::Booting => self.m.dwell.booting_secs += secs,
            ZoneState::Up => self.m.dwell.up_secs += secs,
            ZoneState::Waiting => self.m.dwell.waiting_secs += secs,
        }
    }
}

impl Recorder for MetricsRecorder {
    fn record(&mut self, event: Event) {
        self.m.events_seen += 1;
        self.last_event = self.last_event.max(event.at());
        match &event {
            Event::Requested { at, zone, .. } => {
                self.m.spot_requests += 1;
                self.transition(*zone, *at, ZoneState::Booting);
            }
            Event::Started { at, zone, .. } => {
                self.m.restarts += 1;
                self.transition(*zone, *at, ZoneState::Up);
            }
            Event::Waiting { at, zone } => {
                self.m.waits += 1;
                self.transition(*zone, *at, ZoneState::Waiting);
            }
            Event::Terminated {
                at,
                zone,
                cause,
                charged,
            } => {
                match cause {
                    TerminationCause::OutOfBid => self.m.out_of_bid_terminations += 1,
                    TerminationCause::Voluntary => self.m.voluntary_terminations += 1,
                }
                self.m.spot_charged += *charged;
                self.transition(*zone, *at, ZoneState::Down);
            }
            Event::CheckpointStarted { .. } => self.m.checkpoints_started += 1,
            Event::CheckpointCommitted { at, .. } => {
                self.m.checkpoints_committed += 1;
                if let Some(prev) = self.last_commit.replace(*at) {
                    self.m.commit_interval.observe(at.since(prev));
                }
            }
            Event::CheckpointAborted { .. } => self.m.checkpoints_aborted += 1,
            Event::CheckpointWriteFailed { .. } => self.m.checkpoint_write_failures += 1,
            Event::RestoreFailed { .. } => self.m.restore_fallbacks += 1,
            Event::BootFailed { at, zone, .. } => {
                self.m.boot_failures += 1;
                self.transition(*zone, *at, ZoneState::Down);
            }
            Event::ZoneBlackout { at, zone, .. } => {
                self.m.blackouts += 1;
                self.transition(*zone, *at, ZoneState::Down);
            }
            Event::SpotRequestFailed { at, zone, .. } => {
                self.m.spot_request_failures += 1;
                self.transition(*zone, *at, ZoneState::Down);
            }
            Event::TerminateLagged { lag, .. } => {
                self.m.terminate_lag_secs += lag.secs();
            }
            Event::StalePriceUsed { .. } => self.m.stale_price_reads += 1,
            Event::ZoneQuarantined { .. } => self.m.breaker_trips += 1,
            Event::ZoneBreakerClosed { .. } => self.m.breaker_closes += 1,
            Event::OnDemandDelayed { .. } => self.m.od_delays += 1,
            Event::SwitchedToOnDemand { .. } => self.m.migrations += 1,
            Event::ZoneShed { .. } => self.m.zones_shed += 1,
            Event::StartDeferred { .. } => self.m.start_deferrals += 1,
            Event::CapacitySpill { .. } => self.m.capacity_spills += 1,
            Event::AdaptiveSwitch { .. } => self.m.adaptive_switches += 1,
            Event::DeadlineChanged { .. } => self.m.deadline_changes += 1,
            // `HourCharged` is informational: the spend it describes is
            // settled (accrued) into `Terminated.charged` when the
            // instance stops, so counting it here would double-bill.
            Event::HourCharged { .. } => self.m.hours_charged += 1,
            Event::InterruptionNotice { .. } => self.m.interruption_notices += 1,
            Event::Completed { .. } => self.m.completed += 1,
        }
    }

    fn finish(&mut self) -> RunMetrics {
        // Close open dwell intervals at the last event seen, then reset
        // so the recorder can be reused for another run.
        let end = self.last_event;
        for t in std::mem::take(&mut self.zones).into_iter().flatten() {
            self.credit(t, end);
            if t.state == ZoneState::Up {
                self.m.up_run.observe(end.since(t.since));
            }
        }
        self.last_commit = None;
        self.last_event = SimTime::ZERO;
        let mut out = std::mem::take(&mut self.m);
        out.runs = 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redspot_trace::ZoneId;

    #[test]
    fn histogram_buckets_and_merge() {
        let mut h = Histogram::new();
        h.observe(SimDuration::ZERO);
        h.observe(SimDuration::from_secs(1));
        h.observe(SimDuration::from_secs(300));
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_secs(), 300);
        assert!((h.mean_secs() - 301.0 / 3.0).abs() < 1e-9);

        let mut other = Histogram::new();
        other.observe(SimDuration::from_hours(2));
        h.merge(&other);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_secs(), 7200);
    }

    #[test]
    fn dwell_time_follows_transitions() {
        let mut r = MetricsRecorder::new();
        let z = ZoneId(0);
        r.record(Event::Requested {
            at: SimTime::from_secs(0),
            zone: z,
            bid: Price::from_dollars(0.81),
        });
        r.record(Event::Started {
            at: SimTime::from_secs(120),
            zone: z,
            from: SimDuration::ZERO,
        });
        r.record(Event::Terminated {
            at: SimTime::from_secs(720),
            zone: z,
            cause: TerminationCause::OutOfBid,
            charged: Price::from_dollars(0.30),
        });
        r.record(Event::Completed {
            at: SimTime::from_secs(900),
        });
        let m = r.finish();
        assert_eq!(m.dwell.booting_secs, 120);
        assert_eq!(m.dwell.up_secs, 600);
        assert_eq!(m.dwell.down_secs, 180);
        assert_eq!(m.up_run.count(), 1);
        assert_eq!(m.up_run.max_secs(), 600);
        assert_eq!(m.out_of_bid_terminations, 1);
        assert_eq!(m.spot_charged, Price::from_dollars(0.30));
        assert_eq!(m.completed, 1);
        assert_eq!(m.runs, 1);
    }

    #[test]
    fn merge_is_fieldwise_additive() {
        let mut a = RunMetrics {
            runs: 1,
            restarts: 2,
            spot_charged: Price::from_dollars(1.0),
            ..RunMetrics::default()
        };
        let b = RunMetrics {
            runs: 1,
            restarts: 3,
            terminate_lag_secs: 7,
            spot_charged: Price::from_dollars(0.5),
            ..RunMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.restarts, 5);
        assert_eq!(a.terminate_lag_secs, 7);
        assert_eq!(a.spot_charged, Price::from_dollars(1.5));
    }

    #[test]
    fn commit_interval_measures_gaps() {
        let mut r = MetricsRecorder::new();
        for t in [100u64, 400, 1000] {
            r.record(Event::CheckpointCommitted {
                at: SimTime::from_secs(t),
                position: SimDuration::from_secs(t / 2),
            });
        }
        let m = r.finish();
        assert_eq!(m.checkpoints_committed, 3);
        assert_eq!(m.commit_interval.count(), 2);
        assert!((m.commit_interval.mean_secs() - 450.0).abs() < 1e-9);
    }
}
