//! Streaming JSONL trace sink.
//!
//! One event per line, serialized with the externally-tagged serde
//! representation of [`Event`] — the same shape `RunResult::events`
//! serializes to inside a JSON array, minus the array. A trace file is
//! therefore greppable, tail-able, and parseable line by line:
//!
//! ```text
//! {"Requested":{"at":172800,"zone":0,"bid":810}}
//! {"Started":{"at":172920,"zone":0,"from":0}}
//! {"CheckpointCommitted":{"at":176400,"position":3480}}
//! ```
//!
//! Write errors never interrupt the simulation: they are counted and
//! surfaced through [`RunMetrics::trace_write_errors`], mirroring how
//! production telemetry must not take down the workload it observes.

use super::{Recorder, RunMetrics};
use crate::run::Event;
use std::io::Write;

/// Streams each event as one line of JSON to an [`io::Write`](std::io::Write).
///
/// Wrap files in a [`BufWriter`](std::io::BufWriter) — the recorder
/// issues one `write_all` per event. `finish` flushes.
#[derive(Debug)]
pub struct JsonlRecorder<W: Write> {
    out: W,
    lines: u64,
    write_errors: u64,
}

impl<W: Write> JsonlRecorder<W> {
    /// A recorder streaming to `out`.
    pub fn new(out: W) -> JsonlRecorder<W> {
        JsonlRecorder {
            out,
            lines: 0,
            write_errors: 0,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Serialization or I/O failures so far (the run continues past them).
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Flush and recover the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: Event) {
        match serde_json::to_string(&event) {
            Ok(mut line) => {
                line.push('\n');
                match self.out.write_all(line.as_bytes()) {
                    Ok(()) => self.lines += 1,
                    Err(_) => self.write_errors += 1,
                }
            }
            Err(_) => self.write_errors += 1,
        }
    }

    fn finish(&mut self) -> RunMetrics {
        if self.out.flush().is_err() {
            self.write_errors += 1;
        }
        RunMetrics {
            events_recorded: self.lines,
            trace_write_errors: self.write_errors,
            ..RunMetrics::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redspot_trace::{Price, SimTime, ZoneId};

    #[test]
    fn lines_round_trip_to_events() {
        let events = vec![
            Event::Requested {
                at: SimTime::from_secs(10),
                zone: ZoneId(1),
                bid: Price::from_dollars(0.81),
            },
            Event::AdaptiveSwitch {
                at: SimTime::from_secs(20),
                to: "bid $0.85 N=2 Periodic".to_string(),
            },
            Event::Completed {
                at: SimTime::from_secs(30),
            },
        ];
        let mut rec = JsonlRecorder::new(Vec::new());
        for e in &events {
            rec.record(e.clone());
        }
        assert_eq!(rec.lines(), 3);
        assert_eq!(rec.write_errors(), 0);
        let buf = rec.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let parsed: Vec<Event> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("line parses as Event"))
            .collect();
        assert_eq!(parsed, events);
    }

    /// A writer that fails after `ok` successful writes.
    struct Flaky {
        ok: usize,
    }

    impl Write for Flaky {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok == 0 {
                return Err(std::io::Error::other("full"));
            }
            self.ok -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_are_counted_not_fatal() {
        let mut rec = JsonlRecorder::new(Flaky { ok: 1 });
        let e = Event::Completed {
            at: SimTime::from_secs(1),
        };
        rec.record(e.clone());
        rec.record(e);
        assert_eq!(rec.lines(), 1);
        let m = rec.finish();
        assert_eq!(m.trace_write_errors, 1);
        assert_eq!(m.events_recorded, 1);
    }
}
