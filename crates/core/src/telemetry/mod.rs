//! The observability plane: pluggable [`Recorder`] sinks for engine
//! telemetry.
//!
//! Every event the engine emits flows through exactly one `Recorder`.
//! The sink decides what observation costs:
//!
//! * [`NullRecorder`] — drops everything. `record` is an empty inline
//!   body, so with static dispatch the compiler elides both the call and
//!   the construction of the [`Event`] argument; a `NullRecorder` run is
//!   indistinguishable from not instrumenting at all. This replaces the
//!   old `record_events = false` config flag everywhere (forecast
//!   sub-simulations, sweeps, benches).
//! * [`VecRecorder`] — accumulates the event log in memory and hands it
//!   to [`RunResult::events`](crate::RunResult), pinning the historical
//!   `record_events = true` behavior bit for bit (events are moved, never
//!   cloned).
//! * [`JsonlRecorder`] — streams each event as one line of JSON to any
//!   [`std::io::Write`], so arbitrarily long runs trace in constant
//!   memory. See [`jsonl`] for the schema.
//! * [`MetricsRecorder`] — folds events into [`RunMetrics`] counters and
//!   histograms (checkpoints, restarts, breaker trips, per-state dwell,
//!   cost by source) without retaining the events themselves.
//!
//! Sinks compose: `(A, B)` is a recorder that feeds both, and
//! `Box<dyn Recorder>` defers the choice to runtime (the CLI uses both).
//! The engine is generic over its recorder (`Engine<R: Recorder>`),
//! defaulting to `VecRecorder`, so the common paths stay statically
//! dispatched.

pub mod journal;
mod jsonl;
mod metrics;

pub use jsonl::JsonlRecorder;
pub use metrics::{Histogram, MetricsRecorder, RunMetrics, ZoneDwell};

use crate::run::Event;

/// A sink for engine telemetry.
///
/// The engine calls [`record`](Recorder::record) once per emitted event,
/// in simulation order, and [`finish`](Recorder::finish) exactly once
/// when the run completes. The trait is dyn-safe; `Box<dyn Recorder>`
/// and tuple composition are provided.
pub trait Recorder {
    /// Observe one event. Events arrive by value so that accumulating
    /// sinks never clone; dropping the argument is free for sinks that
    /// ignore it.
    fn record(&mut self, event: Event);

    /// Drain the retained event log, if this sink keeps one. The engine
    /// calls this when assembling [`RunResult::events`](crate::RunResult);
    /// non-retaining sinks return an empty (non-allocating) `Vec`.
    fn take_events(&mut self) -> Vec<Event> {
        Vec::new()
    }

    /// Finalize the run and surface whatever metrics this sink gathered.
    /// Sinks that do not aggregate return the all-zero default.
    fn finish(&mut self) -> RunMetrics {
        RunMetrics::default()
    }
}

/// Discards every event; observation costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// Retains the full event log in memory, exactly as the engine's old
/// `events: Vec<Event>` field did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecRecorder {
    events: Vec<Event>,
}

impl VecRecorder {
    /// An empty log.
    pub fn new() -> VecRecorder {
        VecRecorder::default()
    }

    /// Read access to the events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl Recorder for VecRecorder {
    #[inline]
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }

    fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    fn finish(&mut self) -> RunMetrics {
        RunMetrics {
            events_recorded: self.events.len() as u64,
            ..RunMetrics::default()
        }
    }
}

impl<R: Recorder + ?Sized> Recorder for Box<R> {
    #[inline]
    fn record(&mut self, event: Event) {
        (**self).record(event);
    }

    fn take_events(&mut self) -> Vec<Event> {
        (**self).take_events()
    }

    fn finish(&mut self) -> RunMetrics {
        (**self).finish()
    }
}

/// Tee: feed two sinks from one event stream. `finish` merges both
/// sides' metrics; `take_events` drains whichever side retains a log
/// (the left side wins if both do).
impl<A: Recorder, B: Recorder> Recorder for (A, B) {
    #[inline]
    fn record(&mut self, event: Event) {
        self.0.record(event.clone());
        self.1.record(event);
    }

    fn take_events(&mut self) -> Vec<Event> {
        let left = self.0.take_events();
        let right = self.1.take_events();
        if left.is_empty() {
            right
        } else {
            left
        }
    }

    fn finish(&mut self) -> RunMetrics {
        let mut m = self.0.finish();
        m.merge(&self.1.finish());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redspot_trace::{Price, SimTime, ZoneId};

    fn ev(secs: u64) -> Event {
        Event::Requested {
            at: SimTime::from_secs(secs),
            zone: ZoneId(0),
            bid: Price::from_dollars(0.81),
        }
    }

    #[test]
    fn null_recorder_retains_nothing() {
        let mut r = NullRecorder;
        r.record(ev(1));
        let drained = r.take_events();
        assert!(drained.is_empty());
        assert_eq!(drained.capacity(), 0, "null sink must not allocate");
        assert_eq!(r.finish(), RunMetrics::default());
    }

    #[test]
    fn vec_recorder_retains_in_order_and_drains() {
        let mut r = VecRecorder::new();
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.finish().events_recorded, 2);
        let drained = r.take_events();
        assert_eq!(drained, vec![ev(1), ev(2)]);
        assert!(r.take_events().is_empty(), "drain empties the log");
    }

    #[test]
    fn boxed_dyn_recorder_dispatches() {
        let mut r: Box<dyn Recorder> = Box::new(VecRecorder::new());
        r.record(ev(3));
        assert_eq!(r.take_events(), vec![ev(3)]);
    }

    #[test]
    fn tuple_recorder_feeds_both_sides() {
        let mut r = (VecRecorder::new(), MetricsRecorder::new());
        r.record(ev(4));
        r.record(Event::Completed {
            at: SimTime::from_secs(9),
        });
        let m = r.finish();
        assert_eq!(m.spot_requests, 1);
        assert_eq!(m.completed, 1);
        assert_eq!(r.take_events().len(), 2);
    }
}
