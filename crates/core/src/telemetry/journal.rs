//! Checksummed line codec for crash-safe journals.
//!
//! A journal is a line-oriented append-only file in the spirit of the
//! [`JsonlRecorder`](super::JsonlRecorder) stream, hardened for
//! write-ahead use: every line carries a checksum of its payload so a
//! reader can tell a record that was *durably appended* from one that was
//! torn mid-write by a crash. The framing is deliberately trivial —
//!
//! ```text
//! <16 hex digits of FNV-1a 64 over the payload><space><payload>\n
//! ```
//!
//! — so a journal stays greppable (`cut -d' ' -f2-` recovers the JSON)
//! and a torn tail is detectable without any out-of-band length prefix:
//! the final line either unframes cleanly or it does not.
//!
//! The codec is pure (no I/O); file handling, fsync batching, and resume
//! policy live with the journal owners (`redspot-exp`'s shard plane).

use std::fmt;

/// Width of the checksum prefix: 16 hex digits encoding an FNV-1a 64.
pub const CHECKSUM_HEX_LEN: usize = 16;

/// FNV-1a 64-bit hash — the workspace's standard content fingerprint
/// (the batch plane's `mix_seed` uses the same constants). Stable across
/// platforms, no dependencies, good enough to detect torn writes and
/// bit rot; journals are trusted inputs, not adversarial ones.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Why a journal line failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line is shorter than a checksum prefix or lacks the separator —
    /// the signature of a write cut off mid-record.
    Torn,
    /// The checksum prefix is present but is not 16 hex digits.
    BadPrefix,
    /// The payload does not hash to the recorded checksum (torn payload
    /// or bit rot).
    ChecksumMismatch {
        /// Checksum the line claims.
        expected: u64,
        /// Checksum of the payload actually present.
        actual: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Torn => write!(f, "line too short for a checksum frame (torn write)"),
            FrameError::BadPrefix => write!(f, "checksum prefix is not 16 hex digits"),
            FrameError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: line claims {expected:016x}, payload hashes to {actual:016x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Frame one payload as a checksummed journal line (with trailing
/// newline). The payload must not contain `\n`; compact JSON never does.
pub fn frame(payload: &str) -> String {
    debug_assert!(
        !payload.contains('\n'),
        "journal payloads must be single-line"
    );
    format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()))
}

/// Decode one journal line (without its trailing newline) back into its
/// payload, verifying the checksum.
pub fn unframe(line: &str) -> Result<&str, FrameError> {
    if line.len() < CHECKSUM_HEX_LEN + 1 {
        return Err(FrameError::Torn);
    }
    let (prefix, rest) = line.split_at(CHECKSUM_HEX_LEN);
    let Some(payload) = rest.strip_prefix(' ') else {
        return Err(FrameError::Torn);
    };
    let expected = u64::from_str_radix(prefix, 16).map_err(|_| FrameError::BadPrefix)?;
    let actual = fnv1a(payload.as_bytes());
    if expected != actual {
        return Err(FrameError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        for payload in ["{}", "{\"cell\":7}", "", "x"] {
            let line = frame(payload);
            assert!(line.ends_with('\n'));
            assert_eq!(unframe(line.trim_end_matches('\n')).unwrap(), payload);
        }
    }

    #[test]
    fn every_prefix_truncation_is_rejected() {
        let line = frame("{\"cell\":42,\"data\":[1,2,3]}");
        let line = line.trim_end_matches('\n');
        for cut in 0..line.len() {
            assert!(
                unframe(&line[..cut]).is_err(),
                "truncation to {cut} bytes decoded"
            );
        }
        assert!(unframe(line).is_ok());
    }

    #[test]
    fn corruption_is_detected() {
        let line = frame("{\"cell\":1}");
        let line = line.trim_end_matches('\n');
        let mut bytes = line.as_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let corrupted = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            unframe(&corrupted),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_prefix_is_distinguished() {
        assert_eq!(unframe("zzzzzzzzzzzzzzzz {}"), Err(FrameError::BadPrefix));
        assert_eq!(unframe("short"), Err(FrameError::Torn));
        // 16 hex digits but no separator space.
        assert_eq!(unframe("0123456789abcdef{}"), Err(FrameError::Torn));
    }

    #[test]
    fn fnv_is_pinned() {
        // The empty input hashes to the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // Pin the exact constants (they are shared with the batch
        // plane's `mix_seed`): changing either breaks every existing
        // journal on disk, which must be a deliberate schema bump.
        assert_eq!(fnv1a(b"a"), 0xaf74_d84c_8601_ec8c);
        assert_eq!(fnv1a(b"redspot"), 0x7023_9c0a_bd46_47b4);
    }
}
