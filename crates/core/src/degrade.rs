//! The graceful-degradation ladder for capacity contention.
//!
//! When a fleet drains a zone, every spot request there comes back
//! `InsufficientInstanceCapacity`. Retrying forever burns supervisor
//! budget on a market signal (the capacity is *gone*, not flaking), so
//! the engine escalates through three rungs, each strictly
//! deadline-safe:
//!
//! 1. **Shed** — after [`shed_after`](DegradePolicy::shed_after)
//!    consecutive capacity denials in one zone, drop that zone from the
//!    redundant set (never below
//!    [`min_zones`](DegradePolicy::min_zones)). Redundancy was a cost
//!    optimisation; giving it up only removes speculative replicas.
//! 2. **Defer** — while *nothing has ever run* (admission control), a
//!    capacity denial on the surviving set pushes the retry gate out by
//!    a doubling [`defer_step`](DegradePolicy::defer_step), capped at
//!    the deadline guard's migration instant. Waiting out contention is
//!    free while the guard still covers the on-demand fallback.
//! 3. **Spill** — when the last usable zone has been denied
//!    [`spill_after`](DegradePolicy::spill_after) times in a row, stop
//!    waiting for the guard and migrate to on-demand immediately.
//!    Migrating *earlier* than the guard instant strictly increases
//!    slack, so the deadline guarantee is untouched.
//!
//! The default policy is [`off`](DegradePolicy::off): the ladder is
//! completely inert and the engine is bit-identical to one without it —
//! the same discipline the fault plans follow.

use redspot_trace::SimDuration;
use serde::{Deserialize, Serialize};

/// Tuning for the capacity-contention degradation ladder. Inert by
/// default ([`DegradePolicy::off`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradePolicy {
    /// Master switch; `false` disables every rung.
    #[serde(default)]
    pub enabled: bool,
    /// Consecutive capacity denials in one zone before it is shed.
    #[serde(default = "default_shed_after")]
    pub shed_after: u32,
    /// Never shed below this many active zones.
    #[serde(default = "default_min_zones")]
    pub min_zones: usize,
    /// First admission-control deferral; doubles per deferral.
    #[serde(default = "default_defer_step")]
    pub defer_step: SimDuration,
    /// Bound on admission-control deferrals per run.
    #[serde(default = "default_max_deferrals")]
    pub max_deferrals: u32,
    /// Consecutive capacity denials on the last usable zone before the
    /// job spills to on-demand ahead of the deadline guard.
    #[serde(default = "default_spill_after")]
    pub spill_after: u32,
}

fn default_shed_after() -> u32 {
    3
}
fn default_min_zones() -> usize {
    1
}
fn default_defer_step() -> SimDuration {
    SimDuration::from_secs(600)
}
fn default_max_deferrals() -> u32 {
    4
}
fn default_spill_after() -> u32 {
    6
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy::off()
    }
}

impl DegradePolicy {
    /// The ladder disabled: capacity denials are handled exactly like
    /// any other control-plane failure (supervisor backoff, then the
    /// deadline guard). This is the default.
    pub const fn off() -> DegradePolicy {
        DegradePolicy {
            enabled: false,
            shed_after: 3,
            min_zones: 1,
            defer_step: SimDuration::from_secs(600),
            max_deferrals: 4,
            spill_after: 6,
        }
    }

    /// The standard ladder: shed after 3 consecutive denials, defer up
    /// to 4 times from 10 min doubling, spill after 6 denials on the
    /// last zone.
    pub const fn standard() -> DegradePolicy {
        DegradePolicy {
            enabled: true,
            shed_after: 3,
            min_zones: 1,
            defer_step: SimDuration::from_secs(600),
            max_deferrals: 4,
            spill_after: 6,
        }
    }

    /// Validate the ladder's parameters (only when enabled; an `off`
    /// policy is always valid).
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.shed_after == 0 {
            return Err("shed_after must be at least 1".into());
        }
        if self.min_zones == 0 {
            return Err("min_zones must be at least 1".into());
        }
        if self.spill_after == 0 {
            return Err("spill_after must be at least 1".into());
        }
        if self.max_deferrals > 0 && self.defer_step == SimDuration::ZERO {
            return Err("defer_step must be positive when deferrals are allowed".into());
        }
        Ok(())
    }

    /// The deferral applied at the `n`-th admission-control deferral
    /// (1-based): `defer_step · 2^(n-1)`, saturating.
    pub fn deferral(&self, n: u32) -> SimDuration {
        let factor = 1u64.checked_shl(n.saturating_sub(1)).unwrap_or(u64::MAX);
        SimDuration::from_secs(self.defer_step.secs().saturating_mul(factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_default_and_valid() {
        assert_eq!(DegradePolicy::default(), DegradePolicy::off());
        assert!(!DegradePolicy::off().enabled);
        assert!(DegradePolicy::off().validate().is_ok());
        assert!(DegradePolicy::standard().enabled);
        assert!(DegradePolicy::standard().validate().is_ok());
    }

    #[test]
    fn validation_only_bites_when_enabled() {
        let mut p = DegradePolicy::off();
        p.shed_after = 0;
        assert!(p.validate().is_ok(), "off policies are always valid");
        p.enabled = true;
        assert!(p.validate().is_err());

        let mut p = DegradePolicy::standard();
        p.min_zones = 0;
        assert!(p.validate().is_err());
        let mut p = DegradePolicy::standard();
        p.spill_after = 0;
        assert!(p.validate().is_err());
        let mut p = DegradePolicy::standard();
        p.defer_step = SimDuration::ZERO;
        assert!(p.validate().is_err());
        p.max_deferrals = 0;
        assert!(p.validate().is_ok(), "no deferrals → step unused");
    }

    #[test]
    fn deferrals_double_and_saturate() {
        let p = DegradePolicy::standard();
        assert_eq!(p.deferral(1), SimDuration::from_secs(600));
        assert_eq!(p.deferral(2), SimDuration::from_secs(1_200));
        assert_eq!(p.deferral(3), SimDuration::from_secs(2_400));
        assert!(p.deferral(200) > SimDuration::from_hours(1_000));
    }

    #[test]
    fn serde_defaults_to_off() {
        let p: DegradePolicy = serde_json::from_str("{}").unwrap();
        assert_eq!(p, DegradePolicy::off());
        let q: DegradePolicy = serde_json::from_str("{\"enabled\": true}").unwrap();
        assert_eq!(q, DegradePolicy::standard());
        let json = serde_json::to_string(&DegradePolicy::standard()).unwrap();
        let back: DegradePolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, DegradePolicy::standard());
    }
}
