//! Run results and event telemetry.

use redspot_market::ApiError;
use redspot_trace::{Price, SimDuration, SimTime, ZoneId};
use serde::{Deserialize, Serialize};

/// Why an instance stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationCause {
    /// Spot price exceeded the instance's bid (EC2-initiated).
    OutOfBid,
    /// The scheduler stopped it (retire, migration, completion).
    Voluntary,
}

/// One entry in a run's event log — enough to reconstruct the Figure-1 /
/// Figure-3 style mechanics diagrams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A spot request was submitted for `zone` at bid `bid`.
    Requested {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// Bid attached to the request.
        bid: Price,
    },
    /// The instance finished booting and its replica started executing.
    Started {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// Replica position it resumed from.
        from: SimDuration,
    },
    /// A zone entered the waiting state (affordable, deliberately idle).
    Waiting {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
    },
    /// An instance stopped.
    Terminated {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// Why.
        cause: TerminationCause,
        /// Charge finalized for the run that just ended.
        charged: Price,
    },
    /// A checkpoint began on the leading zone.
    CheckpointStarted {
        /// When.
        at: SimTime,
        /// Zone writing the checkpoint.
        zone: ZoneId,
        /// Application position being saved.
        position: SimDuration,
    },
    /// The checkpoint committed.
    CheckpointCommitted {
        /// When.
        at: SimTime,
        /// Durable progress after the commit.
        position: SimDuration,
    },
    /// A checkpoint was aborted (the writing zone was terminated).
    CheckpointAborted {
        /// When.
        at: SimTime,
        /// Zone that was writing it.
        zone: ZoneId,
    },
    /// The deadline guard fired: execution migrated to on-demand.
    SwitchedToOnDemand {
        /// When.
        at: SimTime,
        /// Committed progress at the switch.
        committed: SimDuration,
    },
    /// A full billing hour was charged on a spot instance.
    HourCharged {
        /// Boundary instant.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// Rate fixed at the start of the charged hour.
        rate: Price,
    },
    /// The provider announced it will reclaim a spot instance (modern
    /// era): the zone has until `terminate_at` to checkpoint and drain.
    InterruptionNotice {
        /// When the notice arrived.
        at: SimTime,
        /// Zone being reclaimed.
        zone: ZoneId,
        /// Instant the instance will be terminated.
        terminate_at: SimTime,
    },
    /// The user moved the deadline at runtime (Section 3.2).
    DeadlineChanged {
        /// When.
        at: SimTime,
        /// New absolute deadline.
        deadline: SimTime,
        /// Whether the guarantee still holds for the new deadline.
        feasible: bool,
    },
    /// The adaptive controller switched configuration.
    AdaptiveSwitch {
        /// When.
        at: SimTime,
        /// Human-readable description of the new permutation.
        to: String,
    },
    /// An in-flight checkpoint completed but failed to commit (injected
    /// write failure): the run continues on the previous generation.
    CheckpointWriteFailed {
        /// When.
        at: SimTime,
        /// Zone that was writing it.
        zone: ZoneId,
    },
    /// A restarting replica found the newest checkpoint generation corrupt
    /// and fell back to an older one (injected restore corruption).
    RestoreFailed {
        /// When.
        at: SimTime,
        /// Zone attempting the restore.
        zone: ZoneId,
        /// Position of the generation the restore fell back to.
        fell_back_to: SimDuration,
    },
    /// A booting instance failed to come up (injected boot failure /
    /// insufficient capacity); the engine retries with bounded backoff.
    BootFailed {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// Earliest instant a new request will be submitted.
        retry_at: SimTime,
    },
    /// The zone went dark (injected blackout): any instance there was
    /// force-terminated and requests fail until the blackout lifts.
    ZoneBlackout {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// Instant the zone comes back.
        until: SimTime,
    },
    /// A spot request failed at the control plane (timeout, throttle,
    /// insufficient capacity) or was refused by the supervisor (zone
    /// quarantined, retry budget exhausted); the zone stays down until
    /// `retry_at`.
    SpotRequestFailed {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// The API error, if the call was actually made (`None` when the
        /// supervisor refused without calling).
        error: Option<ApiError>,
        /// Earliest instant the supervisor will retry the zone.
        retry_at: SimTime,
    },
    /// A terminate call needed control-plane retries; the instance kept
    /// billing for `lag` past the scheduler's decision.
    TerminateLagged {
        /// When the scheduler decided to stop the instance.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// Extra billed wall-clock until the terminate stuck.
        lag: SimDuration,
    },
    /// A price read failed; policies ran on the last known price, `age`
    /// old at decision time.
    StalePriceUsed {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// Staleness window of the price actually used.
        age: SimDuration,
    },
    /// A zone's circuit breaker tripped after consecutive control-plane
    /// failures: no requests go there until `until`, then one probe.
    ZoneQuarantined {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
        /// Quarantine end (half-open probe time).
        until: SimTime,
    },
    /// A quarantined zone's half-open probe succeeded: the breaker
    /// closed and the zone is eligible for requests again.
    ZoneBreakerClosed {
        /// When.
        at: SimTime,
        /// Which zone.
        zone: ZoneId,
    },
    /// The on-demand migration path itself needed retries; the switch
    /// was delayed by `delay` (bounded by the guard's reserve).
    OnDemandDelayed {
        /// When the migration was initiated.
        at: SimTime,
        /// Control-plane delay before the on-demand instance was granted.
        delay: SimDuration,
    },
    /// Graceful-degradation rung 1: a zone was dropped from the
    /// redundant set after persistent capacity denials (the fleet keeps
    /// it drained; stop burning retry budget there).
    ZoneShed {
        /// When.
        at: SimTime,
        /// Which zone was shed.
        zone: ZoneId,
        /// Active zones remaining after the shed.
        remaining: usize,
    },
    /// Graceful-degradation rung 2: admission control deferred the job's
    /// (re)start — no replica has run yet and every request is hitting a
    /// capacity wall, so back off further while guard slack allows.
    StartDeferred {
        /// When.
        at: SimTime,
        /// Zone whose denial triggered the deferral.
        zone: ZoneId,
        /// No new requests before this instant (always ≤ guard time).
        until: SimTime,
        /// How many deferrals this run has taken, counting this one.
        deferral: u32,
    },
    /// Graceful-degradation rung 3: the last usable zone stayed drained,
    /// so the job spilled to on-demand ahead of the deadline guard
    /// (always followed by [`Event::SwitchedToOnDemand`]).
    CapacitySpill {
        /// When.
        at: SimTime,
        /// Zone whose denial triggered the spill.
        zone: ZoneId,
        /// Consecutive capacity denials the zone had accumulated.
        denials: u32,
    },
    /// The application completed.
    Completed {
        /// When.
        at: SimTime,
    },
}

impl Event {
    /// The instant the event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            Event::Requested { at, .. }
            | Event::Started { at, .. }
            | Event::Waiting { at, .. }
            | Event::Terminated { at, .. }
            | Event::CheckpointStarted { at, .. }
            | Event::CheckpointCommitted { at, .. }
            | Event::CheckpointAborted { at, .. }
            | Event::SwitchedToOnDemand { at, .. }
            | Event::HourCharged { at, .. }
            | Event::InterruptionNotice { at, .. }
            | Event::DeadlineChanged { at, .. }
            | Event::AdaptiveSwitch { at, .. }
            | Event::CheckpointWriteFailed { at, .. }
            | Event::RestoreFailed { at, .. }
            | Event::BootFailed { at, .. }
            | Event::ZoneBlackout { at, .. }
            | Event::SpotRequestFailed { at, .. }
            | Event::TerminateLagged { at, .. }
            | Event::StalePriceUsed { at, .. }
            | Event::ZoneQuarantined { at, .. }
            | Event::ZoneBreakerClosed { at, .. }
            | Event::OnDemandDelayed { at, .. }
            | Event::ZoneShed { at, .. }
            | Event::StartDeferred { at, .. }
            | Event::CapacitySpill { at, .. }
            | Event::Completed { at } => *at,
        }
    }
}

/// Control-plane health counters accumulated by the supervisor over one
/// run. All zero when the API fault plan is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ApiStats {
    /// Spot requests that failed at the API and were retried later.
    pub spot_retries: u64,
    /// Circuit-breaker trips (a zone quarantined after consecutive
    /// control-plane failures).
    pub breaker_trips: u64,
    /// Price reads that failed (policies ran on the last known price).
    pub stale_price_reads: u64,
    /// Failed terminate calls (each adds billed lag).
    pub terminate_retries: u64,
    /// Total billed lag accumulated by terminate retries, in seconds.
    pub terminate_lag_secs: u64,
    /// Failed on-demand requests on the migration path.
    pub od_retries: u64,
}

impl ApiStats {
    /// Whether the run saw any control-plane failure at all.
    pub fn any_failures(&self) -> bool {
        self.spot_retries > 0
            || self.breaker_trips > 0
            || self.stale_price_reads > 0
            || self.terminate_retries > 0
            || self.od_retries > 0
    }
}

/// Outcome of one simulated experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Total charge: spot + on-demand.
    pub cost: Price,
    /// Spot-market portion of the cost.
    pub spot_cost: Price,
    /// On-demand portion of the cost.
    pub od_cost: Price,
    /// I/O-server portion of the cost (zero unless the experiment enables
    /// `io_server` accounting).
    #[serde(default)]
    pub io_cost: Price,
    /// Absolute completion time.
    pub finished_at: SimTime,
    /// Whether the run completed by the deadline (must always be true —
    /// Algorithm 1 guarantees it; surfaced for property tests).
    pub met_deadline: bool,
    /// Number of committed checkpoints.
    pub checkpoints: u32,
    /// Number of replica (re)starts.
    pub restarts: u32,
    /// Number of out-of-bid terminations suffered.
    pub out_of_bid_terminations: u32,
    /// Whether the run ended on the on-demand market.
    pub used_on_demand: bool,
    /// Control-plane health counters (all zero without API faults).
    #[serde(default)]
    pub api: ApiStats,
    /// Event log, as retained by the engine's telemetry sink (empty
    /// when the run used a non-retaining sink such as `NullRecorder`).
    pub events: Vec<Event>,
}

impl RunResult {
    /// Cost in dollars (reporting).
    pub fn cost_dollars(&self) -> f64 {
        self.cost.as_dollars()
    }

    /// Makespan from an experiment start time.
    pub fn makespan(&self, start: SimTime) -> SimDuration {
        self.finished_at.since(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_times_are_accessible() {
        let e = Event::Completed {
            at: SimTime::from_secs(42),
        };
        assert_eq!(e.at(), SimTime::from_secs(42));
        let e = Event::Requested {
            at: SimTime::from_secs(7),
            zone: ZoneId(1),
            bid: Price::from_dollars(0.81),
        };
        assert_eq!(e.at(), SimTime::from_secs(7));
    }

    #[test]
    fn result_helpers() {
        let r = RunResult {
            cost: Price::from_dollars(12.0),
            spot_cost: Price::from_dollars(10.0),
            od_cost: Price::from_dollars(2.0),
            io_cost: Price::ZERO,
            finished_at: SimTime::from_hours(25),
            met_deadline: true,
            checkpoints: 3,
            restarts: 2,
            out_of_bid_terminations: 1,
            used_on_demand: true,
            api: ApiStats::default(),
            events: vec![],
        };
        assert!((r.cost_dollars() - 12.0).abs() < 1e-12);
        assert_eq!(
            r.makespan(SimTime::from_hours(1)),
            SimDuration::from_hours(24)
        );
    }
}
