//! The serve wire protocol: versioned line-JSON requests and responses.
//!
//! One request per line, one response per line, in order; pushed events
//! (interruption notices with attached re-decisions) are extra lines that
//! carry an `"event"` key instead of `"ok"`. Every response and event
//! carries `"v":` [`SERVE_PROTO_VERSION`] so clients can reject a daemon
//! speaking a different schema — the same discipline as the sweep shard
//! manifest.
//!
//! Request shapes (`"req"` selects the variant):
//!
//! ```json
//! {"req":"open","market":"m1","zones":3,"step":300,"start":0,"era":"classic","bid":810,"seed":0}
//! {"req":"ingest","market":"m1","at":0,"prices":[270,300,510]}
//! {"req":"advise","market":"m1","now":3600,"remaining_compute":72000,"remaining_time":82800}
//! {"req":"subscribe","market":"m1"}
//! {"req":"stats","market":"m1"}
//! {"req":"shutdown"}
//! ```
//!
//! Ingestion reuses `validate-trace`'s checked JSONL discipline: prices
//! must be finite, non-negative integer milli-dollar counts (floats,
//! negatives, and the `null` a non-finite float serializes to are all
//! rejected by [`check_price_fields`] on the raw tree before any typed
//! parse can coerce them), and sample timestamps must advance by exactly
//! one step per row.

use redspot_market::Era;
use redspot_trace::{Price, SimDuration, SimTime};
use serde::Value;

/// Protocol schema version stamped on every response and pushed event.
pub const SERVE_PROTO_VERSION: u32 = 1;

/// Keys that carry prices in serve requests. Shared with the CLI's
/// `validate-trace` (whose event-schema list is `bid`/`charged`/`rate`)
/// through [`check_price_fields`].
pub const SERVE_PRICE_FIELDS: &[&str] = &["prices", "bid"];

/// Reject malformed price values in a raw JSON tree *before* a typed
/// parse gets a chance to coerce them. `Price` is an integer milli-dollar
/// count, but the deserializer accepts any non-negative integral float
/// for a `u64` — so `"bid": 810.0` (or a value that was NaN/Infinity at
/// write time, which JSON renders as `null`) would slip through silently.
/// A price-named key holding a sequence (serve's `"prices":[...]` rows)
/// has each element checked as a scalar price. Returns `Err(reason)`
/// naming the offending field.
pub fn check_price_fields(value: &Value, fields: &[&str]) -> Result<(), String> {
    fn scalar(key: &str, v: &Value) -> Result<(), String> {
        match v {
            Value::UInt(_) => Ok(()),
            Value::Int(i) => Err(format!("price field '{key}' is negative ({i})")),
            Value::Float(f) => Err(format!(
                "price field '{key}' is not an integer milli-dollar count ({f})"
            )),
            Value::Null => Err(format!(
                "price field '{key}' is null (non-finite prices serialize as null)"
            )),
            other => Err(format!("price field '{key}' is not a number ({other:?})")),
        }
    }
    match value {
        Value::Map(entries) => {
            for (key, v) in entries {
                if fields.contains(&key.as_str()) {
                    match v {
                        Value::Seq(items) => items.iter().try_for_each(|item| scalar(key, item))?,
                        other => scalar(key, other)?,
                    }
                }
                check_price_fields(v, fields)?;
            }
            Ok(())
        }
        Value::Seq(items) => items
            .iter()
            .try_for_each(|item| check_price_fields(item, fields)),
        _ => Ok(()),
    }
}

/// Everything `open` needs to admit a market: its identity, trace grid,
/// and the experiment configuration advises are answered under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarketSpec {
    /// Market id (registry key).
    pub market: String,
    /// Number of availability zones (every ingest row carries one price
    /// per zone).
    pub zones: usize,
    /// First instant of the price grid.
    pub start: SimTime,
    /// Sampling step in seconds.
    pub step: u64,
    /// Billing/termination regime advises are computed under.
    pub era: Era,
    /// Bid cap — and, in the modern era, the capacity-reclaim threshold
    /// the sentinel classifies notices against.
    pub bid: Price,
    /// Experiment seed (advise determinism).
    pub seed: u64,
}

impl MarketSpec {
    /// The experiment configuration this market's advises run under: the
    /// paper's standard job over all of the market's zones, with the
    /// spec's bid, seed, and era applied. Exposed so offline comparators
    /// (tests, tools) can reproduce a daemon answer bit-for-bit.
    pub fn config(&self) -> crate::ExperimentConfig {
        let mut cfg = crate::ExperimentConfig::paper_default();
        cfg.zones = (0..self.zones).map(redspot_trace::ZoneId).collect();
        cfg.bid = self.bid;
        cfg.seed = self.seed;
        cfg.era = self.era;
        cfg
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a new market.
    Open(MarketSpec),
    /// Append one aligned sample row (one price per zone) at `at`.
    Ingest {
        /// Target market.
        market: String,
        /// Sample timestamp; must be exactly the market's watermark.
        at: SimTime,
        /// One price per zone, in zone order.
        prices: Vec<Price>,
    },
    /// Evaluate the adaptive decision at `now`.
    Advise {
        /// Target market.
        market: String,
        /// Decision instant.
        now: SimTime,
        /// Compute remaining (seconds).
        remaining_compute: SimDuration,
        /// Wall time remaining until the deadline (seconds).
        remaining_time: SimDuration,
    },
    /// Receive this market's pushed events on this connection.
    Subscribe {
        /// Target market.
        market: String,
    },
    /// Report a market's ingestion/scan counters.
    Stats {
        /// Target market.
        market: String,
    },
    /// Stop the daemon.
    Shutdown,
}

fn find<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    serde::__find(m, key)
}

fn need<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    find(m, key).ok_or_else(|| format!("missing field `{key}`"))
}

fn as_u64(v: &Value, key: &str) -> Result<u64, String> {
    match v {
        Value::UInt(u) => Ok(*u),
        other => Err(format!(
            "field `{key}` must be a non-negative integer, got {other:?}"
        )),
    }
}

fn as_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(format!("field `{key}` must be a string, got {other:?}")),
    }
}

fn market_of(m: &[(String, Value)]) -> Result<String, String> {
    Ok(as_str(need(m, "market")?, "market")?.to_string())
}

/// Parse one request line. Price-bearing fields are checked on the raw
/// tree first (the `validate-trace` discipline), so a float or negative
/// price is a parse error, not a silent coercion.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let raw: Value = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e}"))?;
    check_price_fields(&raw, SERVE_PRICE_FIELDS)?;
    let m = raw.as_map().ok_or("request must be a JSON object")?;
    let req = as_str(need(m, "req")?, "req")?;
    match req {
        "open" => {
            let zones = as_u64(need(m, "zones")?, "zones")? as usize;
            if zones == 0 {
                return Err("field `zones` must be at least 1".into());
            }
            let step = match find(m, "step") {
                Some(v) => as_u64(v, "step")?,
                None => redspot_trace::PRICE_STEP,
            };
            if step == 0 {
                return Err("field `step` must be positive".into());
            }
            let start = match find(m, "start") {
                Some(v) => SimTime::from_secs(as_u64(v, "start")?),
                None => SimTime::ZERO,
            };
            let era = match find(m, "era") {
                Some(v) => Era::parse(as_str(v, "era")?)?,
                None => Era::Classic,
            };
            let bid = match find(m, "bid") {
                Some(v) => Price::from_millis(as_u64(v, "bid")?),
                None => Price::from_millis(810),
            };
            let seed = match find(m, "seed") {
                Some(v) => as_u64(v, "seed")?,
                None => 0,
            };
            Ok(Request::Open(MarketSpec {
                market: market_of(m)?,
                zones,
                start,
                step,
                era,
                bid,
                seed,
            }))
        }
        "ingest" => {
            let at = SimTime::from_secs(as_u64(need(m, "at")?, "at")?);
            let prices = match need(m, "prices")? {
                Value::Seq(items) => items
                    .iter()
                    .map(|v| Ok(Price::from_millis(as_u64(v, "prices")?)))
                    .collect::<Result<Vec<Price>, String>>()?,
                other => return Err(format!("field `prices` must be an array, got {other:?}")),
            };
            if prices.is_empty() {
                return Err("field `prices` must not be empty".into());
            }
            Ok(Request::Ingest {
                market: market_of(m)?,
                at,
                prices,
            })
        }
        "advise" => Ok(Request::Advise {
            market: market_of(m)?,
            now: SimTime::from_secs(as_u64(need(m, "now")?, "now")?),
            remaining_compute: SimDuration::from_secs(as_u64(
                need(m, "remaining_compute")?,
                "remaining_compute",
            )?),
            remaining_time: SimDuration::from_secs(as_u64(
                need(m, "remaining_time")?,
                "remaining_time",
            )?),
        }),
        "subscribe" => Ok(Request::Subscribe {
            market: market_of(m)?,
        }),
        "stats" => Ok(Request::Stats {
            market: market_of(m)?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request `{other}`")),
    }
}

/// Build a JSON object value from key/value pairs (insertion order kept).
pub(crate) fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Render a response object (with the protocol version prepended) as one
/// JSON line.
pub(crate) fn line(mut entries: Vec<(&str, Value)>) -> String {
    entries.insert(0, ("v", Value::UInt(SERVE_PROTO_VERSION as u64)));
    serde_json::to_string(&obj(entries)).expect("value trees always render")
}

/// The `{"ok":false}` error line for a failed request.
pub(crate) fn error_line(why: &str) -> String {
    line(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::Str(why.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_request_surface() {
        let open = parse_request(
            r#"{"req":"open","market":"m1","zones":3,"step":300,"era":"modern","bid":900}"#,
        )
        .unwrap();
        match open {
            Request::Open(spec) => {
                assert_eq!(spec.market, "m1");
                assert_eq!(spec.zones, 3);
                assert_eq!(spec.era, Era::Modern);
                assert_eq!(spec.bid, Price::from_millis(900));
                assert_eq!(spec.config().zones.len(), 3);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"req":"ingest","market":"m1","at":300,"prices":[270,280,290]}"#),
            Ok(Request::Ingest {
                market: "m1".into(),
                at: SimTime::from_secs(300),
                prices: vec![
                    Price::from_millis(270),
                    Price::from_millis(280),
                    Price::from_millis(290)
                ],
            })
        );
        assert!(matches!(
            parse_request(r#"{"req":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn rejects_unchecked_prices_like_validate_trace() {
        // Float, negative, and null prices are all schema errors on the
        // raw tree — the same checks validate-trace applies to event
        // logs, applied to the ingestion stream.
        for bad in [
            r#"{"req":"ingest","market":"m","at":0,"prices":[270.5]}"#,
            r#"{"req":"ingest","market":"m","at":0,"prices":[-3]}"#,
            r#"{"req":"ingest","market":"m","at":0,"prices":[null]}"#,
            r#"{"req":"open","market":"m","zones":1,"bid":810.0}"#,
        ] {
            assert!(parse_request(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn responses_carry_the_protocol_version() {
        let l = line(vec![("ok", Value::Bool(true))]);
        assert!(
            l.starts_with(&format!("{{\"v\":{SERVE_PROTO_VERSION}")),
            "{l}"
        );
    }
}
