//! The live advisory plane: `redspot serve`.
//!
//! Everything before this module answers questions about *recorded*
//! markets — a sweep replays a trace that is already complete. `serve`
//! turns the same decision machinery into a long-running daemon fed by a
//! *growing* trace: clients stream price rows in (the `validate-trace`
//! JSONL discipline, checked line by line), ask "what would Adaptive do
//! right now?" at any instant, and subscribe to interruption notices a
//! sentinel raises by polling each market's control plane and
//! classifying bid crossings under the market's era.
//!
//! The module is the tentpole payoff of the ownership inversion: a
//! market's warm state is a [`crate::DecisionSession`] (an owned,
//! `Send` clone of an [`crate::AdaptiveRunner`] over a
//! [`redspot_trace::TraceHandle`]), so it lives in a registry shared by
//! plain `std::thread` workers with no lifetime threading and no async
//! runtime.
//!
//! Layers, bottom up:
//!
//! * [`proto`] — the versioned line-JSON wire protocol and the shared
//!   raw-tree price checker;
//! * [`registry`] — per-market state: ingestion watermark, sealed
//!   trace/scan view (cold rebuild on new data, warm reuse between),
//!   and the edge-triggered sentinel classifier;
//! * [`server`] — the transport-agnostic request router with client
//!   subscriptions;
//! * [`daemon`] — the TCP accept loop (thread per connection) and the
//!   single-client stdio loop the CLI and CI smoke job use.

pub mod daemon;
pub mod proto;
pub mod registry;
pub mod server;

pub use daemon::{serve_stdio, serve_stdio_with, Daemon};
pub use proto::{check_price_fields, parse_request, MarketSpec, Request, SERVE_PROTO_VERSION};
pub use registry::{Advice, MarketStats, Notice, Registry};
pub use server::{Outcome, Push, Server};
