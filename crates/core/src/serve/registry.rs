//! The daemon's market registry: per-market warm scan state and the
//! sentinel that classifies interruption notices.
//!
//! The registry is an `RwLock`-guarded map from market id to an
//! `Arc<Mutex<MarketState>>`. The outer lock is only held long enough to
//! resolve an id — admissions take the write half, everything else the
//! read half — so advises against *different* markets run fully
//! concurrently and advises against the *same* market serialize on that
//! market's own mutex. Each market keeps its ingested samples plus two
//! tiers of sealed state: a cheap trace view (a [`TraceHandle`] over the
//! samples and the [`CloudApi`] the sentinel polls) and a warm
//! [`DecisionSession`] whose permutation scan advances incrementally
//! between queries. Ingesting new rows invalidates both (the next advise
//! is a *cold* scan rebuild); advises between ingests share the warm
//! scan — the cold/warm split the serve latency table in EXPERIMENTS.md
//! measures.

use super::proto::MarketSpec;
use crate::adaptive::forecast::{predicted_cost, Forecast};
use crate::adaptive::Permutation;
use crate::{AdaptiveRunner, DecisionSession, ExperimentConfig};
use redspot_market::{CloudApi, PerfectApi};
use redspot_trace::{Price, PriceSeries, SimDuration, SimTime, TraceHandle, TraceSet};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// The advisory answer to one `advise` query: the cheapest permutation at
/// the decision point, with its cost forecast and the on-demand referent.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Chosen bid, milli-dollars.
    pub bid_millis: u64,
    /// Chosen zones (indices into the market's zone list).
    pub zones: Vec<usize>,
    /// Chosen checkpoint policy label.
    pub policy: String,
    /// Predicted remaining cost of the chosen permutation, milli-dollars.
    pub predicted_cost_millis: f64,
    /// Cost of finishing purely on-demand from here (the deadline-safe
    /// fallback the guard would take), milli-dollars.
    pub od_fallback_millis: f64,
    /// Whether the forecast already expects the on-demand fallback — the
    /// violation-risk signal: spot progress alone is not predicted to
    /// make the deadline.
    pub forecast_on_demand: bool,
}

impl Advice {
    /// Derive the advisory answer from a chosen permutation, exactly as
    /// the daemon does — public so offline comparators can reproduce a
    /// served answer bit-for-bit from a direct [`DecisionSession`] run.
    pub fn derive(
        perm: &Permutation,
        remaining_compute: SimDuration,
        remaining_time: SimDuration,
        cfg: &ExperimentConfig,
    ) -> Advice {
        let od = predicted_cost(
            &Forecast::EMPTY,
            remaining_compute,
            remaining_time,
            cfg.costs,
        );
        Advice {
            bid_millis: perm.bid.millis(),
            zones: perm
                .mask
                .iter()
                .enumerate()
                .filter_map(|(i, &on)| on.then_some(i))
                .collect(),
            policy: perm.kind.to_string(),
            predicted_cost_millis: perm.predicted_millis,
            od_fallback_millis: od,
            forecast_on_demand: perm.predicted_millis >= od,
        }
    }
}

/// One interruption notice pushed to subscribers: a zone's price crossed
/// the market's bid, classified under the market's era, with the
/// re-decision the adaptive controller would make at the notice instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Notice {
    /// Market the notice belongs to.
    pub market: String,
    /// Affected zone index.
    pub zone: usize,
    /// Instant the sentinel observed the crossing (the market watermark).
    pub at: SimTime,
    /// The offending price.
    pub price: Price,
    /// Era-dependent classification: the modern provider reclaims
    /// capacity with advance warning (`"reclaim"`); the classic market
    /// kills out-of-bid instances abruptly (`"out-of-bid"`).
    pub class: &'static str,
    /// When the instance dies: `at` plus the era's advance notice
    /// (two minutes in the modern era, none in the classic).
    pub terminate_at: SimTime,
    /// The re-decision at the notice instant, when one is computable.
    pub advice: Option<Advice>,
}

/// Ingestion/scan counters for one market.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarketStats {
    /// Sample rows ingested.
    pub rows: u64,
    /// Advises that had to rebuild trace + scan state (stale seal).
    pub cold_builds: u64,
    /// Advises answered from the warm seal.
    pub warm_advises: u64,
    /// Interruption notices the sentinel has raised.
    pub notices: u64,
}

/// The cheap trace-backed view of a market at some ingestion watermark:
/// what the sentinel polls. Rebuilding it is O(rows) sample copies —
/// no scan work — so refreshing per sentinel sweep is affordable.
struct View {
    /// Ingestion row count this view was built at.
    rows: u64,
    /// Shared trace over the ingested samples.
    handle: TraceHandle,
    /// The control plane the sentinel polls for prices.
    api: Box<dyn CloudApi + Send>,
}

/// The expensive warm decision state: a [`DecisionSession`] whose
/// permutation scan advances incrementally across successive advises.
/// Built lazily (first advise after an ingest is the *cold* path) and
/// never rebuilt by mere sentinel polls.
struct Warm {
    /// Ingestion row count this session was built at; a mismatch with
    /// the live count means the scan is stale and the next advise
    /// rebuilds it.
    rows: u64,
    session: DecisionSession,
}

/// One market's full state: spec, accumulated samples, the two-tier
/// sealed state ([`View`]/[`Warm`]), and the sentinel's per-zone edge
/// detector.
struct MarketState {
    spec: MarketSpec,
    cfg: ExperimentConfig,
    /// Per-zone ingested samples, in zone order.
    zone_prices: Vec<Vec<Price>>,
    view: Option<View>,
    warm: Option<Warm>,
    /// Which zones are currently in a raised-notice state (crossing
    /// edges fire once; the flag re-arms when the price drops back).
    noticed: Vec<bool>,
    stats: MarketStats,
}

impl MarketState {
    fn new(spec: MarketSpec) -> MarketState {
        let cfg = spec.config();
        let zones = spec.zones;
        MarketState {
            spec,
            cfg,
            zone_prices: vec![Vec::new(); zones],
            view: None,
            warm: None,
            noticed: vec![false; zones],
            stats: MarketStats::default(),
        }
    }

    /// The next expected sample timestamp (start + rows·step).
    fn watermark(&self) -> SimTime {
        SimTime::from_secs(self.spec.start.secs() + self.stats.rows * self.spec.step)
    }

    /// The timestamp of the last ingested row (None before any ingest).
    fn last_sample_at(&self) -> Option<SimTime> {
        (self.stats.rows > 0).then(|| {
            SimTime::from_secs(self.spec.start.secs() + (self.stats.rows - 1) * self.spec.step)
        })
    }

    fn ingest(&mut self, at: SimTime, prices: &[Price]) -> Result<u64, String> {
        if prices.len() != self.spec.zones {
            return Err(format!(
                "market '{}' has {} zones, got {} prices",
                self.spec.market,
                self.spec.zones,
                prices.len()
            ));
        }
        let expect = self.watermark();
        if at != expect {
            return Err(format!(
                "out-of-order ingest for '{}': expected at={}, got at={} \
                 (rows advance by one step of {}s)",
                self.spec.market,
                expect.secs(),
                at.secs(),
                self.spec.step
            ));
        }
        for (zone, &p) in self.zone_prices.iter_mut().zip(prices) {
            zone.push(p);
        }
        self.stats.rows += 1;
        // New data: both tiers of sealed state are stale.
        self.view = None;
        self.warm = None;
        Ok(self.stats.rows)
    }

    /// Ensure the trace view matches the current watermark (cheap: one
    /// pass over the ingested samples, no scan work).
    fn refresh_view(&mut self) -> Result<(), String> {
        if self.stats.rows == 0 {
            return Err(format!("market '{}' has no samples yet", self.spec.market));
        }
        if self
            .view
            .as_ref()
            .is_some_and(|v| v.rows == self.stats.rows)
        {
            return Ok(());
        }
        let series: Vec<PriceSeries> = self
            .zone_prices
            .iter()
            .map(|p| PriceSeries::with_step(self.spec.start, self.spec.step, p.clone()))
            .collect();
        let handle = TraceHandle::new(TraceSet::new(series));
        self.view = Some(View {
            rows: self.stats.rows,
            api: Box::new(PerfectApi::new(handle.clone())),
            handle,
        });
        Ok(())
    }

    /// Ensure the warm decision session matches the current watermark,
    /// counting whether this query ran cold (scan rebuild) or warm
    /// (incremental reuse).
    fn warm_session(&mut self) -> Result<&mut DecisionSession, String> {
        self.refresh_view()?;
        match &self.warm {
            Some(w) if w.rows == self.stats.rows => self.stats.warm_advises += 1,
            _ => {
                let handle = self
                    .view
                    .as_ref()
                    .expect("view refreshed above")
                    .handle
                    .clone();
                let runner = AdaptiveRunner::new(handle, self.spec.start, self.cfg.clone());
                self.warm = Some(Warm {
                    rows: self.stats.rows,
                    session: runner.session(),
                });
                self.stats.cold_builds += 1;
            }
        }
        Ok(&mut self.warm.as_mut().expect("warm installed above").session)
    }

    fn advise(
        &mut self,
        now: SimTime,
        remaining_compute: SimDuration,
        remaining_time: SimDuration,
    ) -> Result<Advice, String> {
        let cfg = self.cfg.clone();
        let session = self.warm_session()?;
        let perm = session
            .decide(now, remaining_compute, remaining_time)
            .ok_or_else(|| {
                format!(
                    "no admissible permutation at now={} (no history before that instant?)",
                    now.secs()
                )
            })?;
        Ok(Advice::derive(
            &perm,
            remaining_compute,
            remaining_time,
            &cfg,
        ))
    }

    /// Poll the control plane at the market watermark and classify bid
    /// crossings. Edge-triggered per zone: a crossing fires one notice
    /// and stays silent until the price drops back under the bid. Only
    /// the cheap trace view is refreshed; the expensive warm scan is
    /// touched only when a crossing actually fires (to compute the
    /// attached re-decision), so routine sweeps of calm markets cost
    /// O(zones) price reads.
    fn poll(&mut self) -> Vec<Notice> {
        let Some(at) = self.last_sample_at() else {
            return Vec::new();
        };
        if self.refresh_view().is_err() {
            return Vec::new();
        }
        // First pass: classify crossings through the control plane.
        // Disjoint field borrows: the view's API advances (fault
        // decorators hold RNG state) while the edge flags are flipped.
        let mut crossings: Vec<(usize, Price)> = Vec::new();
        {
            let MarketState {
                spec,
                view,
                noticed,
                ..
            } = self;
            let view = view.as_mut().expect("view refreshed above");
            for (z, raised) in noticed.iter_mut().enumerate() {
                let price = match view.api.describe_price(at, redspot_trace::ZoneId(z)) {
                    Ok(ok) => ok.value,
                    Err(_) => continue, // fault-injecting planes: skip this poll
                };
                if price <= spec.bid {
                    *raised = false;
                } else if !*raised {
                    *raised = true;
                    crossings.push((z, price));
                }
            }
        }
        if crossings.is_empty() {
            return Vec::new();
        }
        // Second pass: one re-decision at the notice instant for the
        // paper's standard job — the push tells subscribers where the
        // controller would move now that these zones are dying. All
        // crossings in one sweep share the instant, so one decide serves
        // them all.
        let cfg = self.cfg.clone();
        let (work, deadline) = (cfg.app.work, cfg.deadline);
        let advice = self
            .warm_session()
            .ok()
            .and_then(|s| s.decide(at, work, deadline))
            .map(|perm| Advice::derive(&perm, work, deadline, &cfg));
        let (class, terminate_at) = match self.spec.era.rules().interruption_notice() {
            Some(notice) => ("reclaim", at + notice),
            None => ("out-of-bid", at),
        };
        let out: Vec<Notice> = crossings
            .into_iter()
            .map(|(zone, price)| Notice {
                market: self.spec.market.clone(),
                zone,
                at,
                price,
                class,
                terminate_at,
                advice: advice.clone(),
            })
            .collect();
        self.stats.notices += out.len() as u64;
        out
    }
}

/// The daemon's market table. See the module docs for the locking story.
pub struct Registry {
    markets: RwLock<HashMap<String, Arc<Mutex<MarketState>>>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            markets: RwLock::new(HashMap::new()),
        }
    }

    fn get(&self, market: &str) -> Result<Arc<Mutex<MarketState>>, String> {
        self.markets
            .read()
            .expect("registry lock")
            .get(market)
            .cloned()
            .ok_or_else(|| format!("unknown market '{market}' (open it first)"))
    }

    /// Admit a new market. Rejects duplicate ids — re-opening would
    /// silently reset another client's ingestion watermark.
    pub fn open(&self, spec: MarketSpec) -> Result<(), String> {
        let mut markets = self.markets.write().expect("registry lock");
        if markets.contains_key(&spec.market) {
            return Err(format!("market '{}' is already open", spec.market));
        }
        markets.insert(
            spec.market.clone(),
            Arc::new(Mutex::new(MarketState::new(spec))),
        );
        Ok(())
    }

    /// Append one aligned sample row; returns the new row count.
    pub fn ingest(&self, market: &str, at: SimTime, prices: &[Price]) -> Result<u64, String> {
        let m = self.get(market)?;
        let mut state = m.lock().expect("market lock");
        state.ingest(at, prices)
    }

    /// Answer an advisory query against the market's sealed trace view.
    pub fn advise(
        &self,
        market: &str,
        now: SimTime,
        remaining_compute: SimDuration,
        remaining_time: SimDuration,
    ) -> Result<Advice, String> {
        let m = self.get(market)?;
        let mut state = m.lock().expect("market lock");
        state.advise(now, remaining_compute, remaining_time)
    }

    /// A market's counters (plus its current watermark in seconds).
    pub fn stats(&self, market: &str) -> Result<(MarketStats, SimTime), String> {
        let m = self.get(market)?;
        let state = m.lock().expect("market lock");
        Ok((state.stats, state.watermark()))
    }

    /// Run one sentinel pass over `market`: poll its control plane at the
    /// watermark and return freshly raised interruption notices.
    pub fn poll_market(&self, market: &str) -> Vec<Notice> {
        match self.get(market) {
            Ok(m) => m.lock().expect("market lock").poll(),
            Err(_) => Vec::new(),
        }
    }

    /// Open a fresh market named `market` and ingest every aligned row
    /// of `traces` — the `serve --trace`/`--profile` preload path, so a
    /// daemon can come up already knowing a market's history instead of
    /// waiting for a client to stream it. Zones, start and step are
    /// derived from the trace; `era`, `bid` and `seed` parameterize the
    /// advisory config exactly as a client `open` would. Returns the row
    /// count ingested.
    pub fn preload(
        &self,
        market: &str,
        traces: &TraceSet,
        era: redspot_market::Era,
        bid: Price,
        seed: u64,
    ) -> Result<u64, String> {
        let zones = traces.n_zones();
        if zones == 0 {
            return Err("preload trace has no zones".into());
        }
        let first = traces.zone(redspot_trace::ZoneId(0));
        let (start, step) = (first.start(), first.step());
        self.open(MarketSpec {
            market: market.to_string(),
            zones,
            start,
            step,
            era,
            bid,
            seed,
        })?;
        let mut prices = vec![Price::from_millis(0); zones];
        for i in 0..first.len() {
            for (z, slot) in prices.iter_mut().enumerate() {
                *slot = traces.zones()[z].samples()[i];
            }
            let at = SimTime::from_secs(start.secs() + i as u64 * step);
            self.ingest(market, at, &prices)?;
        }
        Ok(first.len() as u64)
    }

    /// Run one sentinel pass over every market (deterministic order).
    pub fn poll_all(&self) -> Vec<Notice> {
        let mut ids: Vec<String> = self
            .markets
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids.iter().flat_map(|id| self.poll_market(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redspot_market::Era;

    fn spec(era: Era) -> MarketSpec {
        MarketSpec {
            market: "m".into(),
            zones: 2,
            start: SimTime::ZERO,
            step: 300,
            era,
            bid: Price::from_millis(810),
            seed: 0,
        }
    }

    fn open(reg: &Registry, era: Era) {
        reg.open(spec(era)).unwrap();
    }

    fn feed_flat(reg: &Registry, rows: u64, millis: u64) {
        for i in 0..rows {
            reg.ingest(
                "m",
                SimTime::from_secs(i * 300),
                &[Price::from_millis(millis); 2],
            )
            .unwrap();
        }
    }

    #[test]
    fn ingest_enforces_alignment_and_zone_count() {
        let reg = Registry::new();
        open(&reg, Era::Classic);
        let p = [Price::from_millis(270); 2];
        assert_eq!(reg.ingest("m", SimTime::ZERO, &p), Ok(1));
        // Wrong zone count.
        assert!(reg.ingest("m", SimTime::from_secs(300), &p[..1]).is_err());
        // Gap (skipping a step).
        assert!(reg.ingest("m", SimTime::from_secs(600), &p).is_err());
        // Replay (timestamp already ingested).
        assert!(reg.ingest("m", SimTime::ZERO, &p).is_err());
        assert_eq!(reg.ingest("m", SimTime::from_secs(300), &p), Ok(2));
        assert!(reg.open(spec(Era::Classic)).is_err(), "duplicate open");
    }

    #[test]
    fn preload_ingests_a_whole_trace_and_serves_advice() {
        let traces = redspot_trace::gen::GenConfig::low_volatility(9).generate();
        let reg = Registry::new();
        let rows = reg
            .preload("pre", &traces, Era::Classic, Price::from_millis(810), 9)
            .unwrap();
        assert_eq!(rows, traces.zone(redspot_trace::ZoneId(0)).len() as u64);
        let (stats, _) = reg.stats("pre").unwrap();
        assert_eq!(stats.rows, rows);
        // The watermark sits one step past the last row, so advice at the
        // trace end works against the full preloaded history.
        let now = traces.end();
        let advice = reg
            .advise(
                "pre",
                now,
                SimDuration::from_hours(20),
                SimDuration::from_hours(23),
            )
            .unwrap();
        assert!(advice.bid_millis > 0);
        // Same market name twice is the usual duplicate-open error.
        let err = reg
            .preload("pre", &traces, Era::Classic, Price::from_millis(810), 9)
            .unwrap_err();
        assert!(err.contains("already open"), "{err}");
    }

    #[test]
    fn advise_goes_cold_after_ingest_and_warm_between() {
        let reg = Registry::new();
        open(&reg, Era::Classic);
        feed_flat(&reg, 12 * 30, 270);
        let now = SimTime::from_hours(25);
        let (rc, rt) = (SimDuration::from_hours(20), SimDuration::from_hours(23));
        let a = reg.advise("m", now, rc, rt).unwrap();
        let b = reg.advise("m", now, rc, rt).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.bid_millis, 270, "flat $0.27 market: bid the floor");
        assert!(!a.forecast_on_demand);
        let (stats, _) = reg.stats("m").unwrap();
        assert_eq!((stats.cold_builds, stats.warm_advises), (1, 1));
        // New data invalidates the seal: next advise is cold again.
        reg.ingest(
            "m",
            SimTime::from_secs(12 * 30 * 300),
            &[Price::from_millis(270); 2],
        )
        .unwrap();
        reg.advise("m", now, rc, rt).unwrap();
        let (stats, _) = reg.stats("m").unwrap();
        assert_eq!((stats.cold_builds, stats.warm_advises), (2, 1));
    }

    #[test]
    fn advise_before_data_or_history_errors() {
        let reg = Registry::new();
        open(&reg, Era::Classic);
        let (rc, rt) = (SimDuration::from_hours(20), SimDuration::from_hours(23));
        assert!(reg.advise("m", SimTime::from_hours(1), rc, rt).is_err());
        assert!(reg.advise("nope", SimTime::from_hours(1), rc, rt).is_err());
    }

    #[test]
    fn sentinel_classifies_by_era_and_is_edge_triggered() {
        for (era, class, lag) in [
            (Era::Classic, "out-of-bid", 0),
            (Era::Modern, "reclaim", 120),
        ] {
            let reg = Registry::new();
            open(&reg, era);
            feed_flat(&reg, 12 * 24, 270);
            assert!(reg.poll_all().is_empty(), "cheap market: no notices");
            // Zone 1 spikes over the 810 bid.
            let t = SimTime::from_secs(12 * 24 * 300);
            reg.ingest(
                "m",
                t,
                &[Price::from_millis(270), Price::from_millis(2_000)],
            )
            .unwrap();
            let notices = reg.poll_all();
            assert_eq!(notices.len(), 1);
            let n = &notices[0];
            assert_eq!((n.zone, n.class), (1, class));
            assert_eq!(n.terminate_at, t + SimDuration::from_secs(lag));
            let advice = n.advice.as_ref().expect("re-decision attached");
            assert!(!advice.zones.is_empty());
            // Same excursion, second poll: silent (edge-triggered).
            assert!(reg.poll_all().is_empty());
            // Price recovers, then spikes again: a fresh notice fires.
            reg.ingest(
                "m",
                t + SimDuration::from_secs(300),
                &[Price::from_millis(270); 2],
            )
            .unwrap();
            assert!(reg.poll_all().is_empty());
            reg.ingest(
                "m",
                t + SimDuration::from_secs(600),
                &[Price::from_millis(270), Price::from_millis(3_000)],
            )
            .unwrap();
            assert_eq!(reg.poll_all().len(), 1);
            let (stats, _) = reg.stats("m").unwrap();
            assert_eq!(stats.notices, 2);
        }
    }
}
