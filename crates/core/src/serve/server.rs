//! The serve request router: one [`Server`] maps request lines to
//! response lines and fans interruption notices out to subscribers.
//!
//! The router is transport-agnostic — the TCP daemon and the CLI's stdio
//! mode both drive [`Server::handle_line`] and deliver the returned
//! [`Outcome`]: a reply for the requesting client, zero or more pushed
//! event lines with their target clients, and a shutdown signal. All
//! state (registry, subscriptions, error flag) is behind locks, so one
//! `Arc<Server>` is shared by every connection thread.

use super::proto::{self, parse_request, Request};
use super::registry::{Advice, Notice, Registry};
use serde::Value;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// A pushed event line and the client it is addressed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Push {
    /// Target client id.
    pub client: u64,
    /// The rendered event line (no trailing newline).
    pub line: String,
}

/// What one request line produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The reply to send back to the requesting client.
    pub reply: String,
    /// Event lines to deliver to subscribed clients (the requester
    /// included, if subscribed).
    pub pushes: Vec<Push>,
    /// Whether the daemon should stop accepting and exit.
    pub shutdown: bool,
}

/// Shared request router. See the module docs.
pub struct Server {
    registry: Registry,
    /// client id → market ids the client subscribed to.
    subs: RwLock<HashMap<u64, HashSet<String>>>,
    /// Sticky flag: any malformed or failed request line sets it, and the
    /// hosting process exits nonzero after shutdown (the CI smoke job's
    /// malformed-ingestion check rides on this).
    had_errors: AtomicBool,
}

impl Default for Server {
    fn default() -> Server {
        Server::new()
    }
}

impl Server {
    /// A server over an empty registry.
    pub fn new() -> Server {
        Server {
            registry: Registry::new(),
            subs: RwLock::new(HashMap::new()),
            had_errors: AtomicBool::new(false),
        }
    }

    /// The underlying market registry (tests, embedding).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Whether any request line failed since startup.
    pub fn had_errors(&self) -> bool {
        self.had_errors.load(Ordering::SeqCst)
    }

    /// Drop a disconnected client's subscriptions.
    pub fn forget_client(&self, client: u64) {
        self.subs.write().expect("subs lock").remove(&client);
    }

    /// Route `notices` to every subscriber of their markets, rendering
    /// each as an event line. Used by the daemon's sentinel thread and by
    /// the synchronous post-ingest poll.
    pub fn route_notices(&self, notices: &[Notice]) -> Vec<Push> {
        let subs = self.subs.read().expect("subs lock");
        let mut out = Vec::new();
        for n in notices {
            let line = notice_line(n);
            // Deterministic delivery order: by client id.
            let mut targets: Vec<u64> = subs
                .iter()
                .filter(|(_, markets)| markets.contains(&n.market))
                .map(|(&c, _)| c)
                .collect();
            targets.sort_unstable();
            out.extend(targets.into_iter().map(|client| Push {
                client,
                line: line.clone(),
            }));
        }
        out
    }

    /// Handle one request line from `client`.
    pub fn handle_line(&self, client: u64, raw: &str) -> Outcome {
        let line = raw.trim();
        if line.is_empty() {
            return Outcome {
                reply: String::new(),
                pushes: Vec::new(),
                shutdown: false,
            };
        }
        match parse_request(line) {
            Ok(req) => self.dispatch(client, req),
            Err(why) => self.fail(&why),
        }
    }

    fn fail(&self, why: &str) -> Outcome {
        self.had_errors.store(true, Ordering::SeqCst);
        Outcome {
            reply: proto::error_line(why),
            pushes: Vec::new(),
            shutdown: false,
        }
    }

    fn ok(reply: String, pushes: Vec<Push>) -> Outcome {
        Outcome {
            reply,
            pushes,
            shutdown: false,
        }
    }

    fn dispatch(&self, client: u64, req: Request) -> Outcome {
        match req {
            Request::Open(spec) => {
                let market = spec.market.clone();
                match self.registry.open(spec) {
                    Ok(()) => Self::ok(
                        proto::line(vec![
                            ("ok", Value::Bool(true)),
                            ("req", Value::Str("open".into())),
                            ("market", Value::Str(market)),
                        ]),
                        Vec::new(),
                    ),
                    Err(why) => self.fail(&why),
                }
            }
            Request::Ingest { market, at, prices } => {
                match self.registry.ingest(&market, at, &prices) {
                    Ok(rows) => {
                        // The sentinel classifies at the new watermark
                        // synchronously, so a spike in the ingested row
                        // reaches subscribers before the ingest ack of
                        // the *next* row — no polling latency window.
                        let pushes = self.route_notices(&self.registry.poll_market(&market));
                        Self::ok(
                            proto::line(vec![
                                ("ok", Value::Bool(true)),
                                ("req", Value::Str("ingest".into())),
                                ("market", Value::Str(market)),
                                ("rows", Value::UInt(rows)),
                            ]),
                            pushes,
                        )
                    }
                    Err(why) => self.fail(&why),
                }
            }
            Request::Advise {
                market,
                now,
                remaining_compute,
                remaining_time,
            } => match self
                .registry
                .advise(&market, now, remaining_compute, remaining_time)
            {
                Ok(advice) => Self::ok(
                    proto::line(vec![
                        ("ok", Value::Bool(true)),
                        ("req", Value::Str("advise".into())),
                        ("market", Value::Str(market)),
                        ("now", Value::UInt(now.secs())),
                        ("advice", advice_value(&advice)),
                    ]),
                    Vec::new(),
                ),
                Err(why) => self.fail(&why),
            },
            Request::Subscribe { market } => {
                // Unknown markets are a usage error, caught here rather
                // than as silently-undelivered pushes.
                if let Err(why) = self.registry.stats(&market) {
                    return self.fail(&why);
                }
                self.subs
                    .write()
                    .expect("subs lock")
                    .entry(client)
                    .or_default()
                    .insert(market.clone());
                Self::ok(
                    proto::line(vec![
                        ("ok", Value::Bool(true)),
                        ("req", Value::Str("subscribe".into())),
                        ("market", Value::Str(market)),
                    ]),
                    Vec::new(),
                )
            }
            Request::Stats { market } => match self.registry.stats(&market) {
                Ok((stats, watermark)) => Self::ok(
                    proto::line(vec![
                        ("ok", Value::Bool(true)),
                        ("req", Value::Str("stats".into())),
                        ("market", Value::Str(market)),
                        ("rows", Value::UInt(stats.rows)),
                        ("watermark", Value::UInt(watermark.secs())),
                        ("cold_builds", Value::UInt(stats.cold_builds)),
                        ("warm_advises", Value::UInt(stats.warm_advises)),
                        ("notices", Value::UInt(stats.notices)),
                    ]),
                    Vec::new(),
                ),
                Err(why) => self.fail(&why),
            },
            Request::Shutdown => Outcome {
                reply: proto::line(vec![
                    ("ok", Value::Bool(true)),
                    ("req", Value::Str("shutdown".into())),
                ]),
                pushes: Vec::new(),
                shutdown: true,
            },
        }
    }
}

/// Render an [`Advice`] as a JSON value. Float fields use the exact
/// shortest-round-trip rendering, so a served advice compares
/// byte-identically against one derived offline from the same trace.
fn advice_value(a: &Advice) -> Value {
    proto::obj(vec![
        ("bid", Value::UInt(a.bid_millis)),
        (
            "zones",
            Value::Seq(a.zones.iter().map(|&z| Value::UInt(z as u64)).collect()),
        ),
        ("policy", Value::Str(a.policy.clone())),
        (
            "predicted_cost_millis",
            Value::Float(a.predicted_cost_millis),
        ),
        ("od_fallback_millis", Value::Float(a.od_fallback_millis)),
        ("forecast_on_demand", Value::Bool(a.forecast_on_demand)),
    ])
}

/// Render a sentinel [`Notice`] as a pushed event line.
fn notice_line(n: &Notice) -> String {
    let mut entries = vec![
        ("event", Value::Str("interruption".into())),
        ("market", Value::Str(n.market.clone())),
        ("zone", Value::UInt(n.zone as u64)),
        ("at", Value::UInt(n.at.secs())),
        ("price", Value::UInt(n.price.millis())),
        ("class", Value::Str(n.class.into())),
        ("terminate_at", Value::UInt(n.terminate_at.secs())),
    ];
    if let Some(a) = &n.advice {
        entries.push(("advice", advice_value(a)));
    }
    proto::line(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_and_feed(srv: &Server, rows: u64) {
        let r = srv.handle_line(
            0,
            r#"{"req":"open","market":"m1","zones":2,"era":"modern","bid":810}"#,
        );
        assert!(r.reply.contains("\"ok\":true"), "{}", r.reply);
        for i in 0..rows {
            let at = i * 300;
            let r = srv.handle_line(
                0,
                &format!(r#"{{"req":"ingest","market":"m1","at":{at},"prices":[270,300]}}"#),
            );
            assert!(r.reply.contains("\"ok\":true"), "{}", r.reply);
        }
    }

    #[test]
    fn advise_round_trip_over_the_wire() {
        let srv = Server::new();
        open_and_feed(&srv, 12 * 26);
        let r = srv.handle_line(
            0,
            r#"{"req":"advise","market":"m1","now":90000,"remaining_compute":72000,"remaining_time":82800}"#,
        );
        assert!(r.reply.contains("\"ok\":true"), "{}", r.reply);
        assert!(r.reply.contains("\"advice\":{\"bid\":"), "{}", r.reply);
        assert!(!srv.had_errors());
        let stats = srv.handle_line(0, r#"{"req":"stats","market":"m1"}"#);
        assert!(stats.reply.contains("\"cold_builds\":1"), "{}", stats.reply);
    }

    #[test]
    fn pushes_reach_only_subscribers_and_errors_stick() {
        let srv = Server::new();
        open_and_feed(&srv, 12);
        // Client 7 subscribes; client 9 does not.
        let r = srv.handle_line(7, r#"{"req":"subscribe","market":"m1"}"#);
        assert!(r.reply.contains("\"ok\":true"));
        let spike = srv.handle_line(
            9,
            &format!(
                r#"{{"req":"ingest","market":"m1","at":{},"prices":[270,5000]}}"#,
                12 * 300
            ),
        );
        assert_eq!(spike.pushes.len(), 1, "{:?}", spike.pushes);
        assert_eq!(spike.pushes[0].client, 7);
        assert!(
            spike.pushes[0].line.contains("\"class\":\"reclaim\""),
            "{}",
            spike.pushes[0].line
        );
        assert!(
            spike.pushes[0]
                .line
                .contains(&format!("\"terminate_at\":{}", 12 * 300 + 120)),
            "{}",
            spike.pushes[0].line
        );
        assert!(!srv.had_errors());

        // Subscribing to an unknown market and malformed lines both set
        // the sticky error flag.
        let bad = srv.handle_line(7, r#"{"req":"ingest","market":"m1","at":0,"prices":[1.5]}"#);
        assert!(bad.reply.contains("\"ok\":false"));
        assert!(srv.had_errors());

        // Disconnect drops the subscription.
        srv.forget_client(7);
        let spike2 = srv.handle_line(
            9,
            &format!(
                r#"{{"req":"ingest","market":"m1","at":{},"prices":[270,270]}}"#,
                13 * 300
            ),
        );
        assert!(spike2.pushes.is_empty());
    }

    #[test]
    fn shutdown_signals_and_blank_lines_are_ignored() {
        let srv = Server::new();
        let r = srv.handle_line(0, "  ");
        assert!(r.reply.is_empty() && !r.shutdown);
        let r = srv.handle_line(0, r#"{"req":"shutdown"}"#);
        assert!(r.shutdown);
        assert!(r.reply.contains("\"ok\":true"));
    }
}
