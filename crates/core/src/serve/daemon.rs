//! The `redspot serve` TCP daemon: std-lib threads only, no async
//! runtime.
//!
//! One accept loop hands each connection to a reader thread; replies and
//! pushed events are written through a per-client writer slot (a cloned
//! stream behind a mutex) so a sentinel push never interleaves bytes
//! with an in-flight reply. A dedicated sentinel thread polls every
//! market's control plane on a fixed cadence and routes notices to
//! subscribers; ingests additionally classify synchronously (see
//! [`super::Server`]), so the thread is a safety net for quiet
//! connections, not the primary delivery path.
//!
//! Shutdown: a `shutdown` request flips the stop flag and pokes the
//! listener with a loopback connect so `accept` returns; reader threads
//! drain on client EOF. [`Daemon::run`] returns whether any request line
//! failed, which the CLI turns into a nonzero exit.

use super::server::{Outcome, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the sentinel thread sweeps every market, wall-clock.
const SENTINEL_PERIOD: Duration = Duration::from_millis(200);

/// A bound-but-not-yet-running serve daemon.
pub struct Daemon {
    listener: TcpListener,
    server: Arc<Server>,
}

/// The per-client write side: replies and pushes serialize on the mutex.
type Writers = Arc<Mutex<std::collections::HashMap<u64, TcpStream>>>;

impl Daemon {
    /// Bind `addr` (e.g. `127.0.0.1:7071`, or port 0 for an ephemeral
    /// port — tests read the chosen one back via
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(addr: &str) -> std::io::Result<Daemon> {
        Ok(Daemon {
            listener: TcpListener::bind(addr)?,
            server: Arc::new(Server::new()),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared router (tests, embedding).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Serve until a client sends `shutdown`. Returns `true` if every
    /// request line succeeded, `false` if any failed (the CLI maps that
    /// to a nonzero exit).
    pub fn run(self) -> bool {
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Writers = Arc::new(Mutex::new(std::collections::HashMap::new()));
        let next_client = AtomicU64::new(1);

        // Sentinel: periodic sweep over every market, pushing notices to
        // subscribers even when no ingest is in flight.
        let sentinel = {
            let server = Arc::clone(&self.server);
            let writers = Arc::clone(&writers);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let pushes = server.route_notices(&server.registry().poll_all());
                    for p in pushes {
                        deliver(&writers, p.client, &p.line);
                    }
                    std::thread::sleep(SENTINEL_PERIOD);
                }
            })
        };

        let mut readers = Vec::new();
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let client = next_client.fetch_add(1, Ordering::SeqCst);
            if let Ok(write_half) = stream.try_clone() {
                writers
                    .lock()
                    .expect("writers lock")
                    .insert(client, write_half);
            } else {
                continue;
            }
            let server = Arc::clone(&self.server);
            let writers_for_client = Arc::clone(&writers);
            let stop_for_client = Arc::clone(&stop);
            let addr = self.listener.local_addr().ok();
            readers.push(std::thread::spawn(move || {
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    let Outcome {
                        reply,
                        pushes,
                        shutdown,
                    } = server.handle_line(client, &line);
                    if !reply.is_empty() {
                        deliver(&writers_for_client, client, &reply);
                    }
                    for p in pushes {
                        deliver(&writers_for_client, p.client, &p.line);
                    }
                    if shutdown {
                        stop_for_client.store(true, Ordering::SeqCst);
                        // Poke the accept loop awake so it observes the flag.
                        if let Some(addr) = addr {
                            let _ = TcpStream::connect(addr);
                        }
                        break;
                    }
                }
                server.forget_client(client);
                writers_for_client
                    .lock()
                    .expect("writers lock")
                    .remove(&client);
            }));
        }

        stop.store(true, Ordering::SeqCst);
        for r in readers {
            let _ = r.join();
        }
        let _ = sentinel.join();
        !self.server.had_errors()
    }
}

/// Write one line to a client, dropping it silently if the client is
/// gone (its reader thread cleans the slot up).
fn deliver(writers: &Writers, client: u64, line: &str) {
    let mut map = writers.lock().expect("writers lock");
    if let Some(stream) = map.get_mut(&client) {
        let _ = writeln!(stream, "{line}");
        let _ = stream.flush();
    }
}

/// Run the serve protocol over stdio: one client (id 0), pushes inline
/// on stdout after the reply that caused them. Returns `true` when every
/// line succeeded. Used by `redspot serve --stdio` and the CI smoke job.
pub fn serve_stdio(input: impl std::io::BufRead, output: impl Write) -> std::io::Result<bool> {
    serve_stdio_with(&Server::new(), input, output)
}

/// [`serve_stdio`] against a caller-provided [`Server`] — the CLI uses
/// this to preload markets (`serve --trace FILE --stdio`) before the
/// first client line arrives.
pub fn serve_stdio_with(
    server: &Server,
    input: impl std::io::BufRead,
    mut output: impl Write,
) -> std::io::Result<bool> {
    for line in input.lines() {
        let line = line?;
        let Outcome {
            reply,
            pushes,
            shutdown,
        } = server.handle_line(0, &line);
        if !reply.is_empty() {
            writeln!(output, "{reply}")?;
        }
        for p in pushes {
            // Single-client transport: only client 0 can be subscribed.
            writeln!(output, "{}", p.line)?;
        }
        output.flush()?;
        if shutdown {
            break;
        }
    }
    Ok(!server.had_errors())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdio_session_round_trips_and_flags_errors() {
        let script = concat!(
            r#"{"req":"open","market":"m","zones":1,"bid":810}"#,
            "\n",
            r#"{"req":"subscribe","market":"m"}"#,
            "\n",
            r#"{"req":"ingest","market":"m","at":0,"prices":[270]}"#,
            "\n",
            r#"{"req":"ingest","market":"m","at":300,"prices":[2000]}"#,
            "\n",
            r#"{"req":"shutdown"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let clean = serve_stdio(script.as_bytes(), &mut out).unwrap();
        assert!(clean);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // open, subscribe, ingest, ingest + pushed notice, shutdown.
        assert_eq!(lines.len(), 6, "{text}");
        assert!(lines[4].contains("\"event\":\"interruption\""), "{text}");
        assert!(lines[4].contains("\"class\":\"out-of-bid\""), "{text}");
        assert!(lines[5].contains("\"req\":\"shutdown\""), "{text}");

        // A malformed line flips the exit to dirty but the session
        // continues to serve.
        let script = concat!(
            r#"{"req":"open","market":"m","zones":1}"#,
            "\n",
            "this is not json\n",
            r#"{"req":"stats","market":"m"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let clean = serve_stdio(script.as_bytes(), &mut out).unwrap();
        assert!(!clean);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"ok\":false"), "{text}");
        assert!(text.contains("\"rows\":0"), "{text}");
    }

    #[test]
    fn stdio_session_sees_a_preloaded_market() {
        use redspot_trace::Price;

        let traces = redspot_trace::gen::GenConfig::low_volatility(3).generate();
        let server = Server::new();
        let rows = server
            .registry()
            .preload(
                "preload",
                &traces,
                redspot_market::Era::Classic,
                Price::from_millis(810),
                3,
            )
            .unwrap();
        assert!(rows > 0);
        // A client connecting to the preloaded server can query the
        // market without opening or ingesting anything itself.
        let script = concat!(r#"{"req":"stats","market":"preload"}"#, "\n");
        let mut out = Vec::new();
        let clean = serve_stdio_with(&server, script.as_bytes(), &mut out).unwrap();
        assert!(clean);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(&format!("\"rows\":{rows}")), "{text}");
    }

    #[test]
    fn tcp_daemon_serves_and_shuts_down() {
        let daemon = Daemon::bind("127.0.0.1:0").unwrap();
        let addr = daemon.local_addr().unwrap();
        let handle = std::thread::spawn(move || daemon.run());

        let mut conn = TcpStream::connect(addr).unwrap();
        writeln!(conn, r#"{{"req":"open","market":"m","zones":1}}"#).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "{reply}");
        writeln!(conn, r#"{{"req":"shutdown"}}"#).unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"req\":\"shutdown\""), "{reply}");
        assert!(handle.join().unwrap(), "clean session exits clean");
    }
}
