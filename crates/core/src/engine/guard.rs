//! The deadline guard and the on-demand migration path — the enforcement
//! half of the paper's guarantee.

use super::{Engine, Phase};
use crate::run::{Event, TerminationCause};
use crate::telemetry::Recorder;
use redspot_market::StopCause;
use redspot_trace::{SimDuration, SimTime};

impl<R: Recorder> Engine<R> {
    /// The instant the deadline guard trips, measured from committed
    /// progress with a full `t_c + t_r` reserve — plus, when API faults
    /// are configured, the worst-case control-plane delay of the bounded
    /// on-demand retry loop, so even a flaky migration path cannot push
    /// completion past `D`. Zero extra under
    /// [`ApiFaultPlan::none`](redspot_market::ApiFaultPlan::none).
    pub(super) fn guard_time(&self) -> SimTime {
        let needed = self.replicas.remaining_committed()
            + self.cfg.costs.migration()
            + self.supervisor.od_reserve();
        self.deadline_abs.saturating_sub(needed)
    }

    pub(super) fn handle_guard(&mut self) -> bool {
        if self.ckpt.is_some() {
            // A checkpoint is already in flight; decide at its commit.
            if !self.guard_pending {
                self.guard_pending = true;
                return true;
            }
            return false;
        }
        if self.guard_pending {
            // The reserve attempt was already spent: the in-flight
            // checkpoint aborted (its zone was terminated or retired).
            // Starting another checkpoint would overrun the t_c + t_r
            // reserve and break the deadline guarantee — migrate now.
            self.migrate_to_on_demand();
            return true;
        }
        match self.leader() {
            Some(leader) => {
                // Protective checkpoint: commit the leader's position, then
                // re-evaluate. The t_c + t_r reserve makes this safe even
                // if the leader dies mid-checkpoint.
                self.guard_pending = true;
                self.begin_checkpoint(leader);
            }
            None => self.migrate_to_on_demand(),
        }
        true
    }

    pub(super) fn migrate_to_on_demand(&mut self) {
        debug_assert!(self.phase == Phase::Spot);
        // Close the I/O-server span: on-demand compute no longer needs the
        // checkpoint server.
        if let Some(since) = self.io_active_since.take() {
            self.io_total += self.now.since(since);
        }
        // The on-demand path restores from the I/O server directly, which
        // is reliable storage (Section 5): it holds the furthest committed
        // generation regardless of spot-side read corruption. That is
        // always at least the newest *valid* generation the guard budgeted
        // for, so the migration can only finish earlier than the guard's
        // reserve assumed — the deadline guarantee survives every fault
        // schedule. Identical to `committed()` under `FaultPlan::none`.
        let committed = self.replicas.reliable().max(self.replicas.committed());
        self.record(Event::SwitchedToOnDemand {
            at: self.now,
            committed,
        });
        for i in 0..self.zones.len() {
            if self.zones[i].inst.is_billable() {
                self.stop_zone(i, StopCause::User, TerminationCause::Voluntary);
            } else {
                self.zones[i].inst = redspot_market::InstanceState::Down;
            }
        }
        // The migration path's own escape hatch: the on-demand request is
        // retried up to the plan's bound and then forced through, so its
        // delay never exceeds the `od_reserve` the guard already budgeted
        // for. Zero under `ApiFaultPlan::none`.
        let od_delay = self.supervisor.request_on_demand(self.now);
        if od_delay > SimDuration::ZERO {
            self.record(Event::OnDemandDelayed {
                at: self.now,
                delay: od_delay,
            });
        }
        let restart = if committed > SimDuration::ZERO {
            self.cfg.costs.restart
        } else {
            SimDuration::ZERO
        };
        let need = restart + (self.cfg.app.work - committed);
        let od_start = self.now + od_delay;
        let finish = od_start + need;
        self.od_cost += self.rules().on_demand_cost(od_start, finish);
        self.used_on_demand = true;
        self.phase = Phase::OnDemand(finish);
    }
}
