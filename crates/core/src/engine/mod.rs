//! The Algorithm-1 simulation engine.
//!
//! An event-driven simulator that executes one experiment configuration
//! against recorded (or synthetic) spot-price traces, enforcing:
//!
//! * EC2 spot semantics — fixed bids, abrupt out-of-bid termination,
//!   hour-boundary billing, free out-of-bid partial hours, queuing delays;
//! * Algorithm 1 — the *waiting* state (an affordable zone idles until the
//!   next checkpoint so it can restart from fresh state), restart of all
//!   waiting zones when every zone is down, and pluggable
//!   `CheckpointCondition` / `ScheduleNextCheckpoint` policies;
//! * the deadline guarantee (line 11) — a guard that keeps
//!   `T_r ≥ C_r + t_c + t_r` *measured from committed progress*. When the
//!   guard trips, the engine first takes a protective checkpoint (if a
//!   replica is executing); if the margin is restored by the commit, spot
//!   execution continues, otherwise execution migrates to a single
//!   on-demand instance, which always completes by `D`.
//!
//! The guard-then-checkpoint refinement is what makes the guarantee hard:
//! firing on *committed* progress with a `t_c + t_r` reserve means even a
//! termination during the protective checkpoint still leaves time to
//! restart on-demand from the previous checkpoint (see DESIGN.md).
//!
//! The engine is split along its natural seams; this module holds the
//! state, the constructors, and the [`Engine::process_now`] dispatcher,
//! while each concern lives in its own submodule:
//!
//! * [`clock`](self) — the run/step loop, the next-event hop, and fuel;
//! * `zones` — boot/terminate/replica lifecycle and the market scan;
//! * `billing` — hour-boundary processing and I/O-server accounting;
//! * `ckpt_flow` — checkpoint/restore propagation;
//! * `guard` — the deadline guard and on-demand migration;
//! * `control` — accessors and the adaptive controller's mutators;
//! * `snapshot` — point-in-time views and the on-demand baseline.
//!
//! Every event the engine emits is routed through a pluggable
//! [`Recorder`](crate::telemetry::Recorder) sink (see
//! [`telemetry`](crate::telemetry)); the default [`VecRecorder`] retains
//! the full log in `RunResult::events`, while `NullRecorder` makes
//! observation free.

mod billing;
mod ckpt_flow;
mod clock;
mod control;
mod guard;
mod snapshot;
#[cfg(test)]
mod tests;
mod zones;

pub use snapshot::{on_demand_run, Snapshot, ZoneSnapshot};

use crate::config::{ConfigError, ExperimentConfig, IntoValidated};
use crate::faults::FaultPlan;
use crate::policy::{Policy, PolicyCtx};
use crate::run::Event;
use crate::supervisor::Supervisor;
use crate::telemetry::{Recorder, VecRecorder};
use ckpt_flow::CkptRt;
use rand::rngs::StdRng;
use rand::SeedableRng;
use redspot_ckpt::ReplicaSet;
use redspot_market::{
    ApiFaultPlan, CloudApi, DelayModel, FaultyApi, InstanceState, MarketRules, OutageSchedule,
    PerfectApi,
};
use redspot_trace::{Price, SimDuration, SimTime, TraceHandle};
use zones::ZoneRt;

/// Execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Bidding on the spot market.
    Spot,
    /// Migrated to on-demand; completes at the contained instant.
    OnDemand(SimTime),
    /// Finished.
    Done,
}

/// What a single [`Engine::step`] did — the adaptive controller keys its
/// re-evaluation off these flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepReport {
    /// An instance was terminated out-of-bid during this step.
    pub termination: bool,
    /// A billing hour ended during this step.
    pub hour_boundary: bool,
    /// The run finished (completed or fully migrated and done).
    pub done: bool,
}

/// The Algorithm-1 engine. Construct with [`Engine::new`], then either
/// [`Engine::run`] to completion or drive it with [`Engine::step`] (the
/// adaptive controller does the latter, mutating bid/zones/policy at
/// decision points).
///
/// Generic over its telemetry sink `R`; the default [`VecRecorder`]
/// retains the full event log, pinning the engine's historical behavior.
/// Use [`Engine::try_with_parts`] to plug any other
/// [`Recorder`](crate::telemetry::Recorder) statically.
pub struct Engine<R: Recorder = VecRecorder> {
    traces: TraceHandle,
    cfg: ExperimentConfig,
    start: SimTime,
    deadline_abs: SimTime,
    policy: Box<dyn Policy>,
    delay: DelayModel,
    rng: StdRng,
    /// Dedicated RNG for fault draws, kept separate from the queuing-delay
    /// RNG so a [`FaultPlan::none`] run is bit-identical to an engine
    /// without the fault layer: with no faults enabled this stream is
    /// never advanced.
    fault_rng: StdRng,
    /// Per-zone blackout schedules (all empty under [`FaultPlan::none`]).
    outages: Vec<OutageSchedule>,
    /// The control-plane supervisor: every market action (spot request,
    /// terminate, price read, on-demand request) routes through it. Under
    /// [`ApiFaultPlan::none`] it wraps a [`PerfectApi`] and the engine is
    /// bit-identical to one acting on the market directly.
    supervisor: Supervisor<Box<dyn CloudApi + Send>>,

    now: SimTime,
    zones: Vec<ZoneRt>,
    replicas: ReplicaSet,
    ckpt: Option<CkptRt>,
    /// Deadline guard tripped; decide migrate-vs-continue when the
    /// in-flight checkpoint commits.
    guard_pending: bool,
    /// Consecutive `InsufficientCapacity` denials per zone slot, driving
    /// the degradation ladder. Reset on any accepted request or
    /// non-capacity denial; always zero when the ladder is off.
    cap_denials: Vec<u32>,
    /// Admission-control deferrals taken so far (ladder rung 2).
    deferrals: u32,

    phase: Phase,
    spot_cost: Price,
    od_cost: Price,
    checkpoints: u32,
    restarts: u32,
    oob_terminations: u32,
    used_on_demand: bool,
    last_commit_or_restart: SimTime,
    /// The observability sink: every emitted event flows through here.
    recorder: R,
    finished_at: SimTime,
    /// I/O-server accounting: the instant the current spot-activity span
    /// began (the on-demand I/O server runs while any spot instance is
    /// billable), and the accumulated span total.
    io_active_since: Option<SimTime>,
    io_total: SimDuration,
    /// Last step's total charge, for the cost-monotonicity invariant
    /// (debug builds only).
    #[cfg(debug_assertions)]
    last_total_cost: Price,
}

impl Engine {
    /// Build an engine starting at `start` within `traces`, using the
    /// paper's measured queuing-delay model and the default
    /// [`VecRecorder`] sink (the full event log lands in
    /// `RunResult::events`).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or references zones outside
    /// the trace set; see [`Engine::try_new`] for the non-panicking form.
    pub fn new(
        traces: impl Into<TraceHandle>,
        start: SimTime,
        cfg: impl IntoValidated,
        policy: Box<dyn Policy>,
    ) -> Engine {
        Engine::try_new(traces, start, cfg, policy).expect("invalid experiment configuration")
    }

    /// Fallible [`Engine::new`]: returns the configuration problem instead
    /// of panicking.
    pub fn try_new(
        traces: impl Into<TraceHandle>,
        start: SimTime,
        cfg: impl IntoValidated,
        policy: Box<dyn Policy>,
    ) -> Result<Engine, ConfigError> {
        Engine::try_with_delay_model(traces, start, cfg, policy, DelayModel::paper())
    }

    /// Build with an explicit queuing-delay model (tests, ablations).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or references zones outside
    /// the trace set; see [`Engine::try_with_delay_model`].
    pub fn with_delay_model(
        traces: impl Into<TraceHandle>,
        start: SimTime,
        cfg: impl IntoValidated,
        policy: Box<dyn Policy>,
        delay: DelayModel,
    ) -> Engine {
        Engine::try_with_delay_model(traces, start, cfg, policy, delay)
            .expect("invalid experiment configuration")
    }

    /// Fallible [`Engine::with_delay_model`]: returns the configuration
    /// problem instead of panicking.
    pub fn try_with_delay_model(
        traces: impl Into<TraceHandle>,
        start: SimTime,
        cfg: impl IntoValidated,
        policy: Box<dyn Policy>,
        delay: DelayModel,
    ) -> Result<Engine, ConfigError> {
        Engine::try_with_parts(traces, start, cfg, policy, delay, VecRecorder::new())
    }
}

impl<R: Recorder> Engine<R> {
    /// Build with an explicit telemetry sink and the paper's queuing-delay
    /// model. `NullRecorder` makes observation free (sweeps, forecasts);
    /// `JsonlRecorder` streams the trace; tuples tee.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or references zones outside
    /// the trace set; see [`Engine::try_with_recorder`].
    pub fn with_recorder(
        traces: impl Into<TraceHandle>,
        start: SimTime,
        cfg: impl IntoValidated,
        policy: Box<dyn Policy>,
        recorder: R,
    ) -> Engine<R> {
        Engine::try_with_recorder(traces, start, cfg, policy, recorder)
            .expect("invalid experiment configuration")
    }

    /// Fallible [`Engine::with_recorder`].
    pub fn try_with_recorder(
        traces: impl Into<TraceHandle>,
        start: SimTime,
        cfg: impl IntoValidated,
        policy: Box<dyn Policy>,
        recorder: R,
    ) -> Result<Engine<R>, ConfigError> {
        Engine::try_with_parts(traces, start, cfg, policy, DelayModel::paper(), recorder)
    }

    /// The fully-general constructor: explicit queuing-delay model and
    /// telemetry sink. Every other constructor delegates here.
    ///
    /// Accepts either a raw [`ExperimentConfig`] (validated on the way in
    /// via [`ExperimentConfig::build`]) or a pre-sealed
    /// [`crate::ValidatedConfig`] (free) — the sealed form is the only
    /// path past this boundary, so invalid configs are unrepresentable
    /// inside the engine.
    pub fn try_with_parts(
        traces: impl Into<TraceHandle>,
        start: SimTime,
        cfg: impl IntoValidated,
        policy: Box<dyn Policy>,
        delay: DelayModel,
        recorder: R,
    ) -> Result<Engine<R>, ConfigError> {
        let traces = traces.into();
        let cfg = cfg.into_validated()?;
        // The control plane: perfect unless API faults are configured, in
        // which case the perfect API is wrapped in the deterministic fault
        // injector. The supervisor's jitter RNG gets a decorrelated seed;
        // both streams are only advanced when API faults are enabled.
        let api: Box<dyn CloudApi + Send> = if cfg.api.is_none() {
            Box::new(PerfectApi::new(traces.clone()))
        } else {
            Box::new(FaultyApi::new(
                PerfectApi::new(traces.clone()),
                cfg.api,
                ApiFaultPlan::rng_seed(cfg.seed),
            ))
        };
        Engine::try_with_api(traces, start, cfg, policy, delay, recorder, api)
    }

    /// [`Engine::try_with_parts`] with an externally-built control plane.
    /// This is the fleet seam: a fleet wraps each job's API in a
    /// [`redspot_market::ContendedApi`] sharing one capacity pool, so
    /// insufficient-capacity errors emerge from the fleet's own draining
    /// rather than fault-plan coin flips. The api must honour the same
    /// contract as the default stack (notably: deterministic given the
    /// config seed) for runs to be reproducible.
    #[allow(clippy::too_many_arguments)]
    pub fn try_with_api(
        traces: impl Into<TraceHandle>,
        start: SimTime,
        cfg: impl IntoValidated,
        policy: Box<dyn Policy>,
        delay: DelayModel,
        recorder: R,
        api: Box<dyn CloudApi + Send>,
    ) -> Result<Engine<R>, ConfigError> {
        let traces = traces.into();
        let cfg = cfg.into_validated()?.into_inner();
        if let Some(&zone) = cfg.zones.iter().find(|z| z.0 >= traces.n_zones()) {
            return Err(ConfigError::ZoneOutOfRange {
                zone,
                n_zones: traces.n_zones(),
            });
        }
        let n = cfg.zones.len();
        let deadline_abs = start + cfg.deadline;
        let outages = (0..n)
            .map(|i| cfg.faults.outage_schedule(cfg.seed, i, start, cfg.deadline))
            .collect();
        let supervisor = Supervisor::new(
            api,
            cfg.api,
            n,
            ApiFaultPlan::rng_seed(cfg.seed ^ 0x5C4A_11ED_B0FF_5EED),
        );
        let mut engine = Engine {
            traces,
            start,
            deadline_abs,
            policy,
            delay,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xD1B5_4A32_D192_ED03),
            fault_rng: StdRng::seed_from_u64(FaultPlan::rng_seed(cfg.seed)),
            outages,
            supervisor,
            now: start,
            zones: (0..n)
                .map(|_| ZoneRt {
                    inst: InstanceState::Down,
                    billing: None,
                    bid: cfg.bid,
                    busy_until: start,
                    retire: false,
                    active: true,
                    boot_retries: 0,
                    blocked_until: start,
                    notice_until: None,
                })
                .collect(),
            replicas: ReplicaSet::new(cfg.app, n),
            ckpt: None,
            guard_pending: false,
            cap_denials: vec![0; n],
            deferrals: 0,
            phase: Phase::Spot,
            spot_cost: Price::ZERO,
            od_cost: Price::ZERO,
            checkpoints: 0,
            restarts: 0,
            oob_terminations: 0,
            used_on_demand: false,
            last_commit_or_restart: start,
            recorder,
            finished_at: start,
            io_active_since: None,
            io_total: SimDuration::ZERO,
            #[cfg(debug_assertions)]
            last_total_cost: Price::ZERO,
            cfg,
        };
        let ctx_needed = engine.phase == Phase::Spot;
        if ctx_needed {
            engine.with_ctx(|policy, ctx| policy.reschedule(ctx));
        }
        Ok(engine)
    }

    // ------------------------------------------------------------------
    // Event processing: the dispatcher.

    /// Handle every condition due at `self.now`, dispatching to the
    /// concern submodules in their fixed order. Returns true if any state
    /// changed (the caller loops until quiescent).
    fn process_now(&mut self, report: &mut StepReport) -> bool {
        let mut acted = false;

        // 1. Completion?
        if self.try_complete() {
            return true;
        }

        // 2. Checkpoint completion.
        if let Some(c) = self.ckpt {
            if c.done_at <= self.now && self.zones[c.zone].inst.is_up() {
                self.finish_checkpoint(c);
                acted = true;
            }
        }

        // 3. Boot completions (or injected boot failures at the ready
        //    instant: InsufficientInstanceCapacity and friends).
        for i in 0..self.zones.len() {
            if let InstanceState::Booting { ready_at } = self.zones[i].inst {
                if ready_at <= self.now {
                    if self.boot_fails() {
                        self.boot_failed(i);
                    } else {
                        self.start_replica(i);
                    }
                    acted = true;
                }
            }
        }

        // 4. Hour boundaries — before the market scan, so an hour that
        //    completes at the same instant the price moves out of bid is
        //    still charged (the termination only voids the *new* hour).
        acted |= self.process_hour_boundaries(report);

        // 4b. Injected zone blackouts — after the boundaries for the same
        //     reason, before the market scan so a dark zone cannot
        //     transition to waiting in the same instant.
        acted |= self.enforce_blackouts(report);

        // 5. Market scan: out-of-bid terminations, waiting transitions.
        acted |= self.scan_market(report);

        // 6. Deadline guard.
        if self.phase == Phase::Spot && self.now >= self.guard_time() {
            acted |= self.handle_guard();
            if self.phase != Phase::Spot {
                return true;
            }
        }

        // 7. Restart waiting zones when nothing is billable (Alg. 1
        //    lines 29–33).
        if self.phase == Phase::Spot
            && !self.zones.iter().any(|z| z.inst.is_billable())
            && self.zones.iter().any(|z| z.inst.is_waiting())
        {
            for i in 0..self.zones.len() {
                if self.zones[i].inst.is_waiting() {
                    self.request_instance(i);
                    acted = true;
                }
            }
        }

        // 8. Policy checkpoint condition.
        if self.phase == Phase::Spot && self.ckpt.is_none() {
            if let Some(leader) = self.leader() {
                let due = self.retirement_ckpt_due(leader)
                    || self.with_ctx(|policy, ctx| policy.checkpoint_now(ctx));
                if due {
                    self.begin_checkpoint(leader);
                    acted = true;
                }
            }
        }

        self.update_io_tracking();
        acted
    }

    // ------------------------------------------------------------------
    // Plumbing.

    /// The market regime this run bills and terminates under. `'static`
    /// singletons, so the borrow never entangles with engine state.
    pub(super) fn rules(&self) -> &'static dyn MarketRules {
        self.cfg.era.rules()
    }

    /// Run `f` with a freshly-assembled policy context. Factored this way
    /// because the context borrows engine fields while the policy needs
    /// `&mut self.policy`.
    fn with_ctx<T>(&mut self, f: impl FnOnce(&mut dyn Policy, &PolicyCtx) -> T) -> T {
        let up: Vec<bool> = self.zones.iter().map(|z| z.inst.is_up()).collect();
        let leader = (0..self.zones.len())
            .filter(|&i| up[i])
            .max_by_key(|&i| (self.replicas.position(i), std::cmp::Reverse(i)));
        // Classic: the leader's maintained billing boundary. Modern: no
        // settlement boundary exists, but the hour-oriented policies
        // (Periodic, Large-bid) still key their cadence off launch-anchored
        // hour marks, so the meter's anchor stands in.
        let rules = self.rules();
        let now = self.now;
        let leader_boundary = leader.and_then(|i| {
            self.zones[i].billing.map(|m| {
                rules
                    .next_settlement(&m)
                    .unwrap_or_else(|| m.hour_anchor_after(now))
            })
        });
        let ctx = PolicyCtx {
            now: self.now,
            start: self.start,
            bid: self.cfg.bid,
            costs: self.cfg.costs,
            traces: &self.traces,
            zone_ids: &self.cfg.zones,
            up: &up,
            leader_boundary,
            leader,
            last_commit_or_restart: self.last_commit_or_restart,
        };
        f(self.policy.as_mut(), &ctx)
    }

    /// Emit one event into the telemetry sink. With `NullRecorder` this
    /// inlines to nothing and the event construction is elided.
    #[inline]
    fn record(&mut self, e: Event) {
        self.recorder.record(e);
    }

    /// Internal-consistency checks, compiled into debug builds only and
    /// re-verified after every [`Engine::step`]:
    ///
    /// * a zone has billing state iff its instance is billable;
    /// * committed progress never exceeds the best live position;
    /// * the reliable (I/O-server) position covers the committed one;
    /// * total charge is monotone;
    /// * an in-flight checkpoint's zone is billable.
    fn check_invariants(&mut self) {
        #[cfg(debug_assertions)]
        {
            for (i, z) in self.zones.iter().enumerate() {
                assert_eq!(
                    z.billing.is_some(),
                    z.inst.is_billable(),
                    "zone {i}: billing {:?} inconsistent with state {:?}",
                    z.billing,
                    z.inst
                );
                assert!(
                    z.notice_until.is_none() || z.inst.is_billable(),
                    "zone {i}: interruption notice pending on a non-billable zone"
                );
            }
            assert!(
                self.replicas.committed() <= self.replicas.best_position(),
                "committed progress ahead of best position"
            );
            assert!(
                self.replicas.reliable() >= self.replicas.committed(),
                "reliable store behind committed progress"
            );
            if let Some(c) = self.ckpt {
                assert!(
                    self.zones[c.zone].inst.is_billable(),
                    "in-flight checkpoint on a dead zone"
                );
            }
            let total = self.spot_cost + self.od_cost;
            assert!(
                total >= self.last_total_cost,
                "total cost decreased: {total} < {}",
                self.last_total_cost
            );
            self.last_total_cost = total;
        }
    }
}
