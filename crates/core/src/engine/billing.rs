//! Billing: hour-boundary processing and I/O-server accounting.

use super::{Engine, Phase, StepReport};
use crate::run::{Event, TerminationCause};
use crate::telemetry::Recorder;
use redspot_market::StopCause;
use redspot_trace::Price;

impl<R: Recorder> Engine<R> {
    /// Settle every billing period ending at the current instant.
    ///
    /// Classic: charge the completed hour at its fixed rate — or retire
    /// the zone if the policy (or an adaptive retirement) asks for a
    /// voluntary stop at the boundary. The new hour's rate comes from the
    /// *observed* price, not the raw trace: billing is market state the
    /// scheduler learns through the control plane, so it shares the
    /// stale-observation semantics of the Waiting/Down scan arms (a
    /// failed read fixes the hour at the last known rate and records
    /// `StalePriceUsed`). Identical to the true price when the control
    /// plane is healthy.
    ///
    /// Modern: there are no settlement boundaries, so the only work here
    /// is retirement — which has no boundary to wait for and therefore
    /// happens immediately.
    pub(super) fn process_hour_boundaries(&mut self, report: &mut StepReport) -> bool {
        let mut acted = false;
        for i in 0..self.zones.len() {
            let Some(billing) = self.zones[i].billing else {
                continue;
            };
            let rules = self.rules();
            let Some(due) = rules.next_settlement(&billing) else {
                if self.zones[i].retire {
                    self.stop_zone(i, StopCause::User, TerminationCause::Voluntary);
                    acted = true;
                }
                continue;
            };
            if due > self.now {
                continue;
            }
            report.hour_boundary = true;
            acted = true;
            let stop =
                self.zones[i].retire || self.with_ctx(|policy, ctx| policy.voluntary_stop(ctx, i));
            if stop {
                self.stop_zone(i, StopCause::User, TerminationCause::Voluntary);
            } else {
                let mut meter = billing;
                let charged_rate = meter.current_rate();
                let rate = self.observed_price(i).unwrap_or(charged_rate);
                rules.settle(&mut meter, self.now, rate);
                self.zones[i].billing = Some(meter);
                self.record(Event::HourCharged {
                    at: self.now,
                    zone: self.cfg.zones[i],
                    rate: charged_rate,
                });
            }
        }
        acted
    }

    /// Track the union of time during which any spot instance is billable
    /// — that is when the on-demand I/O server must be up (Section 5).
    pub(super) fn update_io_tracking(&mut self) {
        if self.cfg.io_server.is_none() {
            return;
        }
        let active = self.phase == Phase::Spot && self.zones.iter().any(|z| z.inst.is_billable());
        match (active, self.io_active_since) {
            (true, None) => self.io_active_since = Some(self.now),
            (false, Some(since)) => {
                self.io_total += self.now.since(since);
                self.io_active_since = None;
            }
            _ => {}
        }
    }

    /// Total I/O-server charge so far.
    pub(super) fn io_cost(&self) -> Price {
        match self.cfg.io_server {
            None => Price::ZERO,
            Some(rate) => {
                let mut total = self.io_total;
                if let Some(since) = self.io_active_since {
                    total += self.now.since(since);
                }
                rate * total.billed_hours()
            }
        }
    }
}
