//! Zone lifecycle: the market scan, spot requests, boot completions and
//! failures, replica starts, terminations, and blackout enforcement.

use super::{Engine, Phase, StepReport};
use crate::run::{Event, TerminationCause};
use crate::supervisor::{DenyReason, RequestOutcome};
use crate::telemetry::Recorder;
use rand::Rng;
use redspot_market::{ApiError, InstanceState, SpotBilling, StopCause};
use redspot_trace::{Price, SimDuration, SimTime};

/// Per-zone runtime state.
#[derive(Debug, Clone)]
pub(super) struct ZoneRt {
    pub(super) inst: InstanceState,
    pub(super) billing: Option<SpotBilling>,
    /// Bid attached to the current request (spot requests are fixed-bid;
    /// an engine-level bid change only affects *future* requests).
    pub(super) bid: Price,
    /// Restart/checkpoint overhead: the replica makes no progress before
    /// this instant.
    pub(super) busy_until: SimTime,
    /// Stop voluntarily at the next hour boundary (adaptive retirement).
    pub(super) retire: bool,
    /// Whether this zone participates at all (adaptive `N` control).
    pub(super) active: bool,
    /// Consecutive injected boot failures (resets when a boot succeeds);
    /// drives the retry backoff.
    pub(super) boot_retries: u32,
    /// No new spot request before this instant (boot-retry backoff).
    /// Initialized to the experiment start, so it never gates anything
    /// until a boot failure pushes it forward.
    pub(super) blocked_until: SimTime,
}

impl<'t, R: Recorder> Engine<'t, R> {
    pub(super) fn scan_market(&mut self, report: &mut StepReport) -> bool {
        if self.phase != Phase::Spot {
            return false;
        }
        let mut acted = false;
        let resume_at = self.policy.resume_threshold();
        for i in 0..self.zones.len() {
            let price = self.traces.price_at(self.cfg.zones[i], self.now);
            match self.zones[i].inst {
                InstanceState::Up | InstanceState::Booting { .. } => {
                    if price > self.zones[i].bid {
                        self.terminate_out_of_bid(i);
                        report.termination = true;
                        acted = true;
                    }
                }
                InstanceState::Down if self.zones[i].active => {
                    // Fault gates: no requests while a boot-retry backoff
                    // (or a supervisor retry backoff / quarantine) is
                    // pending or the zone is blacked out. All inert under
                    // the no-fault plans (`blocked_until` stays at the
                    // start and the outage schedule is empty).
                    if self.now < self.zones[i].blocked_until
                        || self.outages[i].blacked_out(self.now).is_some()
                    {
                        continue;
                    }
                    // Scheduler decision: runs on the supervisor's
                    // (possibly stale) price view, not the true price.
                    let Some(observed) = self.observed_price(i) else {
                        continue;
                    };
                    let threshold = resume_at.unwrap_or(self.cfg.bid);
                    if observed <= threshold {
                        self.zones[i].inst = InstanceState::Waiting;
                        self.record(Event::Waiting {
                            at: self.now,
                            zone: self.cfg.zones[i],
                        });
                        acted = true;
                    }
                }
                InstanceState::Waiting => {
                    if !self.zones[i].active {
                        self.zones[i].inst = InstanceState::Down;
                        acted = true;
                        continue;
                    }
                    // As in the Down arm: no observation means no
                    // decision — never fall back to the true trace
                    // price, which the scheduler cannot see.
                    let Some(observed) = self.observed_price(i) else {
                        continue;
                    };
                    let threshold = resume_at.unwrap_or(self.cfg.bid);
                    if observed > threshold {
                        self.zones[i].inst = InstanceState::Down;
                        acted = true;
                    }
                }
                InstanceState::Down => {}
            }
        }
        acted
    }

    /// The scheduler-side price for configured zone `i`: the supervisor's
    /// latest (possibly stale) observation. A failed read falls back to
    /// the last known price and records the staleness window; `None` only
    /// if the zone's price has never been observed. Identical to the true
    /// trace price under [`ApiFaultPlan::none`](redspot_market::ApiFaultPlan::none).
    fn observed_price(&mut self, i: usize) -> Option<Price> {
        let zone = self.cfg.zones[i];
        let (view, stale) = self.supervisor.observe_price(i, zone, self.now)?;
        if stale {
            self.record(Event::StalePriceUsed {
                at: self.now,
                zone,
                age: view.age(self.now),
            });
        }
        Some(view.price)
    }

    /// The executing replica with the furthest position (ties broken by
    /// lowest index).
    pub(super) fn leader(&self) -> Option<usize> {
        (0..self.zones.len())
            .filter(|&i| self.zones[i].inst.is_up())
            .max_by_key(|&i| (self.replicas.position(i), std::cmp::Reverse(i)))
    }

    /// Submit a spot request for configured zone `i` through the
    /// supervisor. On acceptance the control-plane round-trip latency is
    /// folded into the boot delay; on denial (API failure, quarantine, or
    /// exhausted retry budget) the zone goes down, unbilled, until the
    /// supervisor's retry instant. Under
    /// [`ApiFaultPlan::none`](redspot_market::ApiFaultPlan::none) requests
    /// are always accepted with zero latency — the pre-supervisor path.
    pub(super) fn request_instance(&mut self, i: usize) {
        debug_assert!(self.zones[i].inst.is_waiting());
        let zone = self.cfg.zones[i];
        let slack = self.guard_time().since(self.now);
        match self
            .supervisor
            .request_spot(i, zone, self.now, self.cfg.bid, slack)
        {
            RequestOutcome::Accepted {
                latency,
                breaker_closed,
            } => {
                if breaker_closed {
                    self.record(Event::ZoneBreakerClosed { at: self.now, zone });
                }
                self.cap_denials[i] = 0;
                let boot = self.delay.sample(&mut self.rng);
                let ready_at = self.now + latency + boot;
                let rate = self.traces.price_at(zone, self.now);
                self.zones[i].inst = InstanceState::Booting { ready_at };
                self.zones[i].billing = Some(SpotBilling::launch(self.now, rate));
                self.zones[i].bid = self.cfg.bid;
                self.record(Event::Requested {
                    at: self.now,
                    zone,
                    bid: self.cfg.bid,
                });
            }
            RequestOutcome::Denied {
                retry_at,
                reason,
                tripped_until,
            } => {
                // Never fulfilled, never billed: the zone just stays down
                // (with its retry gate set) and no billing state exists.
                self.zones[i].inst = InstanceState::Down;
                self.zones[i].blocked_until = retry_at;
                let capacity_denied = matches!(
                    reason,
                    DenyReason::Api(ApiError::InsufficientCapacity { .. })
                );
                let error = match reason {
                    DenyReason::Api(e) => Some(e),
                    DenyReason::Quarantined { .. } | DenyReason::BudgetExhausted => None,
                };
                self.record(Event::SpotRequestFailed {
                    at: self.now,
                    zone,
                    error,
                    retry_at,
                });
                if let Some(until) = tripped_until {
                    self.record(Event::ZoneQuarantined {
                        at: self.now,
                        zone,
                        until,
                    });
                }
                if capacity_denied {
                    self.note_capacity_denial(i);
                } else {
                    self.cap_denials[i] = 0;
                }
            }
        }
    }

    /// The graceful-degradation ladder, advanced on every consecutive
    /// `InsufficientCapacity` denial in zone slot `i` (see
    /// [`crate::DegradePolicy`]). Inert unless the config enables it.
    /// Every rung is deadline-safe: shedding only removes speculative
    /// redundancy, deferrals are capped at the guard instant, and
    /// spilling migrates *earlier* than the guard would — migrating at
    /// any `t ≤ guard_time` always meets `D`.
    fn note_capacity_denial(&mut self, i: usize) {
        let ladder = self.cfg.degrade;
        if !ladder.enabled {
            return;
        }
        self.cap_denials[i] += 1;
        let denials = self.cap_denials[i];
        let active = self.zones.iter().filter(|z| z.active).count();

        // Rung 1: shed this zone while redundancy remains. The fleet
        // keeps it drained; stop burning retry budget there. The zone is
        // Down and unbilled at this point, so deactivation is immediate.
        if active > ladder.min_zones && denials >= ladder.shed_after {
            self.zones[i].active = false;
            self.cap_denials[i] = 0;
            self.record(Event::ZoneShed {
                at: self.now,
                zone: self.cfg.zones[i],
                remaining: active - 1,
            });
            return;
        }

        // Rung 3: the surviving set keeps hitting the capacity wall —
        // stop waiting for the guard and take the on-demand fallback now,
        // with strictly more slack than the guard instant would have.
        if active <= ladder.min_zones && denials >= ladder.spill_after {
            self.record(Event::CapacitySpill {
                at: self.now,
                zone: self.cfg.zones[i],
                denials,
            });
            self.migrate_to_on_demand();
            return;
        }

        // Rung 2: admission control. Nothing has ever run, so there is no
        // progress to protect — wait out the contention with doubling
        // deferrals while guard slack allows, instead of hammering the
        // drained zone on the supervisor's short backoff.
        if self.restarts == 0 && self.deferrals < ladder.max_deferrals {
            let n = self.deferrals + 1;
            let until = (self.now + ladder.deferral(n)).min(self.guard_time());
            if until > self.zones[i].blocked_until {
                self.zones[i].blocked_until = until;
                self.deferrals = n;
                self.record(Event::StartDeferred {
                    at: self.now,
                    zone: self.cfg.zones[i],
                    until,
                    deferral: n,
                });
            }
        }
    }

    pub(super) fn start_replica(&mut self, i: usize) {
        debug_assert!(matches!(self.zones[i].inst, InstanceState::Booting { .. }));
        self.zones[i].inst = InstanceState::Up;
        self.zones[i].boot_retries = 0;
        let attempted = self.replicas.committed();
        let mut from = attempted;
        // Injected restore corruption: the newest generation turns out to
        // be unreadable and the restore falls back to the one before it —
        // re-checked per generation, so a restore can fall through several
        // (bottoming out at a from-scratch restart). The deadline guard
        // recomputes from the new, lower committed position at the next
        // drain iteration.
        let p = self.cfg.faults.p_restore_corrupt;
        if p > 0.0 {
            while from > SimDuration::ZERO && self.fault_rng.gen_bool(p) {
                from = self.replicas.invalidate_newest_checkpoint();
                self.record(Event::RestoreFailed {
                    at: self.now,
                    zone: self.cfg.zones[i],
                    fell_back_to: from,
                });
            }
        }
        self.replicas.start(i, from);
        // Reading the checkpoint costs t_r; a cold start (no checkpoint)
        // only pays the queuing delay already elapsed. A corrupted restore
        // still pays t_r for the attempted read.
        self.zones[i].busy_until = if attempted > SimDuration::ZERO {
            self.now + self.cfg.costs.restart
        } else {
            self.now
        };
        self.restarts += 1;
        self.last_commit_or_restart = self.now;
        self.record(Event::Started {
            at: self.now,
            zone: self.cfg.zones[i],
            from,
        });
        self.with_ctx(|policy, ctx| policy.reschedule(ctx));
    }

    // ------------------------------------------------------------------
    // Fault injection. Every probability draw is guarded by `p > 0.0` so
    // the fault RNG is never advanced under `FaultPlan::none` — that is
    // what makes the no-fault engine bit-identical to the seed engine.

    /// Draw whether the boot completing now fails.
    pub(super) fn boot_fails(&mut self) -> bool {
        let p = self.cfg.faults.p_boot_fail;
        p > 0.0 && self.fault_rng.gen_bool(p)
    }

    /// A booting instance died at its ready instant: release it unbilled
    /// (the instance never ran) and back off before re-requesting.
    pub(super) fn boot_failed(&mut self, i: usize) {
        let billing = self.zones[i]
            .billing
            .take()
            .expect("booting zone has billing");
        // Out-of-bid stop semantics: the failed partial hour is free.
        let charged = billing.stop(self.now, StopCause::OutOfBid);
        self.spot_cost += charged;
        self.zones[i].inst = InstanceState::Down;
        // The provider reclaimed the slot without a terminate call; give
        // any capacity unit the request debited back to the pool.
        self.supervisor.release(self.cfg.zones[i], self.now);
        self.zones[i].boot_retries += 1;
        let backoff = self.cfg.faults.backoff_after(self.zones[i].boot_retries);
        let retry_at = self.now + backoff;
        self.zones[i].blocked_until = retry_at;
        self.record(Event::BootFailed {
            at: self.now,
            zone: self.cfg.zones[i],
            retry_at,
        });
    }

    /// Force-terminate instances in blacked-out zones and knock waiting
    /// zones down. A no-op under `FaultPlan::none` (no outage windows).
    pub(super) fn enforce_blackouts(&mut self, report: &mut StepReport) -> bool {
        if self.phase != Phase::Spot {
            return false;
        }
        let mut acted = false;
        for i in 0..self.zones.len() {
            let Some(until) = self.outages[i].blacked_out(self.now) else {
                continue;
            };
            match self.zones[i].inst {
                InstanceState::Up | InstanceState::Booting { .. } => {
                    self.blackout_zone(i, until);
                    report.termination = true;
                    acted = true;
                }
                InstanceState::Waiting => {
                    self.zones[i].inst = InstanceState::Down;
                    acted = true;
                }
                InstanceState::Down => {}
            }
        }
        acted
    }

    /// The blackout analogue of an out-of-bid termination: the provider
    /// kills the instance (partial hour free), speculative progress is
    /// lost, and an in-flight checkpoint on the zone aborts.
    fn blackout_zone(&mut self, i: usize, until: SimTime) {
        let billing = self.zones[i]
            .billing
            .take()
            .expect("billable zone has billing");
        let charged = billing.stop(self.now, StopCause::OutOfBid);
        self.spot_cost += charged;
        self.replicas.stop(i);
        self.zones[i].inst = InstanceState::Down;
        self.supervisor.release(self.cfg.zones[i], self.now);
        self.record(Event::ZoneBlackout {
            at: self.now,
            zone: self.cfg.zones[i],
            until,
        });
        if let Some(c) = self.ckpt {
            if c.zone == i {
                self.ckpt = None;
                self.record(Event::CheckpointAborted {
                    at: self.now,
                    zone: self.cfg.zones[i],
                });
            }
        }
    }

    fn terminate_out_of_bid(&mut self, i: usize) {
        let billing = self.zones[i]
            .billing
            .take()
            .expect("billable zone has billing");
        let charged = billing.stop(self.now, StopCause::OutOfBid);
        self.spot_cost += charged;
        self.replicas.stop(i);
        self.zones[i].inst = InstanceState::Down;
        self.supervisor.release(self.cfg.zones[i], self.now);
        self.oob_terminations += 1;
        self.record(Event::Terminated {
            at: self.now,
            zone: self.cfg.zones[i],
            cause: TerminationCause::OutOfBid,
            charged,
        });
        if let Some(c) = self.ckpt {
            if c.zone == i {
                self.ckpt = None;
                self.record(Event::CheckpointAborted {
                    at: self.now,
                    zone: self.cfg.zones[i],
                });
            }
        }
    }

    pub(super) fn stop_zone(&mut self, i: usize, cause: StopCause, reason: TerminationCause) {
        if let Some(mut billing) = self.zones[i].billing.take() {
            let zone = self.cfg.zones[i];
            let mut stop_at = self.now;
            if matches!(cause, StopCause::User) {
                // Scheduler-initiated stops go through the control plane;
                // a flaky terminate keeps the instance billing for the
                // retry lag. Zero under `ApiFaultPlan::none`.
                let lag = self.supervisor.terminate(zone, self.now);
                if lag > SimDuration::ZERO {
                    stop_at = self.now + lag;
                    // Settle hour boundaries crossed during the lag at the
                    // true trace rates, silently: the charges land in
                    // `charged` below and every event stays stamped `now`,
                    // keeping the log time-ordered.
                    while billing.next_boundary() < stop_at {
                        let b_at = billing.next_boundary();
                        let rate = self.traces.price_at(zone, b_at);
                        billing.on_hour_boundary(b_at, rate);
                    }
                    self.record(Event::TerminateLagged {
                        at: self.now,
                        zone,
                        lag,
                    });
                }
            }
            let charged = billing.stop(stop_at, cause);
            self.spot_cost += charged;
            self.record(Event::Terminated {
                at: self.now,
                zone,
                cause: reason,
                charged,
            });
        }
        self.replicas.stop(i);
        self.zones[i].inst = InstanceState::Down;
        self.zones[i].retire = false;
        if let Some(c) = self.ckpt {
            if c.zone == i {
                self.ckpt = None;
                self.record(Event::CheckpointAborted {
                    at: self.now,
                    zone: self.cfg.zones[i],
                });
            }
        }
    }
}
