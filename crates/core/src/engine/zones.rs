//! Zone lifecycle: the market scan, spot requests, boot completions and
//! failures, replica starts, terminations, and blackout enforcement.

use super::{Engine, Phase, StepReport};
use crate::run::{Event, TerminationCause};
use crate::supervisor::{DenyReason, RequestOutcome};
use crate::telemetry::Recorder;
use rand::Rng;
use redspot_market::{ApiError, InstanceState, Meter, StopCause};
use redspot_trace::{Price, SimDuration, SimTime};

/// Per-zone runtime state.
#[derive(Debug, Clone)]
pub(super) struct ZoneRt {
    pub(super) inst: InstanceState,
    pub(super) billing: Option<Meter>,
    /// Bid attached to the current request (spot requests are fixed-bid;
    /// an engine-level bid change only affects *future* requests).
    pub(super) bid: Price,
    /// Restart/checkpoint overhead: the replica makes no progress before
    /// this instant.
    pub(super) busy_until: SimTime,
    /// Stop voluntarily at the next hour boundary (adaptive retirement).
    pub(super) retire: bool,
    /// Whether this zone participates at all (adaptive `N` control).
    pub(super) active: bool,
    /// Consecutive injected boot failures (resets when a boot succeeds);
    /// drives the retry backoff.
    pub(super) boot_retries: u32,
    /// No new spot request before this instant (boot-retry backoff).
    /// Initialized to the experiment start, so it never gates anything
    /// until a boot failure pushes it forward.
    pub(super) blocked_until: SimTime,
    /// A pending provider interruption notice: the instance will be
    /// reclaimed at this instant (modern era only; always `None` under
    /// [`Era::Classic`](redspot_market::Era::Classic)). Binding — a
    /// price recovery does not cancel it.
    pub(super) notice_until: Option<SimTime>,
}

impl<R: Recorder> Engine<R> {
    pub(super) fn scan_market(&mut self, report: &mut StepReport) -> bool {
        if self.phase != Phase::Spot {
            return false;
        }
        let mut acted = false;
        let resume_at = self.policy.resume_threshold();
        for i in 0..self.zones.len() {
            let price = self.traces.price_at(self.cfg.zones[i], self.now);
            match self.zones[i].inst {
                InstanceState::Up | InstanceState::Booting { .. } => {
                    if self.rules().uses_bids() {
                        // Classic: the bid is a hard limit; crossing it
                        // kills the instance abruptly.
                        if price > self.zones[i].bid {
                            self.terminate_out_of_bid(i);
                            report.termination = true;
                            acted = true;
                        }
                    } else {
                        acted |= self.modern_market_tick(i, price, report);
                    }
                }
                InstanceState::Down if self.zones[i].active => {
                    // Fault gates: no requests while a boot-retry backoff
                    // (or a supervisor retry backoff / quarantine) is
                    // pending or the zone is blacked out. All inert under
                    // the no-fault plans (`blocked_until` stays at the
                    // start and the outage schedule is empty).
                    if self.now < self.zones[i].blocked_until
                        || self.outages[i].blacked_out(self.now).is_some()
                    {
                        continue;
                    }
                    // Scheduler decision: runs on the supervisor's
                    // (possibly stale) price view, not the true price.
                    let Some(observed) = self.observed_price(i) else {
                        continue;
                    };
                    let threshold = resume_at.unwrap_or(self.cfg.bid);
                    if observed <= threshold {
                        self.zones[i].inst = InstanceState::Waiting;
                        self.record(Event::Waiting {
                            at: self.now,
                            zone: self.cfg.zones[i],
                        });
                        acted = true;
                    }
                }
                InstanceState::Waiting => {
                    if !self.zones[i].active {
                        self.zones[i].inst = InstanceState::Down;
                        acted = true;
                        continue;
                    }
                    // As in the Down arm: no observation means no
                    // decision — never fall back to the true trace
                    // price, which the scheduler cannot see.
                    let Some(observed) = self.observed_price(i) else {
                        continue;
                    };
                    let threshold = resume_at.unwrap_or(self.cfg.bid);
                    if observed > threshold {
                        self.zones[i].inst = InstanceState::Down;
                        acted = true;
                    }
                }
                InstanceState::Down => {}
            }
        }
        acted
    }

    /// One market-scan step for a billable zone under the modern regime:
    /// per-second meter upkeep, notice expiry, and notice issue.
    ///
    /// There are no user bids post-2017 — the configured bid is
    /// reinterpreted as the capacity-reclaim threshold: when the spot
    /// price (a proxy for zone-level demand) rises above it, the provider
    /// issues a binding two-minute [`Event::InterruptionNotice`] instead
    /// of killing the instance outright. The engine drains into the
    /// window — it takes a final checkpoint when one fits — and the
    /// instance is reclaimed at expiry with interruption (provider-stop)
    /// billing. A price recovery does not cancel a pending notice.
    fn modern_market_tick(&mut self, i: usize, price: Price, report: &mut StepReport) -> bool {
        let rules = self.rules();
        let mut acted = false;

        // Per-second billing: close the open segment at every in-bid
        // price movement so each second is charged at its actual rate.
        if let Some(m) = self.zones[i].billing.as_mut() {
            if m.current_rate() != price {
                rules.note_price(m, self.now, price);
                acted = true;
            }
        }

        // A pending notice expires: the provider reclaims the instance.
        if let Some(expiry) = self.zones[i].notice_until {
            if self.now >= expiry {
                self.terminate_out_of_bid(i);
                report.termination = true;
                // The reclaim is a capacity signal; let the degradation
                // ladder react (shed the contended zone, or spill to
                // on-demand when the surviving set keeps being reclaimed).
                self.note_capacity_denial(i);
                return true;
            }
            // Binding: no re-issue, no cancellation.
            return acted;
        }

        // Demand crossed the reclaim threshold: issue the notice.
        if price > self.zones[i].bid {
            let terminate_at = self.now
                + rules
                    .interruption_notice()
                    .expect("bidless regimes give interruption notices");
            self.zones[i].notice_until = Some(terminate_at);
            let zone = self.cfg.zones[i];
            self.record(Event::InterruptionNotice {
                at: self.now,
                zone,
                terminate_at,
            });
            self.with_ctx(|policy, ctx| policy.interruption_notice(ctx, i, terminate_at));
            // Checkpoint-and-drain: if the doomed zone leads and a final
            // checkpoint fits inside the window, start it immediately so
            // the progress survives the reclaim.
            if self.ckpt.is_none()
                && self.leader() == Some(i)
                && self.now + self.cfg.costs.checkpoint <= terminate_at
            {
                self.begin_checkpoint(i);
            }
            acted = true;
        }
        acted
    }

    /// The scheduler-side price for configured zone `i`: the supervisor's
    /// latest (possibly stale) observation. A failed read falls back to
    /// the last known price and records the staleness window; `None` only
    /// if the zone's price has never been observed. Identical to the true
    /// trace price under [`ApiFaultPlan::none`](redspot_market::ApiFaultPlan::none).
    pub(super) fn observed_price(&mut self, i: usize) -> Option<Price> {
        let zone = self.cfg.zones[i];
        let (view, stale) = self.supervisor.observe_price(i, zone, self.now)?;
        if stale {
            self.record(Event::StalePriceUsed {
                at: self.now,
                zone,
                age: view.age(self.now),
            });
        }
        Some(view.price)
    }

    /// The executing replica with the furthest position (ties broken by
    /// lowest index).
    pub(super) fn leader(&self) -> Option<usize> {
        (0..self.zones.len())
            .filter(|&i| self.zones[i].inst.is_up())
            .max_by_key(|&i| (self.replicas.position(i), std::cmp::Reverse(i)))
    }

    /// Submit a spot request for configured zone `i` through the
    /// supervisor. On acceptance the control-plane round-trip latency is
    /// folded into the boot delay; on denial (API failure, quarantine, or
    /// exhausted retry budget) the zone goes down, unbilled, until the
    /// supervisor's retry instant. Under
    /// [`ApiFaultPlan::none`](redspot_market::ApiFaultPlan::none) requests
    /// are always accepted with zero latency — the pre-supervisor path.
    pub(super) fn request_instance(&mut self, i: usize) {
        debug_assert!(self.zones[i].inst.is_waiting());
        let zone = self.cfg.zones[i];
        let slack = self.guard_time().since(self.now);
        match self
            .supervisor
            .request_spot(i, zone, self.now, self.cfg.bid, slack)
        {
            RequestOutcome::Accepted {
                latency,
                breaker_closed,
            } => {
                if breaker_closed {
                    self.record(Event::ZoneBreakerClosed { at: self.now, zone });
                }
                self.cap_denials[i] = 0;
                let boot = self.delay.sample(&mut self.rng);
                let ready_at = self.now + latency + boot;
                let rate = self.traces.price_at(zone, self.now);
                self.zones[i].inst = InstanceState::Booting { ready_at };
                self.zones[i].billing = Some(self.rules().launch_meter(self.now, rate));
                self.zones[i].bid = self.cfg.bid;
                self.record(Event::Requested {
                    at: self.now,
                    zone,
                    bid: self.cfg.bid,
                });
            }
            RequestOutcome::Denied {
                retry_at,
                reason,
                tripped_until,
            } => {
                // Never fulfilled, never billed: the zone just stays down
                // (with its retry gate set) and no billing state exists.
                self.zones[i].inst = InstanceState::Down;
                self.zones[i].blocked_until = retry_at;
                let capacity_denied = matches!(
                    reason,
                    DenyReason::Api(ApiError::InsufficientCapacity { .. })
                );
                let error = match reason {
                    DenyReason::Api(e) => Some(e),
                    DenyReason::Quarantined { .. } | DenyReason::BudgetExhausted => None,
                };
                self.record(Event::SpotRequestFailed {
                    at: self.now,
                    zone,
                    error,
                    retry_at,
                });
                if let Some(until) = tripped_until {
                    self.record(Event::ZoneQuarantined {
                        at: self.now,
                        zone,
                        until,
                    });
                }
                if capacity_denied {
                    self.note_capacity_denial(i);
                } else {
                    self.cap_denials[i] = 0;
                }
            }
        }
    }

    /// The graceful-degradation ladder, advanced on every consecutive
    /// `InsufficientCapacity` denial in zone slot `i` (see
    /// [`crate::DegradePolicy`]). Inert unless the config enables it.
    /// Every rung is deadline-safe: shedding only removes speculative
    /// redundancy, deferrals are capped at the guard instant, and
    /// spilling migrates *earlier* than the guard would — migrating at
    /// any `t ≤ guard_time` always meets `D`.
    fn note_capacity_denial(&mut self, i: usize) {
        let ladder = self.cfg.degrade;
        if !ladder.enabled {
            return;
        }
        self.cap_denials[i] += 1;
        let denials = self.cap_denials[i];
        let active = self.zones.iter().filter(|z| z.active).count();

        // Rung 1: shed this zone while redundancy remains. The fleet
        // keeps it drained; stop burning retry budget there. The zone is
        // Down and unbilled at this point, so deactivation is immediate.
        if active > ladder.min_zones && denials >= ladder.shed_after {
            self.zones[i].active = false;
            self.cap_denials[i] = 0;
            self.record(Event::ZoneShed {
                at: self.now,
                zone: self.cfg.zones[i],
                remaining: active - 1,
            });
            return;
        }

        // Rung 3: the surviving set keeps hitting the capacity wall —
        // stop waiting for the guard and take the on-demand fallback now,
        // with strictly more slack than the guard instant would have.
        if active <= ladder.min_zones && denials >= ladder.spill_after {
            self.record(Event::CapacitySpill {
                at: self.now,
                zone: self.cfg.zones[i],
                denials,
            });
            self.migrate_to_on_demand();
            return;
        }

        // Rung 2: admission control. Nothing has ever run, so there is no
        // progress to protect — wait out the contention with doubling
        // deferrals while guard slack allows, instead of hammering the
        // drained zone on the supervisor's short backoff.
        if self.restarts == 0 && self.deferrals < ladder.max_deferrals {
            let n = self.deferrals + 1;
            let until = (self.now + ladder.deferral(n)).min(self.guard_time());
            if until > self.zones[i].blocked_until {
                self.zones[i].blocked_until = until;
                self.deferrals = n;
                self.record(Event::StartDeferred {
                    at: self.now,
                    zone: self.cfg.zones[i],
                    until,
                    deferral: n,
                });
            }
        }
    }

    pub(super) fn start_replica(&mut self, i: usize) {
        debug_assert!(matches!(self.zones[i].inst, InstanceState::Booting { .. }));
        self.zones[i].inst = InstanceState::Up;
        self.zones[i].boot_retries = 0;
        let attempted = self.replicas.committed();
        let mut from = attempted;
        // Injected restore corruption: the newest generation turns out to
        // be unreadable and the restore falls back to the one before it —
        // re-checked per generation, so a restore can fall through several
        // (bottoming out at a from-scratch restart). The deadline guard
        // recomputes from the new, lower committed position at the next
        // drain iteration.
        let p = self.cfg.faults.p_restore_corrupt;
        if p > 0.0 {
            while from > SimDuration::ZERO && self.fault_rng.gen_bool(p) {
                from = self.replicas.invalidate_newest_checkpoint();
                self.record(Event::RestoreFailed {
                    at: self.now,
                    zone: self.cfg.zones[i],
                    fell_back_to: from,
                });
            }
        }
        self.replicas.start(i, from);
        // Reading the checkpoint costs t_r; a cold start (no checkpoint)
        // only pays the queuing delay already elapsed. A corrupted restore
        // still pays t_r for the attempted read.
        self.zones[i].busy_until = if attempted > SimDuration::ZERO {
            self.now + self.cfg.costs.restart
        } else {
            self.now
        };
        self.restarts += 1;
        self.last_commit_or_restart = self.now;
        self.record(Event::Started {
            at: self.now,
            zone: self.cfg.zones[i],
            from,
        });
        self.with_ctx(|policy, ctx| policy.reschedule(ctx));
    }

    // ------------------------------------------------------------------
    // Fault injection. Every probability draw is guarded by `p > 0.0` so
    // the fault RNG is never advanced under `FaultPlan::none` — that is
    // what makes the no-fault engine bit-identical to the seed engine.

    /// Draw whether the boot completing now fails.
    pub(super) fn boot_fails(&mut self) -> bool {
        let p = self.cfg.faults.p_boot_fail;
        p > 0.0 && self.fault_rng.gen_bool(p)
    }

    /// A booting instance died at its ready instant: release it unbilled
    /// (the instance never ran) and back off before re-requesting.
    pub(super) fn boot_failed(&mut self, i: usize) {
        let billing = self.zones[i]
            .billing
            .take()
            .expect("booting zone has billing");
        // Provider-stop semantics: the failed partial hour is free
        // (classic), or free inside the first hour (modern).
        let charged = self
            .rules()
            .stop_meter(billing, self.now, StopCause::OutOfBid);
        self.spot_cost += charged;
        self.zones[i].inst = InstanceState::Down;
        self.zones[i].notice_until = None;
        // The provider reclaimed the slot without a terminate call; give
        // any capacity unit the request debited back to the pool.
        self.supervisor.release(self.cfg.zones[i], self.now);
        self.zones[i].boot_retries += 1;
        let backoff = self.cfg.faults.backoff_after(self.zones[i].boot_retries);
        let retry_at = self.now + backoff;
        self.zones[i].blocked_until = retry_at;
        self.record(Event::BootFailed {
            at: self.now,
            zone: self.cfg.zones[i],
            retry_at,
        });
    }

    /// Force-terminate instances in blacked-out zones and knock waiting
    /// zones down. A no-op under `FaultPlan::none` (no outage windows).
    pub(super) fn enforce_blackouts(&mut self, report: &mut StepReport) -> bool {
        if self.phase != Phase::Spot {
            return false;
        }
        let mut acted = false;
        for i in 0..self.zones.len() {
            let Some(until) = self.outages[i].blacked_out(self.now) else {
                continue;
            };
            match self.zones[i].inst {
                InstanceState::Up | InstanceState::Booting { .. } => {
                    self.blackout_zone(i, until);
                    report.termination = true;
                    acted = true;
                }
                InstanceState::Waiting => {
                    self.zones[i].inst = InstanceState::Down;
                    acted = true;
                }
                InstanceState::Down => {}
            }
        }
        acted
    }

    /// The blackout analogue of an out-of-bid termination: the provider
    /// kills the instance (partial hour free), speculative progress is
    /// lost, and an in-flight checkpoint on the zone aborts.
    fn blackout_zone(&mut self, i: usize, until: SimTime) {
        let billing = self.zones[i]
            .billing
            .take()
            .expect("billable zone has billing");
        let charged = self
            .rules()
            .stop_meter(billing, self.now, StopCause::OutOfBid);
        self.spot_cost += charged;
        self.replicas.stop(i);
        self.zones[i].inst = InstanceState::Down;
        self.zones[i].notice_until = None;
        self.supervisor.release(self.cfg.zones[i], self.now);
        self.record(Event::ZoneBlackout {
            at: self.now,
            zone: self.cfg.zones[i],
            until,
        });
        if let Some(c) = self.ckpt {
            if c.zone == i {
                self.ckpt = None;
                self.record(Event::CheckpointAborted {
                    at: self.now,
                    zone: self.cfg.zones[i],
                });
            }
        }
    }

    /// A provider-initiated kill: the classic out-of-bid termination, or
    /// the modern reclaim at notice expiry. Billed under provider-stop
    /// rules either way.
    fn terminate_out_of_bid(&mut self, i: usize) {
        let billing = self.zones[i]
            .billing
            .take()
            .expect("billable zone has billing");
        let charged = self
            .rules()
            .stop_meter(billing, self.now, StopCause::OutOfBid);
        self.spot_cost += charged;
        self.replicas.stop(i);
        self.zones[i].inst = InstanceState::Down;
        self.zones[i].notice_until = None;
        self.supervisor.release(self.cfg.zones[i], self.now);
        self.oob_terminations += 1;
        self.record(Event::Terminated {
            at: self.now,
            zone: self.cfg.zones[i],
            cause: TerminationCause::OutOfBid,
            charged,
        });
        if let Some(c) = self.ckpt {
            if c.zone == i {
                self.ckpt = None;
                self.record(Event::CheckpointAborted {
                    at: self.now,
                    zone: self.cfg.zones[i],
                });
            }
        }
    }

    pub(super) fn stop_zone(&mut self, i: usize, cause: StopCause, reason: TerminationCause) {
        if let Some(mut billing) = self.zones[i].billing.take() {
            let rules = self.rules();
            let zone = self.cfg.zones[i];
            let mut stop_at = self.now;
            if matches!(cause, StopCause::User) {
                // Scheduler-initiated stops go through the control plane;
                // a flaky terminate keeps the instance billing for the
                // retry lag. Zero under `ApiFaultPlan::none`.
                let lag = self.supervisor.terminate(zone, self.now);
                if lag > SimDuration::ZERO {
                    stop_at = self.now + lag;
                    // Settle billing periods crossed during the lag at the
                    // true trace rates, silently: the charges land in
                    // `charged` below and every event stays stamped `now`,
                    // keeping the log time-ordered. Classic settles hour
                    // boundaries; modern closes per-second segments at
                    // each price change inside the lag.
                    while let Some(b_at) = rules.next_settlement(&billing) {
                        if b_at >= stop_at {
                            break;
                        }
                        let rate = self.traces.price_at(zone, b_at);
                        rules.settle(&mut billing, b_at, rate);
                    }
                    if rules.next_settlement(&billing).is_none() {
                        let mut t = self.now;
                        while let Some((at, rate)) = self.traces.zone(zone).next_price_change(t) {
                            if at >= stop_at {
                                break;
                            }
                            rules.note_price(&mut billing, at, rate);
                            t = at;
                        }
                    }
                    self.record(Event::TerminateLagged {
                        at: self.now,
                        zone,
                        lag,
                    });
                }
            }
            let charged = rules.stop_meter(billing, stop_at, cause);
            self.spot_cost += charged;
            self.record(Event::Terminated {
                at: self.now,
                zone,
                cause: reason,
                charged,
            });
        }
        self.replicas.stop(i);
        self.zones[i].inst = InstanceState::Down;
        self.zones[i].retire = false;
        self.zones[i].notice_until = None;
        if let Some(c) = self.ckpt {
            if c.zone == i {
                self.ckpt = None;
                self.record(Event::CheckpointAborted {
                    at: self.now,
                    zone: self.cfg.zones[i],
                });
            }
        }
    }
}
