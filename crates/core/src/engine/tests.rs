//! Engine behavior tests: spot mechanics, policies, deadline guarantee,
//! runtime extensions, and the observability plane's recorder wiring.

use super::*;
use crate::policy::PolicyKind;
use crate::run::RunResult;
use crate::telemetry::NullRecorder;
use redspot_trace::{PriceSeries, TraceSet, Window, ZoneId};

fn m(v: u64) -> Price {
    Price::from_millis(v)
}

/// A flat-priced trace: `n_zones` zones at `price` for `hours`.
fn flat(price: u64, n_zones: usize, hours: u64) -> TraceSet {
    let samples = vec![m(price); (hours * 12) as usize];
    TraceSet::new(
        (0..n_zones)
            .map(|_| PriceSeries::new(SimTime::ZERO, samples.clone()))
            .collect(),
    )
}

/// Flat trace with one zone spiked to `spike` during `[from_h, to_h)`.
fn flat_with_spike(
    price: u64,
    n_zones: usize,
    hours: u64,
    zone: usize,
    from_h: u64,
    to_h: u64,
    spike: u64,
) -> TraceSet {
    let base = flat(price, n_zones, hours);
    let w = Window::new(SimTime::from_hours(from_h), SimTime::from_hours(to_h));
    redspot_trace::gen::inject_spike(&base, ZoneId(zone), w, m(spike))
}

fn cfg_1zone() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default();
    cfg.zones = vec![ZoneId(0)];
    cfg
}

fn run_with(traces: &TraceSet, cfg: ExperimentConfig, kind: PolicyKind) -> RunResult {
    Engine::with_delay_model(traces, SimTime::ZERO, cfg, kind.build(), DelayModel::zero()).run()
}

#[test]
fn stable_cheap_market_completes_on_spot() {
    let traces = flat(270, 1, 40);
    let r = run_with(&traces, cfg_1zone(), PolicyKind::Periodic);
    assert!(r.met_deadline);
    assert!(!r.used_on_demand);
    assert_eq!(r.od_cost, Price::ZERO);
    assert_eq!(r.out_of_bid_terminations, 0);
    // 20h of work at ~55 min/hour effective: 21–23 paid hours at $0.27.
    let dollars = r.cost_dollars();
    assert!((5.4..7.0).contains(&dollars), "cost {dollars}");
    assert!(r.checkpoints >= 15, "checkpoints {}", r.checkpoints);
    assert_eq!(r.restarts, 1);
}

#[test]
fn unaffordable_market_migrates_and_meets_deadline() {
    let traces = flat(5_000, 1, 40); // always above the $0.81 bid
    let r = run_with(&traces, cfg_1zone(), PolicyKind::Periodic);
    assert!(r.met_deadline);
    assert!(r.used_on_demand);
    assert_eq!(r.spot_cost, Price::ZERO);
    // Full 20-hour workload on-demand: the paper's $48 reference.
    assert_eq!(r.od_cost, Price::from_dollars(48.0));
    assert_eq!(r.checkpoints, 0);
}

#[test]
fn spike_terminates_rolls_back_and_recovers() {
    let traces = flat_with_spike(300, 1, 60, 0, 5, 8, 2_000);
    let cfg = cfg_1zone().with_slack_percent(50);
    let r = run_with(&traces, cfg, PolicyKind::Periodic);
    assert!(r.met_deadline);
    assert_eq!(r.out_of_bid_terminations, 1);
    assert!(r.restarts >= 2, "restarts {}", r.restarts);
    assert!(!r.used_on_demand);
    // Paid hours before the spike + after relaunch, all at $0.30.
    assert!(r.cost_dollars() < 10.0, "cost {}", r.cost_dollars());
}

#[test]
fn redundancy_rides_through_single_zone_outage() {
    // Zone 0 dies for 3 hours; zone 1 never does. With N = 2 the
    // application keeps computing and never touches on-demand.
    let traces = flat_with_spike(300, 2, 60, 0, 5, 8, 2_000);
    let mut cfg = ExperimentConfig::paper_default();
    cfg.zones = vec![ZoneId(0), ZoneId(1)];
    let r = run_with(&traces, cfg, PolicyKind::Periodic);
    assert!(r.met_deadline);
    assert!(!r.used_on_demand);
    assert_eq!(r.out_of_bid_terminations, 1); // zone 0 only
                                              // Both zones paid for most of the run: roughly twice single-zone.
    assert!(
        r.cost_dollars() > 10.0 && r.cost_dollars() < 16.0,
        "cost {}",
        r.cost_dollars()
    );
}

#[test]
fn zero_slack_goes_straight_to_on_demand() {
    let traces = flat(270, 1, 40);
    let mut cfg = cfg_1zone();
    cfg.deadline = cfg.app.work; // no slack at all
    let r = run_with(&traces, cfg, PolicyKind::Periodic);
    assert!(r.met_deadline);
    assert!(r.used_on_demand);
    assert_eq!(r.od_cost, Price::from_dollars(48.0));
    // The guarantee is exact: with zero slack and nothing committed,
    // the run finishes precisely at the deadline, not a second later.
    assert_eq!(r.finished_at, SimTime::ZERO + SimDuration::from_hours(20));
}

#[test]
fn event_log_is_ordered_and_complete() {
    let traces = flat_with_spike(300, 1, 60, 0, 5, 8, 2_000);
    let cfg = cfg_1zone().with_slack_percent(50);
    let r = run_with(&traces, cfg, PolicyKind::Periodic);
    assert!(!r.events.is_empty());
    assert!(r.events.windows(2).all(|w| w[0].at() <= w[1].at()));
    assert!(matches!(r.events.last(), Some(Event::Completed { .. })));
    let commits = r
        .events
        .iter()
        .filter(|e| matches!(e, Event::CheckpointCommitted { .. }))
        .count() as u32;
    assert_eq!(commits, r.checkpoints);
}

#[test]
fn null_recorder_runs_identically_with_no_events() {
    let traces = flat_with_spike(300, 1, 60, 0, 5, 8, 2_000);
    let cfg = cfg_1zone().with_slack_percent(50);
    let vec_run = run_with(&traces, cfg.clone(), PolicyKind::Periodic);
    let null_run = Engine::try_with_parts(
        &traces,
        SimTime::ZERO,
        cfg,
        PolicyKind::Periodic.build(),
        DelayModel::zero(),
        NullRecorder,
    )
    .unwrap()
    .run();
    // No events, no allocation — and everything else bit-identical.
    assert!(null_run.events.is_empty());
    assert_eq!(null_run.events.capacity(), 0);
    let stripped = RunResult {
        events: Vec::new(),
        ..vec_run
    };
    assert_eq!(null_run, stripped);
}

#[test]
fn edge_policy_checkpoints_on_rising_prices() {
    // Price rises (within bid) every few steps: Edge checkpoints often.
    let mut samples = Vec::new();
    for i in 0..(60 * 12) {
        samples.push(m(if i % 4 < 2 { 300 } else { 400 }));
    }
    let traces = TraceSet::new(vec![PriceSeries::new(SimTime::ZERO, samples)]);
    let cfg = cfg_1zone().with_slack_percent(50);
    let r = run_with(&traces, cfg, PolicyKind::RisingEdge);
    assert!(r.met_deadline);
    assert!(r.checkpoints > 10, "edge checkpoints {}", r.checkpoints);
}

#[test]
fn edge_policy_never_checkpoints_on_flat_prices() {
    let traces = flat(270, 1, 60);
    let cfg = cfg_1zone().with_slack_percent(50);
    let r = run_with(&traces, cfg, PolicyKind::RisingEdge);
    assert!(r.met_deadline);
    assert!(!r.used_on_demand);
    // Only the deadline guard's protective checkpoints, if any.
    assert!(r.checkpoints <= 8, "checkpoints {}", r.checkpoints);
}

#[test]
fn markov_daly_completes_cheaply_on_stable_market() {
    let traces = flat(270, 1, 60);
    let r = run_with(&traces, cfg_1zone(), PolicyKind::MarkovDaly);
    assert!(r.met_deadline);
    assert!(!r.used_on_demand);
    // Stable market → long Daly interval → few checkpoints.
    assert!(r.checkpoints < 10, "checkpoints {}", r.checkpoints);
    assert!(r.cost_dollars() < 6.5, "cost {}", r.cost_dollars());
}

#[test]
fn large_bid_survives_spike_at_a_price() {
    // Spike to $19 for two hours: Large-bid (naive) keeps running and
    // pays the spiked hours.
    let traces = flat_with_spike(300, 1, 60, 0, 5, 7, 19_000);
    let mut cfg = cfg_1zone().with_slack_percent(50);
    cfg.bid = crate::policy::large_bid::LARGE_BID;
    let policy = Box::new(crate::policy::LargeBidPolicy::naive());
    let r = Engine::with_delay_model(&traces, SimTime::ZERO, cfg, policy, DelayModel::zero()).run();
    assert!(r.met_deadline);
    assert_eq!(r.out_of_bid_terminations, 0);
    // Two spiked hours at ~$19 dominate the cost.
    assert!(r.cost_dollars() > 38.0, "cost {}", r.cost_dollars());
}

#[test]
fn large_bid_threshold_dodges_the_spike() {
    let traces = flat_with_spike(300, 1, 60, 0, 5, 7, 19_000);
    let mut cfg = cfg_1zone().with_slack_percent(50);
    cfg.bid = crate::policy::large_bid::LARGE_BID;
    let policy = Box::new(crate::policy::LargeBidPolicy::new(m(810)));
    let r = Engine::with_delay_model(&traces, SimTime::ZERO, cfg, policy, DelayModel::zero()).run();
    assert!(r.met_deadline);
    // Stopped during the spike, resumed after: far cheaper than naive.
    assert!(r.cost_dollars() < 30.0, "cost {}", r.cost_dollars());
    assert!(r.restarts >= 2);
}

#[test]
fn on_demand_baseline_matches_reference_line() {
    let cfg = ExperimentConfig::paper_default();
    let r = on_demand_run(SimTime::from_hours(1), &cfg);
    assert_eq!(r.cost, Price::from_dollars(48.0));
    assert_eq!(r.finished_at, SimTime::from_hours(21));
    assert!(r.met_deadline);
}

#[test]
fn adaptive_mutators_change_future_behavior() {
    let traces = flat(270, 3, 60);
    let cfg = ExperimentConfig::paper_default();
    let mut e = Engine::with_delay_model(
        &traces,
        SimTime::ZERO,
        cfg,
        PolicyKind::Periodic.build(),
        DelayModel::zero(),
    );
    // Run a few steps, then deactivate two zones.
    for _ in 0..6 {
        e.step();
    }
    assert!(e.zone_state(1).is_billable());
    e.set_active(1, false);
    e.set_active(2, false);
    e.set_bid(m(470));
    assert_eq!(e.bid(), m(470));
    let r = e.run();
    assert!(r.met_deadline);
    // Retired zones each paid only the hours before retirement; the
    // full three-zone run would cost ≈ 3 × 22 h × $0.27 ≈ $17.8.
    assert!(r.cost_dollars() < 13.0, "cost {}", r.cost_dollars());
}

#[test]
fn deterministic_across_reruns() {
    let traces = flat_with_spike(300, 3, 60, 1, 4, 9, 2_000);
    let cfg = ExperimentConfig::paper_default().with_seed(99);
    let a = run_with(&traces, cfg.clone(), PolicyKind::MarkovDaly);
    let b = run_with(&traces, cfg, PolicyKind::MarkovDaly);
    assert_eq!(a, b);
}

#[test]
fn run_full_surfaces_sink_metrics() {
    use crate::telemetry::MetricsRecorder;
    let traces = flat_with_spike(300, 1, 60, 0, 5, 8, 2_000);
    let cfg = cfg_1zone().with_slack_percent(50);
    let baseline = run_with(&traces, cfg.clone(), PolicyKind::Periodic);
    let (r, m) = Engine::try_with_parts(
        &traces,
        SimTime::ZERO,
        cfg,
        PolicyKind::Periodic.build(),
        DelayModel::zero(),
        MetricsRecorder::new(),
    )
    .unwrap()
    .run_full();
    assert_eq!(m.runs, 1);
    assert_eq!(m.events_seen as usize, baseline.events.len());
    assert_eq!(m.restarts, u64::from(r.restarts));
    assert_eq!(
        m.out_of_bid_terminations,
        u64::from(r.out_of_bid_terminations)
    );
    assert_eq!(m.checkpoints_committed, u64::from(r.checkpoints));
    assert_eq!(m.completed, 1);
    // Billing events fully attribute the spot spend.
    assert_eq!(m.spot_charged, r.spot_cost);
}

mod extension_tests {
    use super::*;
    use redspot_ckpt::AppSpec;

    fn engine(traces: &TraceSet, cfg: ExperimentConfig) -> Engine {
        Engine::with_delay_model(
            traces,
            SimTime::ZERO,
            cfg,
            PolicyKind::Periodic.build(),
            DelayModel::zero(),
        )
    }

    #[test]
    fn iterative_apps_commit_whole_iterations() {
        let traces = flat(270, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg.app =
            AppSpec::new(SimDuration::from_hours(20)).with_iteration(SimDuration::from_mins(42));
        let r = engine(&traces, cfg).run();
        assert!(r.met_deadline);
        let it = 42 * 60;
        for e in &r.events {
            if let Event::CheckpointCommitted { position, .. } = e {
                assert!(
                    position.secs() % it == 0 || *position == SimDuration::from_hours(20),
                    "commit at {position} is not an iteration boundary"
                );
            }
        }
        assert!(r.checkpoints > 5);
    }

    #[test]
    fn iteration_quantization_costs_a_little_extra() {
        let traces = flat(270, 1, 60);
        // Generous slack: quantization should then cost (almost) nothing —
        // commits land one partial iteration earlier but nothing migrates.
        let mut smooth = ExperimentConfig::paper_default().with_slack_percent(50);
        smooth.zones = vec![ZoneId(0)];
        let mut chunky = smooth.clone();
        chunky.app =
            AppSpec::new(SimDuration::from_hours(20)).with_iteration(SimDuration::from_mins(50));
        let r_smooth = engine(&traces, smooth.clone()).run();
        let r_chunky = engine(&traces, chunky.clone()).run();
        assert!(r_smooth.met_deadline && r_chunky.met_deadline);
        assert!(!r_chunky.used_on_demand);
        assert!(r_chunky.cost_dollars() <= r_smooth.cost_dollars() + 1.0);

        // At tight slack the committed-progress lag from coarse iterations
        // is real: the guard may buy the tail on-demand — but the deadline
        // still holds (the paper's guarantee is unconditional).
        let tight = chunky.with_slack_percent(15);
        let r_tight = engine(&traces, tight).run();
        assert!(r_tight.met_deadline);
    }

    #[test]
    fn deadline_extension_keeps_run_on_spot() {
        // A market that turns expensive at hour 4 and recovers at hour 12:
        // with the original 23h deadline the guard must migrate; extending
        // the deadline mid-run lets the engine ride out the outage.
        let base = flat(300, 1, 80);
        let w = redspot_trace::Window::new(SimTime::from_hours(4), SimTime::from_hours(12));
        let traces = redspot_trace::gen::inject_spike(&base, ZoneId(0), w, m(5_000));
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];

        // Control: no extension → on-demand fallback.
        let control = engine(&traces, cfg.clone()).run();
        assert!(control.used_on_demand);

        // Extended: at hour 2 the user moves the deadline to 36 h.
        let mut e = engine(&traces, cfg);
        while e.now() < SimTime::from_hours(2) {
            e.step();
        }
        assert!(e.set_deadline(SimTime::from_hours(36)));
        let extended = e.run();
        assert!(extended.met_deadline);
        assert!(!extended.used_on_demand, "extension should avoid on-demand");
        assert!(extended.cost_dollars() < control.cost_dollars());
    }

    #[test]
    fn deadline_shrink_reports_infeasibility_but_still_tries() {
        let traces = flat(270, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        let mut e = engine(&traces, cfg);
        while e.now() < SimTime::from_hours(1) {
            e.step();
        }
        // 19h of work left but only 2h allowed: infeasible.
        assert!(!e.set_deadline(SimTime::from_hours(3)));
        let r = e.run();
        assert!(!r.met_deadline);
        // It still migrated immediately and finished as fast as possible.
        assert!(r.used_on_demand);
    }

    #[test]
    fn io_server_accounting_tracks_spot_time_only() {
        let traces = flat(270, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg.io_server = Some(Price::from_dollars(0.10));
        let r = engine(&traces, cfg).run();
        assert!(r.met_deadline);
        // ~22 spot hours at $0.10.
        let io = r.io_cost.as_dollars();
        assert!((1.5..3.5).contains(&io), "io cost {io}");
        assert_eq!(r.cost, r.spot_cost + r.od_cost + r.io_cost);

        // A fully on-demand run needs no I/O server.
        let expensive = flat(9_000, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg.io_server = Some(Price::from_dollars(0.10));
        let r = engine(&expensive, cfg).run();
        assert_eq!(r.io_cost, Price::ZERO);
    }

    #[test]
    fn snapshot_reflects_engine_state() {
        let traces = flat(270, 2, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0), ZoneId(1)];
        let mut e = engine(&traces, cfg);
        let s0 = e.snapshot();
        assert_eq!(s0.committed, SimDuration::ZERO);
        assert!(!s0.done);
        assert_eq!(s0.zones.len(), 2);
        for _ in 0..30 {
            e.step();
        }
        let s1 = e.snapshot();
        assert!(s1.now > s0.now);
        assert!(s1.committed > SimDuration::ZERO);
        assert!(s1.best_position >= s1.committed);
        assert_eq!(s1.remaining + s1.committed, SimDuration::from_hours(20));
        assert!(s1.zones.iter().any(|z| z.state.is_up()));
        // Serializable for dashboards.
        let json = serde_json::to_string(&s1).unwrap();
        assert!(json.contains("committed"));
        let r = e.run();
        assert!(r.met_deadline);
    }

    #[test]
    fn io_accounting_disabled_by_default() {
        let traces = flat(270, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        let r = engine(&traces, cfg).run();
        assert_eq!(r.io_cost, Price::ZERO);
    }
}

mod billing_edges {
    //! Regression pins for the hour-boundary billing edges and the
    //! `MarketRules` era abstraction.

    use super::*;
    use crate::run::TerminationCause;
    use redspot_ckpt::CkptCosts;
    use redspot_market::{ApiFaultPlan, Era};

    /// One zone whose price alternates between `a` and `b` every hour.
    fn alternating(a: u64, b: u64, hours: u64) -> TraceSet {
        let samples: Vec<Price> = (0..hours * 12)
            .map(|s| if (s / 12) % 2 == 0 { m(a) } else { m(b) })
            .collect();
        TraceSet::new(vec![PriceSeries::new(SimTime::ZERO, samples)])
    }

    /// Satellite: `process_hour_boundaries` used to fix the new hour's
    /// rate from the *true* trace price, bypassing the stale-observation
    /// semantics every other scheduler decision honours. With flaky
    /// price reads, some boundary must now be fixed at a stale rate —
    /// one that differs from the price actually in effect at the hour's
    /// start — which the raw-trace path could never produce.
    #[test]
    fn boundary_rate_honours_stale_observations() {
        let traces = alternating(270, 500, 40);
        let mut cfg = cfg_1zone();
        cfg.api = ApiFaultPlan {
            p_price_error: 0.5,
            ..ApiFaultPlan::none()
        };
        cfg.seed = 7;
        let r = run_with(&traces, cfg, PolicyKind::Periodic);
        assert!(r.met_deadline);
        assert!(r.api.stale_price_reads > 0, "fault plan never fired");
        // `HourCharged.rate` is the charged hour's rate, fixed one hour
        // before `at`; under the old code it always equalled the trace.
        let stale_fixed = r.events.iter().any(|e| match e {
            Event::HourCharged { at, zone, rate } => {
                *rate != traces.price_at(*zone, at.saturating_sub(SimDuration::from_hours(1)))
            }
            _ => false,
        });
        assert!(
            stale_fixed,
            "no boundary was ever fixed at a stale observed rate"
        );
    }

    /// Satellite: when `t_c` exceeds the time left in the billing hour,
    /// the retirement-checkpoint wake-up (`boundary - t_c`) lands in the
    /// past and used to be dropped silently. It is now clamped to fire
    /// immediately: the checkpoint starts at the retirement instant (and
    /// is aborted at the boundary when it cannot fit — pre-existing stop
    /// semantics), instead of never being attempted.
    #[test]
    fn large_tc_retirement_checkpoint_fires_immediately() {
        // A falling in-bid price step at t = 900 s gives the controller a
        // mid-hour instant to retire at; RisingEdge never checkpoints on
        // falling prices, so the only checkpoint is the retirement one.
        let mut samples = vec![m(280); 3];
        samples.extend(vec![m(270); 40 * 12 - 3]);
        let traces = TraceSet::new(vec![PriceSeries::new(SimTime::ZERO, samples)]);
        let mut cfg = cfg_1zone();
        cfg.costs = CkptCosts::new(
            SimDuration::from_secs(3_000), // t_c far beyond the 2 700 s left
            SimDuration::from_secs(300),
        );
        let mut e = Engine::with_delay_model(
            &traces,
            SimTime::ZERO,
            cfg,
            PolicyKind::RisingEdge.build(),
            DelayModel::zero(),
        );
        while e.now() < SimTime::from_secs(900) {
            e.step();
        }
        assert_eq!(e.now(), SimTime::from_secs(900));
        assert!(e.zone_state(0).is_up());
        e.set_active(0, false); // retire at 900 s; boundary at 3 600 s
        let r = e.run();
        assert!(r.met_deadline);
        let started_at_retire = r.events.iter().any(
            |e| matches!(e, Event::CheckpointStarted { at, .. } if *at == SimTime::from_secs(900)),
        );
        assert!(
            started_at_retire,
            "retirement checkpoint was not attempted immediately"
        );
        let aborted_at_boundary = r.events.iter().any(
            |e| matches!(e, Event::CheckpointAborted { at, .. } if *at == SimTime::from_secs(3_600)),
        );
        assert!(
            aborted_at_boundary,
            "oversized checkpoint must abort at the stop"
        );
        let stopped = r.events.iter().any(|e| {
            matches!(
                e,
                Event::Terminated { at, cause: TerminationCause::Voluntary, .. }
                    if *at == SimTime::from_secs(3_600)
            )
        });
        assert!(stopped, "retired zone must stop at its boundary");
    }

    /// Modern era on a stable market: per-second billing never exceeds
    /// the classic ceiling-of-started-hours charge for the same run.
    #[test]
    fn modern_era_never_bills_more_than_classic_on_stable_market() {
        let traces = flat(270, 1, 40);
        let classic = run_with(&traces, cfg_1zone(), PolicyKind::Periodic);
        let modern = run_with(
            &traces,
            cfg_1zone().with_era(Era::Modern),
            PolicyKind::Periodic,
        );
        assert!(classic.met_deadline && modern.met_deadline);
        assert!(!classic.used_on_demand && !modern.used_on_demand);
        assert!(
            modern.cost <= classic.cost,
            "per-second {} exceeded hourly {}",
            modern.cost,
            classic.cost
        );
        assert!(modern.cost > Price::ZERO);
    }

    /// Modern era under a demand spike: a binding two-minute notice is
    /// issued, the engine drains (final checkpoint inside the window),
    /// and the instance is reclaimed exactly at expiry.
    #[test]
    fn modern_notice_drains_then_reclaims() {
        let traces = flat_with_spike(300, 1, 60, 0, 5, 8, 2_000);
        let mut cfg = cfg_1zone().with_slack_percent(50).with_era(Era::Modern);
        cfg.costs = CkptCosts::symmetric_secs(100); // drain fits the window
        let r = run_with(&traces, cfg, PolicyKind::Periodic);
        assert!(r.met_deadline);
        let spike = SimTime::from_hours(5);
        let reclaim = spike + SimDuration::from_secs(120);
        let notice = r.events.iter().find_map(|e| match e {
            Event::InterruptionNotice {
                at, terminate_at, ..
            } => Some((*at, *terminate_at)),
            _ => None,
        });
        assert_eq!(notice, Some((spike, reclaim)), "notice mis-timed");
        let drained = r.events.iter().any(|e| {
            matches!(
                e,
                Event::CheckpointCommitted { at, .. }
                    if *at > spike && *at <= reclaim
            )
        });
        assert!(drained, "no drain checkpoint committed inside the window");
        let reclaimed = r.events.iter().any(|e| {
            matches!(
                e,
                Event::Terminated { at, cause: TerminationCause::OutOfBid, .. } if *at == reclaim
            )
        });
        assert!(reclaimed, "instance not reclaimed at notice expiry");
        assert_eq!(r.out_of_bid_terminations, 1);
    }
}
