//! Checkpoint flow: starting and committing checkpoints, injected write
//! failures, retirement checkpoints, and run completion.

use super::{Engine, Phase};
use crate::run::{Event, TerminationCause};
use crate::telemetry::Recorder;
use rand::Rng;
use redspot_market::StopCause;
use redspot_trace::{SimDuration, SimTime};

/// An in-flight checkpoint.
#[derive(Debug, Clone, Copy)]
pub(super) struct CkptRt {
    pub(super) zone: usize,
    pub(super) done_at: SimTime,
    pub(super) position: SimDuration,
}

impl<R: Recorder> Engine<R> {
    pub(super) fn begin_checkpoint(&mut self, leader: usize) {
        debug_assert!(self.ckpt.is_none());
        let raw = self.replicas.position(leader).expect("leader is executing");
        // Iterative applications can only checkpoint completed iterations
        // (progress is reported via an MPI_Pcontrol-style hook).
        let position = self.cfg.app.checkpointable(raw);
        let done_at = self.now + self.cfg.costs.checkpoint;
        self.ckpt = Some(CkptRt {
            zone: leader,
            done_at,
            position,
        });
        // The writing zone makes no progress during the checkpoint.
        self.zones[leader].busy_until = self.zones[leader].busy_until.max(done_at);
        self.record(Event::CheckpointStarted {
            at: self.now,
            zone: self.cfg.zones[leader],
            position,
        });
    }

    pub(super) fn finish_checkpoint(&mut self, c: CkptRt) {
        self.ckpt = None;

        // Injected checkpoint write failure: the t_c window was spent but
        // the data never committed. Progress stays at the previous
        // generation; waiting zones keep waiting for a *fresh* checkpoint.
        // If this was the guard's protective checkpoint, the t_c + t_r
        // reserve still covers migration: exactly t_r remains, which is
        // what the on-demand restore needs.
        let p = self.cfg.faults.p_ckpt_write_fail;
        if p > 0.0 && self.fault_rng.gen_bool(p) {
            self.record(Event::CheckpointWriteFailed {
                at: self.now,
                zone: self.cfg.zones[c.zone],
            });
            if self.guard_pending {
                self.guard_pending = false;
                if self.now >= self.guard_time() {
                    self.migrate_to_on_demand();
                    return;
                }
            }
            self.with_ctx(|policy, ctx| policy.reschedule(ctx));
            return;
        }

        if c.position >= self.replicas.committed() {
            self.replicas.commit(c.position);
        }
        self.checkpoints += 1;
        self.last_commit_or_restart = self.now;
        self.record(Event::CheckpointCommitted {
            at: self.now,
            position: c.position,
        });

        if self.guard_pending {
            self.guard_pending = false;
            if self.now >= self.guard_time() {
                self.migrate_to_on_demand();
                return;
            }
        }

        // Algorithm 1 lines 19–24: waiting zones restart from this fresh
        // checkpoint.
        for i in 0..self.zones.len() {
            if self.zones[i].inst.is_waiting() {
                self.request_instance(i);
            }
        }
        self.with_ctx(|policy, ctx| policy.reschedule(ctx));
    }

    /// Whether the retiring leader is close enough to its settlement
    /// boundary that the retirement checkpoint must start now. Modern
    /// meters have no settlement boundary — retirement there is
    /// immediate (handled in the billing step), so this never fires.
    pub(super) fn retirement_ckpt_due(&self, leader: usize) -> bool {
        let z = &self.zones[leader];
        if !z.retire || !z.inst.is_up() {
            return false;
        }
        let Some(billing) = z.billing else {
            return false;
        };
        let Some(due) = self.rules().next_settlement(&billing) else {
            return false;
        };
        self.now >= due.saturating_sub(self.cfg.costs.checkpoint)
    }

    /// Complete the run if any executing replica has finished the work.
    pub(super) fn try_complete(&mut self) -> bool {
        if self.phase != Phase::Spot {
            return false;
        }
        let complete = (0..self.zones.len()).any(|i| {
            self.zones[i].inst.is_up()
                && self.zones[i].busy_until <= self.now
                && self.replicas.position(i) == Some(self.cfg.app.work)
        });
        if !complete {
            return false;
        }
        for i in 0..self.zones.len() {
            if self.zones[i].inst.is_billable() {
                self.stop_zone(i, StopCause::User, TerminationCause::Voluntary);
            }
        }
        self.replicas.commit(self.cfg.app.work);
        self.finish_run();
        true
    }
}
