//! The engine's control surface: read accessors and the mutators the
//! adaptive controller (and interactive drivers) use at decision points.

use super::{Engine, Phase};
use crate::config::ExperimentConfig;
use crate::policy::Policy;
use crate::run::Event;
use crate::telemetry::Recorder;
use redspot_market::InstanceState;
use redspot_trace::{Price, SimDuration, SimTime};

impl<R: Recorder> Engine<R> {
    // ------------------------------------------------------------------
    // Public accessors (used by the adaptive controller and tests).

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Experiment start.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Absolute deadline.
    pub fn deadline_abs(&self) -> SimTime {
        self.deadline_abs
    }

    /// Committed (durable) progress.
    pub fn committed(&self) -> SimDuration {
        self.replicas.committed()
    }

    /// Furthest live replica position (capturable progress).
    pub fn best_position(&self) -> SimDuration {
        self.replicas.best_position()
    }

    /// Spot charges so far.
    pub fn spot_cost(&self) -> Price {
        self.spot_cost
    }

    /// On-demand charges so far.
    pub fn od_cost(&self) -> Price {
        self.od_cost
    }

    /// Whether the run has finished.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether execution has migrated to on-demand.
    pub fn on_demand(&self) -> bool {
        matches!(self.phase, Phase::OnDemand(_))
    }

    /// The bid applied to *future* spot requests.
    pub fn bid(&self) -> Price {
        self.cfg.bid
    }

    /// Instance state of configured zone `idx`.
    pub fn zone_state(&self, idx: usize) -> InstanceState {
        self.zones[idx].inst
    }

    /// Whether configured zone `idx` is active.
    pub fn zone_active(&self, idx: usize) -> bool {
        self.zones[idx].active
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Read access to the telemetry sink (tests, drivers).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    // ------------------------------------------------------------------
    // Adaptive mutators.

    /// Swap the checkpoint policy (takes effect immediately).
    pub fn set_policy(&mut self, policy: Box<dyn Policy>) {
        self.policy = policy;
        if self.phase == Phase::Spot {
            self.with_ctx(|policy, ctx| policy.reschedule(ctx));
        }
    }

    /// Change the bid for future spot requests. Running instances keep the
    /// bid they were requested with (EC2 spot requests are fixed-bid).
    pub fn set_bid(&mut self, bid: Price) {
        self.cfg.bid = bid;
    }

    /// Activate or deactivate configured zone `idx`. Deactivating a
    /// billable zone retires it at its next hour boundary (no partial-hour
    /// waste); deactivating a waiting zone is immediate.
    pub fn set_active(&mut self, idx: usize, active: bool) {
        let z = &mut self.zones[idx];
        z.active = active;
        if !active {
            match z.inst {
                InstanceState::Waiting | InstanceState::Down => {
                    z.inst = InstanceState::Down;
                }
                InstanceState::Booting { .. } | InstanceState::Up => {
                    z.retire = true;
                }
            }
        } else {
            z.retire = false;
        }
    }

    /// Record an adaptive-controller switch in the event log.
    pub fn note_adaptive_switch(&mut self, to: String) {
        let at = self.now;
        self.record(Event::AdaptiveSwitch { at, to });
    }

    /// Change the deadline at runtime (Section 3.2: the algorithm
    /// continuously monitors `T_r`, so the user may move `D` while the
    /// application runs). Returns `false` when the new deadline is no
    /// longer guaranteed — i.e. it lies before the time needed to
    /// checkpoint, migrate, and finish the remaining committed work — in
    /// which case the engine still adopts it and immediately does its
    /// best (the guard fires at the next step).
    pub fn set_deadline(&mut self, deadline_abs: SimTime) -> bool {
        self.deadline_abs = deadline_abs;
        let needed = self.replicas.remaining_committed()
            + self.cfg.costs.migration()
            + self.supervisor.od_reserve();
        let feasible = deadline_abs >= self.now + needed;
        let at = self.now;
        self.record(Event::DeadlineChanged {
            at,
            deadline: deadline_abs,
            feasible,
        });
        feasible
    }
}
