//! Point-in-time views of the engine for dashboards and drivers, plus
//! the trivial on-demand baseline.

use super::Engine;
use crate::config::ExperimentConfig;
use crate::run::{Event, RunResult};
use crate::telemetry::Recorder;
use redspot_market::InstanceState;
use redspot_trace::{Price, SimDuration, SimTime};

/// A point-in-time view of one zone's runtime state.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ZoneSnapshot {
    /// Which zone.
    pub zone: redspot_trace::ZoneId,
    /// Instance lifecycle state.
    pub state: InstanceState,
    /// Whether the zone participates (adaptive N control).
    pub active: bool,
    /// Bid attached to the zone's current/last request.
    pub bid: Price,
    /// Replica position, if executing.
    pub position: Option<SimDuration>,
}

/// A point-in-time view of the whole engine (see [`Engine::snapshot`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Snapshot {
    /// Simulation clock.
    pub now: SimTime,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Durable (checkpointed) progress.
    pub committed: SimDuration,
    /// Furthest live replica position.
    pub best_position: SimDuration,
    /// Remaining compute measured from committed progress.
    pub remaining: SimDuration,
    /// Spot charges so far.
    pub spot_cost: Price,
    /// On-demand charges so far.
    pub od_cost: Price,
    /// Whether execution has migrated to on-demand.
    pub on_demand: bool,
    /// Whether the run has finished.
    pub done: bool,
    /// Per-zone states.
    pub zones: Vec<ZoneSnapshot>,
    /// Committed checkpoints so far.
    pub checkpoints: u32,
    /// Replica starts so far.
    pub restarts: u32,
    /// Out-of-bid terminations so far.
    pub out_of_bid_terminations: u32,
}

impl<R: Recorder> Engine<R> {
    /// A serializable point-in-time summary of the engine state, for
    /// dashboards, logging, and driver code.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            now: self.now,
            deadline: self.deadline_abs,
            committed: self.replicas.committed(),
            best_position: self.replicas.best_position(),
            remaining: self.replicas.remaining_committed(),
            spot_cost: self.spot_cost,
            od_cost: self.od_cost,
            on_demand: self.on_demand(),
            done: self.is_done(),
            zones: self
                .zones
                .iter()
                .enumerate()
                .map(|(i, z)| ZoneSnapshot {
                    zone: self.cfg.zones[i],
                    state: z.inst,
                    active: z.active,
                    bid: z.bid,
                    position: self.replicas.position(i),
                })
                .collect(),
            checkpoints: self.checkpoints,
            restarts: self.restarts,
            out_of_bid_terminations: self.oob_terminations,
        }
    }
}

/// The trivial on-demand baseline: run the whole workload on a dedicated
/// on-demand instance. Cost for the paper's 20-hour job: $48.00.
pub fn on_demand_run(start: SimTime, cfg: &ExperimentConfig) -> RunResult {
    let finish = start + cfg.app.work;
    let cost = cfg.era.rules().on_demand_cost(start, finish);
    RunResult {
        cost,
        spot_cost: Price::ZERO,
        od_cost: cost,
        io_cost: Price::ZERO,
        finished_at: finish,
        met_deadline: cfg.app.work <= cfg.deadline,
        checkpoints: 0,
        restarts: 0,
        out_of_bid_terminations: 0,
        used_on_demand: true,
        api: crate::run::ApiStats::default(),
        events: vec![Event::Completed { at: finish }],
    }
}
