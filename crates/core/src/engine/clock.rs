//! The simulation clock: the run/step loop with its progress fuel, the
//! next-event hop, time advancement, and result assembly.

use super::{Engine, Phase, StepReport};
use crate::run::{Event, RunResult};
use crate::telemetry::{Recorder, RunMetrics};
use redspot_trace::{SimDuration, SimTime};

impl<R: Recorder> Engine<R> {
    /// Run to completion and produce the result.
    pub fn run(mut self) -> RunResult {
        self.run_to_done();
        self.into_result()
    }

    /// Run to completion, producing the result *and* the metrics the
    /// telemetry sink aggregated ([`RunMetrics::default`] for sinks that
    /// do not aggregate).
    pub fn run_full(mut self) -> (RunResult, RunMetrics) {
        self.run_to_done();
        self.into_result_with_metrics()
    }

    /// Drive [`Engine::step`] until done, with a fuel bound so a stuck
    /// engine fails loudly instead of spinning.
    fn run_to_done(&mut self) {
        let mut fuel: u64 = 50_000_000;
        while !self.is_done() {
            self.step();
            fuel -= 1;
            assert!(fuel > 0, "engine failed to make progress");
        }
    }

    /// Advance the simulation by one event horizon, processing everything
    /// due at the current instant first. Debug builds re-check the engine's
    /// internal invariants after every step.
    pub fn step(&mut self) -> StepReport {
        let report = self.step_inner();
        self.check_invariants();
        report
    }

    fn step_inner(&mut self) -> StepReport {
        let mut report = StepReport::default();
        if self.phase == Phase::Done {
            report.done = true;
            return report;
        }

        // Drain everything due *now* until quiescent.
        let mut guard_fuel = 64;
        while self.process_now(&mut report) {
            guard_fuel -= 1;
            assert!(guard_fuel > 0, "event cascade failed to settle");
            if self.phase == Phase::Done {
                report.done = true;
                return report;
            }
        }

        // Hop to the next event.
        if let Phase::OnDemand(finish) = self.phase {
            self.now = finish;
            self.finish_run();
            report.done = true;
            return report;
        }
        let next = self.next_event_time();
        debug_assert!(next > self.now, "event horizon must advance");
        self.advance_to(next);
        report.done = self.phase == Phase::Done;
        report
    }

    /// Consume the engine, producing the final result. The telemetry
    /// sink's retained event log (if any) becomes `RunResult::events`.
    ///
    /// # Panics
    /// Panics if the run has not finished.
    pub fn into_result(mut self) -> RunResult {
        assert!(self.phase == Phase::Done, "run not finished");
        let io_cost = self.io_cost();
        RunResult {
            cost: self.spot_cost + self.od_cost + io_cost,
            spot_cost: self.spot_cost,
            od_cost: self.od_cost,
            io_cost,
            finished_at: self.finished_at,
            met_deadline: self.finished_at <= self.deadline_abs,
            checkpoints: self.checkpoints,
            restarts: self.restarts,
            out_of_bid_terminations: self.oob_terminations,
            used_on_demand: self.used_on_demand,
            api: self.supervisor.stats(),
            events: self.recorder.take_events(),
        }
    }

    /// [`Engine::into_result`] plus the sink's aggregated metrics.
    ///
    /// # Panics
    /// Panics if the run has not finished.
    pub fn into_result_with_metrics(mut self) -> (RunResult, RunMetrics) {
        let metrics = self.recorder.finish();
        (self.into_result(), metrics)
    }

    /// Mark the run finished at the current instant.
    pub(super) fn finish_run(&mut self) {
        self.finished_at = self.now;
        self.phase = Phase::Done;
        self.record(Event::Completed { at: self.now });
    }

    // ------------------------------------------------------------------
    // Time advancement.

    /// The earliest future instant at which anything can happen: a price
    /// movement, a billing boundary, a boot completion, a replica
    /// finishing, a fault wake-up, a checkpoint commit, the deadline
    /// guard, or a policy alarm.
    fn next_event_time(&mut self) -> SimTime {
        let mut t = self.deadline_abs.max(self.now + SimDuration::from_secs(1));

        let consider = |cand: SimTime, now: SimTime, best: &mut SimTime| {
            if cand > now && cand < *best {
                *best = cand;
            }
        };

        // Next price movement in any active zone.
        for (i, z) in self.zones.iter().enumerate() {
            if !z.active && !z.inst.is_billable() {
                continue;
            }
            if let Some((at, _)) = self
                .traces
                .zone(self.cfg.zones[i])
                .next_price_change(self.now)
            {
                consider(at, self.now, &mut t);
            }
        }

        let rules = self.rules();
        for (i, z) in self.zones.iter().enumerate() {
            if let Some(b) = z.billing {
                if let Some(due) = rules.next_settlement(&b) {
                    consider(due, self.now, &mut t);
                    if z.retire {
                        // Wake early enough that the retirement checkpoint
                        // commits exactly at the boundary. When t_c exceeds
                        // the time left in the hour the ideal start is
                        // already past — fire at the next tick instead of
                        // silently dropping the wake-up (which would let
                        // the engine hop straight to the boundary and stop
                        // the zone with no final checkpoint attempt).
                        let cand = due.saturating_sub(self.cfg.costs.checkpoint);
                        if cand > self.now {
                            consider(cand, self.now, &mut t);
                        } else if z.inst.is_up() && self.ckpt.is_none() {
                            consider(self.now + SimDuration::from_secs(1), self.now, &mut t);
                        }
                    }
                }
            }
            if let Some(expiry) = z.notice_until {
                consider(expiry, self.now, &mut t);
            }
            if let redspot_market::InstanceState::Booting { ready_at } = z.inst {
                consider(ready_at, self.now, &mut t);
            }
            if z.inst.is_up() {
                if let Some(pos) = self.replicas.position(i) {
                    let resume = z.busy_until.max(self.now);
                    let finish = resume + (self.cfg.app.work - pos);
                    consider(finish, self.now, &mut t);
                }
            }
        }

        // Fault wake-ups: boot-retry backoff expiries and blackout
        // transitions. Inert under `FaultPlan::none`: `blocked_until`
        // never exceeds `now` and the outage schedules are empty.
        for (i, z) in self.zones.iter().enumerate() {
            if !z.active {
                continue;
            }
            consider(z.blocked_until, self.now, &mut t);
            if let Some(tr) = self.outages[i].next_transition(self.now) {
                consider(tr, self.now, &mut t);
            }
        }

        if let Some(c) = self.ckpt {
            consider(c.done_at, self.now, &mut t);
        }
        consider(self.guard_time(), self.now, &mut t);
        let alarm = self.with_ctx(|policy, ctx| policy.alarm(ctx));
        if let Some(a) = alarm {
            consider(a, self.now, &mut t);
        }
        t
    }

    /// Advance the clock to `t`, crediting progress to executing replicas.
    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t > self.now);
        for i in 0..self.zones.len() {
            if !self.zones[i].inst.is_up() {
                continue;
            }
            let from = self.zones[i].busy_until.max(self.now);
            if t > from {
                self.replicas.advance(i, t - from);
            }
        }
        self.now = t;
    }
}
