//! The Algorithm-1 simulation engine.
//!
//! An event-driven simulator that executes one experiment configuration
//! against recorded (or synthetic) spot-price traces, enforcing:
//!
//! * EC2 spot semantics — fixed bids, abrupt out-of-bid termination,
//!   hour-boundary billing, free out-of-bid partial hours, queuing delays;
//! * Algorithm 1 — the *waiting* state (an affordable zone idles until the
//!   next checkpoint so it can restart from fresh state), restart of all
//!   waiting zones when every zone is down, and pluggable
//!   `CheckpointCondition` / `ScheduleNextCheckpoint` policies;
//! * the deadline guarantee (line 11) — a guard that keeps
//!   `T_r ≥ C_r + t_c + t_r` *measured from committed progress*. When the
//!   guard trips, the engine first takes a protective checkpoint (if a
//!   replica is executing); if the margin is restored by the commit, spot
//!   execution continues, otherwise execution migrates to a single
//!   on-demand instance, which always completes by `D`.
//!
//! The guard-then-checkpoint refinement is what makes the guarantee hard:
//! firing on *committed* progress with a `t_c + t_r` reserve means even a
//! termination during the protective checkpoint still leaves time to
//! restart on-demand from the previous checkpoint (see DESIGN.md).

use crate::config::{ConfigError, ExperimentConfig};
use crate::faults::FaultPlan;
use crate::policy::{Policy, PolicyCtx};
use crate::run::{Event, RunResult, TerminationCause};
use crate::supervisor::{DenyReason, RequestOutcome, Supervisor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redspot_ckpt::ReplicaSet;
use redspot_market::{
    ApiFaultPlan, CloudApi, DelayModel, FaultyApi, InstanceState, OutageSchedule, PerfectApi,
    SpotBilling, StopCause,
};
use redspot_trace::{Price, SimDuration, SimTime, TraceSet};

/// Execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Bidding on the spot market.
    Spot,
    /// Migrated to on-demand; completes at the contained instant.
    OnDemand(SimTime),
    /// Finished.
    Done,
}

/// Per-zone runtime state.
#[derive(Debug, Clone)]
struct ZoneRt {
    inst: InstanceState,
    billing: Option<SpotBilling>,
    /// Bid attached to the current request (spot requests are fixed-bid;
    /// an engine-level bid change only affects *future* requests).
    bid: Price,
    /// Restart/checkpoint overhead: the replica makes no progress before
    /// this instant.
    busy_until: SimTime,
    /// Stop voluntarily at the next hour boundary (adaptive retirement).
    retire: bool,
    /// Whether this zone participates at all (adaptive `N` control).
    active: bool,
    /// Consecutive injected boot failures (resets when a boot succeeds);
    /// drives the retry backoff.
    boot_retries: u32,
    /// No new spot request before this instant (boot-retry backoff).
    /// Initialized to the experiment start, so it never gates anything
    /// until a boot failure pushes it forward.
    blocked_until: SimTime,
}

/// An in-flight checkpoint.
#[derive(Debug, Clone, Copy)]
struct CkptRt {
    zone: usize,
    done_at: SimTime,
    position: SimDuration,
}

/// What a single [`Engine::step`] did — the adaptive controller keys its
/// re-evaluation off these flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepReport {
    /// An instance was terminated out-of-bid during this step.
    pub termination: bool,
    /// A billing hour ended during this step.
    pub hour_boundary: bool,
    /// The run finished (completed or fully migrated and done).
    pub done: bool,
}

/// The Algorithm-1 engine. Construct with [`Engine::new`], then either
/// [`Engine::run`] to completion or drive it with [`Engine::step`] (the
/// adaptive controller does the latter, mutating bid/zones/policy at
/// decision points).
pub struct Engine<'t> {
    traces: &'t TraceSet,
    cfg: ExperimentConfig,
    start: SimTime,
    deadline_abs: SimTime,
    policy: Box<dyn Policy>,
    delay: DelayModel,
    rng: StdRng,
    /// Dedicated RNG for fault draws, kept separate from the queuing-delay
    /// RNG so a [`FaultPlan::none`] run is bit-identical to an engine
    /// without the fault layer: with no faults enabled this stream is
    /// never advanced.
    fault_rng: StdRng,
    /// Per-zone blackout schedules (all empty under [`FaultPlan::none`]).
    outages: Vec<OutageSchedule>,
    /// The control-plane supervisor: every market action (spot request,
    /// terminate, price read, on-demand request) routes through it. Under
    /// [`ApiFaultPlan::none`] it wraps a [`PerfectApi`] and the engine is
    /// bit-identical to one acting on the market directly.
    supervisor: Supervisor<Box<dyn CloudApi + 't>>,

    now: SimTime,
    zones: Vec<ZoneRt>,
    replicas: ReplicaSet,
    ckpt: Option<CkptRt>,
    /// Deadline guard tripped; decide migrate-vs-continue when the
    /// in-flight checkpoint commits.
    guard_pending: bool,

    phase: Phase,
    spot_cost: Price,
    od_cost: Price,
    checkpoints: u32,
    restarts: u32,
    oob_terminations: u32,
    used_on_demand: bool,
    last_commit_or_restart: SimTime,
    events: Vec<Event>,
    finished_at: SimTime,
    /// I/O-server accounting: the instant the current spot-activity span
    /// began (the on-demand I/O server runs while any spot instance is
    /// billable), and the accumulated span total.
    io_active_since: Option<SimTime>,
    io_total: SimDuration,
    /// Last step's total charge, for the cost-monotonicity invariant
    /// (debug builds only).
    #[cfg(debug_assertions)]
    last_total_cost: Price,
}

impl<'t> Engine<'t> {
    /// Build an engine starting at `start` within `traces`, using the
    /// paper's measured queuing-delay model.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or references zones outside
    /// the trace set; see [`Engine::try_new`] for the non-panicking form.
    pub fn new(
        traces: &'t TraceSet,
        start: SimTime,
        cfg: ExperimentConfig,
        policy: Box<dyn Policy>,
    ) -> Engine<'t> {
        Engine::try_new(traces, start, cfg, policy).expect("invalid experiment configuration")
    }

    /// Fallible [`Engine::new`]: returns the configuration problem instead
    /// of panicking.
    pub fn try_new(
        traces: &'t TraceSet,
        start: SimTime,
        cfg: ExperimentConfig,
        policy: Box<dyn Policy>,
    ) -> Result<Engine<'t>, ConfigError> {
        Engine::try_with_delay_model(traces, start, cfg, policy, DelayModel::paper())
    }

    /// Build with an explicit queuing-delay model (tests, ablations).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or references zones outside
    /// the trace set; see [`Engine::try_with_delay_model`].
    pub fn with_delay_model(
        traces: &'t TraceSet,
        start: SimTime,
        cfg: ExperimentConfig,
        policy: Box<dyn Policy>,
        delay: DelayModel,
    ) -> Engine<'t> {
        Engine::try_with_delay_model(traces, start, cfg, policy, delay)
            .expect("invalid experiment configuration")
    }

    /// Fallible [`Engine::with_delay_model`]: returns the configuration
    /// problem instead of panicking.
    pub fn try_with_delay_model(
        traces: &'t TraceSet,
        start: SimTime,
        cfg: ExperimentConfig,
        policy: Box<dyn Policy>,
        delay: DelayModel,
    ) -> Result<Engine<'t>, ConfigError> {
        cfg.validate()?;
        if let Some(&zone) = cfg.zones.iter().find(|z| z.0 >= traces.n_zones()) {
            return Err(ConfigError::ZoneOutOfRange {
                zone,
                n_zones: traces.n_zones(),
            });
        }
        let n = cfg.zones.len();
        let deadline_abs = start + cfg.deadline;
        let outages = (0..n)
            .map(|i| cfg.faults.outage_schedule(cfg.seed, i, start, cfg.deadline))
            .collect();
        // The control plane: perfect unless API faults are configured, in
        // which case the perfect API is wrapped in the deterministic fault
        // injector. The supervisor's jitter RNG gets a decorrelated seed;
        // both streams are only advanced when API faults are enabled.
        let api: Box<dyn CloudApi + 't> = if cfg.api.is_none() {
            Box::new(PerfectApi::new(traces))
        } else {
            Box::new(FaultyApi::new(
                PerfectApi::new(traces),
                cfg.api,
                ApiFaultPlan::rng_seed(cfg.seed),
            ))
        };
        let supervisor = Supervisor::new(
            api,
            cfg.api,
            n,
            ApiFaultPlan::rng_seed(cfg.seed ^ 0x5C4A_11ED_B0FF_5EED),
        );
        let mut engine = Engine {
            traces,
            start,
            deadline_abs,
            policy,
            delay,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xD1B5_4A32_D192_ED03),
            fault_rng: StdRng::seed_from_u64(FaultPlan::rng_seed(cfg.seed)),
            outages,
            supervisor,
            now: start,
            zones: (0..n)
                .map(|_| ZoneRt {
                    inst: InstanceState::Down,
                    billing: None,
                    bid: cfg.bid,
                    busy_until: start,
                    retire: false,
                    active: true,
                    boot_retries: 0,
                    blocked_until: start,
                })
                .collect(),
            replicas: ReplicaSet::new(cfg.app, n),
            ckpt: None,
            guard_pending: false,
            phase: Phase::Spot,
            spot_cost: Price::ZERO,
            od_cost: Price::ZERO,
            checkpoints: 0,
            restarts: 0,
            oob_terminations: 0,
            used_on_demand: false,
            last_commit_or_restart: start,
            events: Vec::new(),
            finished_at: start,
            io_active_since: None,
            io_total: SimDuration::ZERO,
            #[cfg(debug_assertions)]
            last_total_cost: Price::ZERO,
            cfg,
        };
        let ctx_needed = engine.phase == Phase::Spot;
        if ctx_needed {
            engine.with_ctx(|policy, ctx| policy.reschedule(ctx));
        }
        Ok(engine)
    }

    // ------------------------------------------------------------------
    // Public accessors (used by the adaptive controller and tests).

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Experiment start.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Absolute deadline.
    pub fn deadline_abs(&self) -> SimTime {
        self.deadline_abs
    }

    /// Committed (durable) progress.
    pub fn committed(&self) -> SimDuration {
        self.replicas.committed()
    }

    /// Furthest live replica position (capturable progress).
    pub fn best_position(&self) -> SimDuration {
        self.replicas.best_position()
    }

    /// Spot charges so far.
    pub fn spot_cost(&self) -> Price {
        self.spot_cost
    }

    /// On-demand charges so far.
    pub fn od_cost(&self) -> Price {
        self.od_cost
    }

    /// Whether the run has finished.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether execution has migrated to on-demand.
    pub fn on_demand(&self) -> bool {
        matches!(self.phase, Phase::OnDemand(_))
    }

    /// The bid applied to *future* spot requests.
    pub fn bid(&self) -> Price {
        self.cfg.bid
    }

    /// Instance state of configured zone `idx`.
    pub fn zone_state(&self, idx: usize) -> InstanceState {
        self.zones[idx].inst
    }

    /// Whether configured zone `idx` is active.
    pub fn zone_active(&self, idx: usize) -> bool {
        self.zones[idx].active
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Adaptive mutators.

    /// Swap the checkpoint policy (takes effect immediately).
    pub fn set_policy(&mut self, policy: Box<dyn Policy>) {
        self.policy = policy;
        if self.phase == Phase::Spot {
            self.with_ctx(|policy, ctx| policy.reschedule(ctx));
        }
    }

    /// Change the bid for future spot requests. Running instances keep the
    /// bid they were requested with (EC2 spot requests are fixed-bid).
    pub fn set_bid(&mut self, bid: Price) {
        self.cfg.bid = bid;
    }

    /// Activate or deactivate configured zone `idx`. Deactivating a
    /// billable zone retires it at its next hour boundary (no partial-hour
    /// waste); deactivating a waiting zone is immediate.
    pub fn set_active(&mut self, idx: usize, active: bool) {
        let z = &mut self.zones[idx];
        z.active = active;
        if !active {
            match z.inst {
                InstanceState::Waiting | InstanceState::Down => {
                    z.inst = InstanceState::Down;
                }
                InstanceState::Booting { .. } | InstanceState::Up => {
                    z.retire = true;
                }
            }
        } else {
            z.retire = false;
        }
    }

    /// A serializable point-in-time summary of the engine state, for
    /// dashboards, logging, and driver code.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            now: self.now,
            deadline: self.deadline_abs,
            committed: self.replicas.committed(),
            best_position: self.replicas.best_position(),
            remaining: self.replicas.remaining_committed(),
            spot_cost: self.spot_cost,
            od_cost: self.od_cost,
            on_demand: self.on_demand(),
            done: self.is_done(),
            zones: self
                .zones
                .iter()
                .enumerate()
                .map(|(i, z)| ZoneSnapshot {
                    zone: self.cfg.zones[i],
                    state: z.inst,
                    active: z.active,
                    bid: z.bid,
                    position: self.replicas.position(i),
                })
                .collect(),
            checkpoints: self.checkpoints,
            restarts: self.restarts,
            out_of_bid_terminations: self.oob_terminations,
        }
    }

    /// Record an adaptive-controller switch in the event log.
    pub fn note_adaptive_switch(&mut self, to: String) {
        let at = self.now;
        self.record(Event::AdaptiveSwitch { at, to });
    }

    /// Change the deadline at runtime (Section 3.2: the algorithm
    /// continuously monitors `T_r`, so the user may move `D` while the
    /// application runs). Returns `false` when the new deadline is no
    /// longer guaranteed — i.e. it lies before the time needed to
    /// checkpoint, migrate, and finish the remaining committed work — in
    /// which case the engine still adopts it and immediately does its
    /// best (the guard fires at the next step).
    pub fn set_deadline(&mut self, deadline_abs: SimTime) -> bool {
        self.deadline_abs = deadline_abs;
        let needed = self.replicas.remaining_committed()
            + self.cfg.costs.migration()
            + self.supervisor.od_reserve();
        let feasible = deadline_abs >= self.now + needed;
        let at = self.now;
        self.record(Event::DeadlineChanged {
            at,
            deadline: deadline_abs,
            feasible,
        });
        feasible
    }

    // ------------------------------------------------------------------
    // Core loop.

    /// Run to completion and produce the result.
    pub fn run(mut self) -> RunResult {
        let mut fuel: u64 = 50_000_000;
        while !self.is_done() {
            self.step();
            fuel -= 1;
            assert!(fuel > 0, "engine failed to make progress");
        }
        self.into_result()
    }

    /// Advance the simulation by one event horizon, processing everything
    /// due at the current instant first. Debug builds re-check the engine's
    /// internal invariants after every step.
    pub fn step(&mut self) -> StepReport {
        let report = self.step_inner();
        self.check_invariants();
        report
    }

    fn step_inner(&mut self) -> StepReport {
        let mut report = StepReport::default();
        if self.phase == Phase::Done {
            report.done = true;
            return report;
        }

        // Drain everything due *now* until quiescent.
        let mut guard_fuel = 64;
        while self.process_now(&mut report) {
            guard_fuel -= 1;
            assert!(guard_fuel > 0, "event cascade failed to settle");
            if self.phase == Phase::Done {
                report.done = true;
                return report;
            }
        }

        // Hop to the next event.
        if let Phase::OnDemand(finish) = self.phase {
            self.now = finish;
            self.finish_run();
            report.done = true;
            return report;
        }
        let next = self.next_event_time();
        debug_assert!(next > self.now, "event horizon must advance");
        self.advance_to(next);
        report.done = self.phase == Phase::Done;
        report
    }

    /// Consume the engine, producing the final result.
    ///
    /// # Panics
    /// Panics if the run has not finished.
    pub fn into_result(self) -> RunResult {
        assert!(self.phase == Phase::Done, "run not finished");
        let io_cost = self.io_cost();
        RunResult {
            cost: self.spot_cost + self.od_cost + io_cost,
            spot_cost: self.spot_cost,
            od_cost: self.od_cost,
            io_cost,
            finished_at: self.finished_at,
            met_deadline: self.finished_at <= self.deadline_abs,
            checkpoints: self.checkpoints,
            restarts: self.restarts,
            out_of_bid_terminations: self.oob_terminations,
            used_on_demand: self.used_on_demand,
            api: self.supervisor.stats(),
            events: self.events,
        }
    }

    // ------------------------------------------------------------------
    // Event processing.

    /// Handle every condition due at `self.now`. Returns true if any state
    /// changed (the caller loops until quiescent).
    fn process_now(&mut self, report: &mut StepReport) -> bool {
        let mut acted = false;

        // 1. Completion?
        if self.try_complete() {
            return true;
        }

        // 2. Checkpoint completion.
        if let Some(c) = self.ckpt {
            if c.done_at <= self.now && self.zones[c.zone].inst.is_up() {
                self.finish_checkpoint(c);
                acted = true;
            }
        }

        // 3. Boot completions (or injected boot failures at the ready
        //    instant: InsufficientInstanceCapacity and friends).
        for i in 0..self.zones.len() {
            if let InstanceState::Booting { ready_at } = self.zones[i].inst {
                if ready_at <= self.now {
                    if self.boot_fails() {
                        self.boot_failed(i);
                    } else {
                        self.start_replica(i);
                    }
                    acted = true;
                }
            }
        }

        // 4. Hour boundaries — before the market scan, so an hour that
        //    completes at the same instant the price moves out of bid is
        //    still charged (the termination only voids the *new* hour).
        acted |= self.process_hour_boundaries(report);

        // 4b. Injected zone blackouts — after the boundaries for the same
        //     reason, before the market scan so a dark zone cannot
        //     transition to waiting in the same instant.
        acted |= self.enforce_blackouts(report);

        // 5. Market scan: out-of-bid terminations, waiting transitions.
        acted |= self.scan_market(report);

        // 6. Deadline guard.
        if self.phase == Phase::Spot && self.now >= self.guard_time() {
            acted |= self.handle_guard();
            if self.phase != Phase::Spot {
                return true;
            }
        }

        // 7. Restart waiting zones when nothing is billable (Alg. 1
        //    lines 29–33).
        if self.phase == Phase::Spot
            && !self.zones.iter().any(|z| z.inst.is_billable())
            && self.zones.iter().any(|z| z.inst.is_waiting())
        {
            for i in 0..self.zones.len() {
                if self.zones[i].inst.is_waiting() {
                    self.request_instance(i);
                    acted = true;
                }
            }
        }

        // 8. Policy checkpoint condition.
        if self.phase == Phase::Spot && self.ckpt.is_none() {
            if let Some(leader) = self.leader() {
                let due = self.retirement_ckpt_due(leader)
                    || self.with_ctx(|policy, ctx| policy.checkpoint_now(ctx));
                if due {
                    self.begin_checkpoint(leader);
                    acted = true;
                }
            }
        }

        self.update_io_tracking();
        acted
    }

    /// Track the union of time during which any spot instance is billable
    /// — that is when the on-demand I/O server must be up (Section 5).
    fn update_io_tracking(&mut self) {
        if self.cfg.io_server.is_none() {
            return;
        }
        let active = self.phase == Phase::Spot && self.zones.iter().any(|z| z.inst.is_billable());
        match (active, self.io_active_since) {
            (true, None) => self.io_active_since = Some(self.now),
            (false, Some(since)) => {
                self.io_total += self.now.since(since);
                self.io_active_since = None;
            }
            _ => {}
        }
    }

    /// Total I/O-server charge so far.
    fn io_cost(&self) -> Price {
        match self.cfg.io_server {
            None => Price::ZERO,
            Some(rate) => {
                let mut total = self.io_total;
                if let Some(since) = self.io_active_since {
                    total += self.now.since(since);
                }
                rate * total.billed_hours()
            }
        }
    }

    fn scan_market(&mut self, report: &mut StepReport) -> bool {
        if self.phase != Phase::Spot {
            return false;
        }
        let mut acted = false;
        let resume_at = self.policy.resume_threshold();
        for i in 0..self.zones.len() {
            let price = self.traces.price_at(self.cfg.zones[i], self.now);
            match self.zones[i].inst {
                InstanceState::Up | InstanceState::Booting { .. } => {
                    if price > self.zones[i].bid {
                        self.terminate_out_of_bid(i);
                        report.termination = true;
                        acted = true;
                    }
                }
                InstanceState::Down if self.zones[i].active => {
                    // Fault gates: no requests while a boot-retry backoff
                    // (or a supervisor retry backoff / quarantine) is
                    // pending or the zone is blacked out. All inert under
                    // the no-fault plans (`blocked_until` stays at the
                    // start and the outage schedule is empty).
                    if self.now < self.zones[i].blocked_until
                        || self.outages[i].blacked_out(self.now).is_some()
                    {
                        continue;
                    }
                    // Scheduler decision: runs on the supervisor's
                    // (possibly stale) price view, not the true price.
                    let Some(observed) = self.observed_price(i) else {
                        continue;
                    };
                    let threshold = resume_at.unwrap_or(self.cfg.bid);
                    if observed <= threshold {
                        self.zones[i].inst = InstanceState::Waiting;
                        self.record(Event::Waiting {
                            at: self.now,
                            zone: self.cfg.zones[i],
                        });
                        acted = true;
                    }
                }
                InstanceState::Waiting => {
                    if !self.zones[i].active {
                        self.zones[i].inst = InstanceState::Down;
                        acted = true;
                        continue;
                    }
                    // As in the Down arm: no observation means no
                    // decision — never fall back to the true trace
                    // price, which the scheduler cannot see.
                    let Some(observed) = self.observed_price(i) else {
                        continue;
                    };
                    let threshold = resume_at.unwrap_or(self.cfg.bid);
                    if observed > threshold {
                        self.zones[i].inst = InstanceState::Down;
                        acted = true;
                    }
                }
                InstanceState::Down => {}
            }
        }
        acted
    }

    /// The scheduler-side price for configured zone `i`: the supervisor's
    /// latest (possibly stale) observation. A failed read falls back to
    /// the last known price and records the staleness window; `None` only
    /// if the zone's price has never been observed. Identical to the true
    /// trace price under [`ApiFaultPlan::none`].
    fn observed_price(&mut self, i: usize) -> Option<Price> {
        let zone = self.cfg.zones[i];
        let (view, stale) = self.supervisor.observe_price(i, zone, self.now)?;
        if stale {
            self.record(Event::StalePriceUsed {
                at: self.now,
                zone,
                age: view.age(self.now),
            });
        }
        Some(view.price)
    }

    fn process_hour_boundaries(&mut self, report: &mut StepReport) -> bool {
        let mut acted = false;
        for i in 0..self.zones.len() {
            let Some(billing) = self.zones[i].billing else {
                continue;
            };
            if billing.next_boundary() > self.now {
                continue;
            }
            report.hour_boundary = true;
            acted = true;
            let stop =
                self.zones[i].retire || self.with_ctx(|policy, ctx| policy.voluntary_stop(ctx, i));
            if stop {
                self.stop_zone(i, StopCause::User, TerminationCause::Voluntary);
            } else {
                let rate = self.traces.price_at(self.cfg.zones[i], self.now);
                let b = self.zones[i]
                    .billing
                    .as_mut()
                    .expect("billing checked above");
                let charged_rate = b.current_rate();
                b.on_hour_boundary(self.now, rate);
                self.record(Event::HourCharged {
                    at: self.now,
                    zone: self.cfg.zones[i],
                    rate: charged_rate,
                });
            }
        }
        acted
    }

    /// The instant the deadline guard trips, measured from committed
    /// progress with a full `t_c + t_r` reserve — plus, when API faults
    /// are configured, the worst-case control-plane delay of the bounded
    /// on-demand retry loop, so even a flaky migration path cannot push
    /// completion past `D`. Zero extra under [`ApiFaultPlan::none`].
    fn guard_time(&self) -> SimTime {
        let needed = self.replicas.remaining_committed()
            + self.cfg.costs.migration()
            + self.supervisor.od_reserve();
        self.deadline_abs.saturating_sub(needed)
    }

    fn handle_guard(&mut self) -> bool {
        if self.ckpt.is_some() {
            // A checkpoint is already in flight; decide at its commit.
            if !self.guard_pending {
                self.guard_pending = true;
                return true;
            }
            return false;
        }
        if self.guard_pending {
            // The reserve attempt was already spent: the in-flight
            // checkpoint aborted (its zone was terminated or retired).
            // Starting another checkpoint would overrun the t_c + t_r
            // reserve and break the deadline guarantee — migrate now.
            self.migrate_to_on_demand();
            return true;
        }
        match self.leader() {
            Some(leader) => {
                // Protective checkpoint: commit the leader's position, then
                // re-evaluate. The t_c + t_r reserve makes this safe even
                // if the leader dies mid-checkpoint.
                self.guard_pending = true;
                self.begin_checkpoint(leader);
            }
            None => self.migrate_to_on_demand(),
        }
        true
    }

    // ------------------------------------------------------------------
    // Fault injection. Every probability draw is guarded by `p > 0.0` so
    // the fault RNG is never advanced under `FaultPlan::none` — that is
    // what makes the no-fault engine bit-identical to the seed engine.

    /// Draw whether the boot completing now fails.
    fn boot_fails(&mut self) -> bool {
        let p = self.cfg.faults.p_boot_fail;
        p > 0.0 && self.fault_rng.gen_bool(p)
    }

    /// A booting instance died at its ready instant: release it unbilled
    /// (the instance never ran) and back off before re-requesting.
    fn boot_failed(&mut self, i: usize) {
        let billing = self.zones[i]
            .billing
            .take()
            .expect("booting zone has billing");
        // Out-of-bid stop semantics: the failed partial hour is free.
        let charged = billing.stop(self.now, StopCause::OutOfBid);
        self.spot_cost += charged;
        self.zones[i].inst = InstanceState::Down;
        self.zones[i].boot_retries += 1;
        let backoff = self.cfg.faults.backoff_after(self.zones[i].boot_retries);
        let retry_at = self.now + backoff;
        self.zones[i].blocked_until = retry_at;
        self.record(Event::BootFailed {
            at: self.now,
            zone: self.cfg.zones[i],
            retry_at,
        });
    }

    /// Force-terminate instances in blacked-out zones and knock waiting
    /// zones down. A no-op under `FaultPlan::none` (no outage windows).
    fn enforce_blackouts(&mut self, report: &mut StepReport) -> bool {
        if self.phase != Phase::Spot {
            return false;
        }
        let mut acted = false;
        for i in 0..self.zones.len() {
            let Some(until) = self.outages[i].blacked_out(self.now) else {
                continue;
            };
            match self.zones[i].inst {
                InstanceState::Up | InstanceState::Booting { .. } => {
                    self.blackout_zone(i, until);
                    report.termination = true;
                    acted = true;
                }
                InstanceState::Waiting => {
                    self.zones[i].inst = InstanceState::Down;
                    acted = true;
                }
                InstanceState::Down => {}
            }
        }
        acted
    }

    /// The blackout analogue of an out-of-bid termination: the provider
    /// kills the instance (partial hour free), speculative progress is
    /// lost, and an in-flight checkpoint on the zone aborts.
    fn blackout_zone(&mut self, i: usize, until: SimTime) {
        let billing = self.zones[i]
            .billing
            .take()
            .expect("billable zone has billing");
        let charged = billing.stop(self.now, StopCause::OutOfBid);
        self.spot_cost += charged;
        self.replicas.stop(i);
        self.zones[i].inst = InstanceState::Down;
        self.record(Event::ZoneBlackout {
            at: self.now,
            zone: self.cfg.zones[i],
            until,
        });
        if let Some(c) = self.ckpt {
            if c.zone == i {
                self.ckpt = None;
                self.record(Event::CheckpointAborted {
                    at: self.now,
                    zone: self.cfg.zones[i],
                });
            }
        }
    }

    /// Internal-consistency checks, compiled into debug builds only and
    /// re-verified after every [`Engine::step`]:
    ///
    /// * a zone has billing state iff its instance is billable;
    /// * committed progress never exceeds the best live position;
    /// * the reliable (I/O-server) position covers the committed one;
    /// * total charge is monotone;
    /// * an in-flight checkpoint's zone is billable.
    fn check_invariants(&mut self) {
        #[cfg(debug_assertions)]
        {
            for (i, z) in self.zones.iter().enumerate() {
                assert_eq!(
                    z.billing.is_some(),
                    z.inst.is_billable(),
                    "zone {i}: billing {:?} inconsistent with state {:?}",
                    z.billing,
                    z.inst
                );
            }
            assert!(
                self.replicas.committed() <= self.replicas.best_position(),
                "committed progress ahead of best position"
            );
            assert!(
                self.replicas.reliable() >= self.replicas.committed(),
                "reliable store behind committed progress"
            );
            if let Some(c) = self.ckpt {
                assert!(
                    self.zones[c.zone].inst.is_billable(),
                    "in-flight checkpoint on a dead zone"
                );
            }
            let total = self.spot_cost + self.od_cost;
            assert!(
                total >= self.last_total_cost,
                "total cost decreased: {total} < {}",
                self.last_total_cost
            );
            self.last_total_cost = total;
        }
    }

    // ------------------------------------------------------------------
    // State transitions.

    fn leader(&self) -> Option<usize> {
        (0..self.zones.len())
            .filter(|&i| self.zones[i].inst.is_up())
            .max_by_key(|&i| (self.replicas.position(i), std::cmp::Reverse(i)))
    }

    /// Submit a spot request for configured zone `i` through the
    /// supervisor. On acceptance the control-plane round-trip latency is
    /// folded into the boot delay; on denial (API failure, quarantine, or
    /// exhausted retry budget) the zone goes down, unbilled, until the
    /// supervisor's retry instant. Under [`ApiFaultPlan::none`] requests
    /// are always accepted with zero latency — the pre-supervisor path.
    fn request_instance(&mut self, i: usize) {
        debug_assert!(self.zones[i].inst.is_waiting());
        let zone = self.cfg.zones[i];
        let slack = self.guard_time().since(self.now);
        match self
            .supervisor
            .request_spot(i, zone, self.now, self.cfg.bid, slack)
        {
            RequestOutcome::Accepted {
                latency,
                breaker_closed,
            } => {
                if breaker_closed {
                    self.record(Event::ZoneBreakerClosed { at: self.now, zone });
                }
                let boot = self.delay.sample(&mut self.rng);
                let ready_at = self.now + latency + boot;
                let rate = self.traces.price_at(zone, self.now);
                self.zones[i].inst = InstanceState::Booting { ready_at };
                self.zones[i].billing = Some(SpotBilling::launch(self.now, rate));
                self.zones[i].bid = self.cfg.bid;
                self.record(Event::Requested {
                    at: self.now,
                    zone,
                    bid: self.cfg.bid,
                });
            }
            RequestOutcome::Denied {
                retry_at,
                reason,
                tripped_until,
            } => {
                // Never fulfilled, never billed: the zone just stays down
                // (with its retry gate set) and no billing state exists.
                self.zones[i].inst = InstanceState::Down;
                self.zones[i].blocked_until = retry_at;
                let error = match reason {
                    DenyReason::Api(e) => Some(e),
                    DenyReason::Quarantined { .. } | DenyReason::BudgetExhausted => None,
                };
                self.record(Event::SpotRequestFailed {
                    at: self.now,
                    zone,
                    error,
                    retry_at,
                });
                if let Some(until) = tripped_until {
                    self.record(Event::ZoneQuarantined {
                        at: self.now,
                        zone,
                        until,
                    });
                }
            }
        }
    }

    fn start_replica(&mut self, i: usize) {
        debug_assert!(matches!(self.zones[i].inst, InstanceState::Booting { .. }));
        self.zones[i].inst = InstanceState::Up;
        self.zones[i].boot_retries = 0;
        let attempted = self.replicas.committed();
        let mut from = attempted;
        // Injected restore corruption: the newest generation turns out to
        // be unreadable and the restore falls back to the one before it —
        // re-checked per generation, so a restore can fall through several
        // (bottoming out at a from-scratch restart). The deadline guard
        // recomputes from the new, lower committed position at the next
        // drain iteration.
        let p = self.cfg.faults.p_restore_corrupt;
        if p > 0.0 {
            while from > SimDuration::ZERO && self.fault_rng.gen_bool(p) {
                from = self.replicas.invalidate_newest_checkpoint();
                self.record(Event::RestoreFailed {
                    at: self.now,
                    zone: self.cfg.zones[i],
                    fell_back_to: from,
                });
            }
        }
        self.replicas.start(i, from);
        // Reading the checkpoint costs t_r; a cold start (no checkpoint)
        // only pays the queuing delay already elapsed. A corrupted restore
        // still pays t_r for the attempted read.
        self.zones[i].busy_until = if attempted > SimDuration::ZERO {
            self.now + self.cfg.costs.restart
        } else {
            self.now
        };
        self.restarts += 1;
        self.last_commit_or_restart = self.now;
        self.record(Event::Started {
            at: self.now,
            zone: self.cfg.zones[i],
            from,
        });
        self.with_ctx(|policy, ctx| policy.reschedule(ctx));
    }

    fn terminate_out_of_bid(&mut self, i: usize) {
        let billing = self.zones[i]
            .billing
            .take()
            .expect("billable zone has billing");
        let charged = billing.stop(self.now, StopCause::OutOfBid);
        self.spot_cost += charged;
        self.replicas.stop(i);
        self.zones[i].inst = InstanceState::Down;
        self.oob_terminations += 1;
        self.record(Event::Terminated {
            at: self.now,
            zone: self.cfg.zones[i],
            cause: TerminationCause::OutOfBid,
            charged,
        });
        if let Some(c) = self.ckpt {
            if c.zone == i {
                self.ckpt = None;
                self.record(Event::CheckpointAborted {
                    at: self.now,
                    zone: self.cfg.zones[i],
                });
            }
        }
    }

    fn stop_zone(&mut self, i: usize, cause: StopCause, reason: TerminationCause) {
        if let Some(mut billing) = self.zones[i].billing.take() {
            let zone = self.cfg.zones[i];
            let mut stop_at = self.now;
            if matches!(cause, StopCause::User) {
                // Scheduler-initiated stops go through the control plane;
                // a flaky terminate keeps the instance billing for the
                // retry lag. Zero under `ApiFaultPlan::none`.
                let lag = self.supervisor.terminate(zone, self.now);
                if lag > SimDuration::ZERO {
                    stop_at = self.now + lag;
                    // Settle hour boundaries crossed during the lag at the
                    // true trace rates, silently: the charges land in
                    // `charged` below and every event stays stamped `now`,
                    // keeping the log time-ordered.
                    while billing.next_boundary() < stop_at {
                        let b_at = billing.next_boundary();
                        let rate = self.traces.price_at(zone, b_at);
                        billing.on_hour_boundary(b_at, rate);
                    }
                    self.record(Event::TerminateLagged {
                        at: self.now,
                        zone,
                        lag,
                    });
                }
            }
            let charged = billing.stop(stop_at, cause);
            self.spot_cost += charged;
            self.record(Event::Terminated {
                at: self.now,
                zone,
                cause: reason,
                charged,
            });
        }
        self.replicas.stop(i);
        self.zones[i].inst = InstanceState::Down;
        self.zones[i].retire = false;
        if let Some(c) = self.ckpt {
            if c.zone == i {
                self.ckpt = None;
                self.record(Event::CheckpointAborted {
                    at: self.now,
                    zone: self.cfg.zones[i],
                });
            }
        }
    }

    fn begin_checkpoint(&mut self, leader: usize) {
        debug_assert!(self.ckpt.is_none());
        let raw = self.replicas.position(leader).expect("leader is executing");
        // Iterative applications can only checkpoint completed iterations
        // (progress is reported via an MPI_Pcontrol-style hook).
        let position = self.cfg.app.checkpointable(raw);
        let done_at = self.now + self.cfg.costs.checkpoint;
        self.ckpt = Some(CkptRt {
            zone: leader,
            done_at,
            position,
        });
        // The writing zone makes no progress during the checkpoint.
        self.zones[leader].busy_until = self.zones[leader].busy_until.max(done_at);
        self.record(Event::CheckpointStarted {
            at: self.now,
            zone: self.cfg.zones[leader],
            position,
        });
    }

    fn finish_checkpoint(&mut self, c: CkptRt) {
        self.ckpt = None;

        // Injected checkpoint write failure: the t_c window was spent but
        // the data never committed. Progress stays at the previous
        // generation; waiting zones keep waiting for a *fresh* checkpoint.
        // If this was the guard's protective checkpoint, the t_c + t_r
        // reserve still covers migration: exactly t_r remains, which is
        // what the on-demand restore needs.
        let p = self.cfg.faults.p_ckpt_write_fail;
        if p > 0.0 && self.fault_rng.gen_bool(p) {
            self.record(Event::CheckpointWriteFailed {
                at: self.now,
                zone: self.cfg.zones[c.zone],
            });
            if self.guard_pending {
                self.guard_pending = false;
                if self.now >= self.guard_time() {
                    self.migrate_to_on_demand();
                    return;
                }
            }
            self.with_ctx(|policy, ctx| policy.reschedule(ctx));
            return;
        }

        if c.position >= self.replicas.committed() {
            self.replicas.commit(c.position);
        }
        self.checkpoints += 1;
        self.last_commit_or_restart = self.now;
        self.record(Event::CheckpointCommitted {
            at: self.now,
            position: c.position,
        });

        if self.guard_pending {
            self.guard_pending = false;
            if self.now >= self.guard_time() {
                self.migrate_to_on_demand();
                return;
            }
        }

        // Algorithm 1 lines 19–24: waiting zones restart from this fresh
        // checkpoint.
        for i in 0..self.zones.len() {
            if self.zones[i].inst.is_waiting() {
                self.request_instance(i);
            }
        }
        self.with_ctx(|policy, ctx| policy.reschedule(ctx));
    }

    fn migrate_to_on_demand(&mut self) {
        debug_assert!(self.phase == Phase::Spot);
        // Close the I/O-server span: on-demand compute no longer needs the
        // checkpoint server.
        if let Some(since) = self.io_active_since.take() {
            self.io_total += self.now.since(since);
        }
        // The on-demand path restores from the I/O server directly, which
        // is reliable storage (Section 5): it holds the furthest committed
        // generation regardless of spot-side read corruption. That is
        // always at least the newest *valid* generation the guard budgeted
        // for, so the migration can only finish earlier than the guard's
        // reserve assumed — the deadline guarantee survives every fault
        // schedule. Identical to `committed()` under `FaultPlan::none`.
        let committed = self.replicas.reliable().max(self.replicas.committed());
        self.record(Event::SwitchedToOnDemand {
            at: self.now,
            committed,
        });
        for i in 0..self.zones.len() {
            if self.zones[i].inst.is_billable() {
                self.stop_zone(i, StopCause::User, TerminationCause::Voluntary);
            } else {
                self.zones[i].inst = InstanceState::Down;
            }
        }
        // The migration path's own escape hatch: the on-demand request is
        // retried up to the plan's bound and then forced through, so its
        // delay never exceeds the `od_reserve` the guard already budgeted
        // for. Zero under `ApiFaultPlan::none`.
        let od_delay = self.supervisor.request_on_demand(self.now);
        if od_delay > SimDuration::ZERO {
            self.record(Event::OnDemandDelayed {
                at: self.now,
                delay: od_delay,
            });
        }
        let restart = if committed > SimDuration::ZERO {
            self.cfg.costs.restart
        } else {
            SimDuration::ZERO
        };
        let need = restart + (self.cfg.app.work - committed);
        let od_start = self.now + od_delay;
        let finish = od_start + need;
        self.od_cost += redspot_market::on_demand_cost(od_start, finish);
        self.used_on_demand = true;
        self.phase = Phase::OnDemand(finish);
    }

    fn try_complete(&mut self) -> bool {
        if self.phase != Phase::Spot {
            return false;
        }
        let complete = (0..self.zones.len()).any(|i| {
            self.zones[i].inst.is_up()
                && self.zones[i].busy_until <= self.now
                && self.replicas.position(i) == Some(self.cfg.app.work)
        });
        if !complete {
            return false;
        }
        for i in 0..self.zones.len() {
            if self.zones[i].inst.is_billable() {
                self.stop_zone(i, StopCause::User, TerminationCause::Voluntary);
            }
        }
        self.replicas.commit(self.cfg.app.work);
        self.finish_run();
        true
    }

    fn finish_run(&mut self) {
        self.finished_at = self.now;
        self.phase = Phase::Done;
        self.record(Event::Completed { at: self.now });
    }

    fn retirement_ckpt_due(&self, leader: usize) -> bool {
        let z = &self.zones[leader];
        if !z.retire || !z.inst.is_up() {
            return false;
        }
        let Some(billing) = z.billing else {
            return false;
        };
        self.now
            >= billing
                .next_boundary()
                .saturating_sub(self.cfg.costs.checkpoint)
    }

    // ------------------------------------------------------------------
    // Time advancement.

    fn next_event_time(&mut self) -> SimTime {
        let mut t = self.deadline_abs.max(self.now + SimDuration::from_secs(1));

        let consider = |cand: SimTime, now: SimTime, best: &mut SimTime| {
            if cand > now && cand < *best {
                *best = cand;
            }
        };

        // Next price movement in any active zone.
        for (i, z) in self.zones.iter().enumerate() {
            if !z.active && !z.inst.is_billable() {
                continue;
            }
            if let Some((at, _)) = self
                .traces
                .zone(self.cfg.zones[i])
                .next_price_change(self.now)
            {
                consider(at, self.now, &mut t);
            }
        }

        for (i, z) in self.zones.iter().enumerate() {
            if let Some(b) = z.billing {
                consider(b.next_boundary(), self.now, &mut t);
                if z.retire {
                    consider(
                        b.next_boundary().saturating_sub(self.cfg.costs.checkpoint),
                        self.now,
                        &mut t,
                    );
                }
            }
            if let InstanceState::Booting { ready_at } = z.inst {
                consider(ready_at, self.now, &mut t);
            }
            if z.inst.is_up() {
                if let Some(pos) = self.replicas.position(i) {
                    let resume = z.busy_until.max(self.now);
                    let finish = resume + (self.cfg.app.work - pos);
                    consider(finish, self.now, &mut t);
                }
            }
        }

        // Fault wake-ups: boot-retry backoff expiries and blackout
        // transitions. Inert under `FaultPlan::none`: `blocked_until`
        // never exceeds `now` and the outage schedules are empty.
        for (i, z) in self.zones.iter().enumerate() {
            if !z.active {
                continue;
            }
            consider(z.blocked_until, self.now, &mut t);
            if let Some(tr) = self.outages[i].next_transition(self.now) {
                consider(tr, self.now, &mut t);
            }
        }

        if let Some(c) = self.ckpt {
            consider(c.done_at, self.now, &mut t);
        }
        consider(self.guard_time(), self.now, &mut t);
        let alarm = self.with_ctx(|policy, ctx| policy.alarm(ctx));
        if let Some(a) = alarm {
            consider(a, self.now, &mut t);
        }
        t
    }

    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t > self.now);
        for i in 0..self.zones.len() {
            if !self.zones[i].inst.is_up() {
                continue;
            }
            let from = self.zones[i].busy_until.max(self.now);
            if t > from {
                self.replicas.advance(i, t - from);
            }
        }
        self.now = t;
    }

    // ------------------------------------------------------------------
    // Plumbing.

    /// Run `f` with a freshly-assembled policy context. Factored this way
    /// because the context borrows engine fields while the policy needs
    /// `&mut self.policy`.
    fn with_ctx<R>(&mut self, f: impl FnOnce(&mut dyn Policy, &PolicyCtx) -> R) -> R {
        let up: Vec<bool> = self.zones.iter().map(|z| z.inst.is_up()).collect();
        let leader = (0..self.zones.len())
            .filter(|&i| up[i])
            .max_by_key(|&i| (self.replicas.position(i), std::cmp::Reverse(i)));
        let leader_boundary = leader.and_then(|i| self.zones[i].billing.map(|b| b.next_boundary()));
        let ctx = PolicyCtx {
            now: self.now,
            start: self.start,
            bid: self.cfg.bid,
            costs: self.cfg.costs,
            traces: self.traces,
            zone_ids: &self.cfg.zones,
            up: &up,
            leader_boundary,
            leader,
            last_commit_or_restart: self.last_commit_or_restart,
        };
        f(self.policy.as_mut(), &ctx)
    }

    fn record(&mut self, e: Event) {
        if self.cfg.record_events {
            self.events.push(e);
        }
    }
}

/// A point-in-time view of one zone's runtime state.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ZoneSnapshot {
    /// Which zone.
    pub zone: redspot_trace::ZoneId,
    /// Instance lifecycle state.
    pub state: InstanceState,
    /// Whether the zone participates (adaptive N control).
    pub active: bool,
    /// Bid attached to the zone's current/last request.
    pub bid: Price,
    /// Replica position, if executing.
    pub position: Option<SimDuration>,
}

/// A point-in-time view of the whole engine (see [`Engine::snapshot`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Snapshot {
    /// Simulation clock.
    pub now: SimTime,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Durable (checkpointed) progress.
    pub committed: SimDuration,
    /// Furthest live replica position.
    pub best_position: SimDuration,
    /// Remaining compute measured from committed progress.
    pub remaining: SimDuration,
    /// Spot charges so far.
    pub spot_cost: Price,
    /// On-demand charges so far.
    pub od_cost: Price,
    /// Whether execution has migrated to on-demand.
    pub on_demand: bool,
    /// Whether the run has finished.
    pub done: bool,
    /// Per-zone states.
    pub zones: Vec<ZoneSnapshot>,
    /// Committed checkpoints so far.
    pub checkpoints: u32,
    /// Replica starts so far.
    pub restarts: u32,
    /// Out-of-bid terminations so far.
    pub out_of_bid_terminations: u32,
}

/// The trivial on-demand baseline: run the whole workload on a dedicated
/// on-demand instance. Cost for the paper's 20-hour job: $48.00.
pub fn on_demand_run(start: SimTime, cfg: &ExperimentConfig) -> RunResult {
    let finish = start + cfg.app.work;
    let cost = redspot_market::on_demand_cost(start, finish);
    RunResult {
        cost,
        spot_cost: Price::ZERO,
        od_cost: cost,
        io_cost: Price::ZERO,
        finished_at: finish,
        met_deadline: cfg.app.work <= cfg.deadline,
        checkpoints: 0,
        restarts: 0,
        out_of_bid_terminations: 0,
        used_on_demand: true,
        api: crate::run::ApiStats::default(),
        events: vec![Event::Completed { at: finish }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use redspot_trace::{PriceSeries, Window, ZoneId};

    fn m(v: u64) -> Price {
        Price::from_millis(v)
    }

    /// A flat-priced trace: `n_zones` zones at `price` for `hours`.
    fn flat(price: u64, n_zones: usize, hours: u64) -> TraceSet {
        let samples = vec![m(price); (hours * 12) as usize];
        TraceSet::new(
            (0..n_zones)
                .map(|_| PriceSeries::new(SimTime::ZERO, samples.clone()))
                .collect(),
        )
    }

    /// Flat trace with one zone spiked to `spike` during `[from_h, to_h)`.
    fn flat_with_spike(
        price: u64,
        n_zones: usize,
        hours: u64,
        zone: usize,
        from_h: u64,
        to_h: u64,
        spike: u64,
    ) -> TraceSet {
        let base = flat(price, n_zones, hours);
        let w = Window::new(SimTime::from_hours(from_h), SimTime::from_hours(to_h));
        redspot_trace::gen::inject_spike(&base, ZoneId(zone), w, m(spike))
    }

    fn cfg_1zone() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg
    }

    fn run_with(traces: &TraceSet, cfg: ExperimentConfig, kind: PolicyKind) -> RunResult {
        Engine::with_delay_model(traces, SimTime::ZERO, cfg, kind.build(), DelayModel::zero()).run()
    }

    #[test]
    fn stable_cheap_market_completes_on_spot() {
        let traces = flat(270, 1, 40);
        let r = run_with(&traces, cfg_1zone(), PolicyKind::Periodic);
        assert!(r.met_deadline);
        assert!(!r.used_on_demand);
        assert_eq!(r.od_cost, Price::ZERO);
        assert_eq!(r.out_of_bid_terminations, 0);
        // 20h of work at ~55 min/hour effective: 21–23 paid hours at $0.27.
        let dollars = r.cost_dollars();
        assert!((5.4..7.0).contains(&dollars), "cost {dollars}");
        assert!(r.checkpoints >= 15, "checkpoints {}", r.checkpoints);
        assert_eq!(r.restarts, 1);
    }

    #[test]
    fn unaffordable_market_migrates_and_meets_deadline() {
        let traces = flat(5_000, 1, 40); // always above the $0.81 bid
        let r = run_with(&traces, cfg_1zone(), PolicyKind::Periodic);
        assert!(r.met_deadline);
        assert!(r.used_on_demand);
        assert_eq!(r.spot_cost, Price::ZERO);
        // Full 20-hour workload on-demand: the paper's $48 reference.
        assert_eq!(r.od_cost, Price::from_dollars(48.0));
        assert_eq!(r.checkpoints, 0);
    }

    #[test]
    fn spike_terminates_rolls_back_and_recovers() {
        let traces = flat_with_spike(300, 1, 60, 0, 5, 8, 2_000);
        let cfg = cfg_1zone().with_slack_percent(50);
        let r = run_with(&traces, cfg, PolicyKind::Periodic);
        assert!(r.met_deadline);
        assert_eq!(r.out_of_bid_terminations, 1);
        assert!(r.restarts >= 2, "restarts {}", r.restarts);
        assert!(!r.used_on_demand);
        // Paid hours before the spike + after relaunch, all at $0.30.
        assert!(r.cost_dollars() < 10.0, "cost {}", r.cost_dollars());
    }

    #[test]
    fn redundancy_rides_through_single_zone_outage() {
        // Zone 0 dies for 3 hours; zone 1 never does. With N = 2 the
        // application keeps computing and never touches on-demand.
        let traces = flat_with_spike(300, 2, 60, 0, 5, 8, 2_000);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0), ZoneId(1)];
        let r = run_with(&traces, cfg, PolicyKind::Periodic);
        assert!(r.met_deadline);
        assert!(!r.used_on_demand);
        assert_eq!(r.out_of_bid_terminations, 1); // zone 0 only
                                                  // Both zones paid for most of the run: roughly twice single-zone.
        assert!(
            r.cost_dollars() > 10.0 && r.cost_dollars() < 16.0,
            "cost {}",
            r.cost_dollars()
        );
    }

    #[test]
    fn zero_slack_goes_straight_to_on_demand() {
        let traces = flat(270, 1, 40);
        let mut cfg = cfg_1zone();
        cfg.deadline = cfg.app.work; // no slack at all
        let r = run_with(&traces, cfg, PolicyKind::Periodic);
        assert!(r.met_deadline);
        assert!(r.used_on_demand);
        assert_eq!(r.od_cost, Price::from_dollars(48.0));
        // The guarantee is exact: with zero slack and nothing committed,
        // the run finishes precisely at the deadline, not a second later.
        assert_eq!(r.finished_at, SimTime::ZERO + SimDuration::from_hours(20));
    }

    #[test]
    fn event_log_is_ordered_and_complete() {
        let traces = flat_with_spike(300, 1, 60, 0, 5, 8, 2_000);
        let cfg = cfg_1zone().with_slack_percent(50);
        let r = run_with(&traces, cfg, PolicyKind::Periodic);
        assert!(!r.events.is_empty());
        assert!(r.events.windows(2).all(|w| w[0].at() <= w[1].at()));
        assert!(matches!(r.events.last(), Some(Event::Completed { .. })));
        let commits = r
            .events
            .iter()
            .filter(|e| matches!(e, Event::CheckpointCommitted { .. }))
            .count() as u32;
        assert_eq!(commits, r.checkpoints);
    }

    #[test]
    fn no_events_recorded_when_disabled() {
        let traces = flat(270, 1, 40);
        let mut cfg = cfg_1zone();
        cfg.record_events = false;
        let r = run_with(&traces, cfg, PolicyKind::Periodic);
        assert!(r.events.is_empty());
        assert!(r.met_deadline);
    }

    #[test]
    fn edge_policy_checkpoints_on_rising_prices() {
        // Price rises (within bid) every few steps: Edge checkpoints often.
        let mut samples = Vec::new();
        for i in 0..(60 * 12) {
            samples.push(m(if i % 4 < 2 { 300 } else { 400 }));
        }
        let traces = TraceSet::new(vec![PriceSeries::new(SimTime::ZERO, samples)]);
        let cfg = cfg_1zone().with_slack_percent(50);
        let r = run_with(&traces, cfg, PolicyKind::RisingEdge);
        assert!(r.met_deadline);
        assert!(r.checkpoints > 10, "edge checkpoints {}", r.checkpoints);
    }

    #[test]
    fn edge_policy_never_checkpoints_on_flat_prices() {
        let traces = flat(270, 1, 60);
        let cfg = cfg_1zone().with_slack_percent(50);
        let r = run_with(&traces, cfg, PolicyKind::RisingEdge);
        assert!(r.met_deadline);
        assert!(!r.used_on_demand);
        // Only the deadline guard's protective checkpoints, if any.
        assert!(r.checkpoints <= 8, "checkpoints {}", r.checkpoints);
    }

    #[test]
    fn markov_daly_completes_cheaply_on_stable_market() {
        let traces = flat(270, 1, 60);
        let r = run_with(&traces, cfg_1zone(), PolicyKind::MarkovDaly);
        assert!(r.met_deadline);
        assert!(!r.used_on_demand);
        // Stable market → long Daly interval → few checkpoints.
        assert!(r.checkpoints < 10, "checkpoints {}", r.checkpoints);
        assert!(r.cost_dollars() < 6.5, "cost {}", r.cost_dollars());
    }

    #[test]
    fn large_bid_survives_spike_at_a_price() {
        // Spike to $19 for two hours: Large-bid (naive) keeps running and
        // pays the spiked hours.
        let traces = flat_with_spike(300, 1, 60, 0, 5, 7, 19_000);
        let mut cfg = cfg_1zone().with_slack_percent(50);
        cfg.bid = crate::policy::large_bid::LARGE_BID;
        let policy = Box::new(crate::policy::LargeBidPolicy::naive());
        let r =
            Engine::with_delay_model(&traces, SimTime::ZERO, cfg, policy, DelayModel::zero()).run();
        assert!(r.met_deadline);
        assert_eq!(r.out_of_bid_terminations, 0);
        // Two spiked hours at ~$19 dominate the cost.
        assert!(r.cost_dollars() > 38.0, "cost {}", r.cost_dollars());
    }

    #[test]
    fn large_bid_threshold_dodges_the_spike() {
        let traces = flat_with_spike(300, 1, 60, 0, 5, 7, 19_000);
        let mut cfg = cfg_1zone().with_slack_percent(50);
        cfg.bid = crate::policy::large_bid::LARGE_BID;
        let policy = Box::new(crate::policy::LargeBidPolicy::new(m(810)));
        let r =
            Engine::with_delay_model(&traces, SimTime::ZERO, cfg, policy, DelayModel::zero()).run();
        assert!(r.met_deadline);
        // Stopped during the spike, resumed after: far cheaper than naive.
        assert!(r.cost_dollars() < 30.0, "cost {}", r.cost_dollars());
        assert!(r.restarts >= 2);
    }

    #[test]
    fn on_demand_baseline_matches_reference_line() {
        let cfg = ExperimentConfig::paper_default();
        let r = on_demand_run(SimTime::from_hours(1), &cfg);
        assert_eq!(r.cost, Price::from_dollars(48.0));
        assert_eq!(r.finished_at, SimTime::from_hours(21));
        assert!(r.met_deadline);
    }

    #[test]
    fn adaptive_mutators_change_future_behavior() {
        let traces = flat(270, 3, 60);
        let cfg = ExperimentConfig::paper_default();
        let mut e = Engine::with_delay_model(
            &traces,
            SimTime::ZERO,
            cfg,
            PolicyKind::Periodic.build(),
            DelayModel::zero(),
        );
        // Run a few steps, then deactivate two zones.
        for _ in 0..6 {
            e.step();
        }
        assert!(e.zone_state(1).is_billable());
        e.set_active(1, false);
        e.set_active(2, false);
        e.set_bid(m(470));
        assert_eq!(e.bid(), m(470));
        let r = e.run();
        assert!(r.met_deadline);
        // Retired zones each paid only the hours before retirement; the
        // full three-zone run would cost ≈ 3 × 22 h × $0.27 ≈ $17.8.
        assert!(r.cost_dollars() < 13.0, "cost {}", r.cost_dollars());
    }

    #[test]
    fn deterministic_across_reruns() {
        let traces = flat_with_spike(300, 3, 60, 1, 4, 9, 2_000);
        let cfg = ExperimentConfig::paper_default().with_seed(99);
        let a = run_with(&traces, cfg.clone(), PolicyKind::MarkovDaly);
        let b = run_with(&traces, cfg, PolicyKind::MarkovDaly);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::policy::PolicyKind;
    use redspot_ckpt::AppSpec;
    use redspot_trace::{PriceSeries, ZoneId};

    fn m(v: u64) -> Price {
        Price::from_millis(v)
    }

    fn flat(price: u64, n_zones: usize, hours: u64) -> TraceSet {
        let samples = vec![m(price); (hours * 12) as usize];
        TraceSet::new(
            (0..n_zones)
                .map(|_| PriceSeries::new(SimTime::ZERO, samples.clone()))
                .collect(),
        )
    }

    fn engine(traces: &TraceSet, cfg: ExperimentConfig) -> Engine<'_> {
        Engine::with_delay_model(
            traces,
            SimTime::ZERO,
            cfg,
            PolicyKind::Periodic.build(),
            DelayModel::zero(),
        )
    }

    #[test]
    fn iterative_apps_commit_whole_iterations() {
        let traces = flat(270, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg.app =
            AppSpec::new(SimDuration::from_hours(20)).with_iteration(SimDuration::from_mins(42));
        let r = engine(&traces, cfg).run();
        assert!(r.met_deadline);
        let it = 42 * 60;
        for e in &r.events {
            if let Event::CheckpointCommitted { position, .. } = e {
                assert!(
                    position.secs() % it == 0 || *position == SimDuration::from_hours(20),
                    "commit at {position} is not an iteration boundary"
                );
            }
        }
        assert!(r.checkpoints > 5);
    }

    #[test]
    fn iteration_quantization_costs_a_little_extra() {
        let traces = flat(270, 1, 60);
        // Generous slack: quantization should then cost (almost) nothing —
        // commits land one partial iteration earlier but nothing migrates.
        let mut smooth = ExperimentConfig::paper_default().with_slack_percent(50);
        smooth.zones = vec![ZoneId(0)];
        smooth.record_events = false;
        let mut chunky = smooth.clone();
        chunky.app =
            AppSpec::new(SimDuration::from_hours(20)).with_iteration(SimDuration::from_mins(50));
        let r_smooth = engine(&traces, smooth.clone()).run();
        let r_chunky = engine(&traces, chunky.clone()).run();
        assert!(r_smooth.met_deadline && r_chunky.met_deadline);
        assert!(!r_chunky.used_on_demand);
        assert!(r_chunky.cost_dollars() <= r_smooth.cost_dollars() + 1.0);

        // At tight slack the committed-progress lag from coarse iterations
        // is real: the guard may buy the tail on-demand — but the deadline
        // still holds (the paper's guarantee is unconditional).
        let tight = chunky.with_slack_percent(15);
        let r_tight = engine(&traces, tight).run();
        assert!(r_tight.met_deadline);
    }

    #[test]
    fn deadline_extension_keeps_run_on_spot() {
        // A market that turns expensive at hour 4 and recovers at hour 12:
        // with the original 23h deadline the guard must migrate; extending
        // the deadline mid-run lets the engine ride out the outage.
        let base = flat(300, 1, 80);
        let w = redspot_trace::Window::new(SimTime::from_hours(4), SimTime::from_hours(12));
        let traces = redspot_trace::gen::inject_spike(&base, ZoneId(0), w, m(5_000));
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg.record_events = false;

        // Control: no extension → on-demand fallback.
        let control = engine(&traces, cfg.clone()).run();
        assert!(control.used_on_demand);

        // Extended: at hour 2 the user moves the deadline to 36 h.
        let mut e = engine(&traces, cfg);
        while e.now() < SimTime::from_hours(2) {
            e.step();
        }
        assert!(e.set_deadline(SimTime::from_hours(36)));
        let extended = e.run();
        assert!(extended.met_deadline);
        assert!(!extended.used_on_demand, "extension should avoid on-demand");
        assert!(extended.cost_dollars() < control.cost_dollars());
    }

    #[test]
    fn deadline_shrink_reports_infeasibility_but_still_tries() {
        let traces = flat(270, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg.record_events = false;
        let mut e = engine(&traces, cfg);
        while e.now() < SimTime::from_hours(1) {
            e.step();
        }
        // 19h of work left but only 2h allowed: infeasible.
        assert!(!e.set_deadline(SimTime::from_hours(3)));
        let r = e.run();
        assert!(!r.met_deadline);
        // It still migrated immediately and finished as fast as possible.
        assert!(r.used_on_demand);
    }

    #[test]
    fn io_server_accounting_tracks_spot_time_only() {
        let traces = flat(270, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg.record_events = false;
        cfg.io_server = Some(Price::from_dollars(0.10));
        let r = engine(&traces, cfg).run();
        assert!(r.met_deadline);
        // ~22 spot hours at $0.10.
        let io = r.io_cost.as_dollars();
        assert!((1.5..3.5).contains(&io), "io cost {io}");
        assert_eq!(r.cost, r.spot_cost + r.od_cost + r.io_cost);

        // A fully on-demand run needs no I/O server.
        let expensive = flat(9_000, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg.record_events = false;
        cfg.io_server = Some(Price::from_dollars(0.10));
        let r = engine(&expensive, cfg).run();
        assert_eq!(r.io_cost, Price::ZERO);
    }

    #[test]
    fn snapshot_reflects_engine_state() {
        let traces = flat(270, 2, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0), ZoneId(1)];
        let mut e = engine(&traces, cfg);
        let s0 = e.snapshot();
        assert_eq!(s0.committed, SimDuration::ZERO);
        assert!(!s0.done);
        assert_eq!(s0.zones.len(), 2);
        for _ in 0..30 {
            e.step();
        }
        let s1 = e.snapshot();
        assert!(s1.now > s0.now);
        assert!(s1.committed > SimDuration::ZERO);
        assert!(s1.best_position >= s1.committed);
        assert_eq!(s1.remaining + s1.committed, SimDuration::from_hours(20));
        assert!(s1.zones.iter().any(|z| z.state.is_up()));
        // Serializable for dashboards.
        let json = serde_json::to_string(&s1).unwrap();
        assert!(json.contains("committed"));
        let r = e.run();
        assert!(r.met_deadline);
    }

    #[test]
    fn io_accounting_disabled_by_default() {
        let traces = flat(270, 1, 60);
        let mut cfg = ExperimentConfig::paper_default();
        cfg.zones = vec![ZoneId(0)];
        cfg.record_events = false;
        let r = engine(&traces, cfg).run();
        assert_eq!(r.io_cost, Price::ZERO);
    }
}
