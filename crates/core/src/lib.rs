//! # redspot-core
//!
//! The paper's contribution: Algorithm 1 (deadline-guaranteed checkpoint
//! scheduling over redundant EC2 availability zones) as an event-driven
//! trace simulator, the four checkpoint policies of Section 4, the
//! Large-bid and on-demand baselines, the Adaptive meta-policy of
//! Section 7, and the seeded fault-injection layer the chaos harness uses
//! to stress the deadline guarantee.

#![warn(missing_docs)]

pub mod adaptive;
pub mod backoff;
pub mod config;
pub mod degrade;
pub mod engine;
pub mod faults;
pub mod policy;
pub mod run;
pub mod serve;
pub mod supervisor;
pub mod telemetry;

pub use adaptive::cache::{CacheStats, CacheTally, DecisionCache};
pub use adaptive::ctx::MarketCtx;
pub use adaptive::scan::{PermutationScan, ScanSeed};
pub use adaptive::{AdaptiveConfig, AdaptiveRunner, DecisionSession, ForecastMode};
pub use backoff::Backoff;
pub use config::{ConfigError, ExperimentConfig, IntoValidated, ValidatedConfig};
pub use degrade::DegradePolicy;
pub use engine::{on_demand_run, Engine, Snapshot, StepReport, ZoneSnapshot};
pub use faults::FaultPlan;
pub use policy::{Policy, PolicyCtx, PolicyKind};
pub use redspot_market::ApiFaultPlan;
pub use redspot_market::{Classic2014, Era, MarketRules, Modern2017};
pub use redspot_markov::{MemoStats, UptimeMemo};
pub use run::{ApiStats, Event, RunResult, TerminationCause};
pub use supervisor::{DenyReason, PriceView, RequestOutcome, Supervisor};
pub use telemetry::{
    Histogram, JsonlRecorder, MetricsRecorder, NullRecorder, Recorder, RunMetrics, VecRecorder,
    ZoneDwell,
};
